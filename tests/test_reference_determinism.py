"""Determinism of the reference JVM's coverage — the bedrock of the
uniqueness criteria: a classfile must map to one tracefile."""

import pytest

from repro.coverage.probes import CoverageCollector
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple.to_classfile import compile_class_bytes
from repro.jvm.vendors import reference_jvm


def collect(jvm, data):
    collector = CoverageCollector()
    with collector:
        jvm.run(data)
    return collector.tracefile()


class TestReferenceDeterminism:
    def test_same_class_same_tracefile(self, demo_bytes):
        jvm = reference_jvm()
        first = collect(jvm, demo_bytes)
        second = collect(jvm, demo_bytes)
        assert first.statements == second.statements
        assert first.branches == second.branches

    def test_fresh_jvm_instance_same_tracefile(self, demo_bytes):
        first = collect(reference_jvm(), demo_bytes)
        second = collect(reference_jvm(), demo_bytes)
        assert first.stmt_set == second.stmt_set
        assert first.br_set == second.br_set

    def test_corpus_tracefiles_stable(self):
        seeds = generate_corpus(CorpusConfig(count=15, seed=8))
        jvm = reference_jvm()
        for jclass in seeds:
            data = compile_class_bytes(jclass)
            assert collect(jvm, data).signature == \
                collect(jvm, data).signature

    def test_outcome_unaffected_by_instrumentation(self, demo_bytes):
        """Probes must be observationally transparent."""
        jvm = reference_jvm()
        bare = jvm.run(demo_bytes)
        collector = CoverageCollector()
        with collector:
            instrumented = jvm.run(demo_bytes)
        assert bare.code == instrumented.code
        assert bare.output == instrumented.output

    def test_distinct_errors_reach_distinct_sites(self):
        """Classfiles failing different checks must cover different
        statement sets — otherwise uniqueness cannot separate them."""
        from repro.jimple import ClassBuilder, MethodBuilder
        from repro.jimple.types import INT, JType

        jvm = reference_jvm()
        shapes = {}
        # (a) duplicate fields.
        builder = ClassBuilder("D1")
        builder.field("x", INT)
        builder.field("x", INT)
        builder.main_printing()
        shapes["dup_field"] = compile_class_bytes(builder.build())
        # (b) final superclass.
        builder = ClassBuilder("D2", superclass="java.lang.String")
        builder.default_init()
        builder.main_printing()
        shapes["final_super"] = compile_class_bytes(builder.build())
        # (c) missing superclass.
        builder = ClassBuilder("D3", superclass="com.example.Missing")
        builder.main_printing()
        shapes["missing_super"] = compile_class_bytes(builder.build())
        traces = {name: collect(jvm, data).stmt_set
                  for name, data in shapes.items()}
        names = list(traces)
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                assert traces[first] != traces[second], (first, second)
