"""Tests for the differential harness, outcome encoding, and metrics."""

import pytest

from repro.core.difftest import DifferentialHarness
from repro.core.metrics import evaluate_suite, format_table
from repro.jimple import ClassBuilder, MethodBuilder
from repro.jimple.to_classfile import compile_class_bytes
from repro.jvm.outcome import (
    DifferentialResult,
    Outcome,
    Phase,
    encode_outcomes,
    is_discrepancy,
)


def figure2_class_bytes():
    """The Figure 2 mutant: abstract code-less <clinit>."""
    builder = ClassBuilder("M1436188543")
    builder.default_init()
    builder.main_printing("Completed!")
    method = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
    method.abstract_body()
    builder.method(method.build())
    return compile_class_bytes(builder.build())


class TestOutcomeEncoding:
    def test_phase_codes_match_paper(self):
        assert Phase.INVOKED == 0
        assert Phase.LOADING == 1
        assert Phase.LINKING == 2
        assert Phase.INITIALIZATION == 3
        assert Phase.RUNTIME == 4

    def test_encode(self):
        outcomes = [Outcome(Phase.INVOKED), Outcome(Phase.LOADING),
                    Outcome(Phase.LINKING)]
        assert encode_outcomes(outcomes) == (0, 1, 2)

    def test_discrepancy_detection(self):
        assert is_discrepancy((0, 0, 0, 1, 2))
        assert not is_discrepancy((0, 0, 0, 0, 0))
        assert not is_discrepancy((2, 2, 2, 2, 2))

    def test_figure3_shape(self):
        """Figure 3: invoked on three HotSpots, rejected by J9 and GIJ in
        different phases — the sequence 0 0 0 x y with x != y != 0."""
        result = DifferentialResult(outcomes=[
            Outcome(Phase.INVOKED, jvm_name="hotspot7"),
            Outcome(Phase.INVOKED, jvm_name="hotspot8"),
            Outcome(Phase.INVOKED, jvm_name="hotspot9"),
            Outcome(Phase.LOADING, jvm_name="j9"),
            Outcome(Phase.LINKING, jvm_name="gij"),
        ])
        assert result.codes == (0, 0, 0, 1, 2)
        assert result.is_discrepancy
        assert not result.all_invoked
        assert not result.all_rejected_same_stage

    def test_all_rejected_same_stage(self):
        result = DifferentialResult(outcomes=[
            Outcome(Phase.LINKING) for _ in range(5)])
        assert result.all_rejected_same_stage
        assert not result.is_discrepancy

    def test_summary_mentions_every_jvm(self):
        result = DifferentialResult(outcomes=[
            Outcome(Phase.INVOKED, jvm_name="a"),
            Outcome(Phase.RUNTIME, error="NullPointerException",
                    jvm_name="b"),
        ], label="X")
        text = result.summary()
        assert "a:" in text and "b:" in text


class TestHarness:
    def test_default_harness_has_five_jvms(self, harness):
        assert harness.jvm_names == ["hotspot7", "hotspot8", "hotspot9",
                                     "j9", "gij"]

    def test_valid_class_no_discrepancy(self, harness, demo_bytes):
        result = harness.run_one(demo_bytes, "Demo")
        assert result.all_invoked
        assert not result.is_discrepancy

    def test_figure2_discrepancy(self, harness):
        result = harness.run_one(figure2_class_bytes(), "M1436188543")
        assert result.is_discrepancy
        # Only J9's column differs.
        assert result.codes == (0, 0, 0, 1, 0)

    def test_distinct_discrepancy_grouping(self, harness, demo_bytes):
        results = [harness.run_one(figure2_class_bytes(), "a"),
                   harness.run_one(figure2_class_bytes(), "b"),
                   harness.run_one(demo_bytes, "c")]
        categories = harness.distinct_discrepancies(results)
        assert categories == {results[0].fine_codes: 2}
        assert tuple(code for code, _ in results[0].fine_codes) \
            == (0, 0, 0, 1, 0)

    def test_coarse_grouping_keeps_phase_only_keys(self, harness,
                                                   demo_bytes):
        results = [harness.run_one(figure2_class_bytes(), "a"),
                   harness.run_one(figure2_class_bytes(), "b"),
                   harness.run_one(demo_bytes, "c")]
        assert harness.coarse_discrepancies(results) == {(0, 0, 0, 1, 0): 2}

    def test_distinct_separates_same_phase_different_errors(self):
        """Regression: identical code vectors with different error
        classes are different bugs, not one category."""
        def rejected(error):
            return DifferentialResult(outcomes=[
                Outcome(Phase.INVOKED, jvm_name="hotspot7"),
                Outcome(Phase.LINKING, error=error, jvm_name="hotspot8"),
            ])
        results = [rejected("VerifyError"), rejected("ClassFormatError")]
        fine = DifferentialHarness.distinct_discrepancies(results)
        assert len(fine) == 2
        coarse = DifferentialHarness.coarse_discrepancies(results)
        assert coarse == {(0, 2): 2}

    def test_distinct_counts_fine_only_discrepancies(self):
        """A same-phase error-class split has a constant coarse vector
        but is still a (fine) discrepancy category."""
        result = DifferentialResult(outcomes=[
            Outcome(Phase.LINKING, error="VerifyError", jvm_name="a"),
            Outcome(Phase.LINKING, error="ClassFormatError", jvm_name="b"),
        ])
        assert not result.is_discrepancy
        assert DifferentialHarness.distinct_discrepancies([result])
        assert not DifferentialHarness.coarse_discrepancies([result])

    def test_phase_table_totals(self, harness, demo_bytes):
        results = harness.run_many([("demo", demo_bytes),
                                    ("fig2", figure2_class_bytes())])
        table = harness.phase_table(results)
        for name in harness.jvm_names:
            assert sum(table[name]) == 2
        assert table["j9"][int(Phase.LOADING)] == 1

    def test_phase_table_unknown_jvm_counted(self, harness):
        """Regression: outcomes naming a JVM outside the harness's
        configured list (e.g. reloaded results from a different --jvms
        selection) get their own row instead of raising KeyError."""
        results = [DifferentialResult(outcomes=[
            Outcome(Phase.INVOKED, jvm_name="hotspot7"),
            Outcome(Phase.RUNTIME, error="NullPointerException",
                    jvm_name="zing"),
        ])]
        table = harness.phase_table(results)
        assert table["zing"] == [0, 0, 0, 0, 1]
        assert table["hotspot7"][0] == 1
        assert sum(sum(row) for row in table.values()) == 2


class TestMetrics:
    def test_evaluate_suite_counts(self, harness, demo_bytes):
        report = evaluate_suite("suite", [
            ("demo", demo_bytes), ("fig2", figure2_class_bytes())], harness)
        assert report.size == 2
        assert report.all_invoked == 1
        assert report.discrepancies == 1
        assert report.distinct_discrepancies == 1
        assert report.diff == pytest.approx(0.5)

    def test_empty_suite(self, harness):
        report = evaluate_suite("empty", [], harness)
        assert report.diff == 0.0

    def test_format_table(self, harness, demo_bytes):
        report = evaluate_suite("suite", [("demo", demo_bytes)], harness)
        text = format_table([report])
        assert "suite" in text and "diff" in text
