"""Unit tests for the simulated platform library and JRE environments."""

from repro.runtime import build_environment
from repro.runtime.library import (
    ClassLibrary,
    LibraryClass,
    base_catalogue,
    make_class,
    make_interface,
)


class TestClassLibrary:
    def setup_method(self):
        self.library = ClassLibrary(base_catalogue())

    def test_object_is_root(self):
        obj = self.library.find("java/lang/Object")
        assert obj is not None
        assert obj.superclass is None

    def test_subclass_chain(self):
        assert self.library.is_subclass_of("java/lang/RuntimeException",
                                           "java/lang/Throwable")
        assert not self.library.is_subclass_of("java/lang/Thread",
                                               "java/lang/Throwable")

    def test_is_throwable(self):
        assert self.library.is_throwable("java/io/IOException")
        assert not self.library.is_throwable("java/util/HashMap")

    def test_subclass_reflexive(self):
        assert self.library.is_subclass_of("java/lang/String",
                                           "java/lang/String")

    def test_cycle_safe(self):
        self.library.add(make_class("A", superclass="B"))
        self.library.add(make_class("B", superclass="A"))
        assert not self.library.is_subclass_of("A", "java/lang/Object")

    def test_find_method_with_descriptor(self):
        system = self.library.find("java/lang/System")
        assert system.find_method("exit", "(I)V") is not None
        assert system.find_method("exit", "()V") is None

    def test_find_field(self):
        system = self.library.find("java/lang/System")
        out = system.find_field("out")
        assert out is not None and out.is_static

    def test_default_constructor_added(self):
        thread = self.library.find("java/lang/Thread")
        assert thread.find_method("<init>", "()V") is not None

    def test_interfaces_have_no_constructor(self):
        runnable = self.library.find("java/lang/Runnable")
        assert runnable.is_interface
        assert runnable.find_method("<init>") is None

    def test_string_is_final(self):
        assert self.library.find("java/lang/String").is_final

    def test_replace(self):
        self.library.replace("java/lang/Thread", is_final=True)
        assert self.library.find("java/lang/Thread").is_final


class TestEnvironments:
    def test_jre7_has_legacy_classes(self):
        env = build_environment(7)
        assert "sun/misc/JavaUtilJarAccess" in env.library
        assert "sun/beans/editors/EnumEditor" in env.library

    def test_jre8_drops_legacy_adds_new(self):
        env = build_environment(8)
        assert "sun/misc/JavaUtilJarAccess" not in env.library
        assert "java/util/Optional" in env.library

    def test_enum_editor_final_flip(self):
        """The preliminary-study example: final from JRE 8 on."""
        assert not build_environment(7).library.find(
            "com/sun/beans/editors/EnumEditor").is_final
        assert build_environment(8).library.find(
            "com/sun/beans/editors/EnumEditor").is_final

    def test_jre9_has_modules_classes(self):
        env = build_environment(9)
        assert "java/lang/Module" in env.library

    def test_classpath_era_lacks_sun_internals(self):
        env = build_environment(5)
        assert "sun/java2d/pisces/PiscesRenderingEngine$2" not in env.library
        assert "java/lang/Object" in env.library

    def test_synthetic_class_flagged(self):
        env = build_environment(8)
        synthetic = env.library.find(
            "sun/java2d/pisces/PiscesRenderingEngine$2")
        assert synthetic.is_synthetic and not synthetic.is_public

    def test_environment_names(self):
        assert build_environment(7).name == "jre7"
        assert build_environment(8, name="ibm-sdk8").name == "ibm-sdk8"

    def test_jre7_resources_superset(self):
        assert build_environment(7).resources > build_environment(8).resources
