"""Tests for the synthetic seed corpus generator."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus
from repro.core.difftest import DifferentialHarness
from repro.jimple.to_classfile import compile_class_bytes


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(count=200, seed=99))


class TestGeneration:
    def test_requested_count(self, corpus):
        assert len(corpus) == 200

    def test_deterministic(self):
        config = CorpusConfig(count=30, seed=5)
        first = generate_corpus(config)
        second = generate_corpus(config)
        from repro.jimple import print_class

        assert [print_class(c) for c in first] == \
            [print_class(c) for c in second]

    def test_unique_names(self, corpus):
        names = [jclass.name for jclass in corpus]
        assert len(set(names)) == len(names)

    def test_every_seed_compiles(self, corpus):
        for jclass in corpus:
            data = compile_class_bytes(jclass)
            assert data[:4] == b"\xca\xfe\xba\xbe"

    def test_version_51(self, corpus):
        assert all(jclass.major_version == 51 for jclass in corpus)

    def test_contains_interfaces(self, corpus):
        fraction = sum(1 for c in corpus if c.is_interface) / len(corpus)
        assert 0.05 < fraction < 0.25

    def test_most_lack_main(self, corpus):
        """Like real library classes, seeds mostly have no main (§3.1.1)."""
        with_main = sum(1 for c in corpus if c.find_method("main"))
        assert with_main / len(corpus) < 0.1

    def test_some_have_clinit(self, corpus):
        assert any(c.find_method("<clinit>") for c in corpus)

    def test_structural_variety(self, corpus):
        field_counts = {len(c.fields) for c in corpus}
        method_counts = {len(c.methods) for c in corpus}
        assert len(field_counts) >= 3
        assert len(method_counts) >= 3


class TestBaselineRates:
    """The preliminary-study shape: a small discrepancy baseline."""

    def test_seed_discrepancy_rate_near_paper(self, corpus, harness):
        results = [harness.run_one(compile_class_bytes(c), c.name)
                   for c in corpus]
        rate = sum(1 for r in results if r.is_discrepancy) / len(results)
        # Paper: 1.7 % (full JRE7) to 3.0 % (sampled seeds).
        assert 0.005 <= rate <= 0.08

    def test_most_seeds_rejected_same_stage(self, corpus, harness):
        """Table 6 seeds row: the bulk is 'all rejected at the same
        stage' (no main method)."""
        results = [harness.run_one(compile_class_bytes(c), c.name)
                   for c in corpus[:80]]
        same_stage = sum(1 for r in results if r.all_rejected_same_stage)
        assert same_stage / len(results) > 0.75
