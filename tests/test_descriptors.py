"""Unit tests for descriptor parsing (JVMS §4.3)."""

import pytest

from repro.classfile.descriptors import (
    DescriptorError,
    FieldType,
    is_valid_field_descriptor,
    is_valid_method_descriptor,
    object_descriptor,
    parse_field_descriptor,
    parse_method_descriptor,
)


class TestFieldDescriptors:
    @pytest.mark.parametrize("descriptor,kind,name", [
        ("I", "base", "I"),
        ("Z", "base", "Z"),
        ("J", "base", "J"),
        ("Ljava/lang/String;", "object", "java/lang/String"),
    ])
    def test_simple_types(self, descriptor, kind, name):
        ftype = parse_field_descriptor(descriptor)
        assert ftype.kind == kind
        assert ftype.name == name
        assert ftype.dimensions == 0

    def test_array_dimensions(self):
        ftype = parse_field_descriptor("[[I")
        assert ftype.dimensions == 2
        assert ftype.name == "I"

    def test_object_array(self):
        ftype = parse_field_descriptor("[Ljava/lang/Object;")
        assert ftype.dimensions == 1
        assert ftype.kind == "object"

    def test_descriptor_roundtrip(self):
        for descriptor in ("I", "[[D", "Ljava/util/Map;", "[Ljava/lang/String;"):
            assert parse_field_descriptor(descriptor).descriptor() == descriptor

    def test_java_name(self):
        assert parse_field_descriptor("[I").java_name == "int[]"
        assert parse_field_descriptor("Ljava/lang/String;").java_name == \
            "java.lang.String"

    def test_slots(self):
        assert parse_field_descriptor("J").slots == 2
        assert parse_field_descriptor("D").slots == 2
        assert parse_field_descriptor("I").slots == 1
        assert parse_field_descriptor("[J").slots == 1  # array ref is 1 slot

    @pytest.mark.parametrize("bad", ["", "X", "L;", "Ljava/lang/String",
                                     "II", "[", "Lfoo;garbage"])
    def test_malformed(self, bad):
        with pytest.raises(DescriptorError):
            parse_field_descriptor(bad)

    def test_validity_predicate(self):
        assert is_valid_field_descriptor("I")
        assert not is_valid_field_descriptor("Q")


class TestMethodDescriptors:
    def test_void_no_args(self):
        parsed = parse_method_descriptor("()V")
        assert parsed.parameters == ()
        assert parsed.return_type is None

    def test_main_signature(self):
        parsed = parse_method_descriptor("([Ljava/lang/String;)V")
        assert len(parsed.parameters) == 1
        assert parsed.parameters[0].dimensions == 1

    def test_mixed_parameters(self):
        parsed = parse_method_descriptor("(IJLjava/lang/String;[B)I")
        assert [p.descriptor() for p in parsed.parameters] == [
            "I", "J", "Ljava/lang/String;", "[B"]
        assert parsed.return_type.descriptor() == "I"

    def test_parameter_slots_count_wides(self):
        parsed = parse_method_descriptor("(JDI)V")
        assert parsed.parameter_slots == 5

    def test_roundtrip(self):
        for descriptor in ("()V", "(I)I", "(Ljava/util/Map;)Z",
                           "([[Ljava/lang/Object;J)Ljava/lang/String;"):
            assert parse_method_descriptor(descriptor).descriptor() == \
                descriptor

    @pytest.mark.parametrize("bad", ["", "I", "(I", "()", "()VV", "(Q)V",
                                     "()Lfoo"])
    def test_malformed(self, bad):
        with pytest.raises(DescriptorError):
            parse_method_descriptor(bad)

    def test_validity_predicate(self):
        assert is_valid_method_descriptor("(II)V")
        assert not is_valid_method_descriptor("(II)")


def test_object_descriptor_helper():
    assert object_descriptor("java/lang/Object") == "Ljava/lang/Object;"
