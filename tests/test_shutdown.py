"""Tests for graceful SIGTERM shutdown (final checkpoint + exit 143)."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.checkpoint import has_checkpoint, read_meta
from repro.core.fuzzing import classfuzz
from repro.core.shutdown import (
    GRACEFUL_EXIT_CODE,
    GracefulShutdown,
    install_sigterm_handler,
    request_shutdown,
    reset_shutdown,
    shutdown_requested,
)
from repro.corpus import CorpusConfig, generate_corpus

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=12, seed=9))


@pytest.fixture(autouse=True)
def clean_flag():
    reset_shutdown()
    yield
    reset_shutdown()


class TestShutdownFlag:
    def test_request_sets_and_reset_clears(self):
        assert not shutdown_requested()
        request_shutdown()
        assert shutdown_requested()
        reset_shutdown()
        assert not shutdown_requested()

    def test_install_handler_on_main_thread(self):
        previous = signal.getsignal(signal.SIGTERM)
        try:
            assert install_sigterm_handler()
            assert signal.getsignal(signal.SIGTERM) is request_shutdown
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_install_handler_off_main_thread_degrades(self):
        import threading

        results = []
        thread = threading.Thread(
            target=lambda: results.append(install_sigterm_handler()))
        thread.start()
        thread.join()
        assert results == [False]


class TestGracefulRunStop:
    def test_run_raises_after_final_checkpoint(self, seeds, tmp_path):
        directory = tmp_path / "ckpt"
        request_shutdown()  # set before the run: stops at round 1
        with pytest.raises(GracefulShutdown) as excinfo:
            classfuzz(seeds, iterations=100, seed=7,
                      checkpoint_dir=directory, checkpoint_every=50)
        assert excinfo.value.checkpointed
        assert has_checkpoint(directory)
        # the final checkpoint reflects the stop point, not the target
        assert read_meta(directory)["index"] < 100

    def test_resume_completes_identically(self, seeds, tmp_path):
        full = classfuzz(seeds, iterations=60, seed=7)
        directory = tmp_path / "ckpt"
        request_shutdown()
        with pytest.raises(GracefulShutdown):
            classfuzz(seeds, iterations=60, seed=7,
                      checkpoint_dir=directory, checkpoint_every=20)
        reset_shutdown()
        resumed = classfuzz(seeds, iterations=60, seed=7,
                            checkpoint_dir=directory, resume=True)
        assert [t.label for t in resumed.test_classes] == \
            [t.label for t in full.test_classes]
        assert [g.data for g in resumed.gen_classes] == \
            [g.data for g in full.gen_classes]

    def test_no_checkpoint_dir_still_stops_orderly(self, seeds):
        request_shutdown()
        with pytest.raises(GracefulShutdown) as excinfo:
            classfuzz(seeds, iterations=100, seed=7)
        assert not excinfo.value.checkpointed


class TestCliSigterm:
    """The subprocess contract: SIGTERM -> checkpoint -> exit 143 -> resume."""

    def _run_cli(self, *args, **kwargs):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, **kwargs)

    def test_sigterm_exits_143_and_resume_is_byte_identical(self, tmp_path):
        common = ["fuzz", "--algorithm", "classfuzz", "--criterion", "tr",
                  "--iterations", "2000", "--seed", "9",
                  "--seed-count", "8"]
        full = self._run_cli(*common, "--out", str(tmp_path / "full"))
        assert full.wait(timeout=120) == 0

        ckpt = tmp_path / "ckpt"
        proc = self._run_cli(*common, "--checkpoint-dir", str(ckpt),
                             "--checkpoint-every", "25",
                             "--out", str(tmp_path / "partial"))
        # wait until at least one checkpoint exists, then SIGTERM
        deadline = time.time() + 60
        while time.time() < deadline and not has_checkpoint(ckpt):
            if proc.poll() is not None:
                pytest.fail("run finished before SIGTERM could be sent: "
                            + proc.stderr.read().decode())
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == GRACEFUL_EXIT_CODE
        stderr = proc.stderr.read().decode()
        assert "SIGTERM honoured" in stderr
        assert has_checkpoint(ckpt)
        interrupted_at = read_meta(ckpt)["index"]
        assert 0 < interrupted_at < 2000

        resume = self._run_cli(*common, "--checkpoint-dir", str(ckpt),
                               "--resume", "--out",
                               str(tmp_path / "resumed"))
        assert resume.wait(timeout=120) == 0
        full_manifest = (tmp_path / "full" / "manifest.json").read_bytes()
        resumed_manifest = (tmp_path / "resumed"
                            / "manifest.json").read_bytes()
        assert resumed_manifest == full_manifest
