"""Integration tests: telemetry threaded through the real pipeline.

Exercises classfuzz/randfuzz with a live telemetry bundle, the ambient
JVM phase spans, discrepancy events from the differential harness, the
registry under the thread-pool executor, and the ``--events`` /
``--metrics-out`` / ``repro observe`` CLI surface end to end.
"""

import json

import pytest

from repro.cli import main
from repro.core.campaign import run_campaign
from repro.core.difftest import DifferentialHarness
from repro.core.executor import OutcomeCache, SerialExecutor, ThreadExecutor
from repro.core.fuzzing import classfuzz, randfuzz
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple.to_classfile import compile_class_bytes
from repro.observe import RingBufferSink, Telemetry
from repro.observe.events import (
    CACHE_HIT,
    DISCREPANCY_FOUND,
    EXECUTOR_BATCH,
    ITERATION,
    JVM_PHASE,
    MCMC_TRANSITION,
    MUTANT_ACCEPTED,
)
from repro.observe.summary import check_prometheus


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=15, seed=7))


def _telemetry_with_ring():
    telemetry = Telemetry()
    ring = RingBufferSink(capacity=100000)
    telemetry.bus.add_sink(ring)
    return telemetry, ring


class TestFuzzingTelemetry:
    def test_classfuzz_emits_iteration_and_mcmc_events(self, seeds):
        telemetry, ring = _telemetry_with_ring()
        executor = SerialExecutor(cache=OutcomeCache(),
                                  telemetry=telemetry)
        with telemetry.activate():
            result = classfuzz(seeds, iterations=15, seed=2,
                               executor=executor, telemetry=telemetry)
        iterations = ring.events(ITERATION)
        assert len(iterations) == 15
        assert all(e.fields["algorithm"] == "classfuzz[stbr]"
                   for e in iterations)
        accepted = [e for e in iterations if e.fields["accepted"]]
        assert len(accepted) == len(result.test_classes)
        assert len(ring.events(MUTANT_ACCEPTED)) == \
            len(result.test_classes)
        assert len(ring.events(MCMC_TRANSITION)) == 15
        # The reference-JVM coverage runs traced their startup phases.
        phases = {e.fields["phase"] for e in ring.events(JVM_PHASE)}
        assert "loading" in phases
        registry = telemetry.registry
        assert registry.get("repro_iterations_total") \
            .labels(algorithm="classfuzz[stbr]").value == 15

    def test_randfuzz_without_telemetry_is_unchanged(self, seeds):
        plain = randfuzz(seeds, iterations=20, seed=1)
        observed_tel, ring = _telemetry_with_ring()
        observed = randfuzz(seeds, iterations=20, seed=1,
                            telemetry=observed_tel)
        assert [g.label for g in plain.gen_classes] == \
            [g.label for g in observed.gen_classes]
        assert len(ring.events(ITERATION)) == 20

    def test_disabled_telemetry_emits_nothing(self, seeds):
        telemetry = Telemetry()          # registry only; bus disabled
        sink = RingBufferSink()
        # Deliberately NOT attached to the bus.
        randfuzz(seeds, iterations=5, seed=0, telemetry=telemetry)
        assert len(sink) == 0
        assert telemetry.registry.get("repro_iterations_total") \
            .labels(algorithm="randfuzz").value == 5


class TestHarnessTelemetry:
    def test_discrepancy_events(self, seeds):
        telemetry, ring = _telemetry_with_ring()
        harness = DifferentialHarness(telemetry=telemetry)
        suite = [(jclass.name, compile_class_bytes(jclass))
                 for jclass in seeds]
        results = harness.run_many(suite)
        found = [r for r in results if r.is_discrepancy]
        events = ring.events(DISCREPANCY_FOUND)
        assert len(events) == len(found)
        registry = telemetry.registry
        assert registry.get("repro_difftests_total").value == len(suite)
        assert registry.get("repro_discrepancies_total").value == \
            len(found)
        for event in events:
            assert len(event.fields["codes"]) == len(harness.jvms)

    def test_executor_batch_and_cache_events(self, seeds):
        telemetry, ring = _telemetry_with_ring()
        executor = SerialExecutor(cache=OutcomeCache(),
                                  telemetry=telemetry)
        harness = DifferentialHarness(executor=executor)
        suite = [(jclass.name, compile_class_bytes(jclass))
                 for jclass in seeds[:4]]
        harness.run_many(suite)
        harness.run_many(suite)  # second pass: pure cache hits
        batches = ring.events(EXECUTOR_BATCH)
        assert len(batches) == 2
        assert batches[0].fields["size"] == 4
        assert len(ring.events(CACHE_HIT)) >= \
            4 * len(harness.jvms)

    def test_thread_executor_records_concurrently(self, seeds):
        telemetry, _ = _telemetry_with_ring()
        executor = ThreadExecutor(jobs=4, cache=OutcomeCache(),
                                  telemetry=telemetry)
        harness = DifferentialHarness(executor=executor)
        suite = [(jclass.name, compile_class_bytes(jclass))
                 for jclass in seeds]
        with telemetry.activate():
            harness.run_many(suite)
        executor.close()
        runs = telemetry.registry.get("repro_jvm_runs_total")
        total = sum(child.value for _, child in runs.children())
        assert total == len(suite) * len(harness.jvms)
        # Ambient phase spans fired from the worker threads too.
        phases = telemetry.registry.get("repro_jvm_phase_seconds")
        assert sum(child.count for _, child in phases.children()) > 0


class TestCampaignTelemetry:
    def test_campaign_run_with_telemetry(self, seeds):
        telemetry, ring = _telemetry_with_ring()
        with telemetry.activate():
            run_campaign(seeds, budget_seconds=1500.0,
                         algorithms=("classfuzz[stbr]", "randfuzz"),
                         evaluate=True, telemetry=telemetry)
        types = {event.type for event in ring.events()}
        assert {ITERATION, MCMC_TRANSITION, JVM_PHASE,
                EXECUTOR_BATCH} <= types
        spans = telemetry.registry.get("repro_span_seconds")
        names = {key[0] for key, _ in spans.children()}
        assert "campaign.fuzz" in names
        assert "campaign.evaluate" in names
        problems = check_prometheus(telemetry.render_prometheus())
        assert problems == []


class TestObserveCli:
    def test_campaign_events_metrics_and_observe(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main(["campaign", "--budget-scale", "0.002",
                     "--seed-count", "20",
                     "--algorithms", "classfuzz[stbr]", "randfuzz",
                     "--mutator-report", "3",
                     "--events", str(events),
                     "--metrics-out", str(metrics)])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 5 (mutator selection)" in output
        assert "wrote metrics dump" in output

        recorded = {json.loads(line)["type"]
                    for line in events.read_text().splitlines()}
        assert {"iteration", "mcmc_transition", "jvm_phase",
                "executor_batch"} <= recorded

        assert main(["observe", "check", str(metrics)]) == 0
        assert "OK" in capsys.readouterr().out

        assert main(["observe", "summary", str(events)]) == 0
        summary = capsys.readouterr().out
        assert "Acceptance rate" in summary
        assert "JVM phase latency" in summary

        out_csv = tmp_path / "ts.csv"
        assert main(["observe", "timeseries", str(events),
                     "--out", str(out_csv)]) == 0
        capsys.readouterr()
        assert out_csv.read_text().startswith("algorithm,iteration")

        assert main(["observe", "replay", str(events),
                     "--type", "mcmc_transition", "--limit", "2"]) == 0
        replay = capsys.readouterr().out
        assert "mcmc_transition" in replay

    def test_observe_summary_metrics_prefilter_block(self, tmp_path,
                                                     capsys):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main(["fuzz", "--algorithm", "classfuzz",
                     "--criterion", "tr", "--iterations", "25",
                     "--seed-count", "15", "--coverage-index", "bitmap",
                     "--events", str(events),
                     "--metrics-out", str(metrics)])
        assert code == 0
        capsys.readouterr()
        assert main(["observe", "summary", str(events),
                     "--metrics", str(metrics)]) == 0
        summary = capsys.readouterr().out
        assert "=== Bitmap prefilter ===" in summary
        assert "[tr]" in summary and "hit rate" in summary

    def test_observe_summary_metrics_without_prefilter(self, tmp_path,
                                                       capsys):
        # An exact-index dump has no prefilter counters: the summary
        # must omit the block rather than print an empty one.
        events = tmp_path / "events.jsonl"
        events.write_text('{"type": "iteration", "ts": 1.0, "seq": 1, '
                          '"algorithm": "randfuzz", "accepted": true}\n')
        metrics = tmp_path / "metrics.prom"
        metrics.write_text("repro_iterations_total 1\n")
        assert main(["observe", "summary", str(events),
                     "--metrics", str(metrics)]) == 0
        assert "Bitmap prefilter" not in capsys.readouterr().out

    def test_observe_check_fails_on_missing_family(self, tmp_path, capsys):
        dump = tmp_path / "partial.prom"
        dump.write_text("repro_iterations_total 3\n")
        assert main(["observe", "check", str(dump)]) == 1
        assert "missing metric family" in capsys.readouterr().err

    def test_observe_check_custom_requirements(self, tmp_path, capsys):
        dump = tmp_path / "one.prom"
        dump.write_text("my_metric 1\n")
        assert main(["observe", "check", str(dump),
                     "--require", "my_metric"]) == 0
        capsys.readouterr()

    def test_fuzz_with_events(self, tmp_path, capsys):
        events = tmp_path / "fuzz.jsonl"
        code = main(["fuzz", "--algorithm", "randfuzz",
                     "--iterations", "10", "--seed-count", "15",
                     "--mutator-report", "2",
                     "--events", str(events)])
        assert code == 0
        capsys.readouterr()
        types = {json.loads(line)["type"]
                 for line in events.read_text().splitlines()}
        assert "iteration" in types
