"""Tests for the seed pool and its pluggable schedulers."""

import random

import pytest

from repro.corpus import CorpusConfig, generate_corpus
from repro.corpus.pool import ORIGIN_MUTANT, ORIGIN_SEED, SeedPool
from repro.corpus.schedule import (
    DEFAULT_SCHEDULE,
    SCHEDULERS,
    CoverageYieldScheduler,
    EpsilonGreedyScheduler,
    UniformScheduler,
    make_scheduler,
)
from repro.core.fuzzing import classfuzz, uniquefuzz
from repro.observe import make_telemetry
from repro.observe.events import SEED_SCHEDULED


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=12, seed=3))


class TestUniformScheduler:
    def test_matches_rng_choice_draws(self, seeds):
        """The uniform pick consumes the Mersenne Twister exactly like
        the historical ``rng.choice(pool)`` — the golden-fixture
        byte-identity contract."""
        entries = list(range(7))
        a, b = random.Random(99), random.Random(99)
        scheduler = UniformScheduler()
        for _ in range(200):
            assert scheduler.pick(a, entries) == b.choice(entries)

    def test_pool_pick_counts_picks(self, seeds):
        pool = SeedPool(seeds)
        rng = random.Random(1)
        for _ in range(30):
            index, entry = pool.pick(rng)
            assert pool.entries[index] is entry
        assert sum(e.picks for e in pool.entries) == 30

    def test_is_the_default(self):
        assert DEFAULT_SCHEDULE == "uniform"
        assert make_scheduler(None).name == "uniform"


class TestEpsilonGreedyScheduler:
    def test_exploits_best_yield(self):
        pool_entries = SeedPool(
            generate_corpus(CorpusConfig(count=3, seed=1))).entries
        pool_entries[1].accepted = 5
        pool_entries[1].picks = 2
        scheduler = EpsilonGreedyScheduler(epsilon=0.0)
        rng = random.Random(0)
        assert all(scheduler.pick(rng, pool_entries) == 1
                   for _ in range(20))

    def test_cold_start_is_uniform(self):
        entries = SeedPool(
            generate_corpus(CorpusConfig(count=5, seed=1))).entries
        scheduler = EpsilonGreedyScheduler(epsilon=0.0)
        rng = random.Random(7)
        picked = {scheduler.pick(rng, entries) for _ in range(200)}
        assert picked == set(range(5))

    def test_deterministic_for_fixed_seed(self):
        entries = SeedPool(
            generate_corpus(CorpusConfig(count=6, seed=2))).entries
        entries[2].novelty = 3
        picks = []
        for _ in range(2):
            rng = random.Random(42)
            scheduler = EpsilonGreedyScheduler(epsilon=0.3)
            picks.append([scheduler.pick(rng, entries)
                          for _ in range(50)])
        assert picks[0] == picks[1]

    def test_epsilon_validated(self):
        with pytest.raises(ValueError, match="epsilon"):
            EpsilonGreedyScheduler(epsilon=1.5)


class TestCoverageYieldScheduler:
    def test_weights_toward_novelty(self):
        entries = SeedPool(
            generate_corpus(CorpusConfig(count=4, seed=1))).entries
        entries[3].novelty = 100
        scheduler = CoverageYieldScheduler()
        rng = random.Random(5)
        picks = [scheduler.pick(rng, entries) for _ in range(300)]
        assert picks.count(3) > 200  # weight 101 of ~104 total

    def test_every_entry_reachable(self):
        entries = SeedPool(
            generate_corpus(CorpusConfig(count=4, seed=1))).entries
        entries[0].novelty = 50
        scheduler = CoverageYieldScheduler()
        rng = random.Random(9)
        picked = {scheduler.pick(rng, entries) for _ in range(2000)}
        assert picked == set(range(4))

    def test_deterministic_for_fixed_seed(self):
        entries = SeedPool(
            generate_corpus(CorpusConfig(count=5, seed=8))).entries
        entries[1].accepted = 4
        runs = []
        for _ in range(2):
            rng = random.Random(13)
            runs.append([CoverageYieldScheduler().pick(rng, entries)
                        for _ in range(40)])
        assert runs[0] == runs[1]


class TestMakeScheduler:
    def test_registry_names(self):
        for name in SCHEDULERS:
            assert make_scheduler(name).name == name

    def test_passthrough_instance(self):
        instance = EpsilonGreedyScheduler(epsilon=0.5)
        assert make_scheduler(instance) is instance

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="coverage-yield"):
            make_scheduler("fancy-new-policy")

    def test_kwargs_forwarded(self):
        scheduler = make_scheduler("epsilon-greedy", epsilon=0.25)
        assert scheduler.epsilon == 0.25


class TestPoolFeedback:
    def test_add_marks_mutant_origin(self, seeds):
        pool = SeedPool(seeds)
        index = pool.add(seeds[0].clone(), "M1", size=123)
        assert pool.entries[index].origin == ORIGIN_MUTANT
        assert pool.entries[index].size == 123
        assert pool.entries[0].origin == ORIGIN_SEED
        assert pool.seed_count == len(seeds)

    def test_absorb_counts_only_new_sites(self, seeds):
        from repro.coverage.tracefile import Tracefile

        pool = SeedPool(seeds)
        first = Tracefile(statements={"a.c:1": 1, "a.c:2": 1},
                          branches={("a.c:1", True): 1})
        again = Tracefile(statements={"a.c:1": 5}, branches={})
        wider = Tracefile(statements={"a.c:1": 1, "a.c:3": 1},
                          branches={})
        assert pool.absorb(first) == 3
        assert pool.absorb(again) == 0
        assert pool.absorb(wider) == 1

    def test_credit_accumulates(self, seeds):
        pool = SeedPool(seeds)
        pool.credit(2, novelty=4)
        pool.credit(2, novelty=1)
        assert pool.entries[2].accepted == 2
        assert pool.entries[2].novelty == 5

    def test_stats_rows_drop_untouched_seeds(self, seeds):
        pool = SeedPool(seeds)
        pool.credit(0, novelty=1)
        pool.add(seeds[1].clone(), "M1")
        rows = pool.stats_rows()
        labels = {row["label"] for row in rows}
        assert pool.entries[0].label in labels
        assert "M1" in labels
        assert len(rows) == 2
        assert len(pool.stats_rows(active_only=False)) == len(seeds) + 1

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            SeedPool([])

    def test_state_round_trip(self, seeds):
        pool = SeedPool(seeds)
        pool.pick(random.Random(0))
        pool.add(seeds[0].clone(), "M1", size=9)
        pool.credit(0, novelty=2)
        restored = SeedPool(seeds)
        restored.set_state(pool.get_state())
        assert [e.stats_row() for e in restored.entries] \
            == [e.stats_row() for e in pool.entries]
        assert restored.seed_count == pool.seed_count

    def test_state_scheduler_mismatch_rejected(self, seeds):
        pool = SeedPool(seeds, scheduler=make_scheduler("uniform"))
        other = SeedPool(seeds,
                         scheduler=make_scheduler("coverage-yield"))
        with pytest.raises(ValueError, match="seed schedule"):
            other.set_state(pool.get_state())


class TestFuzzingIntegration:
    def test_result_records_scheduler_and_stats(self, seeds):
        result = classfuzz(seeds, iterations=30, seed=4,
                           schedule="coverage-yield")
        assert result.scheduler == "coverage-yield"
        assert result.seed_stats
        total_accepted = sum(row["accepted"]
                             for row in result.seed_stats)
        assert total_accepted == len(result.test_classes)
        for row in result.seed_stats:
            assert set(row) == {"label", "origin", "size", "picks",
                                "accepted", "novelty"}

    def test_mutants_carry_parent_lineage(self, seeds):
        result = uniquefuzz(seeds, iterations=30, seed=4)
        labels = {g.label for g in result.gen_classes} \
            | {s.name for s in seeds}
        for generated in result.gen_classes:
            assert generated.parent in labels

    def test_nondefault_schedule_changes_run(self, seeds):
        uniform = classfuzz(seeds, iterations=40, seed=4)
        greedy = classfuzz(seeds, iterations=40, seed=4,
                           schedule=make_scheduler("epsilon-greedy",
                                                   epsilon=0.0))
        assert uniform.scheduler == "uniform"
        assert greedy.scheduler == "epsilon-greedy"
        # Same RNG seed, different pick policy: the runs diverge.
        assert [g.label for g in uniform.gen_classes] \
            != [g.label for g in greedy.gen_classes] \
            or [g.data for g in uniform.gen_classes] \
            != [g.data for g in greedy.gen_classes]

    def test_seed_scheduled_events_emitted(self, seeds):
        telemetry = make_telemetry(ring_capacity=4096)
        ring = telemetry.bus.sinks[0]
        result = uniquefuzz(seeds, iterations=15, seed=2,
                            telemetry=telemetry)
        events = ring.events(SEED_SCHEDULED)
        assert len(events) == 15
        assert all(e.fields["origin"] in (ORIGIN_SEED, ORIGIN_MUTANT)
                   for e in events)
        text = telemetry.render_prometheus()
        assert "repro_seeds_scheduled_total" in text
        assert result.seed_stats
