"""Tests for constant-pool transfer and raw-code remapping."""

import pytest

from repro.bytecode import Assembler, Op, decode_code
from repro.classfile.attributes import CodeAttribute, ExceptionHandler
from repro.classfile.constant_pool import ConstantPool
from repro.jimple.remap import RemapError, remap_code, transfer_constant


class TestTransferConstant:
    def test_utf8(self):
        source, target = ConstantPool(), ConstantPool()
        index = source.utf8("hello")
        new_index = transfer_constant(source, target, index)
        assert target.get_utf8(new_index) == "hello"

    def test_class_ref(self):
        source, target = ConstantPool(), ConstantPool()
        index = source.class_ref("java/lang/Thread")
        new_index = transfer_constant(source, target, index)
        assert target.get_class_name(new_index) == "java/lang/Thread"

    def test_method_ref_recursive(self):
        source, target = ConstantPool(), ConstantPool()
        index = source.method_ref("A", "f", "()V")
        new_index = transfer_constant(source, target, index)
        assert target.get_member_ref(new_index) == ("A", "f", "()V")

    def test_numeric_constants(self):
        source, target = ConstantPool(), ConstantPool()
        for index, expected in ((source.integer(7), 7),
                                (source.long(2 ** 40), 2 ** 40),
                                (source.double(1.5), 1.5)):
            new_index = transfer_constant(source, target, index)
            assert target.entry(new_index).value == expected

    def test_string_constant(self):
        source, target = ConstantPool(), ConstantPool()
        index = source.string("text")
        assert target.get_string(
            transfer_constant(source, target, index)) == "text"

    def test_interning_in_target(self):
        source, target = ConstantPool(), ConstantPool()
        first = source.class_ref("X")
        second = source.class_ref("X")
        assert transfer_constant(source, target, first) == \
            transfer_constant(source, target, second)

    def test_dangling_index(self):
        source, target = ConstantPool(), ConstantPool()
        with pytest.raises(RemapError, match="dangling"):
            transfer_constant(source, target, 42)


class TestRemapCode:
    def test_code_rewritten_to_target_indices(self):
        source = ConstantPool()
        asm = Assembler()
        asm.emit(Op.GETSTATIC, index=source.field_ref(
            "java/lang/System", "out", "Ljava/io/PrintStream;"))
        asm.emit(Op.POP)
        asm.emit(Op.RETURN)
        code = CodeAttribute(1, 1, asm.build())
        target = ConstantPool()
        target.utf8("padding")        # shift indices in the target
        target.utf8("more padding")
        remapped = remap_code(code, source, target)
        (getstatic, _, _) = decode_code(remapped.code)
        assert target.get_member_ref(getstatic.operands["index"]) == (
            "java/lang/System", "out", "Ljava/io/PrintStream;")

    def test_exception_table_catch_types_transfer(self):
        source = ConstantPool()
        asm = Assembler()
        asm.emit(Op.NOP)
        asm.emit(Op.RETURN)
        catch = source.class_ref("java/lang/Exception")
        code = CodeAttribute(1, 1, asm.build(),
                             [ExceptionHandler(0, 1, 1, catch)])
        target = ConstantPool()
        remapped = remap_code(code, source, target)
        assert target.get_class_name(
            remapped.exception_table[0].catch_type) == "java/lang/Exception"

    def test_catch_all_preserved(self):
        source = ConstantPool()
        asm = Assembler()
        asm.emit(Op.NOP)
        asm.emit(Op.RETURN)
        code = CodeAttribute(1, 1, asm.build(),
                             [ExceptionHandler(0, 1, 1, 0)])
        remapped = remap_code(code, source, ConstantPool())
        assert remapped.exception_table[0].catch_type == 0

    def test_undecodable_code_rejected(self):
        code = CodeAttribute(1, 1, b"\xfd")
        with pytest.raises(RemapError, match="undecodable"):
            remap_code(code, ConstantPool(), ConstantPool())

    def test_local_indices_untouched(self):
        source = ConstantPool()
        asm = Assembler()
        asm.emit(Op.ILOAD, index=3)
        asm.emit(Op.POP)
        asm.emit(Op.RETURN)
        code = CodeAttribute(1, 4, asm.build())
        remapped = remap_code(code, source, ConstantPool())
        (iload, _, _) = decode_code(remapped.code)
        assert iload.operands["index"] == 3
