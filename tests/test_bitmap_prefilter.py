"""The bitmap prefilter's contract: decisions byte-identical to exact.

Satellite of the ``--coverage-index`` work: the fixed-width bitmap is a
*prefilter* in front of the exact ``[st]``/``[stbr]``/``[tr]`` criteria
(and greedyfuzz's accumulated-coverage check), so for any fixed
``(seeds, seed, batch)`` the accepted suite — labels, classfile bytes,
manifest — must be identical between ``coverage_index="exact"`` and
``"bitmap"`` on every executor backend, and bitmap-mode ``batch=1`` runs
must still match the pre-pipeline golden serial fixture.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.checkpoint import CRASH_AFTER_ENV, CheckpointError
from repro.core.executor import (
    OutcomeCache,
    ProcessExecutor,
    ThreadExecutor,
)
from repro.core.fuzzing import classfuzz, greedyfuzz, randfuzz, uniquefuzz
from repro.core.storage import save_suite
from repro.coverage.tracefile import Tracefile
from repro.coverage.uniqueness import (
    COVERAGE_INDEXES,
    BitmapPrefilteredCriterion,
    TrUniqueness,
    make_criterion,
)
from repro.corpus import CorpusConfig, generate_corpus
from repro.observe import Telemetry

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_serial_fuzz.json"

#: golden key → runner, as in test_fuzzing_batched (same 60/7 capture).
RUNNERS = {
    "classfuzz[st]": lambda seeds, **kw: classfuzz(
        seeds, iterations=60, criterion="st", seed=7, **kw),
    "classfuzz[stbr]": lambda seeds, **kw: classfuzz(
        seeds, iterations=60, criterion="stbr", seed=7, **kw),
    "classfuzz[tr]": lambda seeds, **kw: classfuzz(
        seeds, iterations=60, criterion="tr", seed=7, **kw),
    "uniquefuzz": lambda seeds, **kw: uniquefuzz(
        seeds, iterations=60, seed=7, **kw),
    "greedyfuzz": lambda seeds, **kw: greedyfuzz(
        seeds, iterations=60, seed=7, **kw),
    "randfuzz": lambda seeds, **kw: randfuzz(
        seeds, iterations=60, seed=7, **kw),
}


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=25, seed=11))


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def fingerprint(result):
    return {
        "gen": [g.label for g in result.gen_classes],
        "tests": [g.label for g in result.test_classes],
        "discards": dict(result.discards),
        "report": [[name, selected, successes, rate]
                   for name, selected, successes, rate
                   in result.mutator_report if selected > 0],
        "digests": [hashlib.sha256(g.data).hexdigest()[:16]
                    for g in result.test_classes],
    }


class TestDecisionsIdenticalToExact:
    """The tentpole invariant, per criterion, over full fuzzing rounds."""

    @pytest.mark.parametrize("key", sorted(RUNNERS))
    def test_serial(self, key, seeds):
        exact = RUNNERS[key](seeds, coverage_index="exact")
        bitmap = RUNNERS[key](seeds, coverage_index="bitmap")
        assert fingerprint(bitmap) == fingerprint(exact)
        assert exact.coverage_index == "exact"
        assert bitmap.coverage_index == "bitmap"

    @pytest.mark.parametrize("key", sorted(RUNNERS))
    def test_bitmap_batch_one_matches_golden(self, key, seeds, golden):
        result = RUNNERS[key](seeds, batch=1, coverage_index="bitmap")
        assert fingerprint(result) == golden[key]

    @pytest.mark.parametrize("key", ["classfuzz[tr]", "greedyfuzz"])
    def test_thread_backend(self, key, seeds):
        exact = RUNNERS[key](seeds, batch=8, coverage_index="exact")
        with ThreadExecutor(jobs=4, cache=OutcomeCache()) as engine:
            bitmap = RUNNERS[key](seeds, batch=8, executor=engine,
                                  coverage_index="bitmap")
        assert fingerprint(bitmap) == fingerprint(exact)

    def test_process_backend(self, seeds):
        exact = RUNNERS["classfuzz[tr]"](seeds, batch=8,
                                         coverage_index="exact")
        try:
            with ProcessExecutor(jobs=2, cache=OutcomeCache()) as engine:
                bitmap = RUNNERS["classfuzz[tr]"](
                    seeds, batch=8, executor=engine,
                    coverage_index="bitmap")
        except (OSError, ValueError, ImportError) as exc:
            pytest.skip(f"process pool unavailable: {exc}")
        assert fingerprint(bitmap) == fingerprint(exact)

    def test_manifests_byte_identical(self, seeds, tmp_path):
        # coverage_index deliberately stays out of the suite manifest.
        exact = RUNNERS["classfuzz[tr]"](seeds, coverage_index="exact")
        bitmap = RUNNERS["classfuzz[tr]"](seeds, coverage_index="bitmap")
        exact_manifest = save_suite(exact, tmp_path / "exact")
        bitmap_manifest = save_suite(bitmap, tmp_path / "bitmap")
        assert exact_manifest.read_bytes() == bitmap_manifest.read_bytes()


class TestPrefilterMechanics:
    def _trace(self, *sites):
        return Tracefile(statements={site: 1 for site in sites},
                         branches={})

    def test_fast_path_accepts_without_exact_index(self):
        criterion = make_criterion("tr", coverage_index="bitmap")
        assert isinstance(criterion, BitmapPrefilteredCriterion)
        trace = self._trace("pf.first")
        assert criterion.check_and_accept(trace)
        # [tr] bitmap mode never touches the wrapped exact index: the
        # accepted trace lives in the slot-set bucket instead.
        assert criterion.exact.is_unique(trace)
        assert criterion._by_slots == \
            {hash(trace.bitmap.slots): [trace]}

    def test_duplicate_rejected_via_slot_bucket(self):
        criterion = make_criterion("tr", coverage_index="bitmap")
        trace = self._trace("pf.dup")
        assert criterion.check_and_accept(trace)
        # A duplicate has no new slot → its slot bucket holds a trace
        # with the same hit sets → reject, without interned views.
        assert not criterion.check_and_accept(self._trace("pf.dup"))
        assert criterion.accepted_count == 1

    def test_slot_collision_still_decided_exactly(self):
        criterion = make_criterion("tr", coverage_index="bitmap")
        first = self._trace("pf.collide.a")
        assert criterion.check_and_accept(first)
        # Force a full slot collision: a different site mapped onto the
        # accepted trace's exact slot set.  "seen" must fall through to
        # the hit-set comparison and still accept.
        from repro.coverage import bitmap as bitmap_module

        target = next(iter(first.bitmap.slots))
        collided = self._trace("pf.collide.b")
        bitmap_module._STMT_SLOTS["pf.collide.b"] = target
        try:
            assert collided.bitmap.slots == first.bitmap.slots
            assert criterion.check_and_accept(collided)
            assert criterion.accepted_count == 2
        finally:
            del bitmap_module._STMT_SLOTS["pf.collide.b"]

    def test_st_and_stbr_bypass_the_prefilter(self):
        for name in ("st", "stbr"):
            criterion = make_criterion(name, coverage_index="bitmap")
            assert not criterion._fast
            trace = self._trace(f"pf.bypass.{name}")
            assert criterion.check_and_accept(trace)
            # Non-fast criteria record straight through to the exact
            # index; the slot-set buckets stay unused.
            assert not criterion._by_slots
            assert not criterion.exact.is_unique(trace)
            assert criterion.accepted_count == 1

    def test_telemetry_counts_outcomes(self):
        telemetry = Telemetry()
        criterion = make_criterion("tr", telemetry=telemetry,
                                   coverage_index="bitmap")
        criterion.check_and_accept(self._trace("pf.tele"))     # new
        criterion.check_and_accept(self._trace("pf.tele"))     # seen
        counter = telemetry.registry.get("repro_bitmap_prefilter_total")
        assert counter.labels(criterion="tr", outcome="new").value == 1
        assert counter.labels(criterion="tr", outcome="seen").value == 1

    def test_telemetry_counts_bypass(self):
        telemetry = Telemetry()
        criterion = make_criterion("st", telemetry=telemetry,
                                   coverage_index="bitmap")
        criterion.check_and_accept(self._trace("pf.tele.bypass"))
        counter = telemetry.registry.get("repro_bitmap_prefilter_total")
        assert counter.labels(criterion="st",
                              outcome="bypass").value == 1

    def test_uniqueness_telemetry_not_double_counted(self):
        telemetry = Telemetry()
        criterion = make_criterion("tr", telemetry=telemetry,
                                   coverage_index="bitmap")
        criterion.check_and_accept(self._trace("pf.single"))
        checks = telemetry.registry.get("repro_uniqueness_checks_total")
        assert checks.labels(criterion="tr",
                             outcome="accepted").value == 1

    def test_wrapper_exposes_exact_name(self):
        criterion = make_criterion("tr", coverage_index="bitmap")
        assert criterion.name == TrUniqueness.name


class TestCoverageIndexValidation:
    def test_registry_contents(self):
        assert COVERAGE_INDEXES == ("exact", "bitmap")

    def test_make_criterion_rejects_unknown_index(self):
        with pytest.raises(ValueError, match="coverage index"):
            make_criterion("tr", coverage_index="hyperloglog")

    @pytest.mark.parametrize("fuzzer", [classfuzz, uniquefuzz,
                                        greedyfuzz, randfuzz])
    def test_fuzzers_reject_unknown_index(self, fuzzer, seeds):
        with pytest.raises(ValueError, match="coverage index"):
            fuzzer(seeds, iterations=1, coverage_index="hyperloglog")

    def test_exact_mode_unwrapped(self):
        assert isinstance(make_criterion("tr", coverage_index="exact"),
                          TrUniqueness)


class TestCheckpointRoundTrip:
    """Bitmap-mode state survives kill → resume bit-identically."""

    def kill_after(self, monkeypatch, count):
        monkeypatch.setenv(CRASH_AFTER_ENV, str(count))

    @pytest.mark.parametrize("fuzzer,kw", [
        (classfuzz, {"criterion": "tr"}),
        (greedyfuzz, {}),
    ])
    def test_resumed_bitmap_run_matches_uninterrupted(
            self, fuzzer, kw, seeds, tmp_path, monkeypatch):
        baseline = fuzzer(seeds, iterations=50, seed=7,
                          coverage_index="bitmap", **kw)
        directory = tmp_path / "ckpt"
        self.kill_after(monkeypatch, 2)
        with pytest.raises(KeyboardInterrupt):
            fuzzer(seeds, iterations=50, seed=7,
                   coverage_index="bitmap", checkpoint_dir=directory,
                   checkpoint_every=10, **kw)
        monkeypatch.delenv(CRASH_AFTER_ENV)
        resumed = fuzzer(seeds, iterations=50, seed=7,
                         coverage_index="bitmap",
                         checkpoint_dir=directory, checkpoint_every=10,
                         resume=True, **kw)
        assert fingerprint(resumed) == fingerprint(baseline)

    def test_index_mismatch_rejected_on_resume(self, seeds, tmp_path,
                                               monkeypatch):
        directory = tmp_path / "ckpt"
        self.kill_after(monkeypatch, 1)
        with pytest.raises(KeyboardInterrupt):
            classfuzz(seeds, iterations=40, seed=7, criterion="tr",
                      coverage_index="bitmap", checkpoint_dir=directory,
                      checkpoint_every=10)
        monkeypatch.delenv(CRASH_AFTER_ENV)
        with pytest.raises(CheckpointError, match="coverage_index"):
            classfuzz(seeds, iterations=40, seed=7, criterion="tr",
                      coverage_index="exact", checkpoint_dir=directory,
                      checkpoint_every=10, resume=True)

    def test_legacy_checkpoint_resumes_as_exact(self, seeds, tmp_path,
                                                monkeypatch):
        # Checkpoints written before coverage_index existed carry no
        # such key; they could only have been exact-mode runs.
        import pickle

        from repro.core.checkpoint import STATE_FILE

        directory = tmp_path / "ckpt"
        self.kill_after(monkeypatch, 1)
        with pytest.raises(KeyboardInterrupt):
            classfuzz(seeds, iterations=40, seed=7, criterion="tr",
                      checkpoint_dir=directory, checkpoint_every=10)
        monkeypatch.delenv(CRASH_AFTER_ENV)
        path = directory / STATE_FILE
        state = pickle.loads(path.read_bytes())
        del state["coverage_index"]
        path.write_bytes(pickle.dumps(state))
        baseline = classfuzz(seeds, iterations=40, seed=7,
                             criterion="tr")
        resumed = classfuzz(seeds, iterations=40, seed=7,
                            criterion="tr", checkpoint_dir=directory,
                            checkpoint_every=10, resume=True)
        assert fingerprint(resumed) == fingerprint(baseline)

    def test_legacy_checkpoint_refused_by_bitmap_run(self, seeds,
                                                     tmp_path,
                                                     monkeypatch):
        import pickle

        from repro.core.checkpoint import STATE_FILE

        directory = tmp_path / "ckpt"
        self.kill_after(monkeypatch, 1)
        with pytest.raises(KeyboardInterrupt):
            classfuzz(seeds, iterations=40, seed=7, criterion="tr",
                      checkpoint_dir=directory, checkpoint_every=10)
        monkeypatch.delenv(CRASH_AFTER_ENV)
        path = directory / STATE_FILE
        state = pickle.loads(path.read_bytes())
        del state["coverage_index"]
        path.write_bytes(pickle.dumps(state))
        with pytest.raises(CheckpointError, match="coverage_index"):
            classfuzz(seeds, iterations=40, seed=7, criterion="tr",
                      coverage_index="bitmap", checkpoint_dir=directory,
                      checkpoint_every=10, resume=True)
