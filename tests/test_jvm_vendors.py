"""Vendor divergence tests: the paper's Problems 1–4 and preliminary-study
examples must reproduce mechanically from policy + environment differences.
"""

import pytest

from repro.classfile.writer import write_class
from repro.jimple import ClassBuilder, MethodBuilder, compile_class
from repro.jimple.statements import InvokeExpr, InvokeStmt, MethodRef
from repro.jimple.types import INT, JType, VOID
from repro.jvm.outcome import Phase
from repro.jvm.vendors import (
    REFERENCE_JVM_NAME,
    all_jvms,
    make_gij,
    make_hotspot7,
    make_hotspot8,
    make_hotspot9,
    make_j9,
    reference_jvm,
)


def run_all(jclass):
    """Run a class on the five vendors; return {name: outcome}."""
    data = write_class(compile_class(jclass))
    return {jvm.name: jvm.run(data) for jvm in all_jvms()}


def codes(outcomes):
    return [outcomes[name].code for name in
            ("hotspot7", "hotspot8", "hotspot9", "j9", "gij")]


class TestVendorSetup:
    def test_five_jvms_in_paper_order(self):
        names = [jvm.name for jvm in all_jvms()]
        assert names == ["hotspot7", "hotspot8", "hotspot9", "j9", "gij"]

    def test_reference_is_hotspot9(self):
        assert reference_jvm().name == REFERENCE_JVM_NAME == "hotspot9"

    def test_version_ceilings(self):
        assert make_hotspot7().policy.max_class_version == 51
        assert make_hotspot8().policy.max_class_version == 52
        assert make_hotspot9().policy.max_class_version == 53
        assert make_gij().policy.max_class_version == 51

    def test_valid_class_agrees_everywhere(self, demo_bytes):
        for jvm in all_jvms():
            outcome = jvm.run(demo_bytes)
            assert outcome.ok, outcome.brief()
            assert outcome.output == ("Completed!",)


class TestProblem1AbstractClinit:
    """Figure 2: ``public abstract <clinit>`` without a Code attribute."""

    def build(self):
        builder = ClassBuilder("M1436188543")
        builder.default_init()
        builder.main_printing("Completed!")
        method = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
        method.abstract_body()
        builder.method(method.build())
        return builder.build()

    def test_hotspot_invokes_j9_rejects(self):
        outcomes = run_all(self.build())
        for name in ("hotspot7", "hotspot8", "hotspot9", "gij"):
            assert outcomes[name].ok, outcomes[name].brief()
        assert outcomes["j9"].phase is Phase.LOADING
        assert outcomes["j9"].error == "ClassFormatError"
        assert "no Code attribute" in outcomes["j9"].message


class TestProblem2Verification:
    def test_string_map_confusion_only_gij(self):
        """M1433982529: parameter retyped String→Map."""
        builder = ClassBuilder("M1433982529")
        builder.default_init()
        builder.main_printing()
        method = MethodBuilder("internalTransform", VOID,
                               [JType("java.lang.String")], ["protected"])
        method.local("r0", JType("java.util.Map"))
        method.identity("r0", "parameter0", JType("java.util.Map"))
        method.stmt(InvokeStmt(InvokeExpr(
            "static",
            MethodRef("java.lang.Boolean", "getBoolean", JType("boolean"),
                      (JType("java.util.Map"),)),
            None, ["r0"])))
        method.ret()
        builder.method(method.build())
        outcomes = run_all(builder.build())
        assert codes(outcomes) == [0, 0, 0, 0, 2]
        assert outcomes["gij"].error == "VerifyError"

    def test_lazy_j9_runs_class_with_broken_helper(self):
        """Problem 2: J9 verifies per-invocation, HotSpot eagerly."""
        builder = ClassBuilder("LazyT")
        builder.default_init()
        builder.main_printing()
        # A never-invoked method whose declared return type contradicts
        # its body (bare return in an int method).
        method = MethodBuilder("broken", INT, [], ["public"])
        method.ret()
        builder.method(method.build())
        outcomes = run_all(builder.build())
        assert outcomes["j9"].ok            # lazy: broken never verified
        assert outcomes["hotspot8"].phase is Phase.LINKING
        assert outcomes["hotspot8"].error == "VerifyError"
        assert outcomes["gij"].phase is Phase.LINKING


class TestProblem3RestrictedAccess:
    def test_thrown_synthetic_class(self):
        """M1437121261: throws PiscesRenderingEngine$2."""
        builder = ClassBuilder("M1437121261")
        builder.default_init()
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["public", "static"])
        method.throws("sun.java2d.pisces.PiscesRenderingEngine$2")
        method.println("ok")
        method.ret()
        builder.method(method.build())
        outcomes = run_all(builder.build())
        assert outcomes["hotspot9"].error == "IllegalAccessError"
        assert outcomes["hotspot9"].phase is Phase.LINKING
        assert outcomes["j9"].ok
        assert outcomes["gij"].ok


class TestProblem4GijLeniency:
    def test_interface_extending_exception(self):
        builder = ClassBuilder("IfaceBad", superclass="java.lang.Exception",
                               modifiers=["public", "interface", "abstract"])
        outcomes = run_all(builder.build())
        for name in ("hotspot7", "hotspot8", "hotspot9", "j9"):
            assert outcomes[name].error == "ClassFormatError", name
        assert outcomes["gij"].error != "ClassFormatError"

    def test_duplicate_fields(self):
        builder = ClassBuilder("DupF")
        builder.default_init()
        builder.main_printing()
        builder.field("MAP", JType("java.util.Map"), ["protected", "final"])
        builder.field("MAP", JType("java.util.Map"), ["protected", "final"])
        outcomes = run_all(builder.build())
        assert outcomes["gij"].ok
        # J9 format-checks at class definition (loading); HotSpot's
        # constraint checking surfaces during linking verification.
        assert outcomes["j9"].phase is Phase.LOADING
        for name in ("hotspot7", "hotspot8", "hotspot9"):
            assert outcomes[name].phase is Phase.LINKING, name
            assert outcomes[name].error == "ClassFormatError"

    def test_static_init_method(self):
        builder = ClassBuilder("StatInit")
        builder.main_printing()
        method = MethodBuilder("<init>", modifiers=["public", "static"])
        method.ret()
        builder.method(method.build())
        outcomes = run_all(builder.build())
        assert outcomes["gij"].ok
        assert outcomes["hotspot8"].error == "ClassFormatError"
        assert outcomes["j9"].error == "ClassFormatError"

    def test_init_returning_thread(self):
        builder = ClassBuilder("RetInit")
        builder.main_printing()
        method = MethodBuilder("<init>", JType("java.lang.Thread"),
                               modifiers=["public"])
        from repro.jimple.statements import Constant, ReturnStmt

        method.stmt(ReturnStmt(Constant(None, JType("java.lang.Thread"))))
        builder.method(method.build())
        outcomes = run_all(builder.build())
        assert outcomes["gij"].ok
        assert not outcomes["hotspot8"].ok
        assert not outcomes["j9"].ok

    def test_interface_with_main(self):
        builder = ClassBuilder("IfaceMain",
                               modifiers=["public", "interface", "abstract"])
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["public", "static"])
        method.println("from interface")
        method.ret()
        builder.method(method.build())
        outcomes = run_all(builder.build())
        assert outcomes["gij"].ok
        assert outcomes["gij"].output == ("from interface",)
        for name in ("hotspot7", "hotspot8", "hotspot9", "j9"):
            assert not outcomes[name].ok, name


class TestPreliminaryStudyExamples:
    def test_extends_enum_editor_final_in_8(self):
        """sun.beans.editors.EnumEditor's superclass went final in JRE 8."""
        builder = ClassBuilder("MyEditor",
                               superclass="com.sun.beans.editors.EnumEditor")
        builder.default_init()
        builder.main_printing()
        outcomes = run_all(builder.build())
        assert outcomes["hotspot7"].ok
        assert outcomes["hotspot8"].error == "VerifyError"
        assert "final" in outcomes["hotspot8"].message
        assert outcomes["j9"].error == "VerifyError"
        assert outcomes["gij"].ok

    def test_extends_jre7_only_class(self):
        builder = ClassBuilder("UsesJre7",
                               superclass="sun.misc.JavaUtilJarAccess")
        builder.default_init()
        builder.main_printing()
        outcomes = run_all(builder.build())
        assert outcomes["hotspot7"].ok
        for name in ("hotspot8", "hotspot9", "j9", "gij"):
            assert outcomes[name].error == "NoClassDefFoundError", name

    def test_circular_superclass(self):
        builder = ClassBuilder("Ouro", superclass="Ouro")
        builder.main_printing()
        outcomes = run_all(builder.build())
        for name, outcome in outcomes.items():
            assert outcome.error == "ClassCircularityError", name

    def test_version_53_only_hotspot9(self):
        builder = ClassBuilder("New53")
        builder.default_init()
        builder.main_printing()
        jclass = builder.build()
        jclass.major_version = 53
        outcomes = run_all(jclass)
        assert outcomes["hotspot9"].ok
        for name in ("hotspot7", "hotspot8", "j9", "gij"):
            assert outcomes[name].error == "UnsupportedClassVersionError", \
                name
            assert outcomes[name].phase is Phase.LOADING
