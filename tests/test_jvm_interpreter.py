"""Unit tests for the bytecode interpreter (invocation & execution)."""

import pytest

from repro.classfile.writer import write_class
from repro.errors import (
    ArithmeticException,
    ArrayIndexOutOfBoundsException,
    NullPointerException,
)
from repro.jimple import ClassBuilder, MethodBuilder, compile_class
from repro.jimple.statements import (
    AssignBinopStmt,
    AssignConstStmt,
    AssignFieldGetStmt,
    AssignFieldPutStmt,
    AssignInvokeStmt,
    AssignNewStmt,
    AssignCastStmt,
    Constant,
    FieldRef,
    GotoStmt,
    IfStmt,
    InvokeExpr,
    InvokeStmt,
    LabelStmt,
    MethodRef,
    ReturnStmt,
    ThrowStmt,
)
from repro.jimple.types import INT, JType, STRING, VOID
from repro.jvm.interpreter import (
    ExecutionBudgetExceeded,
    Interpreter,
    JObject,
    UserThrowable,
    _to_display,
)
from repro.jvm.policy import JvmPolicy
from repro.runtime.environment import build_environment
from repro.classfile.reader import read_class


def interpret(jclass, method_name="main", args=None, **policy_overrides):
    """Compile, reload, and interpret one method; returns the interpreter."""
    data = write_class(compile_class(jclass))
    classfile = read_class(data)
    policy = JvmPolicy(**policy_overrides)
    interp = Interpreter(classfile, policy, build_environment(8))
    method = classfile.find_method(method_name)
    assert method is not None, f"no method {method_name}"
    call_args = args if args is not None else (
        [[]] if method_name == "main" else [])
    interp.invoke_method(method, call_args)
    return interp


def main_builder(name="T"):
    builder = ClassBuilder(name)
    method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                           ["public", "static"])
    return builder, method


class TestBasics:
    def test_println_captured(self, demo_class):
        interp = interpret(demo_class)
        assert interp.output == ["Completed!"]

    def test_arithmetic(self):
        builder, method = main_builder()
        method.local("$a", INT)
        method.const("$a", 6)
        method.stmt(AssignBinopStmt("$a", "$a", "*", Constant(7, INT)))
        method.stmt(InvokeStmt(InvokeExpr(
            "virtual",
            MethodRef("java.io.PrintStream", "println", VOID, (INT,)),
            "$ps", ["$a"])))
        method.local("$ps", JType("java.io.PrintStream"))
        body = method.method.body
        body.insert(0, AssignFieldGetStmt("$ps", FieldRef(
            "java.lang.System", "out", JType("java.io.PrintStream"))))
        method.ret()
        builder.method(method.build())
        interp = interpret(builder.build())
        assert interp.output == ["42"]

    def test_division_by_zero(self):
        builder, method = main_builder()
        method.local("$a", INT)
        method.const("$a", 10)
        method.stmt(AssignBinopStmt("$a", "$a", "/", Constant(0, INT)))
        method.ret()
        builder.method(method.build())
        with pytest.raises(ArithmeticException, match="zero"):
            interpret(builder.build())

    def test_int_overflow_wraps(self):
        builder, method = main_builder()
        method.local("$a", INT)
        method.const("$a", 2147483647)
        method.stmt(AssignBinopStmt("$a", "$a", "+", Constant(1, INT)))
        method.stmt(ReturnStmt())
        builder.method(method.build())
        interpret(builder.build())  # must not raise

    def test_branching_loop(self):
        builder, method = main_builder()
        method.local("$i", INT)
        method.const("$i", 3)
        method.label("top")
        method.stmt(AssignBinopStmt("$i", "$i", "-", Constant(1, INT)))
        method.if_zero("$i", ">", "top")
        method.ret()
        builder.method(method.build())
        interpret(builder.build())

    def test_infinite_loop_hits_budget(self):
        builder, method = main_builder()
        method.label("spin")
        method.goto("spin")
        builder.method(method.build())
        with pytest.raises(ExecutionBudgetExceeded):
            interpret(builder.build(), max_interpreter_steps=500)


class TestObjects:
    def test_new_and_init(self):
        builder, method = main_builder()
        method.local("$m", JType("java.util.HashMap"))
        method.stmt(AssignNewStmt("$m", "java.util.HashMap"))
        method.stmt(InvokeStmt(InvokeExpr(
            "special", MethodRef("java.util.HashMap", "<init>", VOID, ()),
            "$m", [])))
        method.ret()
        builder.method(method.build())
        interpret(builder.build())

    def test_field_get_put_roundtrip(self):
        builder, method = main_builder("FieldT")
        builder.field("counter", INT, ["public", "static"])
        ref = FieldRef("FieldT", "counter", INT)
        method.local("$v", INT)
        method.stmt(AssignFieldPutStmt(ref, Constant(9, INT)))
        method.stmt(AssignFieldGetStmt("$v", ref))
        method.stmt(InvokeStmt(InvokeExpr(
            "virtual",
            MethodRef("java.io.PrintStream", "println", VOID, (INT,)),
            "$ps", ["$v"])))
        method.local("$ps", JType("java.io.PrintStream"))
        method.method.body.insert(0, AssignFieldGetStmt("$ps", FieldRef(
            "java.lang.System", "out", JType("java.io.PrintStream"))))
        method.ret()
        builder.method(method.build())
        interp = interpret(builder.build())
        assert interp.output == ["9"]

    def test_throw_library_exception(self):
        builder, method = main_builder()
        method.local("$e", JType("java.lang.RuntimeException"))
        method.stmt(AssignNewStmt("$e", "java.lang.RuntimeException"))
        method.stmt(InvokeStmt(InvokeExpr(
            "special",
            MethodRef("java.lang.RuntimeException", "<init>", VOID, ()),
            "$e", [])))
        method.stmt(ThrowStmt("$e"))
        builder.method(method.build())
        with pytest.raises(UserThrowable) as info:
            interpret(builder.build())
        assert info.value.java_name == "java.lang.RuntimeException"

    def test_checkcast_failure(self):
        from repro.errors import ClassCastException

        builder, method = main_builder()
        method.local("$o", JType("java.lang.Object"))
        method.local("$t", JType("java.lang.Thread"))
        method.stmt(AssignInvokeStmt("$o", InvokeExpr(
            "static",
            MethodRef("java.lang.Integer", "valueOf",
                      JType("java.lang.Integer"), (INT,)),
            None, [Constant(1, INT)])))
        method.stmt(AssignCastStmt("$t", JType("java.lang.Thread"), "$o"))
        method.ret()
        builder.method(method.build())
        with pytest.raises(ClassCastException):
            interpret(builder.build(), verify_type_assignability=False)

    def test_null_receiver(self):
        builder, method = main_builder()
        method.local("$s", STRING)
        method.stmt(AssignConstStmt("$s", Constant(None, STRING)))
        method.stmt(InvokeStmt(InvokeExpr(
            "virtual", MethodRef("java.lang.String", "length", INT, ()),
            "$s", [])))
        method.ret()
        builder.method(method.build())
        with pytest.raises(NullPointerException):
            interpret(builder.build())


class TestIntrinsics:
    def test_string_intrinsics(self):
        builder, method = main_builder()
        method.local("$s", STRING)
        method.local("$n", INT)
        method.stmt(AssignConstStmt("$s", Constant("abcd", STRING)))
        method.stmt(AssignInvokeStmt("$n", InvokeExpr(
            "virtual", MethodRef("java.lang.String", "length", INT, ()),
            "$s", [])))
        method.stmt(InvokeStmt(InvokeExpr(
            "virtual",
            MethodRef("java.io.PrintStream", "println", VOID, (INT,)),
            "$ps", ["$n"])))
        method.local("$ps", JType("java.io.PrintStream"))
        method.method.body.insert(0, AssignFieldGetStmt("$ps", FieldRef(
            "java.lang.System", "out", JType("java.io.PrintStream"))))
        method.ret()
        builder.method(method.build())
        assert interpret(builder.build()).output == ["4"]

    def test_math_abs(self):
        builder, method = main_builder()
        method.local("$n", INT)
        method.stmt(AssignInvokeStmt("$n", InvokeExpr(
            "static", MethodRef("java.lang.Math", "abs", INT, (INT,)),
            None, [Constant(-5, INT)])))
        method.stmt(ReturnStmt())
        builder.method(method.build())
        interpret(builder.build())

    def test_unknown_library_method_defaults(self):
        # Object.hashCode on a Thread -> declared on Object, default 0.
        builder, method = main_builder()
        method.local("$t", JType("java.lang.Thread"))
        method.local("$h", INT)
        method.stmt(AssignNewStmt("$t", "java.lang.Thread"))
        method.stmt(InvokeStmt(InvokeExpr(
            "special", MethodRef("java.lang.Thread", "<init>", VOID, ()),
            "$t", [])))
        method.stmt(AssignInvokeStmt("$h", InvokeExpr(
            "virtual", MethodRef("java.lang.Thread", "hashCode", INT, ()),
            "$t", [])))
        method.ret()
        builder.method(method.build())
        interpret(builder.build())

    def test_missing_library_method_raises(self):
        from repro.errors import NoSuchMethodError

        builder, method = main_builder()
        method.stmt(InvokeStmt(InvokeExpr(
            "static", MethodRef("java.lang.Math", "nosuch", VOID, ()),
            None, [])))
        method.ret()
        builder.method(method.build())
        with pytest.raises(NoSuchMethodError):
            interpret(builder.build())

    def test_missing_library_class_raises(self):
        from repro.errors import NoClassDefFoundError

        builder, method = main_builder()
        method.stmt(InvokeStmt(InvokeExpr(
            "static", MethodRef("com.example.Missing", "f", VOID, ()),
            None, [])))
        method.ret()
        builder.method(method.build())
        with pytest.raises(NoClassDefFoundError):
            interpret(builder.build())


class TestDisplay:
    def test_to_display_values(self):
        assert _to_display(None) == "null"
        assert _to_display(True) == "true"
        assert _to_display(3) == "3"
        assert _to_display("x") == "x"
        assert "@" in _to_display(JObject("Foo"))
