"""Unit tests for the binary classfile reader and writer."""

import struct

import pytest

from repro.classfile import (
    AccessFlags,
    ClassFile,
    CodeAttribute,
    MethodInfo,
    read_class,
    write_class,
)
from repro.classfile.attributes import (
    ExceptionHandler,
    ExceptionsAttribute,
    RawAttribute,
    SourceFileAttribute,
)
from repro.classfile.fields import FieldInfo
from repro.classfile.model import MAGIC
from repro.classfile.reader import ReaderOptions
from repro.errors import ClassFormatError, UnsupportedClassVersionError


def minimal_class(name="Tiny"):
    classfile = ClassFile()
    pool = classfile.constant_pool
    classfile.this_class = pool.class_ref(name)
    classfile.super_class = pool.class_ref("java/lang/Object")
    classfile.access_flags = AccessFlags.PUBLIC | AccessFlags.SUPER
    return classfile


class TestRoundtrip:
    def test_minimal_class(self):
        data = write_class(minimal_class())
        parsed = read_class(data)
        assert parsed.name == "Tiny"
        assert parsed.super_name == "java/lang/Object"
        assert parsed.major_version == 51

    def test_magic_is_cafebabe(self):
        data = write_class(minimal_class())
        assert struct.unpack(">I", data[:4])[0] == MAGIC

    def test_byte_stable_roundtrip(self, demo_bytes):
        assert write_class(read_class(demo_bytes)) == demo_bytes

    def test_interfaces_roundtrip(self):
        classfile = minimal_class()
        pool = classfile.constant_pool
        classfile.interfaces = [pool.class_ref("java/lang/Runnable"),
                                pool.class_ref("java/io/Serializable")]
        parsed = read_class(write_class(classfile))
        assert parsed.interface_names == ["java/lang/Runnable",
                                          "java/io/Serializable"]

    def test_field_roundtrip(self):
        classfile = minimal_class()
        pool = classfile.constant_pool
        classfile.fields.append(FieldInfo(
            AccessFlags.PRIVATE | AccessFlags.STATIC,
            pool.utf8("count"), pool.utf8("I")))
        parsed = read_class(write_class(classfile))
        field = parsed.fields[0]
        assert parsed.field_name(field) == "count"
        assert parsed.field_descriptor(field) == "I"
        assert field.is_static

    def test_method_with_code_roundtrip(self):
        classfile = minimal_class()
        pool = classfile.constant_pool
        code = CodeAttribute(max_stack=1, max_locals=1, code=b"\xb1")
        classfile.methods.append(MethodInfo(
            AccessFlags.PUBLIC, pool.utf8("run"), pool.utf8("()V"), [code]))
        parsed = read_class(write_class(classfile))
        method = parsed.methods[0]
        assert parsed.method_name(method) == "run"
        assert method.code.code == b"\xb1"
        assert method.code.max_stack == 1

    def test_exception_table_roundtrip(self):
        classfile = minimal_class()
        pool = classfile.constant_pool
        catch = pool.class_ref("java/lang/Exception")
        code = CodeAttribute(1, 1, b"\xb1",
                             [ExceptionHandler(0, 1, 0, catch)])
        classfile.methods.append(MethodInfo(
            AccessFlags.PUBLIC, pool.utf8("run"), pool.utf8("()V"), [code]))
        parsed = read_class(write_class(classfile))
        handler = parsed.methods[0].code.exception_table[0]
        assert (handler.start_pc, handler.end_pc, handler.handler_pc) == \
            (0, 1, 0)
        assert parsed.constant_pool.get_class_name(handler.catch_type) == \
            "java/lang/Exception"

    def test_exceptions_attribute_roundtrip(self):
        classfile = minimal_class()
        pool = classfile.constant_pool
        attr = ExceptionsAttribute([pool.class_ref("java/io/IOException")])
        classfile.methods.append(MethodInfo(
            AccessFlags.PUBLIC | AccessFlags.ABSTRACT,
            pool.utf8("risky"), pool.utf8("()V"), [attr]))
        parsed = read_class(write_class(classfile))
        names = parsed.methods[0].exceptions.exception_names(
            parsed.constant_pool)
        assert names == ["java/io/IOException"]

    def test_raw_attribute_roundtrip(self):
        classfile = minimal_class()
        classfile.attributes.append(RawAttribute(name="Custom",
                                                 data=b"\x01\x02\x03"))
        parsed = read_class(write_class(classfile))
        attr = parsed.attribute("Custom")
        assert isinstance(attr, RawAttribute)
        assert attr.data == b"\x01\x02\x03"

    def test_sourcefile_roundtrip(self):
        classfile = minimal_class()
        index = classfile.constant_pool.utf8("Tiny.java")
        classfile.attributes.append(SourceFileAttribute(index))
        parsed = read_class(write_class(classfile))
        attr = parsed.attribute("SourceFile")
        assert parsed.constant_pool.get_utf8(attr.sourcefile_index) == \
            "Tiny.java"


class TestFormatErrors:
    def test_bad_magic(self):
        data = write_class(minimal_class())
        with pytest.raises(ClassFormatError, match="magic"):
            read_class(b"\x00\x00\x00\x00" + data[4:])

    def test_truncated_file(self):
        data = write_class(minimal_class())
        with pytest.raises(ClassFormatError, match="Truncated"):
            read_class(data[:20])

    def test_empty_input(self):
        with pytest.raises(ClassFormatError):
            read_class(b"")

    def test_version_too_high(self):
        classfile = minimal_class()
        classfile.major_version = 99
        with pytest.raises(UnsupportedClassVersionError):
            read_class(write_class(classfile))

    def test_version_too_low(self):
        classfile = minimal_class()
        classfile.major_version = 40
        with pytest.raises(UnsupportedClassVersionError):
            read_class(write_class(classfile))

    def test_version_limits_configurable(self):
        classfile = minimal_class()
        classfile.major_version = 53
        options = ReaderOptions(max_supported_major=53)
        assert read_class(write_class(classfile),
                          options).major_version == 53

    def test_trailing_bytes_rejected(self):
        data = write_class(minimal_class()) + b"junk"
        with pytest.raises(ClassFormatError, match="Extra bytes"):
            read_class(data)

    def test_trailing_bytes_tolerated_when_lenient(self):
        data = write_class(minimal_class()) + b"junk"
        options = ReaderOptions(reject_trailing_bytes=False)
        assert read_class(data, options).name == "Tiny"

    def test_this_class_zero_rejected(self):
        classfile = minimal_class()
        classfile.this_class = 0
        with pytest.raises(ClassFormatError, match="this_class"):
            read_class(write_class(classfile))

    def test_this_class_wrong_tag(self):
        classfile = minimal_class()
        classfile.this_class = classfile.constant_pool.utf8("oops")
        with pytest.raises(ClassFormatError, match="not a Class"):
            read_class(write_class(classfile))

    def test_super_class_zero_allowed(self):
        # Only java/lang/Object legitimately has super 0; the *format* is
        # parseable — rejection happens at linking.
        classfile = minimal_class()
        classfile.super_class = 0
        parsed = read_class(write_class(classfile))
        assert parsed.super_name is None

    def test_unknown_cp_tag_rejected(self):
        data = bytearray(write_class(minimal_class()))
        # constant_pool_count is at offset 8-9; first tag at offset 10.
        data[10] = 99
        with pytest.raises(ClassFormatError, match="Unknown constant tag"):
            read_class(bytes(data))

    def test_code_with_zero_length_rejected(self):
        classfile = minimal_class()
        pool = classfile.constant_pool
        code = CodeAttribute(0, 0, b"")
        classfile.methods.append(MethodInfo(
            AccessFlags.PUBLIC, pool.utf8("bad"), pool.utf8("()V"), [code]))
        with pytest.raises(ClassFormatError, match="zero-length"):
            read_class(write_class(classfile))

    def test_long_constant_survives_roundtrip(self):
        classfile = minimal_class()
        classfile.constant_pool.long(2 ** 40)
        parsed = read_class(write_class(classfile))
        values = [info.value for _, info in parsed.constant_pool]
        assert 2 ** 40 in values
