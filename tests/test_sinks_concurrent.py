"""Concurrent stress tests for the event-bus sinks (the monitor audit).

The monitor attaches sinks that are hit from two sides at once: fuzzing
threads emitting through the bus, and HTTP handler threads reading
snapshots, draining SSE queues, and registering/unregistering clients.
These tests hammer each sink from many threads and assert no events are
lost, no writes interleave, and readers always see consistent state.

Companion to ``test_interner_concurrent.py`` (same ``_hammer`` harness).
"""

import json
import threading
import time

from repro.observe import (
    EventBus,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    SseSink,
    StatusTracker,
)


def _hammer(threads, worker):
    barrier = threading.Barrier(threads)
    errors = []

    def body(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=body, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors


class TestConcurrentSinks:
    THREADS = 8
    ROUNDS = 200

    def test_jsonl_sink_no_torn_writes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.add_sink(JsonlSink(path))

        def worker(index):
            for round_index in range(self.ROUNDS):
                bus.emit("iteration", thread=index, round=round_index)

        _hammer(self.THREADS, worker)
        bus.close()
        lines = path.read_text().splitlines()
        assert len(lines) == self.THREADS * self.ROUNDS
        seen = set()
        for line in lines:
            record = json.loads(line)  # no interleaved/torn lines
            seen.add((record["thread"], record["round"]))
        assert len(seen) == self.THREADS * self.ROUNDS

    def test_ring_buffer_keeps_newest_under_contention(self):
        bus = EventBus()
        ring = RingBufferSink(capacity=256)
        bus.add_sink(ring)

        def worker(index):
            for round_index in range(self.ROUNDS):
                bus.emit("iteration", thread=index, round=round_index)
                if round_index % 10 == 0:
                    # Concurrent reads must always get a clean snapshot.
                    for event in ring.events():
                        assert event.type == "iteration"

        _hammer(self.THREADS, worker)
        events = ring.events()
        assert len(events) == 256
        # seq is assigned under the bus lock: the survivors are exactly
        # the newest 256 emissions, in order.
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        assert seqs[-1] == self.THREADS * self.ROUNDS
        assert seqs[0] == seqs[-1] - 255

    def test_sse_sink_register_emit_drain_unregister(self):
        bus = EventBus()
        sink = SseSink(client_queue=64)
        bus.add_sink(sink)
        stop = threading.Event()
        received = [0] * self.THREADS

        def worker(index):
            if index % 2 == 0:
                for round_index in range(self.ROUNDS):
                    bus.emit("iteration", thread=index, round=round_index)
            else:
                # Reader threads churn clients while emitters run.
                for _ in range(10):
                    client = sink.register()
                    deadline = time.time() + 0.02
                    while time.time() < deadline:
                        event = client.get(timeout=0.005)
                        if event is not None:
                            assert event.type == "iteration"
                            received[index] += 1
                    sink.unregister(client)

        _hammer(self.THREADS, worker)
        stop.set()
        assert sink.clients() == []  # every churned client cleaned up
        # A client registered after the storm still gets fresh events.
        client = sink.register()
        bus.emit("iteration", thread=-1, round=-1)
        assert client.get(timeout=1).fields["thread"] == -1

    def test_sse_slow_client_drop_accounting_is_exact(self):
        registry = MetricsRegistry()
        sink = SseSink(registry, client_queue=32)
        client = sink.register()
        bus = EventBus()
        bus.add_sink(sink)

        def worker(index):
            for round_index in range(self.ROUNDS):
                bus.emit("iteration", thread=index, round=round_index)

        _hammer(self.THREADS, worker)
        total = self.THREADS * self.ROUNDS
        # Nothing was drained, so pending + dropped must account for
        # every emission — drops under contention never lose count.
        assert client.pending() == 32
        assert client.dropped == total - 32
        family = registry.get("repro_monitor_dropped_events_total")
        assert family.labels(client=client.name).value == total - 32

    def test_status_tracker_snapshot_during_emits(self):
        tracker = StatusTracker(MetricsRegistry())
        tracker.begin_run("stress", config={"threads": self.THREADS})
        bus = EventBus()
        bus.add_sink(tracker)

        def worker(index):
            if index == 0:
                # One thread snapshots continuously while others emit.
                for _ in range(self.ROUNDS):
                    snapshot = tracker.snapshot()
                    progress = snapshot["progress"]
                    assert 0 <= progress["accepted"] \
                        <= progress["iterations"]
                    json.dumps(snapshot, default=str)
            else:
                for round_index in range(self.ROUNDS):
                    bus.emit("iteration", algorithm="stress",
                             index=round_index, generated=True,
                             accepted=round_index % 2 == 0,
                             tests=round_index, pool=round_index)
                    if round_index % 50 == 0:
                        tracker.update(round_marker=round_index)

        _hammer(self.THREADS, worker)
        progress = tracker.snapshot()["progress"]
        assert progress["iterations"] == (self.THREADS - 1) * self.ROUNDS
        assert progress["accepted"] == (self.THREADS - 1) * self.ROUNDS // 2

    def test_bus_fan_out_to_all_monitor_sinks_at_once(self, tmp_path):
        # The full --serve sink stack on one bus, hammered together.
        registry = MetricsRegistry()
        bus = EventBus()
        jsonl = JsonlSink(tmp_path / "events.jsonl")
        ring = RingBufferSink(capacity=128)
        sse = SseSink(registry, client_queue=16)
        tracker = StatusTracker(registry)
        for sink in (jsonl, ring, sse, tracker):
            bus.add_sink(sink)
        sse.register()

        def worker(index):
            for round_index in range(self.ROUNDS):
                bus.emit("iteration", algorithm="stress", index=round_index,
                         generated=True, accepted=False,
                         tests=0, pool=0)

        _hammer(self.THREADS, worker)
        bus.close()
        total = self.THREADS * self.ROUNDS
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) == total
        assert len(ring.events()) == 128
        assert tracker.snapshot()["progress"]["iterations"] == total
