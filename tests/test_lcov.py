"""Tests for LCOV tracefile serialization."""

import pytest

from repro.coverage.lcov import read_lcov, write_lcov
from repro.coverage.tracefile import Tracefile


def trace(statements, branches=()):
    return Tracefile(statements=dict(statements), branches=dict(branches))


class TestLcovRoundtrip:
    def test_statements_roundtrip(self):
        original = trace({"loader.parse": 3, "verifier.method": 1})
        parsed = read_lcov(write_lcov(original))
        assert parsed.statements == original.statements

    def test_branches_roundtrip(self):
        original = trace({}, {("linker.super_is_final", True): 2,
                              ("linker.super_is_final", False): 5})
        parsed = read_lcov(write_lcov(original))
        assert parsed.branches == original.branches

    def test_full_roundtrip_preserves_statistics(self):
        original = trace({"a.x": 1, "a.y": 2, "b.z": 3},
                         {("a.x", True): 1, ("b.z", False): 4})
        parsed = read_lcov(write_lcov(original))
        assert parsed.signature == original.signature
        assert parsed.stmt_set == original.stmt_set
        assert parsed.br_set == original.br_set

    def test_empty_tracefile(self):
        parsed = read_lcov(write_lcov(trace({})))
        assert parsed.stmt == 0 and parsed.br == 0

    def test_test_name_recorded(self):
        text = write_lcov(trace({"a.b": 1}), test_name="M12345")
        assert text.startswith("TN:M12345")

    def test_sources_grouped(self):
        text = write_lcov(trace({"loader.a": 1, "verifier.b": 1}))
        assert "SF:loader" in text
        assert "SF:verifier" in text
        assert text.count("end_of_record") == 2

    def test_real_coverage_roundtrip(self, demo_bytes):
        from repro.coverage.probes import CoverageCollector
        from repro.jvm.vendors import reference_jvm

        collector = CoverageCollector()
        with collector:
            reference_jvm().run(demo_bytes)
        original = collector.tracefile()
        parsed = read_lcov(write_lcov(original, "Demo"))
        assert parsed.statements == original.statements
        assert parsed.branches == original.branches


class TestLcovProperties:
    """Property-style round-trips over randomly generated tracefiles."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_roundtrip(self, seed):
        import random

        rng = random.Random(seed)
        sources = ["loader", "linker", "verifier", "interp"]
        statements = {
            f"{rng.choice(sources)}.s{rng.randrange(40)}":
                rng.randrange(1, 50)
            for _ in range(rng.randrange(1, 30))
        }
        branches = {
            (f"{rng.choice(sources)}.b{rng.randrange(40)}",
             rng.random() < 0.5): rng.randrange(0, 50)
            for _ in range(rng.randrange(0, 20))
        }
        original = trace(statements, branches)
        parsed = read_lcov(write_lcov(original))
        assert parsed.statements == original.statements
        assert parsed.branches == original.branches

    def test_branch_only_sites_roundtrip(self):
        # A site can appear in branches without ever being a statement;
        # the old reader mis-attributed such BRDA records via the
        # statement-site fallback.
        original = trace({"x.stmt": 1},
                         {("x.branch_only", True): 3,
                          ("x.branch_only", False): 0})
        parsed = read_lcov(write_lcov(original))
        assert parsed.branches == original.branches
        assert "x.branch_only" not in parsed.statements

    def test_zero_count_branches_roundtrip(self):
        original = trace({}, {("a.b", True): 0, ("a.b", False): 0})
        parsed = read_lcov(write_lcov(original))
        assert parsed.branches == original.branches


class TestLcovCollisions:
    # zlib.crc32("x.ayh") % 1_000_000 == zlib.crc32("x.cdy") % 1_000_000:
    # both sites prefer line 809693 in source "x".
    COLLIDING = ("x.ayh", "x.cdy")

    def test_pair_actually_collides(self):
        import zlib

        first, second = self.COLLIDING
        assert zlib.crc32(first.encode()) % 1_000_000 == \
            zlib.crc32(second.encode()) % 1_000_000

    def test_colliding_statements_roundtrip(self):
        first, second = self.COLLIDING
        original = trace({first: 3, second: 7})
        parsed = read_lcov(write_lcov(original))
        assert parsed.statements == original.statements

    def test_colliding_sites_get_distinct_lines(self):
        from repro.coverage.lcov import _assign_lines

        lines = _assign_lines(self.COLLIDING)
        assert lines[self.COLLIDING[0]] != lines[self.COLLIDING[1]]

    def test_colliding_branches_roundtrip(self):
        first, second = self.COLLIDING
        original = trace({}, {(first, True): 1, (second, False): 2})
        parsed = read_lcov(write_lcov(original))
        assert parsed.branches == original.branches

    def test_statement_branch_collision_roundtrip(self):
        # One colliding site is a statement, the other only a branch.
        first, second = self.COLLIDING
        original = trace({first: 4}, {(second, True): 2})
        parsed = read_lcov(write_lcov(original))
        assert parsed.statements == original.statements
        assert parsed.branches == original.branches


class TestLcovErrors:
    def test_unknown_record_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            read_lcov("SF:x\nWEIRD:1\nend_of_record")

    def test_da_without_site_rejected(self):
        with pytest.raises(ValueError, match="without #SITE"):
            read_lcov("SF:x\nDA:5,1\nend_of_record")

    def test_malformed_brda_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            read_lcov("SF:x\nBRDA:1,2\nend_of_record")

    def test_brda_without_bsite_rejected(self):
        # A BRDA on a line that only a #SITE claims must not fall back to
        # the statement site.
        with pytest.raises(ValueError, match="without #BSITE"):
            read_lcov("SF:x\n#SITE:5,x.stmt\nDA:5,1\nBRDA:5,0,1,2\n"
                      "end_of_record")

    def test_conflicting_sites_rejected(self):
        with pytest.raises(ValueError, match="conflicting #SITE"):
            read_lcov("SF:x\n#SITE:5,x.one\nDA:5,1\n#SITE:5,x.two\n"
                      "DA:5,1\nend_of_record")

    def test_conflicting_branch_sites_rejected(self):
        with pytest.raises(ValueError, match="conflicting #BSITE"):
            read_lcov("SF:x\n#BSITE:5,x.one\nBRDA:5,0,1,1\n"
                      "#BSITE:5,x.two\nBRDA:5,0,0,1\nend_of_record")

    def test_repeated_identical_site_comment_ok(self):
        parsed = read_lcov("SF:x\n#SITE:5,x.a\nDA:5,1\n#SITE:5,x.a\n"
                           "DA:5,2\nend_of_record")
        assert parsed.statements == {"x.a": 3}

    def test_foreign_records_tolerated(self):
        parsed = read_lcov("TN:\nSF:x\nFN:1,main\nLH:0\nLF:0\n"
                           "end_of_record")
        assert parsed.stmt == 0
