"""Tests for LCOV tracefile serialization."""

import pytest

from repro.coverage.lcov import read_lcov, write_lcov
from repro.coverage.tracefile import Tracefile


def trace(statements, branches=()):
    return Tracefile(statements=dict(statements), branches=dict(branches))


class TestLcovRoundtrip:
    def test_statements_roundtrip(self):
        original = trace({"loader.parse": 3, "verifier.method": 1})
        parsed = read_lcov(write_lcov(original))
        assert parsed.statements == original.statements

    def test_branches_roundtrip(self):
        original = trace({}, {("linker.super_is_final", True): 2,
                              ("linker.super_is_final", False): 5})
        parsed = read_lcov(write_lcov(original))
        assert parsed.branches == original.branches

    def test_full_roundtrip_preserves_statistics(self):
        original = trace({"a.x": 1, "a.y": 2, "b.z": 3},
                         {("a.x", True): 1, ("b.z", False): 4})
        parsed = read_lcov(write_lcov(original))
        assert parsed.signature == original.signature
        assert parsed.stmt_set == original.stmt_set
        assert parsed.br_set == original.br_set

    def test_empty_tracefile(self):
        parsed = read_lcov(write_lcov(trace({})))
        assert parsed.stmt == 0 and parsed.br == 0

    def test_test_name_recorded(self):
        text = write_lcov(trace({"a.b": 1}), test_name="M12345")
        assert text.startswith("TN:M12345")

    def test_sources_grouped(self):
        text = write_lcov(trace({"loader.a": 1, "verifier.b": 1}))
        assert "SF:loader" in text
        assert "SF:verifier" in text
        assert text.count("end_of_record") == 2

    def test_real_coverage_roundtrip(self, demo_bytes):
        from repro.coverage.probes import CoverageCollector
        from repro.jvm.vendors import reference_jvm

        collector = CoverageCollector()
        with collector:
            reference_jvm().run(demo_bytes)
        original = collector.tracefile()
        parsed = read_lcov(write_lcov(original, "Demo"))
        assert parsed.statements == original.statements
        assert parsed.branches == original.branches


class TestLcovErrors:
    def test_unknown_record_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            read_lcov("SF:x\nWEIRD:1\nend_of_record")

    def test_da_without_site_rejected(self):
        with pytest.raises(ValueError, match="without #SITE"):
            read_lcov("SF:x\nDA:5,1\nend_of_record")

    def test_malformed_brda_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            read_lcov("SF:x\nBRDA:1,2\nend_of_record")

    def test_foreign_records_tolerated(self):
        parsed = read_lcov("TN:\nSF:x\nFN:1,main\nLH:0\nLF:0\n"
                           "end_of_record")
        assert parsed.stmt == 0
