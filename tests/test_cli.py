"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def seeds_dir(tmp_path):
    out = tmp_path / "seeds"
    code = main(["corpus", "--count", "6", "--out", str(out)])
    assert code == 0
    return out


class TestCorpusCommand:
    def test_writes_class_files(self, seeds_dir, capsys):
        files = list(seeds_dir.glob("*.class"))
        assert len(files) == 6
        assert files[0].read_bytes()[:4] == b"\xca\xfe\xba\xbe"

    def test_deterministic(self, tmp_path):
        first = tmp_path / "a"
        second = tmp_path / "b"
        main(["corpus", "--count", "3", "--out", str(first)])
        main(["corpus", "--count", "3", "--out", str(second)])
        for path in first.glob("*.class"):
            assert path.read_bytes() == (second / path.name).read_bytes()


class TestInspectCommand:
    def test_inspect_output(self, seeds_dir, capsys):
        target = sorted(seeds_dir.glob("*.class"))[0]
        assert main(["inspect", str(target)]) == 0
        output = capsys.readouterr().out
        assert "major version: 51" in output
        assert "Constant pool:" in output

    def test_no_pool_flag(self, seeds_dir, capsys):
        target = sorted(seeds_dir.glob("*.class"))[0]
        main(["inspect", str(target), "--no-pool"])
        assert "Constant pool:" not in capsys.readouterr().out


class TestRunCommand:
    def test_run_all_jvms(self, seeds_dir, capsys):
        target = sorted(seeds_dir.glob("*.class"))[0]
        main(["run", str(target)])
        output = capsys.readouterr().out
        for name in ("hotspot7", "hotspot8", "hotspot9", "j9", "gij"):
            assert name in output

    def test_run_single_jvm(self, seeds_dir, capsys):
        target = sorted(seeds_dir.glob("*.class"))[0]
        main(["run", str(target), "--jvm", "gij"])
        output = capsys.readouterr().out
        assert "gij" in output and "hotspot7" not in output


class TestFuzzCommand:
    def test_fuzz_writes_suite(self, tmp_path, capsys):
        out = tmp_path / "mutants"
        code = main(["fuzz", "--iterations", "40", "--seed-count", "20",
                     "--out", str(out)])
        assert code == 0
        assert list((out / "tests").glob("*.class"))
        assert list((out / "tests").glob("*.info"))   # LCOV traces
        assert (out / "manifest.json").exists()
        assert "accepted" in capsys.readouterr().out

    def test_fuzz_suite_difftests(self, tmp_path, capsys):
        out = tmp_path / "mutants"
        main(["fuzz", "--iterations", "40", "--seed-count", "20",
              "--out", str(out)])
        capsys.readouterr()
        main(["difftest", str(out / "tests")])
        assert "discrepancies" in capsys.readouterr().out

    def test_randfuzz_algorithm(self, capsys):
        code = main(["fuzz", "--algorithm", "randfuzz", "--iterations",
                     "20", "--seed-count", "10"])
        assert code == 0
        assert "randfuzz" in capsys.readouterr().out


class TestDifftestCommand:
    def test_difftest_directory(self, seeds_dir, capsys):
        main(["difftest", str(seeds_dir)])
        output = capsys.readouterr().out
        assert "discrepancies" in output

    def test_difftest_empty(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["difftest", str(empty)]) == 2


class TestReduceCommand:
    def test_reduce_discrepant_classfile(self, tmp_path, capsys):
        from repro.jimple import ClassBuilder, MethodBuilder
        from repro.jimple.to_classfile import compile_class_bytes

        builder = ClassBuilder("Fig2")
        builder.default_init()
        builder.main_printing()
        clinit = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
        clinit.abstract_body()
        builder.method(clinit.build())
        path = tmp_path / "Fig2.class"
        path.write_bytes(compile_class_bytes(builder.build()))
        assert main(["reduce", str(path)]) == 0
        output = capsys.readouterr().out
        assert "JVM discrepancy report" in output
        assert "classification:" in output

    def test_reduce_clean_classfile_fails(self, tmp_path, capsys):
        from repro.jimple import ClassBuilder
        from repro.jimple.to_classfile import compile_class_bytes

        builder = ClassBuilder("Clean")
        builder.default_init()
        builder.main_printing()
        path = tmp_path / "Clean.class"
        path.write_bytes(compile_class_bytes(builder.build()))
        assert main(["reduce", str(path)]) == 2
