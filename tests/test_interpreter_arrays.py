"""Interpreter array semantics and stack-shuffle opcodes (raw bytecode)."""

import pytest

from repro.bytecode import Assembler, Op
from repro.classfile.access_flags import AccessFlags
from repro.classfile.attributes import CodeAttribute
from repro.classfile.methods import MethodInfo
from repro.classfile.model import ClassFile
from repro.errors import (
    ArrayIndexOutOfBoundsException,
    NegativeArraySizeException,
    NullPointerException,
)
from repro.jvm.interpreter import Interpreter
from repro.jvm.policy import JvmPolicy
from repro.runtime.environment import build_environment


def run_raw(code_builder, max_stack=6, max_locals=6):
    """Assemble and interpret a static ()I method; returns its result."""
    classfile = ClassFile()
    pool = classfile.constant_pool
    classfile.this_class = pool.class_ref("ArrT")
    classfile.super_class = pool.class_ref("java/lang/Object")
    classfile.access_flags = AccessFlags.PUBLIC | AccessFlags.SUPER
    asm = Assembler()
    code_builder(asm, pool)
    code = CodeAttribute(max_stack, max_locals, asm.build())
    method = MethodInfo(AccessFlags.PUBLIC | AccessFlags.STATIC,
                        pool.utf8("m"), pool.utf8("()I"), [code])
    classfile.methods.append(method)
    interpreter = Interpreter(classfile, JvmPolicy(), build_environment(8))
    return interpreter.invoke_method(method, [])


class TestArrays:
    def test_newarray_store_load(self):
        def body(asm, pool):
            asm.emit(Op.ICONST_3)
            asm.emit(Op.NEWARRAY, value=10)   # int[3]
            asm.emit(Op.DUP)
            asm.emit(Op.ICONST_1)
            asm.emit(Op.BIPUSH, value=42)
            asm.emit(Op.IASTORE)
            asm.emit(Op.ICONST_1)
            asm.emit(Op.IALOAD)
            asm.emit(Op.IRETURN)
        assert run_raw(body) == 42

    def test_arraylength(self):
        def body(asm, pool):
            asm.emit(Op.ICONST_5)
            asm.emit(Op.ANEWARRAY, index=pool.class_ref("java/lang/Object"))
            asm.emit(Op.ARRAYLENGTH)
            asm.emit(Op.IRETURN)
        assert run_raw(body) == 5

    def test_negative_size(self):
        def body(asm, pool):
            asm.emit(Op.ICONST_M1)
            asm.emit(Op.NEWARRAY, value=10)
            asm.emit(Op.POP)
            asm.emit(Op.ICONST_0)
            asm.emit(Op.IRETURN)
        with pytest.raises(NegativeArraySizeException):
            run_raw(body)

    def test_out_of_bounds(self):
        def body(asm, pool):
            asm.emit(Op.ICONST_2)
            asm.emit(Op.NEWARRAY, value=10)
            asm.emit(Op.ICONST_5)
            asm.emit(Op.IALOAD)
            asm.emit(Op.IRETURN)
        with pytest.raises(ArrayIndexOutOfBoundsException):
            run_raw(body)

    def test_null_array_access(self):
        def body(asm, pool):
            asm.emit(Op.ACONST_NULL)
            asm.emit(Op.ICONST_0)
            asm.emit(Op.IALOAD)
            asm.emit(Op.IRETURN)
        with pytest.raises(NullPointerException):
            run_raw(body)

    def test_aastore_aaload(self):
        def body(asm, pool):
            asm.emit(Op.ICONST_1)
            asm.emit(Op.ANEWARRAY, index=pool.class_ref("java/lang/String"))
            asm.emit(Op.DUP)
            asm.emit(Op.ICONST_0)
            asm.emit(Op.LDC_W, index=pool.string("x"))
            asm.emit(Op.AASTORE)
            asm.emit(Op.ICONST_0)
            asm.emit(Op.AALOAD)
            asm.emit(Op.POP)
            asm.emit(Op.BIPUSH, value=7)
            asm.emit(Op.IRETURN)
        assert run_raw(body) == 7


class TestStackShuffles:
    def test_dup_x1(self):
        # a b -> b a b : compute (2 dup_x1 over 1) pattern
        def body(asm, pool):
            asm.emit(Op.ICONST_1)
            asm.emit(Op.ICONST_2)
            asm.emit(Op.DUP_X1)      # 2 1 2
            asm.emit(Op.POP)         # 2 1
            asm.emit(Op.ISUB)        # 2-1... wait: stack [2,1]: 2-1=1
            asm.emit(Op.IRETURN)
        assert run_raw(body) == 1

    def test_swap(self):
        def body(asm, pool):
            asm.emit(Op.ICONST_5)
            asm.emit(Op.ICONST_3)
            asm.emit(Op.SWAP)        # 3 5
            asm.emit(Op.ISUB)        # 3-5 = -2
            asm.emit(Op.IRETURN)
        assert run_raw(body) == -2

    def test_dup2_on_two_ints(self):
        def body(asm, pool):
            asm.emit(Op.ICONST_1)
            asm.emit(Op.ICONST_2)
            asm.emit(Op.DUP2)        # 1 2 1 2
            asm.emit(Op.IADD)        # 1 2 3
            asm.emit(Op.IADD)        # 1 5
            asm.emit(Op.IADD)        # 6
            asm.emit(Op.IRETURN)
        assert run_raw(body) == 6

    def test_iinc_and_tableswitch(self):
        def body(asm, pool):
            asm.emit(Op.ICONST_1)
            asm.emit(Op.ISTORE, index=0)
            asm.emit(Op.IINC, index=0, const=2)
            asm.emit(Op.ILOAD, index=0)
            asm.switch(Op.TABLESWITCH, "dflt", low=3, high=4,
                       targets=["three", "four"])
            asm.label("three")
            asm.emit(Op.BIPUSH, value=33)
            asm.emit(Op.IRETURN)
            asm.label("four")
            asm.emit(Op.BIPUSH, value=44)
            asm.emit(Op.IRETURN)
            asm.label("dflt")
            asm.emit(Op.ICONST_0)
            asm.emit(Op.IRETURN)
        assert run_raw(body) == 33
