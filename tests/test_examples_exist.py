"""The examples advertised in the README exist and are importable."""

import ast
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

_SCRIPTS = sorted(EXAMPLES.glob("*.py"))


def test_at_least_five_examples():
    assert len(_SCRIPTS) >= 5


@pytest.mark.parametrize("script", _SCRIPTS, ids=lambda p: p.name)
def test_example_parses_and_has_main(script):
    tree = ast.parse(script.read_text())
    assert ast.get_docstring(tree), f"{script.name} lacks a docstring"
    functions = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
    assert "main" in functions, f"{script.name} lacks a main()"


@pytest.mark.parametrize("script", _SCRIPTS, ids=lambda p: p.name)
def test_example_only_imports_public_package(script):
    tree = ast.parse(script.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                assert alias.name.split(".")[0] in ("repro", "sys"), \
                    alias.name
        elif isinstance(node, ast.ImportFrom):
            assert (node.module or "").split(".")[0] in ("repro",
                                                         "pathlib"), \
                node.module


def test_readme_references_every_example():
    readme = (EXAMPLES.parent / "README.md").read_text()
    for script in _SCRIPTS:
        assert script.name in readme, script.name
