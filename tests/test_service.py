"""Tests for the orchestration service: queue, daemon, HTTP API, E2E."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.campaign import (
    PAPER_BUDGET_SECONDS,
    iterations_for_budget,
    run_algorithm,
)
from repro.core.storage import save_suite
from repro.corpus import CorpusConfig, generate_corpus
from repro.observe.summary import (
    CORE_METRIC_FAMILIES,
    check_prometheus,
    summarize_job,
)
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.daemon import ServiceDaemon, worker_environment
from repro.service.jobs import (
    JobError,
    JobStore,
    new_job_id,
    shard_spec,
    validate_spec,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestSpecValidation:
    def test_defaults_fill_in(self):
        spec = validate_spec({"type": "fuzz"})
        assert spec["algorithm"] == "classfuzz[stbr]"
        assert spec["iterations"] == 500
        assert spec["seed_count"] == 200
        assert spec["coverage_index"] == "exact"

    def test_bare_classfuzz_takes_criterion(self):
        spec = validate_spec({"type": "fuzz", "algorithm": "classfuzz",
                              "criterion": "tr"})
        assert spec["algorithm"] == "classfuzz[tr]"

    def test_campaign_budget_scale_matches_cli(self):
        spec = validate_spec({"type": "campaign", "budget_scale": 0.5})
        assert spec["budget_seconds"] == PAPER_BUDGET_SECONDS * 0.5

    @pytest.mark.parametrize("bad", [
        {"type": "warp"},
        {"type": "fuzz", "algorithm": "quantumfuzz"},
        {"type": "fuzz", "iterations": 0},
        {"type": "fuzz", "iterations": "many"},
        {"type": "campaign", "algorithms": []},
        {"type": "campaign", "budget_scale": -1},
        {"type": "difftest"},
        {"type": "difftest", "paths": []},
        "not-a-dict",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(JobError):
            validate_spec(bad)

    def test_campaign_shards_one_leg_per_algorithm(self):
        spec = validate_spec({
            "type": "campaign", "budget_scale": 0.1, "seed": 3,
            "algorithms": ["classfuzz[tr]", "randfuzz"]})
        legs = shard_spec(spec)
        assert [leg["label"] for leg in legs] == ["classfuzz-tr",
                                                 "randfuzz"]
        assert all(leg["state"] == "queued" for leg in legs)
        assert legs[0]["rng_seed"] == 3
        assert legs[0]["iterations"] == iterations_for_budget(
            "classfuzz[tr]", spec["budget_seconds"])


class TestJobStore:
    def test_submit_persists_and_roundtrips(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit({"type": "fuzz", "algorithm": "randfuzz",
                            "iterations": 5})
        loaded = store.load(job.id)
        assert loaded.to_record() == job.to_record()
        assert (store.leg_dir(job.id, "randfuzz")).is_dir()
        # a fresh store over the same root sees the same queue
        assert JobStore(tmp_path).list_ids() == [job.id]

    def test_malformed_job_ids_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        for bad in ("../escape", "nope", "", "A" * 30):
            with pytest.raises(JobError):
                store.job_dir(bad)

    def test_load_missing_and_corrupt(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobError):
            store.load(new_job_id())
        job = store.submit({"type": "fuzz"})
        (store.job_dir(job.id) / "job.json").write_text("{torn",
                                                        encoding="utf-8")
        with pytest.raises(JobError):
            store.load(job.id)
        assert store.list_jobs() == []  # corrupt records are skipped

    def test_recover_requeues_running(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit({"type": "fuzz"})

        def _fake_running(record):
            record.state = "running"
            record.legs[0]["state"] = "running"
            record.started = record.created
        store.update(job.id, _fake_running)
        assert store.recover() == [job.id]
        recovered = store.load(job.id)
        assert recovered.state == "queued"
        assert recovered.legs[0]["state"] == "queued"
        assert recovered.started is not None  # first-start survives

    def test_cancel_queued_without_scheduler(self, tmp_path):
        daemon = ServiceDaemon(tmp_path)  # never started: stays queued
        job = daemon.submit({"type": "fuzz"})
        cancelled = daemon.cancel(job.id)
        assert cancelled.state == "cancelled"
        assert all(leg["state"] == "cancelled" for leg in cancelled.legs)
        # cancelling a terminal job is a no-op
        assert daemon.cancel(job.id).state == "cancelled"


class TestWorkerEnvironment:
    def test_repro_importable_and_crash_hook_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_AFTER_CHECKPOINTS", "3")
        env = worker_environment()
        assert "REPRO_CRASH_AFTER_CHECKPOINTS" not in env
        assert SRC in env["PYTHONPATH"].split(os.pathsep)


class TestSummarizeJob:
    def test_renders_timings_and_legs(self):
        record = {"id": "deadbeef-0123456789ab", "state": "done",
                  "spec": {"type": "campaign"},
                  "created": 100.0, "started": 102.5, "finished": 110.0,
                  "legs": [{"label": "randfuzz", "state": "done",
                            "attempts": 1, "started": 102.5,
                            "finished": 110.0}]}
        text = summarize_job(record)
        assert "queued   -> started : 2.5s" in text
        assert "started  -> finished: 7.5s" in text
        assert "submitted-> finished: 10.0s" in text
        assert "randfuzz" in text

    def test_tolerates_missing_fields(self):
        text = summarize_job({"id": "x", "state": "queued"})
        assert "-" in text


class TestStatusTrackerJobSection:
    def test_set_job_surfaces_in_snapshot(self):
        from repro.observe.status import StatusTracker

        tracker = StatusTracker()
        assert tracker.snapshot()["job"] == {}
        tracker.set_job(id="j1", leg=2, legs=6, queue_depth=3)
        assert tracker.snapshot()["job"] == {
            "id": "j1", "leg": 2, "legs": 6, "queue_depth": 3}


@pytest.fixture
def daemon(tmp_path):
    instance = ServiceDaemon(tmp_path / "state", port=0,
                             poll_interval=0.05).start()
    yield instance
    instance.stop()


class TestHttpApi:
    def test_fuzz_job_end_to_end(self, daemon, tmp_path):
        client = ServiceClient(daemon.url)
        assert client.healthz()["ok"] is True
        record = client.submit({"type": "fuzz", "algorithm": "randfuzz",
                                "iterations": 25, "seed": 3,
                                "seed_count": 10})
        document = client.wait(record["id"], timeout=90)
        job = document["job"]
        assert job["state"] == "done"
        assert [leg["state"] for leg in job["legs"]] == ["done"]
        assert job["legs"][0]["exit_code"] == 0
        assert document["timings"]["queued_seconds"] >= 0
        assert document["timings"]["running_seconds"] >= 0
        # the worker's StatusTracker snapshot carries the job section
        leg_status = document["leg_status"]
        assert leg_status["job"]["id"] == record["id"]
        assert leg_status["job"]["legs"] == 1
        # queue overview schema
        overview = client.jobs()
        assert overview["service"]["queue_depth"] == 0
        assert overview["jobs"][0]["id"] == record["id"]
        assert overview["jobs"][0]["legs_done"] == 1
        # artifacts: listing, manifest, metrics pass `observe check`
        listing = json.loads(client.artifact(record["id"],
                                             "legs/randfuzz/"))
        assert "suite/" in listing["entries"]
        manifest = json.loads(client.artifact(
            record["id"], "legs/randfuzz/suite/manifest.json"))
        assert manifest["algorithm"] == "randfuzz"
        metrics = client.artifact(record["id"],
                                  "legs/randfuzz/metrics.prom")
        assert check_prometheus(metrics.decode("utf-8"),
                                ("repro_iterations_total",)) == []
        # and the suite is the exact foreground-run suite
        seeds = generate_corpus(CorpusConfig(count=10, seed=3))
        expected = save_suite(run_algorithm("randfuzz", seeds, 25, 3),
                              tmp_path / "expected")
        assert expected.read_bytes() == client.artifact(
            record["id"], "legs/randfuzz/suite/manifest.json")

    def test_api_error_paths(self, daemon):
        client = ServiceClient(daemon.url)
        with pytest.raises(ServiceClientError, match="400"):
            client.submit({"type": "warp"})
        with pytest.raises(ServiceClientError, match="404"):
            client.job(new_job_id())
        with pytest.raises(ServiceClientError, match="404"):
            client.cancel(new_job_id())
        record = client.submit({"type": "fuzz", "algorithm": "randfuzz",
                                "iterations": 5, "seed_count": 5})
        client.wait(record["id"], timeout=60)
        with pytest.raises(ServiceClientError, match="403"):
            client.artifact(record["id"], "../../../etc/passwd")

    def test_dashboard_served(self, daemon):
        import urllib.request

        with urllib.request.urlopen(daemon.url + "/") as response:
            page = response.read().decode("utf-8")
        assert "repro service queue" in page

    def test_worker_crash_retries_and_resumes(self, daemon):
        client = ServiceClient(daemon.url)
        record = client.submit({
            "type": "fuzz", "algorithm": "classfuzz[tr]",
            "iterations": 60, "seed": 7, "seed_count": 10,
            "checkpoint_every": 10, "crash_after_checkpoints": 1})
        document = client.wait(record["id"], timeout=120)
        job = document["job"]
        assert job["state"] == "done"
        leg = job["legs"][0]
        assert leg["attempts"] == 1  # first attempt died, retry finished
        # the resumed run equals the uninterrupted foreground run
        seeds = generate_corpus(CorpusConfig(count=10, seed=7))
        result = run_algorithm("classfuzz[tr]", seeds, 60, 7)
        manifest = json.loads(client.artifact(
            record["id"], "legs/classfuzz-tr/suite/manifest.json"))
        assert [c["label"] for c in manifest["classes"]
                if c["bucket"] == "tests"] == \
            [t.label for t in result.test_classes]


class TestDaemonCrashRestart:
    """The acceptance E2E: HTTP submit -> kill daemon mid-leg ->
    restart -> job completes byte-identical to the foreground CLI."""

    def test_campaign_survives_daemon_kill(self, tmp_path):
        scale = 0.4  # ~790 iterations/leg: long enough to kill mid-leg
        algorithms = ["classfuzz[tr]", "greedyfuzz"]
        foreground = tmp_path / "foreground"
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "campaign",
             "--budget-scale", str(scale), "--seed", "5",
             "--seed-count", "16", "--algorithms", *algorithms,
             "--suites-out", str(foreground)],
            env=dict(os.environ, PYTHONPATH=SRC),
            capture_output=True, timeout=300)
        assert cli.returncode == 0, cli.stderr.decode()

        state = tmp_path / "state"
        daemon = ServiceDaemon(state, port=0, poll_interval=0.05).start()
        client = ServiceClient(daemon.url)
        record = client.submit({
            "type": "campaign", "budget_scale": scale, "seed": 5,
            "seed_count": 16, "algorithms": algorithms,
            "checkpoint_every": 25})
        job_id = record["id"]
        # wait for a leg to be genuinely mid-flight (its worker has
        # already written a checkpoint), then crash the daemon
        deadline = time.time() + 60
        while time.time() < deadline:
            job = daemon.store.load(job_id)
            running = [leg["label"] for leg in job.legs
                       if leg["state"] == "running"]
            if running and (daemon.store.leg_dir(job_id, running[0])
                            / "checkpoint" / "checkpoint.json").exists():
                break
            time.sleep(0.01)
        else:
            pytest.fail("no leg reached mid-flight before the deadline")
        daemon.kill()
        assert daemon.store.load(job_id).state == "running"  # as it died

        restarted = ServiceDaemon(state, port=0,
                                  poll_interval=0.05).start()
        try:
            document = ServiceClient(restarted.url).wait(job_id,
                                                         timeout=240)
        finally:
            restarted.stop()
        assert document["job"]["state"] == "done"
        for leg in ("classfuzz-tr", "greedyfuzz"):
            expected = (foreground / leg / "manifest.json").read_bytes()
            actual = (state / "jobs" / job_id / "legs" / leg
                      / "suite" / "manifest.json").read_bytes()
            assert actual == expected, f"leg {leg} manifest diverged"


class TestGracefulDaemonStop:
    def test_stop_mid_leg_requeues_resumably(self, tmp_path):
        state = tmp_path / "state"
        daemon = ServiceDaemon(state, port=0, poll_interval=0.05).start()
        client = ServiceClient(daemon.url)
        record = client.submit({
            "type": "fuzz", "algorithm": "classfuzz[tr]",
            "iterations": 2000, "seed": 9, "seed_count": 8,
            "checkpoint_every": 25})
        job_id = record["id"]
        ckpt = (state / "jobs" / job_id / "legs" / "classfuzz-tr"
                / "checkpoint" / "checkpoint.json")
        deadline = time.time() + 60
        while time.time() < deadline and not ckpt.exists():
            time.sleep(0.01)
        assert ckpt.exists(), "leg never started checkpointing"
        daemon.stop()  # SIGTERMs the worker, waits, requeues

        job = daemon.store.load(job_id)
        assert job.state == "queued"
        assert job.legs[0]["state"] == "queued"
        assert job.legs[0]["exit_code"] == 143  # graceful worker exit
        assert job.legs[0]["attempts"] == 0  # a stop is not a failure

        restarted = ServiceDaemon(state, port=0,
                                  poll_interval=0.05).start()
        try:
            document = ServiceClient(restarted.url).wait(job_id,
                                                         timeout=240)
        finally:
            restarted.stop()
        assert document["job"]["state"] == "done"
        seeds = generate_corpus(CorpusConfig(count=8, seed=9))
        result = run_algorithm("classfuzz[tr]", seeds, 2000, 9)
        manifest = json.loads(
            (state / "jobs" / job_id / "legs" / "classfuzz-tr" / "suite"
             / "manifest.json").read_text(encoding="utf-8"))
        assert [c["label"] for c in manifest["classes"]
                if c["bucket"] == "tests"] == \
            [t.label for t in result.test_classes]
