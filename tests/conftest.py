"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.classfile.writer import write_class
from repro.core.difftest import DifferentialHarness
from repro.jimple.builder import ClassBuilder
from repro.jimple.to_classfile import compile_class


@pytest.fixture
def demo_class():
    """A canonical valid class with <init> and a printing main."""
    builder = ClassBuilder("Demo")
    builder.default_init()
    builder.main_printing("Completed!")
    return builder.build()


@pytest.fixture
def demo_bytes(demo_class):
    """The demo class as classfile bytes."""
    return write_class(compile_class(demo_class))


@pytest.fixture(scope="session")
def harness():
    """One differential harness shared across tests (JVMs are stateless
    between runs except interpreter instances, which are per-run)."""
    return DifferentialHarness()


def build_bytes(jclass):
    """Compile a JClass straight to classfile bytes."""
    return write_class(compile_class(jclass))
