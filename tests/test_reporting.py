"""Tests for discrepancy bug-report generation."""

import pytest

from repro.core.reporting import (
    classify_discrepancy,
    report_discrepancy,
    summarize_reports,
)
from repro.jimple import ClassBuilder, MethodBuilder
from repro.jimple.types import JType
from repro.jvm.outcome import DifferentialResult, Outcome, Phase


def figure2_class():
    builder = ClassBuilder("M1436188543")
    builder.default_init()
    builder.main_printing("Completed!")
    clinit = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
    clinit.abstract_body()
    builder.method(clinit.build())
    return builder.build()


class TestClassification:
    def _result(self, *outcomes):
        return DifferentialResult(outcomes=list(outcomes))

    def test_pure_compatibility(self):
        result = self._result(
            Outcome(Phase.INVOKED, jvm_name="a"),
            Outcome(Phase.LINKING, error="NoClassDefFoundError",
                    jvm_name="b"))
        assert classify_discrepancy(result) == "compatibility"

    def test_format_split_is_defect_indicative(self):
        result = self._result(
            Outcome(Phase.INVOKED, jvm_name="a"),
            Outcome(Phase.LOADING, error="ClassFormatError", jvm_name="b"))
        assert classify_discrepancy(result) == "defect-indicative"

    def test_all_reject_differently_is_policy(self):
        result = self._result(
            Outcome(Phase.LINKING, error="VerifyError", jvm_name="a"),
            Outcome(Phase.LOADING, error="ClassFormatError", jvm_name="b"))
        assert classify_discrepancy(result) == "verification-policy"


class TestReportGeneration:
    def test_figure2_report(self, harness):
        report = report_discrepancy(figure2_class(), harness)
        assert report.codes == (0, 0, 0, 1, 0)
        assert report.classification == "defect-indicative"
        assert "encoded outcome sequence" in report.text
        assert "no Code attribute" in report.text
        assert "javap -v" in report.text
        assert report.reduction is not None

    def test_reduction_can_be_skipped(self, harness):
        report = report_discrepancy(figure2_class(), harness, reduce=False)
        assert report.reduction is None
        assert "delta debugging" not in report.text

    def test_non_discrepant_rejected(self, harness, demo_class):
        with pytest.raises(ValueError, match="does not trigger"):
            report_discrepancy(demo_class, harness)

    def test_summary_buckets(self, harness):
        report = report_discrepancy(figure2_class(), harness, reduce=False)
        text = summarize_reports([report, report])
        assert "2 discrepancies triaged" in text
        assert "defect-indicative: 2" in text
