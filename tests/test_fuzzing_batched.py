"""Determinism contract of the batched speculative fuzzing pipeline.

Two guarantees are pinned here:

1. ``batch=1`` is **bit-identical to the historical serial loop**: every
   algorithm's output (generated labels, accepted labels, classfile
   digests, discard tallies, mutator report) matches the golden fixture
   captured from the pre-pipeline serial implementation
   (``tests/data/golden_serial_fuzz.json``).
2. For a fixed ``(seed, batch)`` the run is **deterministic across
   repeats and across executor backends** — serial, thread, and process
   — because acceptance is replayed sequentially in batch-index order.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.executor import (
    OutcomeCache,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.core.fuzzing import classfuzz, greedyfuzz, randfuzz, uniquefuzz
from repro.corpus import CorpusConfig, generate_corpus
from repro.observe import Telemetry
from repro.observe.events import BATCH_ROUND, RingBufferSink

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_serial_fuzz.json"

#: golden key → zero-argument runner (mirrors the capture script exactly).
RUNNERS = {
    "classfuzz[st]": lambda seeds, **kw: classfuzz(
        seeds, iterations=60, criterion="st", seed=7, **kw),
    "classfuzz[stbr]": lambda seeds, **kw: classfuzz(
        seeds, iterations=60, criterion="stbr", seed=7, **kw),
    "classfuzz[tr]": lambda seeds, **kw: classfuzz(
        seeds, iterations=60, criterion="tr", seed=7, **kw),
    "uniquefuzz": lambda seeds, **kw: uniquefuzz(
        seeds, iterations=60, seed=7, **kw),
    "greedyfuzz": lambda seeds, **kw: greedyfuzz(
        seeds, iterations=60, seed=7, **kw),
    "randfuzz": lambda seeds, **kw: randfuzz(
        seeds, iterations=60, seed=7, **kw),
}


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=25, seed=11))


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def fingerprint(result):
    """The cross-backend-comparable essence of a FuzzResult."""
    return {
        "gen": [g.label for g in result.gen_classes],
        "tests": [g.label for g in result.test_classes],
        "discards": dict(result.discards),
        "report": [[name, selected, successes, rate]
                   for name, selected, successes, rate
                   in result.mutator_report if selected > 0],
        "digests": [hashlib.sha256(g.data).hexdigest()[:16]
                    for g in result.test_classes],
    }


class TestBatchOneIsSerial:
    """batch=1 reproduces the pre-pipeline serial loop byte for byte."""

    @pytest.mark.parametrize("key", sorted(RUNNERS))
    def test_matches_golden_serial_output(self, key, seeds, golden):
        result = RUNNERS[key](seeds, batch=1)
        assert fingerprint(result) == golden[key]

    @pytest.mark.parametrize("key", sorted(RUNNERS))
    def test_default_batch_is_one(self, key, seeds, golden):
        # Callers that never heard of batching keep the exact old output.
        result = RUNNERS[key](seeds)
        assert result.batch == 1
        assert fingerprint(result) == golden[key]


class TestBatchedDeterminism:
    """Fixed (seed, batch) → identical output, regardless of backend."""

    def test_repeatable_on_serial_backend(self, seeds):
        first = RUNNERS["classfuzz[stbr]"](seeds, batch=8)
        second = RUNNERS["classfuzz[stbr]"](seeds, batch=8)
        assert fingerprint(first) == fingerprint(second)
        assert first.batch == 8

    @pytest.mark.parametrize("key", ["classfuzz[stbr]", "greedyfuzz"])
    def test_thread_backend_matches_serial(self, key, seeds):
        baseline = RUNNERS[key](seeds, batch=8)
        with ThreadExecutor(jobs=4, cache=OutcomeCache()) as engine:
            threaded = RUNNERS[key](seeds, batch=8, executor=engine)
        assert fingerprint(threaded) == fingerprint(baseline)

    def test_process_backend_matches_serial(self, seeds):
        baseline = RUNNERS["classfuzz[stbr]"](seeds, batch=8)
        try:
            with ProcessExecutor(jobs=2, cache=OutcomeCache()) as engine:
                spawned = RUNNERS["classfuzz[stbr]"](
                    seeds, batch=8, executor=engine)
        except (OSError, ValueError, ImportError) as exc:
            pytest.skip(f"process pool unavailable: {exc}")
        assert fingerprint(spawned) == fingerprint(baseline)

    def test_batch_covers_non_divisible_iterations(self, seeds):
        # 60 iterations in rounds of 7: the tail round shrinks, nothing
        # is dropped or double-run.
        result = RUNNERS["uniquefuzz"](seeds, batch=7)
        assert len(result.gen_classes) + result.discarded == 60


class TestBatchValidation:
    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_non_positive_batch(self, seeds, bad):
        with pytest.raises(ValueError, match="batch"):
            randfuzz(seeds, iterations=5, seed=1, batch=bad)


class TestBatchRoundTelemetry:
    def test_emits_one_round_event_per_round(self, seeds):
        telemetry = Telemetry()
        ring = telemetry.bus.add_sink(RingBufferSink())
        RUNNERS["classfuzz[stbr]"](seeds, batch=8, telemetry=telemetry)
        rounds = ring.events(BATCH_ROUND)
        assert len(rounds) == 8  # ceil(60 / 8)
        assert [e.fields["round"] for e in rounds] == list(range(8))
        assert sum(e.fields["size"] for e in rounds) == 60
        first = rounds[0].fields
        assert first["algorithm"] == "classfuzz[stbr]"
        assert first["generated"] >= first["accepted"] >= 0
        counter = telemetry.registry.get("repro_fuzz_rounds_total")
        assert counter.labels(
            algorithm="classfuzz[stbr]").value == 8

    def test_serial_run_reports_rounds_equal_iterations(self, seeds):
        telemetry = Telemetry()
        ring = telemetry.bus.add_sink(RingBufferSink())
        RUNNERS["randfuzz"](seeds, batch=1, telemetry=telemetry)
        assert len(ring.events(BATCH_ROUND)) == 60
