"""Unit tests for Jimple types and name/descriptor conversion."""

import pytest

from repro.classfile.descriptors import DescriptorError
from repro.jimple.types import (
    INT,
    JType,
    STRING,
    VOID,
    descriptor_to_java,
    java_to_descriptor,
)


class TestJType:
    def test_primitive_properties(self):
        assert INT.is_primitive
        assert not INT.is_reference
        assert INT.slots == 1
        assert INT.category == "i"

    def test_wide_primitives(self):
        assert JType("long").slots == 2
        assert JType("double").slots == 2
        assert JType("long").category == "l"

    def test_void(self):
        assert VOID.is_void
        assert VOID.slots == 0

    def test_reference(self):
        assert STRING.is_reference
        assert STRING.category == "a"
        assert STRING.internal_name == "java/lang/String"

    def test_array(self):
        array = JType("int[][]")
        assert array.is_array
        assert array.dimensions == 2
        assert array.base_name == "int"
        assert array.element == JType("int[]")
        assert array.category == "a"
        assert array.slots == 1

    def test_element_of_non_array_raises(self):
        with pytest.raises(ValueError):
            INT.element

    def test_boolean_is_int_category(self):
        assert JType("boolean").category == "i"


class TestConversions:
    @pytest.mark.parametrize("java,descriptor", [
        ("int", "I"),
        ("boolean", "Z"),
        ("long", "J"),
        ("void", "V"),
        ("java.lang.String", "Ljava/lang/String;"),
        ("int[]", "[I"),
        ("java.lang.Object[][]", "[[Ljava/lang/Object;"),
    ])
    def test_java_to_descriptor(self, java, descriptor):
        assert java_to_descriptor(java) == descriptor

    @pytest.mark.parametrize("descriptor,java", [
        ("I", "int"),
        ("V", "void"),
        ("Ljava/util/Map;", "java.util.Map"),
        ("[B", "byte[]"),
        ("[[Ljava/lang/String;", "java.lang.String[][]"),
    ])
    def test_descriptor_to_java(self, descriptor, java):
        assert descriptor_to_java(descriptor) == java

    def test_roundtrip(self):
        for name in ("int", "java.util.Map", "double[]", "char[][]"):
            assert descriptor_to_java(java_to_descriptor(name)) == name

    def test_void_array_rejected(self):
        with pytest.raises(DescriptorError):
            java_to_descriptor("void[]")

    def test_jtype_descriptor_method(self):
        assert JType("java.util.Map").descriptor() == "Ljava/util/Map;"
        assert JType("short[]").descriptor() == "[S"
