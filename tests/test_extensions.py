"""Tests for the version-fuzzing extension (beyond the paper's scope)."""

import random

import pytest

from repro.core.extensions import VERSION_MUTATORS, versionfuzz
from repro.core.extensions.versionfuzz import version_discrepancy_vectors
from repro.core.mutators import MUTATORS
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple import ClassBuilder


class TestVersionMutators:
    def test_registry_untouched(self):
        """The extension must not grow the 129-operator registry."""
        assert len(MUTATORS) == 129
        names = {m.name for m in MUTATORS}
        assert all(m.name not in names for m in VERSION_MUTATORS)

    def test_set_version(self):
        rng = random.Random(0)
        jclass = ClassBuilder("V").build()
        setter = next(m for m in VERSION_MUTATORS
                      if m.name == "version.set_53")
        assert setter(jclass, rng)
        assert jclass.major_version == 53
        assert not setter(jclass, rng)  # already 53 -> inapplicable

    def test_bump_and_drop(self):
        rng = random.Random(0)
        jclass = ClassBuilder("V").build()
        bump = next(m for m in VERSION_MUTATORS if m.name == "version.bump")
        drop = next(m for m in VERSION_MUTATORS if m.name == "version.drop")
        assert bump(jclass, rng)
        assert jclass.major_version == 52
        assert drop(jclass, rng)
        assert jclass.major_version == 51

    def test_drop_floors_at_45(self):
        rng = random.Random(0)
        jclass = ClassBuilder("V").build()
        jclass.major_version = 45
        drop = next(m for m in VERSION_MUTATORS if m.name == "version.drop")
        assert not drop(jclass, rng)


class TestVersionFuzz:
    @pytest.fixture(scope="class")
    def run(self):
        seeds = generate_corpus(CorpusConfig(count=40, seed=77))
        return versionfuzz(seeds, iterations=250, seed=77)

    def test_produces_off_version_mutants(self, run):
        versions = {g.jclass.major_version for g in run.gen_classes}
        assert versions - {51}, "no version mutation ever applied"

    def test_finds_version_gate_discrepancies(self, run, harness):
        vectors = version_discrepancy_vectors(run, harness)
        assert vectors, "version fuzzing revealed no new discrepancies"
        # Version-ceiling splits reject at loading (code 1) on the JVMs
        # whose ceiling is below the mutant's version.
        assert any(1 in vector for vector in vectors)

    def test_report_covers_extended_registry(self, run):
        assert len(run.mutator_report) == 129 + len(VERSION_MUTATORS)
        assert run.algorithm == "versionfuzz"
