"""Tests for switch statements and exception traps in the Jimple pipeline."""

import pytest

from repro.bytecode import Op, decode_code
from repro.classfile import read_class
from repro.jimple import ClassBuilder, MethodBuilder, compile_class, lift_class
from repro.jimple.statements import (
    AssignNewStmt,
    Constant,
    IdentityStmt,
    InvokeExpr,
    InvokeStmt,
    MethodRef,
    SwitchStmt,
    ThrowStmt,
    Trap,
)
from repro.jimple.to_classfile import JimpleCompileError, compile_class_bytes
from repro.jimple.types import INT, JType, VOID
from repro.jvm import all_jvms


def switch_class(key, cases, arms_print=True):
    builder = ClassBuilder("Switchy")
    builder.default_init()
    method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                           ["public", "static"])
    method.local("$k", INT)
    method.const("$k", key)
    labels = sorted({label for _, label in cases})
    method.stmt(SwitchStmt("$k", cases, "dflt"))
    for label in labels:
        method.label(label)
        if arms_print:
            method.println(label, f"$p_{label}")
        method.goto("end")
    method.label("dflt")
    method.println("default", "$p_d")
    method.label("end")
    method.ret()
    builder.method(method.build())
    return builder.build()


class TestSwitchStatements:
    def test_contiguous_cases_become_tableswitch(self):
        jclass = switch_class(1, [(0, "a"), (1, "b"), (2, "c")])
        code = compile_class(jclass).methods[1].code
        ops = {i.op for i in decode_code(code.code)}
        assert Op.TABLESWITCH in ops

    def test_sparse_cases_become_lookupswitch(self):
        jclass = switch_class(1, [(1, "a"), (10, "b"), (100, "c")])
        code = compile_class(jclass).methods[1].code
        ops = {i.op for i in decode_code(code.code)}
        assert Op.LOOKUPSWITCH in ops

    @pytest.mark.parametrize("key,expected", [
        (0, "a"), (1, "b"), (2, "c"), (9, "default")])
    def test_dispatch_semantics(self, key, expected):
        jclass = switch_class(key, [(0, "a"), (1, "b"), (2, "c")])
        data = compile_class_bytes(jclass)
        for jvm in all_jvms():
            outcome = jvm.run(data)
            assert outcome.ok, outcome.brief()
            assert outcome.output[0] == expected

    def test_switch_lifts_back(self):
        jclass = switch_class(1, [(1, "a"), (50, "b")])
        lifted = lift_class(read_class(compile_class_bytes(jclass)))
        main = lifted.find_method("main")
        assert main.body is not None
        assert any(isinstance(stmt, SwitchStmt) for stmt in main.body)


def trap_class(catch_type="java.lang.Exception"):
    builder = ClassBuilder("Trappy")
    builder.default_init()
    method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                           ["public", "static"])
    method.local("$e", JType("java.lang.RuntimeException"))
    method.local("$c", JType("java.lang.Exception"))
    method.label("begin")
    method.stmt(AssignNewStmt("$e", "java.lang.RuntimeException"))
    method.stmt(InvokeStmt(InvokeExpr(
        "special",
        MethodRef("java.lang.RuntimeException", "<init>", VOID, ()),
        "$e", [])))
    method.stmt(ThrowStmt("$e"))
    method.label("end")
    method.ret()
    method.label("handler")
    method.stmt(IdentityStmt("$c", "caughtexception",
                             JType("java.lang.Exception")))
    method.println("caught", "$p")
    method.ret()
    built = method.build()
    built.traps.append(Trap("begin", "end", "handler", catch_type, "$c"))
    builder.method(built)
    return builder.build()


class TestTraps:
    def test_exception_table_emitted(self):
        code = compile_class(trap_class()).methods[1].code
        assert len(code.exception_table) == 1
        handler = code.exception_table[0]
        assert handler.start_pc < handler.end_pc <= handler.handler_pc

    def test_catch_executes_handler(self):
        data = compile_class_bytes(trap_class())
        for jvm in all_jvms():
            outcome = jvm.run(data)
            assert outcome.ok, outcome.brief()
            assert outcome.output == ("caught",)

    def test_mismatched_catch_type_propagates(self):
        data = compile_class_bytes(trap_class("java.io.IOException"))
        outcome = all_jvms()[1].run(data)
        assert not outcome.ok
        assert outcome.error == "RuntimeException"

    def test_catch_all_trap(self):
        data = compile_class_bytes(trap_class(None))
        outcome = all_jvms()[1].run(data)
        assert outcome.ok
        assert outcome.output == ("caught",)

    def test_trap_with_missing_label_fails_dump(self):
        jclass = trap_class()
        jclass.methods[1].traps[0] = Trap("begin", "nowhere", "handler",
                                          "java.lang.Exception", "$c")
        with pytest.raises(JimpleCompileError, match="missing label"):
            compile_class_bytes(jclass)

    def test_trapped_body_roundtrips_opaquely(self):
        """Bodies with exception tables lift to raw code, preserving the
        table through recompilation."""
        data = compile_class_bytes(trap_class())
        lifted = lift_class(read_class(data))
        main = lifted.find_method("main")
        assert main.raw_code is not None
        recompiled = compile_class(lifted)
        assert len(recompiled.methods[1].code.exception_table) == 1
        for jvm in all_jvms():
            from repro.classfile.writer import write_class

            outcome = jvm.run(write_class(recompiled))
            assert outcome.ok

    def test_division_by_zero_caught(self):
        from repro.jimple.statements import AssignBinopStmt, AssignConstStmt

        builder = ClassBuilder("DivTrap")
        builder.default_init()
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["public", "static"])
        method.local("$a", INT)
        method.local("$c", JType("java.lang.ArithmeticException"))
        method.label("begin")
        method.const("$a", 1)
        method.stmt(AssignBinopStmt("$a", "$a", "/", Constant(0, INT)))
        method.label("end")
        method.ret()
        method.label("handler")
        method.stmt(IdentityStmt("$c", "caughtexception",
                                 JType("java.lang.ArithmeticException")))
        method.println("div caught", "$p")
        method.ret()
        built = method.build()
        built.traps.append(Trap("begin", "end", "handler",
                                "java.lang.ArithmeticException", "$c"))
        builder.method(built)
        data = compile_class_bytes(builder.build())
        outcome = all_jvms()[2].run(data)
        assert outcome.ok
        assert outcome.output == ("div caught",)
