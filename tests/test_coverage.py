"""Unit tests for tracefiles, the ⊕ merge, and the uniqueness criteria."""

import pytest

from repro.coverage import (
    CoverageCollector,
    Tracefile,
    active_collector,
    branch,
    make_criterion,
    merge,
    probe,
)
from repro.coverage.tracefile import same_branch_sets, same_statement_sets
from repro.coverage.uniqueness import (
    StBrUniqueness,
    StUniqueness,
    TrUniqueness,
)


def trace(statements, branches=()):
    return Tracefile(statements={s: 1 for s in statements},
                     branches={b: 1 for b in branches})


class TestCollector:
    def test_probe_noop_without_collector(self):
        assert active_collector() is None
        probe("x")  # must not raise

    def test_branch_returns_condition(self):
        assert branch("site", True) is True
        assert branch("site", False) is False

    def test_collection(self):
        collector = CoverageCollector()
        with collector:
            probe("a")
            probe("a")
            probe("b")
            branch("c", True)
            branch("c", False)
        result = collector.tracefile()
        assert result.stmt == 2
        assert result.br == 2
        assert result.statements["a"] == 2

    def test_nested_collectors_rejected(self):
        with CoverageCollector():
            with pytest.raises(RuntimeError):
                CoverageCollector().__enter__()
        assert active_collector() is None

    def test_collector_cleared_after_exit(self):
        with CoverageCollector():
            pass
        assert active_collector() is None


class TestTracefile:
    def test_statistics(self):
        t = trace(["a", "b"], [("c", True)])
        assert t.signature == (2, 1)

    def test_merge_unions_sites(self):
        merged = merge(trace(["a"]), trace(["b"]))
        assert merged.stmt == 2

    def test_merge_sums_frequencies(self):
        merged = merge(trace(["a"]), trace(["a"]))
        assert merged.statements["a"] == 2
        assert merged.stmt == 1

    def test_merge_operator_alias(self):
        assert (trace(["a"]) | trace(["b"])).stmt == 2

    def test_same_statement_sets(self):
        assert same_statement_sets(trace(["a", "b"]), trace(["a", "b"]))
        assert not same_statement_sets(trace(["a", "b"]), trace(["a", "c"]))

    def test_same_branch_sets(self):
        first = trace([], [("x", True)])
        second = trace([], [("x", False)])
        assert not same_branch_sets(first, second)
        assert same_branch_sets(first, trace([], [("x", True)]))

    def test_equal_counts_different_sets_detected_by_merge(self):
        """The [tr]-vs-[stbr] distinction: same statistics, different sets."""
        first = trace(["a", "b"])
        second = trace(["a", "c"])
        assert first.signature == second.signature
        assert not same_statement_sets(first, second)


class TestUniquenessCriteria:
    def test_st_by_count_only(self):
        criterion = StUniqueness()
        assert criterion.check_and_accept(trace(["a", "b"]))
        # Different sites, same count -> NOT unique under [st].
        assert not criterion.check_and_accept(trace(["c", "d"]))
        assert criterion.check_and_accept(trace(["a"]))

    def test_stbr_by_count_pair(self):
        criterion = StBrUniqueness()
        assert criterion.check_and_accept(trace(["a"], [("x", True)]))
        # Same stmt count, different branch count -> unique.
        assert criterion.check_and_accept(
            trace(["a"], [("x", True), ("x", False)]))
        # Same pair -> rejected even with different sites.
        assert not criterion.check_and_accept(trace(["b"], [("y", True)]))

    def test_tr_by_sets(self):
        criterion = TrUniqueness()
        assert criterion.check_and_accept(trace(["a", "b"]))
        # Same counts, different set -> unique under [tr].
        assert criterion.check_and_accept(trace(["a", "c"]))
        # Exact same set -> rejected.
        assert not criterion.check_and_accept(trace(["a", "b"]))

    def test_tr_considers_branch_sets(self):
        criterion = TrUniqueness()
        assert criterion.check_and_accept(trace(["a"], [("x", True)]))
        assert criterion.check_and_accept(trace(["a"], [("x", False)]))

    def test_tr_accepts_everything_stbr_accepts(self):
        """[tr] is strictly weaker as a rejection filter than [stbr]."""
        traces = [trace(["a"]), trace(["a", "b"]),
                  trace(["c"], [("x", True)]), trace(["a", "c"])]
        stbr, tr = StBrUniqueness(), TrUniqueness()
        for t in traces:
            if stbr.is_unique(t):
                assert tr.is_unique(t)
            stbr.check_and_accept(t)
            tr.check_and_accept(t)

    def test_factory(self):
        assert isinstance(make_criterion("st"), StUniqueness)
        assert isinstance(make_criterion("stbr"), StBrUniqueness)
        assert isinstance(make_criterion("tr"), TrUniqueness)
        with pytest.raises(ValueError):
            make_criterion("nope")


class TestEndToEndCoverage:
    def test_reference_run_produces_coverage(self, demo_bytes):
        from repro.jvm.vendors import reference_jvm

        collector = CoverageCollector()
        with collector:
            reference_jvm().run(demo_bytes)
        result = collector.tracefile()
        assert result.stmt > 30
        assert result.br > 20
        assert any(site.startswith("verifier.op.") for site in
                   result.statements)
        assert any(site.startswith("interp.op.") for site in
                   result.statements)

    def test_uninstrumented_run_records_nothing(self, demo_bytes):
        from repro.jvm.vendors import make_j9

        collector = CoverageCollector()
        make_j9().run(demo_bytes)   # outside the collector context
        assert collector.tracefile().stmt == 0

    def test_different_classes_different_traces(self, demo_bytes):
        from repro.jimple import ClassBuilder
        from repro.jimple.to_classfile import compile_class_bytes
        from repro.jvm.vendors import reference_jvm

        bad = ClassBuilder("Bad", superclass="com.example.Missing")
        bad.main_printing()
        bad_bytes = compile_class_bytes(bad.build())
        jvm = reference_jvm()
        traces = []
        for data in (demo_bytes, bad_bytes):
            collector = CoverageCollector()
            with collector:
                jvm.run(data)
            traces.append(collector.tracefile())
        assert traces[0].stmt_set != traces[1].stmt_set
