"""Decision-stream identity of the process backend's reference workers.

The tentpole contract: the persistent worker mode — warm JVM state,
shared site table, packed shared-memory coverage transport — must keep
fuzzing decision streams **byte-identical** to the serial backend over
full classfuzz rounds, in both coverage-index modes, through a
kill → resume cycle, and the shared-memory segments it creates must
never outlive the executor (normal close and interrupt paths alike).
"""

import hashlib
from pathlib import Path

import pytest

from repro.core.checkpoint import CRASH_AFTER_ENV
from repro.core.executor import OutcomeCache, ProcessExecutor
from repro.core.fuzzing import classfuzz
from repro.corpus import CorpusConfig, generate_corpus
from repro.coverage.interner import GLOBAL_INTERNER

SHM_DIR = Path("/dev/shm")


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=25, seed=11))


@pytest.fixture(autouse=True)
def no_dangling_shared_table():
    """Every test must leave the global interner detached again."""
    yield
    assert GLOBAL_INTERNER.shared_table is None


def fingerprint(result):
    """The cross-backend-comparable essence of a FuzzResult."""
    return {
        "gen": [g.label for g in result.gen_classes],
        "tests": [t.label for t in result.test_classes],
        "discards": dict(result.discards),
        "digests": [hashlib.sha256(g.data).hexdigest()[:16]
                    for g in result.test_classes],
        "signatures": [t.tracefile.signature if t.tracefile else None
                       for t in result.test_classes],
    }


def repro_segments():
    if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs platforms
        return []
    return sorted(p.name for p in SHM_DIR.glob("repro_*"))


def process_engine(**kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("cache", OutcomeCache())
    try:
        return ProcessExecutor(**kwargs)
    except (OSError, ValueError, ImportError) as exc:  # pragma: no cover
        pytest.skip(f"process pool unavailable: {exc}")


class TestDecisionStreamIdentity:
    @pytest.mark.parametrize("coverage_index", ["exact", "bitmap"])
    def test_persistent_matches_serial_over_tr_rounds(self, seeds,
                                                      coverage_index):
        baseline = classfuzz(seeds, iterations=60, criterion="tr",
                             seed=7, batch=8,
                             coverage_index=coverage_index)
        with process_engine() as engine:
            assert engine.worker_mode == "persistent"
            parallel = classfuzz(seeds, iterations=60, criterion="tr",
                                 seed=7, batch=8, executor=engine,
                                 coverage_index=coverage_index)
        assert fingerprint(parallel) == fingerprint(baseline)

    def test_fork_mode_matches_serial(self, seeds):
        baseline = classfuzz(seeds, iterations=40, criterion="tr",
                             seed=7, batch=8)
        with process_engine(worker_mode="fork") as engine:
            forked = classfuzz(seeds, iterations=40, criterion="tr",
                               seed=7, batch=8, executor=engine)
        assert fingerprint(forked) == fingerprint(baseline)

    def test_recycled_workers_keep_identity(self, seeds):
        baseline = classfuzz(seeds, iterations=40, criterion="stbr",
                             seed=3, batch=8)
        with process_engine(max_runs_per_worker=3) as engine:
            recycled = classfuzz(seeds, iterations=40, criterion="stbr",
                                 seed=3, batch=8, executor=engine)
            assert engine.stats.worker_recycles > 0
        assert fingerprint(recycled) == fingerprint(baseline)


class TestKillAndResume:
    def test_persistent_resume_matches_uninterrupted(self, seeds,
                                                     tmp_path,
                                                     monkeypatch):
        baseline = classfuzz(seeds, iterations=48, criterion="tr",
                             seed=3, batch=8)
        directory = tmp_path / "ckpt"
        monkeypatch.setenv(CRASH_AFTER_ENV, "1")
        engine = process_engine()
        try:
            with pytest.raises(KeyboardInterrupt):
                classfuzz(seeds, iterations=48, criterion="tr", seed=3,
                          batch=8, executor=engine,
                          checkpoint_dir=directory, checkpoint_every=16)
        finally:
            # The CLI's interrupt handler path: close on the way out.
            engine.close()
        assert GLOBAL_INTERNER.shared_table is None
        monkeypatch.delenv(CRASH_AFTER_ENV)
        # Resume in a fresh persistent executor: a new shared table is
        # rebuilt from the replayed interning history and validated.
        with process_engine() as engine:
            resumed = classfuzz(seeds, iterations=48, criterion="tr",
                                seed=3, batch=8, executor=engine,
                                checkpoint_dir=directory,
                                checkpoint_every=16, resume=True)
        assert fingerprint(resumed) == fingerprint(baseline)


class TestWorkerAccounting:
    def test_persistent_runs_mostly_warm(self, seeds):
        with process_engine() as engine:
            classfuzz(seeds, iterations=40, criterion="stbr", seed=7,
                      batch=8, executor=engine)
            stats = engine.stats
            # Each worker pays exactly one cold (initial) run; everything
            # after that rides warm state.
            assert 0 < stats.cold_runs <= engine.jobs
            assert stats.warm_runs > stats.cold_runs
            assert stats.worker_recycles == 0
            text = stats.format()
        assert "worker runs:" in text
        assert f"{stats.warm_runs} warm" in text

    def test_fork_runs_all_cold(self, seeds):
        with process_engine(worker_mode="fork") as engine:
            classfuzz(seeds, iterations=24, criterion="stbr", seed=7,
                      batch=8, executor=engine)
            assert engine.stats.warm_runs == 0
            assert engine.stats.cold_runs > 0

    def test_worker_telemetry_counters(self, seeds):
        from repro.observe import Telemetry

        telemetry = Telemetry()
        with process_engine(telemetry=telemetry) as engine:
            classfuzz(seeds, iterations=24, criterion="stbr", seed=7,
                      batch=8, executor=engine)
        warm = telemetry.registry.get("repro_worker_runs_total") \
            .labels(state="warm").value
        assert warm > 0
        text = telemetry.render_prometheus()
        assert "repro_worker_runs_total" in text


class TestShmLifecycle:
    @pytest.mark.skipif(not SHM_DIR.is_dir(),
                        reason="no /dev/shm on this platform")
    def test_no_segments_leak_on_close(self, seeds):
        before = repro_segments()
        with process_engine() as engine:
            classfuzz(seeds, iterations=16, criterion="tr", seed=7,
                      batch=8, executor=engine)
            assert repro_segments() != before  # segments exist mid-run
        assert repro_segments() == before

    @pytest.mark.skipif(not SHM_DIR.is_dir(),
                        reason="no /dev/shm on this platform")
    def test_no_segments_leak_on_interrupt(self, seeds, tmp_path,
                                           monkeypatch):
        before = repro_segments()
        monkeypatch.setenv(CRASH_AFTER_ENV, "1")
        engine = process_engine()
        try:
            with pytest.raises(KeyboardInterrupt):
                classfuzz(seeds, iterations=32, criterion="tr", seed=7,
                          batch=8, executor=engine,
                          checkpoint_dir=tmp_path / "ckpt",
                          checkpoint_every=8)
        finally:
            engine.close()
        assert repro_segments() == before

    def test_close_is_idempotent(self, seeds):
        engine = process_engine()
        classfuzz(seeds, iterations=8, criterion="tr", seed=7, batch=8,
                  executor=engine)
        engine.close()
        engine.close()
        assert GLOBAL_INTERNER.shared_table is None
