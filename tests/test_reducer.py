"""Tests for the hierarchical delta-debugging reducer (§2.3)."""

import pytest

from repro.core.reducer import reduce_discrepancy
from repro.jimple import ClassBuilder, MethodBuilder, print_class
from repro.jimple.types import INT, JType


def discrepant_class():
    """A bulky class whose discrepancy is caused by one duplicate field."""
    builder = ClassBuilder("Bulky")
    builder.default_init()
    builder.main_printing()
    builder.field("MAP", JType("java.util.Map"), ["protected"])
    builder.field("MAP", JType("java.util.Map"), ["protected"])  # the bug
    builder.field("unrelated1", INT, ["public"])
    builder.field("unrelated2", INT, ["public"])
    for i in range(3):
        method = MethodBuilder(f"noise{i}", modifiers=["public"])
        method.ret()
        builder.method(method.build())
    return builder.build()


class TestReducer:
    def test_reduction_preserves_codes(self, harness):
        result = reduce_discrepancy(discrepant_class(), harness)
        # HotSpots reject at linking, J9 at loading, GIJ accepts.
        assert result.codes == (2, 2, 2, 1, 0)
        # Re-check: the reduced class still triggers the same vector.
        from repro.jimple.to_classfile import compile_class_bytes

        rerun = harness.run_one(compile_class_bytes(result.reduced), "r")
        assert rerun.codes == result.codes

    def test_reduction_shrinks(self, harness):
        original = discrepant_class()
        result = reduce_discrepancy(original, harness)
        assert len(result.reduced.methods) < len(original.methods)
        assert len(result.reduced.fields) <= len(original.fields)
        assert result.steps

    def test_duplicate_fields_survive(self, harness):
        """The discrepancy-carrying duplicate pair cannot be removed."""
        result = reduce_discrepancy(discrepant_class(), harness)
        names = [f.name for f in result.reduced.fields]
        assert names.count("MAP") == 2

    def test_non_discrepant_input_rejected(self, harness, demo_class):
        with pytest.raises(ValueError, match="does not trigger"):
            reduce_discrepancy(demo_class, harness)

    def test_undumpable_input_rejected(self, harness):
        from repro.jimple.statements import AssignLocalStmt

        builder = ClassBuilder("Broken")
        method = MethodBuilder("m", modifiers=["public"])
        method.stmt(AssignLocalStmt("a", "ghost"))
        method.ret()
        builder.method(method.build())
        with pytest.raises(ValueError, match="cannot be dumped"):
            reduce_discrepancy(builder.build(), harness)

    def test_reduced_class_printable(self, harness):
        result = reduce_discrepancy(discrepant_class(), harness)
        text = print_class(result.reduced)
        assert "Bulky" in text

    def test_tests_run_counted(self, harness):
        result = reduce_discrepancy(discrepant_class(), harness)
        assert result.tests_run >= len(result.steps)


class TestReducerTelemetry:
    def test_default_harness_uses_cached_executor(self):
        """Omitting the harness routes candidates through the outcome
        cache: the restart-heavy HDD loop re-tests identical candidate
        bytes, which must be answered from cache, not re-executed."""
        from repro.observe import make_telemetry

        telemetry = make_telemetry()
        result = reduce_discrepancy(discrepant_class(),
                                    telemetry=telemetry)
        assert result.codes == (2, 2, 2, 1, 0)
        text = telemetry.render_prometheus()
        assert 'repro_cache_lookups_total' in text
        hits = [line for line in text.splitlines()
                if line.startswith("repro_cache_lookups_total")
                and 'result="hit"' in line]
        assert hits, "reducer retests never hit the outcome cache"

    def test_reduction_step_events_emitted(self):
        from repro.observe import make_telemetry
        from repro.observe.events import REDUCTION_STEP

        telemetry = make_telemetry(ring_capacity=4096)
        ring = telemetry.bus.sinks[0]
        result = reduce_discrepancy(discrepant_class(),
                                    telemetry=telemetry)
        events = ring.events(REDUCTION_STEP)
        assert len(events) == len(result.steps)
        assert all(e.fields["label"] == "Bulky" for e in events)
        remaining = [e.fields["remaining"] for e in events]
        assert remaining == sorted(remaining, reverse=True)
        text = telemetry.render_prometheus()
        assert "repro_reduction_tests_total" in text
