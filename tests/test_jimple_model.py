"""Unit tests for the Jimple class model and builders."""

import copy

from repro.jimple import ClassBuilder, JClass, JMethod, MethodBuilder
from repro.jimple.model import FieldSignature, JField, JLocal, MethodSignature
from repro.jimple.statements import (
    InvokeExpr,
    InvokeStmt,
    MethodRef,
    ReturnStmt,
    SwitchStmt,
    Trap,
)
from repro.jimple.types import INT, JType, STRING, VOID


class TestSignatures:
    def test_method_signature_descriptor(self):
        signature = MethodSignature("main", (JType("java.lang.String[]"),),
                                    VOID)
        assert signature.descriptor() == "([Ljava/lang/String;)V"
        assert str(signature) == "void main(java.lang.String[])"

    def test_field_signature(self):
        assert str(FieldSignature("MAP", JType("java.util.Map"))) == \
            "java.util.Map MAP"

    def test_method_descriptor_through_jmethod(self):
        method = JMethod("f", INT, [INT, STRING])
        assert method.descriptor() == "(ILjava/lang/String;)I"


class TestJClass:
    def test_internal_name(self):
        assert JClass("java.util.Map").internal_name == "java/util/Map"

    def test_find_members(self):
        builder = ClassBuilder("X")
        builder.field("a", INT)
        builder.default_init()
        jclass = builder.build()
        assert jclass.find_field("a").jtype == INT
        assert jclass.find_field("missing") is None
        assert jclass.find_method("<init>") is not None
        assert jclass.find_method("missing") is None

    def test_referenced_classes(self):
        builder = ClassBuilder("X", superclass="java.lang.Thread")
        builder.implements("java.lang.Runnable")
        method = MethodBuilder("m", modifiers=["public"])
        method.throws("java.io.IOException")
        method.ret()
        builder.method(method.build())
        refs = builder.build().referenced_classes()
        assert {"java.lang.Thread", "java.lang.Runnable",
                "java.io.IOException"} <= refs

    def test_clone_is_deep(self):
        builder = ClassBuilder("X")
        builder.field("a", INT)
        builder.default_init()
        original = builder.build()
        clone = original.clone()
        clone.fields[0].name = "changed"
        clone.methods[0].modifiers.append("static")
        assert original.fields[0].name == "a"
        assert "static" not in original.methods[0].modifiers

    def test_clone_matches_deepcopy_and_isolates_body(self):
        # A class exercising every mutable container the structural
        # clone must rebuild: invoke args, switch cases, traps, locals.
        ref = MethodRef("java.io.PrintStream", "println", VOID, (INT,))
        method = JMethod(
            "m", modifiers=["public", "static"],
            thrown=["java.lang.Exception"],
            locals=[JLocal("x", INT)],
            body=[
                InvokeStmt(InvokeExpr("virtual", ref, "r0", ["x"])),
                SwitchStmt("x", [(1, "L1"), (2, "L2")], "L3"),
                ReturnStmt(),
            ],
            traps=[Trap("L1", "L2", "L3", "java.lang.Exception", "e")])
        original = JClass("X", fields=[JField("a", INT, ["static"])],
                          methods=[method])
        clone = original.clone()
        assert clone == copy.deepcopy(original)

        cloned = clone.methods[0]
        cloned.locals[0].name = "y"
        cloned.body[0].invoke.args.append("x")
        cloned.body[0].invoke.base = "r9"
        cloned.body[1].cases.append((3, "L3"))
        cloned.traps[0].handler_local = "f"
        cloned.thrown.append("java.lang.Error")
        assert method.locals[0].name == "x"
        assert method.body[0].invoke.args == ["x"]
        assert method.body[0].invoke.base == "r0"
        assert method.body[1].cases == [(1, "L1"), (2, "L2")]
        assert method.traps[0].handler_local == "e"
        assert method.thrown == ["java.lang.Exception"]

    def test_clone_shares_raw_code_blob(self):
        blob = object()
        original = JClass("X", methods=[JMethod("m", raw_code=blob)])
        assert original.clone().methods[0].raw_code is blob

    def test_concrete_methods(self):
        builder = ClassBuilder("X")
        builder.default_init()
        abstract = MethodBuilder("a", modifiers=["public", "abstract"])
        abstract.abstract_body()
        builder.method(abstract.build())
        jclass = builder.build()
        assert [m.name for m in jclass.concrete_methods()] == ["<init>"]

    def test_modifier_predicates(self):
        iface = ClassBuilder("I", modifiers=["public", "interface",
                                             "abstract"]).build()
        assert iface.is_interface
        assert iface.has_modifier("abstract")
        assert not ClassBuilder("C").build().is_interface


class TestJMethod:
    def test_predicates(self):
        method = JMethod("m", modifiers=["public", "static", "native"])
        assert method.is_static and method.is_native
        assert not method.is_abstract

    def test_find_local(self):
        method = JMethod("m", locals=[JLocal("x", INT)])
        assert method.find_local("x").jtype == INT
        assert method.find_local("y") is None

    def test_default_field_values(self):
        field = JField("f", STRING)
        assert field.modifiers == []
        assert field.constant_value is None
        assert field.signature.name == "f"


class TestBuilders:
    def test_default_init_calls_super(self):
        builder = ClassBuilder("X", superclass="java.lang.Thread")
        builder.default_init()
        init = builder.build().find_method("<init>")
        text = "\n".join(str(stmt) for stmt in init.body)
        assert "java.lang.Thread: void <init>()" in text

    def test_version_builder(self):
        jclass = ClassBuilder("X").version(52, 3).build()
        assert jclass.major_version == 52
        assert jclass.minor_version == 3

    def test_throws_accumulates(self):
        method = MethodBuilder("m")
        method.throws("java.io.IOException", "java.lang.Exception")
        assert method.build().thrown == ["java.io.IOException",
                                         "java.lang.Exception"]
