"""Writer edge cases: the permissive serializer must emit exactly what
mutants contain, valid or not."""

import struct

import pytest

from repro.classfile import (
    AccessFlags,
    ClassFile,
    CodeAttribute,
    MethodInfo,
    read_class,
    write_class,
)
from repro.classfile.fields import FieldInfo
from repro.classfile.reader import ReaderOptions
from repro.classfile.writer import _clamp_s32, _clamp_s64
from repro.errors import ClassFormatError


def minimal():
    classfile = ClassFile()
    pool = classfile.constant_pool
    classfile.this_class = pool.class_ref("W")
    classfile.super_class = pool.class_ref("java/lang/Object")
    classfile.access_flags = AccessFlags.PUBLIC | AccessFlags.SUPER
    return classfile


class TestClamping:
    def test_s32_wraps_like_java(self):
        assert _clamp_s32(2 ** 31) == -(2 ** 31)
        assert _clamp_s32(-2 ** 31 - 1) == 2 ** 31 - 1
        assert _clamp_s32(5) == 5

    def test_s64_wraps_like_java(self):
        assert _clamp_s64(2 ** 63) == -(2 ** 63)
        assert _clamp_s64(-1) == -1

    def test_out_of_range_integer_constant_serializes(self):
        classfile = minimal()
        classfile.constant_pool.integer(2 ** 40)  # silently wrapped
        data = write_class(classfile)
        parsed = read_class(data)
        values = [info.value for _, info in parsed.constant_pool
                  if isinstance(info.value, int)]
        assert _clamp_s32(2 ** 40) in values


class TestInvalidStructures:
    def test_dangling_super_index_serializes(self):
        """The writer must NOT validate; the JVMs decide."""
        classfile = minimal()
        classfile.super_class = 999
        data = write_class(classfile)
        with pytest.raises(ClassFormatError):
            read_class(data)

    def test_contradictory_flags_serialize(self):
        classfile = minimal()
        classfile.access_flags = (AccessFlags.FINAL | AccessFlags.ABSTRACT
                                  | AccessFlags.INTERFACE)
        parsed = read_class(write_class(classfile))
        assert parsed.access_flags & AccessFlags.FINAL
        assert parsed.access_flags & AccessFlags.ABSTRACT

    def test_flag_bits_masked_to_16(self):
        classfile = minimal()
        classfile.access_flags = AccessFlags(0x1FFFF)
        data = write_class(classfile)
        # access_flags field holds only 16 bits.
        parsed = read_class(write_class(read_class(data,
                            ReaderOptions(reject_trailing_bytes=False))))
        assert int(parsed.access_flags) <= 0xFFFF

    def test_duplicate_members_serialize(self):
        classfile = minimal()
        pool = classfile.constant_pool
        for _ in range(2):
            classfile.fields.append(FieldInfo(
                AccessFlags.PUBLIC, pool.utf8("x"), pool.utf8("I")))
        parsed = read_class(write_class(classfile))
        assert len(parsed.fields) == 2

    def test_garbage_bytecode_serializes(self):
        classfile = minimal()
        pool = classfile.constant_pool
        code = CodeAttribute(1, 1, b"\xff\xfe\xfd")
        classfile.methods.append(MethodInfo(
            AccessFlags.PUBLIC, pool.utf8("m"), pool.utf8("()V"), [code]))
        parsed = read_class(write_class(classfile))
        assert parsed.methods[0].code.code == b"\xff\xfe\xfd"

    def test_big_constant_pool(self):
        classfile = minimal()
        pool = classfile.constant_pool
        for i in range(500):
            pool.utf8(f"entry{i}")
        parsed = read_class(write_class(classfile))
        assert len(parsed.constant_pool) == len(pool)

    def test_unicode_names_roundtrip(self):
        classfile = minimal()
        pool = classfile.constant_pool
        index = pool.utf8("名前é€")
        parsed = read_class(write_class(classfile))
        assert parsed.constant_pool.get_utf8(index) == "名前é€"
