"""In-batch dedup of ``run_reference_many`` (the duplicate-mutant fix).

Before the fix, a batch holding N identical classfiles executed the
reference JVM N times on a cold cache (the per-item cache lookup only
caught duplicates *after* the first one was executed and stored — which
never happened within one bulk call).  Now identical items are
deduplicated by digest up front: one execution per distinct digest, all
duplicate positions filled from the single ``(outcome, trace)`` pair.
"""

import pytest

from repro.core.executor import (
    OutcomeCache,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple.to_classfile import compile_class_bytes
from repro.jvm.vendors import reference_jvm


@pytest.fixture(scope="module")
def classfiles():
    seeds = generate_corpus(CorpusConfig(count=6, seed=77))
    return [compile_class_bytes(jclass) for jclass in seeds]


@pytest.fixture(scope="module")
def jvm():
    return reference_jvm()


class TestSerialDedup:
    def test_duplicates_execute_once(self, classfiles, jvm):
        engine = SerialExecutor(cache=OutcomeCache())
        batch = [classfiles[0]] * 5
        results = engine.run_reference_many(jvm, batch)
        assert len(results) == 5
        assert engine.stats.runs == 1
        assert engine.stats.trace_misses == 1
        # The four duplicate positions are served without an execution,
        # exactly like cache hits.
        assert engine.stats.trace_hits == 4

    def test_duplicate_positions_share_one_trace_instance(
            self, classfiles, jvm):
        engine = SerialExecutor(cache=OutcomeCache())
        results = engine.run_reference_many(jvm, [classfiles[0]] * 3)
        outcomes = {id(outcome) for outcome, _ in results}
        traces = {id(trace) for _, trace in results}
        assert len(outcomes) == 1
        assert len(traces) == 1

    def test_mixed_batch_positions_filled_in_input_order(
            self, classfiles, jvm):
        engine = SerialExecutor(cache=OutcomeCache())
        a, b, c = classfiles[:3]
        batch = [a, b, a, c, b, a]
        results = engine.run_reference_many(jvm, batch)
        baseline = {bytes_: SerialExecutor().run_reference(jvm, bytes_)
                    for bytes_ in (a, b, c)}
        assert results == [baseline[bytes_] for bytes_ in batch]
        assert engine.stats.runs == 3
        assert engine.stats.trace_misses == 3
        assert engine.stats.trace_hits == 3

    def test_hits_plus_misses_cover_the_batch(self, classfiles, jvm):
        engine = SerialExecutor(cache=OutcomeCache())
        batch = [classfiles[0], classfiles[1], classfiles[0]]
        engine.run_reference_many(jvm, batch)
        assert engine.stats.trace_hits + engine.stats.trace_misses == \
            len(batch)

    def test_cache_hits_and_in_batch_dedup_compose(self, classfiles,
                                                   jvm):
        engine = SerialExecutor(cache=OutcomeCache())
        engine.run_reference_many(jvm, [classfiles[0]])
        engine.run_reference_many(jvm, [classfiles[0], classfiles[0],
                                        classfiles[1], classfiles[1]])
        # Second call: two positions hit the warm cache, one distinct
        # new digest executes, its duplicate is served in-batch.
        assert engine.stats.runs == 2
        assert engine.stats.trace_misses == 2
        assert engine.stats.trace_hits == 3

    def test_dedup_without_cache(self, classfiles, jvm):
        engine = SerialExecutor()  # cache=None
        batch = [classfiles[0]] * 4 + [classfiles[1]]
        results = engine.run_reference_many(jvm, batch)
        assert engine.stats.runs == 2
        assert len({id(trace) for _, trace in results[:4]}) == 1
        cached = SerialExecutor(cache=OutcomeCache())
        assert results == cached.run_reference_many(jvm, batch)


class TestParallelDedup:
    def test_thread_backend_dedups(self, classfiles, jvm):
        with ThreadExecutor(jobs=4, cache=OutcomeCache()) as engine:
            results = engine.run_reference_many(
                jvm, [classfiles[0]] * 6 + [classfiles[1]] * 2)
            assert engine.stats.runs == 2
            assert engine.stats.trace_misses == 2
            assert engine.stats.trace_hits == 6
        serial = SerialExecutor(cache=OutcomeCache()).run_reference_many(
            jvm, [classfiles[0]] * 6 + [classfiles[1]] * 2)
        assert results == serial

    def test_process_backend_dedups(self, classfiles, jvm):
        batch = [classfiles[0]] * 4 + [classfiles[1]]
        try:
            with ProcessExecutor(jobs=2, cache=OutcomeCache()) as engine:
                results = engine.run_reference_many(jvm, batch)
                runs = engine.stats.runs
        except (OSError, ValueError, ImportError) as exc:
            pytest.skip(f"process pool unavailable: {exc}")
        assert runs == 2
        serial = SerialExecutor(cache=OutcomeCache()).run_reference_many(
            jvm, batch)
        assert results == serial
