"""Tests for greedy set-cover suite distillation."""

import pytest

from repro.cli import main
from repro.core.fuzzing import classfuzz, randfuzz
from repro.core.storage import load_suite, save_suite
from repro.corpus import CorpusConfig, generate_corpus
from repro.corpus.distill import covered_sites, distill_traces
from repro.coverage.tracefile import Tracefile


def trace(statements, branches=()):
    return Tracefile(statements={f"a.c:{s}": 1 for s in statements},
                     branches={(f"a.c:{b}", True): 1 for b in branches})


class TestDistillTraces:
    def test_exact_cover_preserved(self):
        entries = [("A", trace([1, 2], [1])),
                   ("B", trace([2, 3])),
                   ("C", trace([3]))]
        result = distill_traces(entries)
        kept = {label: t for label, t in entries
                if label in result.selected}
        full_stmts, full_brs = covered_sites([t for _, t in entries])
        kept_stmts, kept_brs = covered_sites(list(kept.values()))
        assert kept_stmts == full_stmts
        assert kept_brs == full_brs
        assert result.kept_count <= len(entries)

    def test_redundant_entry_dropped(self):
        entries = [("big", trace([1, 2, 3])),
                   ("sub", trace([2, 3]))]
        result = distill_traces(entries)
        assert result.selected == ["big"]
        assert result.dropped == ["sub"]
        assert result.reduction == 0.5

    def test_greedy_picks_largest_gain_first(self):
        entries = [("small", trace([1])),
                   ("large", trace([2, 3, 4])),
                   ("other", trace([1, 5]))]
        result = distill_traces(entries)
        assert result.selected[0] == "large"

    def test_ties_break_toward_earlier_entry(self):
        entries = [("first", trace([1, 2])),
                   ("twin", trace([1, 2])),
                   ("rest", trace([3]))]
        result = distill_traces(entries)
        assert "first" in result.selected
        assert "twin" in result.dropped

    def test_deterministic(self):
        entries = [("A", trace([1, 2])), ("B", trace([2, 3])),
                   ("C", trace([4])), ("D", trace([1, 4]))]
        results = [distill_traces(entries).selected for _ in range(3)]
        assert results[0] == results[1] == results[2]

    def test_branches_distinct_from_statements(self):
        # Same numeric site as statement vs branch must not collide.
        entries = [("stmt", trace([1])), ("br", trace([], [1]))]
        result = distill_traces(entries)
        assert sorted(result.selected) == ["br", "stmt"]

    def test_missing_tracefile_rejected(self):
        with pytest.raises(ValueError, match="M7"):
            distill_traces([("M7", None)])

    def test_empty_suite(self):
        result = distill_traces([])
        assert result.selected == []
        assert result.reduction == 0.0

    def test_summary_mentions_counts(self):
        entries = [("big", trace([1, 2, 3])), ("sub", trace([2]))]
        text = distill_traces(entries).summary()
        assert "2 -> 1" in text


class TestDistillSuite:
    @pytest.fixture(scope="class")
    def suite_dir(self, tmp_path_factory):
        seeds = generate_corpus(CorpusConfig(count=15, seed=5))
        run = classfuzz(seeds, iterations=60, seed=5)
        directory = tmp_path_factory.mktemp("suite") / "run"
        save_suite(run, directory)
        return directory, run

    def test_distilled_covers_same_sites(self, suite_dir):
        from repro.core.storage import load_tracefile

        directory, run = suite_dir
        from repro.corpus.distill import distill_suite

        result = distill_suite(directory)
        assert 0 < result.kept_count <= len(run.test_classes)
        traces = [load_tracefile(directory, label)
                  for label in result.selected]
        kept_stmts, kept_brs = covered_sites(traces)
        full_stmts, full_brs = covered_sites(
            [g.tracefile for g in run.test_classes])
        assert kept_stmts == full_stmts
        assert kept_brs == full_brs

    def test_written_output_loads(self, suite_dir, tmp_path):
        from repro.core.storage import load_manifest
        from repro.corpus.distill import distill_suite

        directory, _ = suite_dir
        out = tmp_path / "distilled"
        result = distill_suite(directory, out=out)
        manifest = load_manifest(out)
        assert manifest["distillation"]["kept_count"] \
            == result.kept_count
        suite = load_suite(out)
        assert sorted(label for label, _ in suite) \
            == sorted(result.selected)

    def test_cli_distill(self, suite_dir, tmp_path, capsys):
        directory, _ = suite_dir
        out = tmp_path / "cli-distilled"
        code = main(["distill", str(directory), "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "distilled" in captured
        assert (out / "manifest.json").exists()

    def test_cli_rejects_traceless_suite(self, tmp_path, capsys):
        seeds = generate_corpus(CorpusConfig(count=8, seed=2))
        run = randfuzz(seeds, iterations=10, seed=2)
        save_suite(run, tmp_path / "blind")
        code = main(["distill", str(tmp_path / "blind")])
        assert code == 2
        assert "randfuzz" in capsys.readouterr().err
