"""Verifier coverage of exception-handler entry states."""

import pytest

from repro.bytecode import Assembler, Op
from repro.classfile.access_flags import AccessFlags
from repro.classfile.attributes import CodeAttribute, ExceptionHandler
from repro.classfile.methods import MethodInfo
from repro.classfile.model import ClassFile
from repro.errors import VerifyError
from repro.jvm.policy import JvmPolicy
from repro.jvm.verifier import MethodVerifier
from repro.runtime.environment import build_environment

LIBRARY = build_environment(8).library


def build(code_builder, handlers, max_stack=4, max_locals=4,
          **policy_overrides):
    classfile = ClassFile()
    pool = classfile.constant_pool
    classfile.this_class = pool.class_ref("HTest")
    classfile.super_class = pool.class_ref("java/lang/Object")
    classfile.access_flags = AccessFlags.PUBLIC | AccessFlags.SUPER
    asm = Assembler()
    code_builder(asm, pool)
    code_bytes = asm.build()
    table = [ExceptionHandler(s, e, asm.label_offsets.get(h, h), c)
             if isinstance(h, str) else ExceptionHandler(s, e, h, c)
             for s, e, h, c in handlers]
    code = CodeAttribute(max_stack, max_locals, code_bytes, table)
    method = MethodInfo(AccessFlags.PUBLIC | AccessFlags.STATIC,
                        pool.utf8("m"), pool.utf8("()V"), [code])
    classfile.methods.append(method)
    policy = JvmPolicy(**policy_overrides)
    MethodVerifier(classfile, method, code, policy, LIBRARY).verify()


class TestHandlerVerification:
    def test_valid_handler_verifies(self):
        def body(asm, pool):
            asm.emit(Op.NOP)
            asm.emit(Op.RETURN)
            asm.label("h")
            asm.emit(Op.POP)   # consumes the pushed throwable
            asm.emit(Op.RETURN)
        build(body, [(0, 1, "h", 0)])

    def test_handler_sees_throwable_on_stack(self):
        def body(asm, pool):
            asm.emit(Op.NOP)
            asm.emit(Op.RETURN)
            asm.label("h")
            asm.emit(Op.ASTORE, index=1)   # store the caught reference
            asm.emit(Op.RETURN)
        build(body, [(0, 1, "h", 0)])

    def test_handler_with_wrong_consumption_fails(self):
        def body(asm, pool):
            asm.emit(Op.NOP)
            asm.emit(Op.RETURN)
            asm.label("h")
            asm.emit(Op.ISTORE, index=1)   # int store on a reference
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError):
            build(body, [(0, 1, "h", 0)])

    def test_handler_range_bounds_checked(self):
        def body(asm, pool):
            asm.emit(Op.NOP)
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError, match="exception table range"):
            build(body, [(5, 1, 0, 0)])

    def test_handler_pc_must_hit_instruction(self):
        def body(asm, pool):
            asm.emit(Op.NOP)
            asm.emit(Op.SIPUSH, value=1)
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError, match="handler"):
            build(body, [(0, 1, 2, 0)])   # 2 is inside sipush

    def test_bad_catch_type_tag(self):
        def body(asm, pool):
            asm.emit(Op.NOP)
            asm.emit(Op.RETURN)
            asm.label("h")
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        from repro.errors import ClassFormatError

        with pytest.raises(ClassFormatError):
            def body2(asm, pool):
                body(asm, pool)
                pool.utf8("notaclass")
            build(body2, [(0, 1, "h", 1)])  # index 1 is a Utf8, not Class
