"""Corpus generator determinism: same seed, byte-identical classfiles.

The seed-pool, checkpoint, and distillation layers all assume the
corpus generator is a pure function of its config — the same
``CorpusConfig`` must yield the same compiled bytes whether the corpus
is built twice in one process or fanned out across process workers.
"""

import hashlib

import pytest

from repro.core.executor import ProcessExecutor, SerialExecutor
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple.to_classfile import compile_class_bytes


def corpus_digests(count, seed):
    """Module-level (picklable) helper: sha256 of each compiled seed."""
    corpus = generate_corpus(CorpusConfig(count=count, seed=seed))
    return [hashlib.sha256(compile_class_bytes(jclass)).hexdigest()
            for jclass in corpus]


def futures_broken():
    from concurrent.futures.process import BrokenProcessPool

    return BrokenProcessPool


class TestCorpusDeterminism:
    def test_two_runs_byte_identical(self):
        first = generate_corpus(CorpusConfig(count=25, seed=17))
        second = generate_corpus(CorpusConfig(count=25, seed=17))
        assert [c.name for c in first] == [c.name for c in second]
        assert [compile_class_bytes(c) for c in first] \
            == [compile_class_bytes(c) for c in second]

    def test_different_seed_differs(self):
        first = corpus_digests(20, 1)
        second = corpus_digests(20, 2)
        assert first != second

    def test_serial_map_matches_inline(self):
        inline = corpus_digests(15, 9)
        with SerialExecutor() as engine:
            mapped = engine.map_many(corpus_digests_for,
                                     [(15, 9)] * 3)
        assert all(result == inline for result in mapped)

    def test_process_backend_matches_inline(self):
        """The pipeline's process fan-out must see the same bytes the
        serial loop would — generation cannot depend on process state."""
        inline = corpus_digests(15, 9)
        try:
            with ProcessExecutor(jobs=2) as engine:
                mapped = engine.map_many(corpus_digests_for,
                                         [(15, 9)] * 2)
        except (OSError, futures_broken()) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable: {exc}")
        assert all(result == inline for result in mapped)


def corpus_digests_for(args):
    count, seed = args
    return corpus_digests(count, seed)
