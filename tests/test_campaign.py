"""Tests for campaign orchestration and the paper-scale cost model."""

import pytest

from repro.core.campaign import (
    ALL_ALGORITHMS,
    ITERATION_COST,
    PAPER_BUDGET_SECONDS,
    CampaignRun,
    format_table4,
    iterations_for_budget,
    run_campaign,
)
from repro.corpus import CorpusConfig, generate_corpus


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=20, seed=3))


class TestCostModel:
    def test_full_budget_reproduces_table4_iterations(self):
        expected = {"classfuzz[stbr]": 2130, "classfuzz[st]": 2108,
                    "classfuzz[tr]": 1971, "uniquefuzz": 1898,
                    "greedyfuzz": 1911, "randfuzz": 46318}
        for label, iterations in expected.items():
            assert iterations_for_budget(label,
                                         PAPER_BUDGET_SECONDS) == iterations

    def test_directed_iteration_costs_cluster(self):
        directed = [cost for label, cost in ITERATION_COST.items()
                    if label != "randfuzz"]
        assert all(110 < cost < 140 for cost in directed)
        assert ITERATION_COST["randfuzz"] < 10

    def test_minimum_one_iteration(self):
        assert iterations_for_budget("randfuzz", 0.001) == 1

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            iterations_for_budget("nope", 100)


class TestCampaign:
    def test_runs_requested_algorithms(self, seeds):
        runs = run_campaign(seeds, 3000.0,
                            algorithms=("classfuzz[stbr]", "randfuzz"))
        assert [run.label for run in runs] == ["classfuzz[stbr]",
                                               "randfuzz"]

    def test_evaluation_optional(self, seeds):
        runs = run_campaign(seeds, 2000.0, algorithms=("randfuzz",))
        assert runs[0].gen_report is None
        runs = run_campaign(seeds, 2000.0, algorithms=("randfuzz",),
                            evaluate=True)
        assert runs[0].gen_report is not None

    def test_repetitions_keep_largest_suite(self, seeds):
        single = run_campaign(seeds, 4000.0,
                              algorithms=("classfuzz[stbr]",),
                              rng_seed=1, repetitions=1)
        best = run_campaign(seeds, 4000.0,
                            algorithms=("classfuzz[stbr]",),
                            rng_seed=1, repetitions=3)
        assert len(best[0].fuzz.test_classes) >= \
            len(single[0].fuzz.test_classes)

    def test_modeled_costs_positive(self, seeds):
        runs = run_campaign(seeds, 3000.0, algorithms=("classfuzz[stbr]",))
        run = runs[0]
        if run.fuzz.gen_classes:
            assert run.modeled_seconds_per_generated > 0
        if run.fuzz.test_classes:
            assert run.modeled_seconds_per_test >= \
                run.modeled_seconds_per_generated

    def test_table4_formatting(self, seeds):
        runs = run_campaign(seeds, 2000.0,
                            algorithms=("classfuzz[stbr]", "randfuzz"))
        table = format_table4(runs)
        assert "algorithm" in table and "succ" in table
        assert "classfuzz[stbr]" in table
        assert len(table.splitlines()) == 3

    def test_all_algorithms_constant(self):
        assert set(ALL_ALGORITHMS) == set(ITERATION_COST)
