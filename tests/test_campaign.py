"""Tests for campaign orchestration and the paper-scale cost model."""

import pytest

from repro.core.campaign import (
    ALL_ALGORITHMS,
    ITERATION_COST,
    PAPER_BUDGET_SECONDS,
    CampaignRun,
    format_mutator_report,
    format_table4,
    iterations_for_budget,
    run_campaign,
)
from repro.core.fuzzing import FuzzResult, GeneratedClass
from repro.core.metrics import format_table
from repro.corpus import CorpusConfig, generate_corpus


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=20, seed=3))


class TestCostModel:
    def test_full_budget_reproduces_table4_iterations(self):
        expected = {"classfuzz[stbr]": 2130, "classfuzz[st]": 2108,
                    "classfuzz[tr]": 1971, "uniquefuzz": 1898,
                    "greedyfuzz": 1911, "randfuzz": 46318}
        for label, iterations in expected.items():
            assert iterations_for_budget(label,
                                         PAPER_BUDGET_SECONDS) == iterations

    def test_directed_iteration_costs_cluster(self):
        directed = [cost for label, cost in ITERATION_COST.items()
                    if label != "randfuzz"]
        assert all(110 < cost < 140 for cost in directed)
        assert ITERATION_COST["randfuzz"] < 10

    def test_minimum_one_iteration(self):
        assert iterations_for_budget("randfuzz", 0.001) == 1

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            iterations_for_budget("nope", 100)


class TestCampaign:
    def test_runs_requested_algorithms(self, seeds):
        runs = run_campaign(seeds, 3000.0,
                            algorithms=("classfuzz[stbr]", "randfuzz"))
        assert [run.label for run in runs] == ["classfuzz[stbr]",
                                               "randfuzz"]

    def test_evaluation_optional(self, seeds):
        runs = run_campaign(seeds, 2000.0, algorithms=("randfuzz",))
        assert runs[0].gen_report is None
        runs = run_campaign(seeds, 2000.0, algorithms=("randfuzz",),
                            evaluate=True)
        assert runs[0].gen_report is not None

    def test_repetitions_keep_largest_suite(self, seeds):
        single = run_campaign(seeds, 4000.0,
                              algorithms=("classfuzz[stbr]",),
                              rng_seed=1, repetitions=1)
        best = run_campaign(seeds, 4000.0,
                            algorithms=("classfuzz[stbr]",),
                            rng_seed=1, repetitions=3)
        assert len(best[0].fuzz.test_classes) >= \
            len(single[0].fuzz.test_classes)

    def test_modeled_costs_positive(self, seeds):
        runs = run_campaign(seeds, 3000.0, algorithms=("classfuzz[stbr]",))
        run = runs[0]
        if run.fuzz.gen_classes:
            assert run.modeled_seconds_per_generated > 0
        if run.fuzz.test_classes:
            assert run.modeled_seconds_per_test >= \
                run.modeled_seconds_per_generated

    def test_table4_formatting(self, seeds):
        runs = run_campaign(seeds, 2000.0,
                            algorithms=("classfuzz[stbr]", "randfuzz"))
        table = format_table4(runs)
        assert "algorithm" in table and "succ" in table
        assert "classfuzz[stbr]" in table
        assert len(table.splitlines()) == 3

    def test_all_algorithms_constant(self):
        assert set(ALL_ALGORITHMS) == set(ITERATION_COST)


def _fake_result(label, generated=4, accepted=2, iterations=10,
                 elapsed=1.0):
    result = FuzzResult(label, None, iterations)
    for index in range(generated):
        item = GeneratedClass(f"M{index}", None, b"")
        result.gen_classes.append(item)
        if index < accepted:
            result.test_classes.append(item)
    result.elapsed_seconds = elapsed
    return result


class TestModeledCostFallback:
    def test_unknown_label_uses_measured_wall_clock(self):
        # Labels outside the Table 4 cost model (extension algorithms)
        # must not raise KeyError; they average measured wall-clock.
        run = CampaignRun("versionfuzz", _fake_result(
            "versionfuzz", generated=4, accepted=2, elapsed=8.0))
        assert run.modeled_seconds_per_generated == pytest.approx(2.0)
        assert run.modeled_seconds_per_test == pytest.approx(4.0)
        assert run.table4_row()["sec_per_generated"] == "2.0"

    def test_known_label_still_uses_cost_model(self):
        run = CampaignRun("randfuzz", _fake_result(
            "randfuzz", generated=5, accepted=5, iterations=10,
            elapsed=0.001))
        expected = ITERATION_COST["randfuzz"] * 10 / 5
        assert run.modeled_seconds_per_generated == pytest.approx(expected)

    def test_empty_suites_stay_zero(self):
        run = CampaignRun("nope", _fake_result("nope", generated=0,
                                               accepted=0))
        assert run.modeled_seconds_per_generated == 0.0
        assert run.modeled_seconds_per_test == 0.0


class TestMutatorReport:
    def test_renders_top_rows_per_run(self):
        result = _fake_result("randfuzz")
        result.mutator_report = [("m.best", 5, 4, 0.8),
                                 ("m.mid", 3, 1, 1 / 3),
                                 ("m.worst", 2, 0, 0.0)]
        text = format_mutator_report([CampaignRun("randfuzz", result)],
                                     top=2)
        assert "mutator report — randfuzz (top 2 of 3)" in text
        assert "m.best" in text and "80.0%" in text
        assert "m.worst" not in text

    def test_run_without_report_renders_empty_block(self):
        text = format_mutator_report(
            [CampaignRun("randfuzz", _fake_result("randfuzz"))])
        assert "top 0 of 0" in text


class TestEmptyTables:
    def test_format_table4_empty(self):
        table = format_table4([])
        assert table.splitlines() == [table]  # header only, no crash
        assert "algorithm" in table

    def test_format_table_empty(self):
        table = format_table([])
        assert "suite" in table
        assert len(table.splitlines()) == 1
