"""Tests for the §2.3 fine-grained outcome analysis."""

from repro.classfile.writer import write_class
from repro.core.metrics import evaluate_suite
from repro.jimple import ClassBuilder, compile_class
from repro.jvm.outcome import (
    DifferentialResult,
    Outcome,
    Phase,
    encode_outcomes_fine,
)


class TestFineEncoding:
    def test_fine_codes_carry_error_names(self):
        outcomes = [
            Outcome(Phase.INVOKED, jvm_name="a"),
            Outcome(Phase.LINKING, error="VerifyError", jvm_name="b"),
        ]
        assert encode_outcomes_fine(outcomes) == (
            (0, ""), (2, "VerifyError"))

    def test_same_phase_different_error_is_fine_discrepancy(self):
        """The phase encoding's false negative: both reject at linking,
        but for different reasons."""
        result = DifferentialResult(outcomes=[
            Outcome(Phase.LINKING, error="VerifyError", jvm_name="a"),
            Outcome(Phase.LINKING, error="IncompatibleClassChangeError",
                    jvm_name="b"),
        ])
        assert not result.is_discrepancy
        assert result.is_fine_discrepancy

    def test_identical_outcomes_not_fine_discrepant(self):
        result = DifferentialResult(outcomes=[
            Outcome(Phase.LINKING, error="VerifyError", jvm_name="a"),
            Outcome(Phase.LINKING, error="VerifyError", jvm_name="b"),
        ])
        assert not result.is_fine_discrepancy

    def test_fine_implies_at_least_phase_count(self, harness):
        """Over a real suite, fine discrepancies ⊇ phase discrepancies."""
        from repro.corpus import CorpusConfig, generate_corpus
        from repro.jimple.to_classfile import compile_class_bytes

        seeds = generate_corpus(CorpusConfig(count=60, seed=21))
        suite = [(s.name, compile_class_bytes(s)) for s in seeds]
        report = evaluate_suite("seeds", suite, harness)
        assert report.fine_discrepancies >= report.discrepancies

    def test_real_same_phase_split_detected(self, harness):
        """Extending ``sun.misc.Unsafe`` (final + restricted): HotSpot 8
        rejects with VerifyError, HotSpot 9 with IllegalAccessError —
        both during linking, so the phase codes agree between them and
        only the fine encoding separates the two HotSpots."""
        builder = ClassBuilder("SubUnsafe", superclass="sun.misc.Unsafe")
        builder.default_init()
        builder.main_printing()
        data = write_class(compile_class(builder.build()))
        result = harness.run_one(data, "SubUnsafe")
        by_name = {o.jvm_name: o for o in result.outcomes}
        assert by_name["hotspot8"].code == by_name["hotspot9"].code == 2
        assert by_name["hotspot8"].error == "VerifyError"
        assert by_name["hotspot9"].error == "IllegalAccessError"
        assert result.is_fine_discrepancy
