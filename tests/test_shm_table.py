"""Tests for the shared-memory coverage transport layers.

Three layers are pinned here, bottom up:

1. :class:`~repro.coverage.shm.SharedSiteTable` — the append-only
   cross-process site table whose entry order defines ids, plus its
   /dev/shm lifecycle (create → destroy leaves nothing behind);
2. :class:`~repro.coverage.interner.SiteInterner` with a shared backing —
   attach/publish/adopt semantics, cross-interner id agreement, and the
   ``verify_shared`` consistency check checkpoint resume relies on;
3. the packed payload + :class:`~repro.coverage.tracefile.PackedTracefile`
   — encode/decode round trips and the laziness contract (string dicts
   materialise only on demand, and always to the exact serial dicts).
"""

import pickle
from array import array
from multiprocessing import shared_memory

import pytest

from repro.coverage.bitmap import BITMAP_SIZE, CoverageBitmap
from repro.coverage.interner import SharedTableFull, SiteInterner
from repro.coverage.shm import (
    KIND_BRANCH_TRUE,
    KIND_STATEMENT,
    SharedSiteTable,
    TraceSlotRing,
    decode_payload,
    encode_payload,
)
from repro.coverage.tracefile import PackedTracefile, Tracefile


@pytest.fixture
def table():
    table = SharedSiteTable(capacity=4096)
    yield table
    table.destroy()


def segment_gone(name):
    """Whether the shared-memory segment was unlinked."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    seg.close()
    return False


class TestSharedSiteTable:
    def test_append_read_roundtrip(self, table):
        with table.lock:
            table.append(KIND_STATEMENT, "verifier.op.iadd")
            table.append(KIND_BRANCH_TRUE, "interp.branch.ifeq")
        assert table.entry_count() == 2
        with table.lock:
            entries, _ = table.read_entries(0, table.data_start)
        assert entries == [(KIND_STATEMENT, "verifier.op.iadd"),
                           (KIND_BRANCH_TRUE, "interp.branch.ifeq")]

    def test_incremental_read_uses_cursor(self, table):
        with table.lock:
            table.append(KIND_STATEMENT, "a")
            first, offset = table.read_entries(0, table.data_start)
            table.append(KIND_STATEMENT, "b")
            second, _ = table.read_entries(1, offset)
        assert [text for _, text in first] == ["a"]
        assert [text for _, text in second] == ["b"]

    def test_overflow_raises_shared_table_full(self):
        tiny = SharedSiteTable(capacity=48)
        try:
            with tiny.lock:
                with pytest.raises(SharedTableFull):
                    for i in range(100):
                        tiny.append(KIND_STATEMENT, f"site.{i:04d}")
        finally:
            tiny.destroy()

    def test_destroy_unlinks_segment(self):
        table = SharedSiteTable(capacity=1024)
        name = table.name
        assert not segment_gone(name)
        table.destroy()
        assert segment_gone(name)
        table.destroy()  # idempotent

    def test_segment_name_greppable(self, table):
        assert table.name.startswith("repro_")


class TestSharedInterner:
    def test_attach_publishes_local_ids(self, table):
        interner = SiteInterner()
        sid = interner.statement_id("pre.attach")
        bid = interner.branch_id(("pre.branch", True))
        interner.attach_shared(table)
        assert table.entry_count() == 2
        # Pre-attach ids keep their values.
        assert interner.statement_id("pre.attach") == sid
        assert interner.branch_id(("pre.branch", True)) == bid

    def test_two_interners_agree_on_ids(self, table):
        first, second = SiteInterner(), SiteInterner()
        first.attach_shared(table)
        second.attach_shared(table)
        fid = first.statement_id("site.a")
        # second never saw "site.a"; interning consumes the table first.
        assert second.statement_id("site.a") == fid
        sid = second.branch_id(("site.b", False))
        assert first.branch_id(("site.b", False)) == sid

    def test_resolve_crosses_interner_boundary(self, table):
        minter, resolver = SiteInterner(), SiteInterner()
        minter.attach_shared(table)
        resolver.attach_shared(table)
        ids = [minter.statement_id(f"site.{i}") for i in range(5)]
        assert resolver.resolve_statements(ids) == \
            [f"site.{i}" for i in range(5)]

    def test_verify_shared_counts(self, table):
        interner = SiteInterner()
        interner.attach_shared(table)
        interner.statement_ids(["a", "b", "c"])
        interner.branch_ids([("x", True), ("x", False)])
        assert interner.verify_shared() == (3, 2)

    def test_divergent_history_rejected(self, table):
        # An interner whose pre-attach history contradicts the table's
        # entry order cannot attach: id 0 is already someone else.
        owner = SiteInterner()
        owner.attach_shared(table)
        owner.statement_id("theirs")
        diverged = SiteInterner()
        diverged.statement_id("mine")
        with pytest.raises(RuntimeError, match="shared site table"):
            diverged.attach_shared(table)

    def test_reattach_same_table_is_noop(self, table):
        interner = SiteInterner()
        interner.attach_shared(table)
        interner.attach_shared(table)
        assert interner.shared_table is table

    def test_second_table_rejected_until_detach(self, table):
        interner = SiteInterner()
        interner.attach_shared(table)
        other = SharedSiteTable(capacity=1024)
        try:
            with pytest.raises(RuntimeError, match="already"):
                interner.attach_shared(other)
            interner.detach_shared()
            interner.attach_shared(other)
        finally:
            interner.detach_shared()
            other.destroy()

    def test_detach_keeps_ids(self, table):
        interner = SiteInterner()
        interner.attach_shared(table)
        sid = interner.statement_id("sticky")
        interner.detach_shared()
        assert interner.shared_table is None
        assert interner.statement_id("sticky") == sid
        with pytest.raises(RuntimeError, match="no shared"):
            interner.verify_shared()


class TestTraceSlotRing:
    def test_write_read_roundtrip(self):
        ring = TraceSlotRing(slot_count=4, slot_size=64)
        try:
            ring.write(2, b"payload-two")
            ring.write(3, b"payload-three")
            assert ring.read(2, 11) == b"payload-two"
            assert ring.read(3, 13) == b"payload-three"
        finally:
            ring.destroy()

    def test_destroy_unlinks_segment(self):
        ring = TraceSlotRing(slot_count=2, slot_size=32)
        name = ring.name
        ring.destroy()
        assert segment_gone(name)
        ring.destroy()  # idempotent


class TestPackedPayload:
    def test_roundtrip_exact_mode(self):
        stmt = array("I", [0, 3, 2, 1])
        br = array("I", [1, 7])
        out_stmt, out_br, out_cmp, slots, buffer = decode_payload(
            encode_payload(stmt, br))
        assert out_stmt == stmt
        assert out_br == br
        assert len(out_cmp) == 0
        assert slots is None
        assert buffer == b""

    def test_roundtrip_bitmap_mode(self):
        stmt = array("I", [0, 1])
        buffer = bytes(BITMAP_SIZE)
        out_stmt, _, _, slots, out_buffer = decode_payload(
            encode_payload(stmt, array("I"), slots={5, 900}, buffer=buffer))
        assert out_stmt == stmt
        assert slots == frozenset({5, 900})
        assert out_buffer == buffer

    def test_roundtrip_comparison_pairs(self):
        stmt = array("I", [0, 3])
        cmp_pairs = array("I", [1, 2, 4, 1])
        out_stmt, _, out_cmp, slots, _ = decode_payload(
            encode_payload(stmt, array("I"), cmp_pairs))
        assert out_stmt == stmt
        assert out_cmp == cmp_pairs
        assert slots is None

    def test_empty_payload(self):
        out_stmt, out_br, out_cmp, slots, buffer = decode_payload(
            encode_payload(array("I"), array("I")))
        assert len(out_stmt) == len(out_br) == len(out_cmp) == 0
        assert slots is None


class TestPackedTracefile:
    def make_packed(self, interner):
        sids = [interner.statement_id(s) for s in ("s.a", "s.b")]
        bid = interner.branch_id(("b.x", True))
        stmt = array("I", [sids[0], 4, sids[1], 1])
        br = array("I", [bid, 2])
        return Tracefile.from_packed(stmt, br, interner=interner)

    def test_lazy_dict_materialisation(self):
        tr = self.make_packed(SiteInterner())
        assert isinstance(tr, PackedTracefile)
        # Count-only views never build the dicts.
        assert tr.signature == (2, 1)
        assert tr.total_hits() == 5
        assert "_statements_dict" not in tr.__dict__
        assert tr.statements == {"s.a": 4, "s.b": 1}
        assert tr.branches == {("b.x", True): 2}
        assert "_statements_dict" in tr.__dict__

    def test_materialised_dicts_preserve_pack_order(self):
        interner = SiteInterner()
        sites = [f"s.{i}" for i in (3, 1, 2)]  # first-hit order, unsorted
        pairs = array("I")
        for site in sites:
            pairs.extend([interner.statement_id(site), 1])
        tr = Tracefile.from_packed(pairs, array("I"), interner=interner)
        assert list(tr.statements) == sites

    def test_id_views_skip_string_roundtrip(self):
        interner = SiteInterner()
        tr = self.make_packed(interner)
        assert tr.stmt_ids == frozenset(
            {interner.statement_id("s.a"), interner.statement_id("s.b")})
        assert tr.br_ids == frozenset({interner.branch_id(("b.x", True))})
        assert "_statements_dict" not in tr.__dict__

    def test_equality_with_plain_tracefile_both_directions(self):
        tr = self.make_packed(SiteInterner())
        plain = Tracefile(statements={"s.a": 4, "s.b": 1},
                          branches={("b.x", True): 2})
        assert tr == plain
        assert plain == tr
        assert tr != Tracefile(statements={"s.a": 4})

    def test_pickle_ships_plain_tracefile(self):
        tr = self.make_packed(SiteInterner())
        clone = pickle.loads(pickle.dumps(tr))
        assert type(clone) is Tracefile
        assert clone == tr

    def test_bitmap_adopted_from_transport(self):
        # Slots hash through the process-global interner, so the packed
        # trace uses it too (the from_packed default).
        from repro.coverage.interner import GLOBAL_INTERNER

        plain = Tracefile(statements={"s.a": 4, "s.b": 1},
                          branches={("b.x", True): 2})
        reference = plain.bitmap
        sids = [GLOBAL_INTERNER.statement_id(s) for s in ("s.a", "s.b")]
        bid = GLOBAL_INTERNER.branch_id(("b.x", True))
        tr = Tracefile.from_packed(
            array("I", [sids[0], 4, sids[1], 1]), array("I", [bid, 2]),
            slots=reference.slots, buffer=reference.buffer)
        assert "_bitmap" in tr.__dict__
        assert tr.bitmap.slots == reference.slots
        assert "_statements_dict" not in tr.__dict__
