"""Unit tests for the ``repro.observe`` telemetry layer.

Covers the metrics registry (instrument semantics, label families,
histogram bucket boundaries, Prometheus exposition, thread safety), the
event bus and its sinks (disabled-path cost, JSONL round-trips for every
event type, ring buffer, progress sink), span tracing (nesting, ambient
installation), and the offline summary/validation helpers.
"""

import io
import math
import threading

import pytest

from repro.observe.events import (
    EVENT_TYPES,
    ITERATION,
    DISCREPANCY_FOUND,
    CallbackSink,
    Event,
    EventBus,
    JsonlSink,
    RingBufferSink,
    StderrProgressSink,
    read_events,
)
from repro.observe.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_value,
)
from repro.observe.summary import (
    CORE_METRIC_FAMILIES,
    check_prometheus,
    parse_prometheus,
    replay_events,
    summarize_events,
    summarize_prefilter,
    write_timeseries,
)
from repro.observe.telemetry import Telemetry, make_telemetry
from repro.observe.tracing import (
    NULL_SPAN,
    ambient_phase_span,
    ambient_telemetry,
    install_ambient,
    uninstall_ambient,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_bucket_boundary_is_inclusive(self):
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        hist.observe(1.0)   # lands in the le="1" bucket (value <= le)
        hist.observe(1.5)   # le="2"
        hist.observe(2.0)   # le="2"
        hist.observe(7.0)   # overflow (+Inf only)
        assert hist.bucket_counts() == [1, 2, 0, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(11.5)

    def test_rendered_buckets_are_cumulative(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        lines = hist.samples("h", "")
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="2"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines
        assert "h_count 3" in lines

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(10.0)
        assert list(DEFAULT_LATENCY_BUCKETS) == \
            sorted(DEFAULT_LATENCY_BUCKETS)

    def test_rejects_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_mean(self):
        hist = Histogram(buckets=(10.0,))
        assert hist.mean() == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean() == pytest.approx(3.0)


class TestFamilies:
    def test_label_children_are_cached(self):
        family = MetricsRegistry().counter("runs", "", ("vendor",))
        child = family.labels(vendor="hotspot8")
        assert family.labels(vendor="hotspot8") is child
        assert family.labels(vendor="j9") is not child

    def test_label_schema_enforced(self):
        family = MetricsRegistry().counter("runs", "", ("vendor",))
        with pytest.raises(ValueError):
            family.labels(nope="x")

    def test_no_label_family_proxies_instrument(self):
        family = MetricsRegistry().counter("total")
        family.inc(3)
        assert family.value == 3

    def test_labeled_family_rejects_direct_use(self):
        family = MetricsRegistry().counter("runs", "", ("vendor",))
        with pytest.raises(ValueError):
            family.inc()


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "", ("a",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("x", "", ("b",))

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", "Runs.", ("vendor",)) \
            .labels(vendor="hotspot8").inc(7)
        registry.gauge("repro_pool_size", "Pool.").set(42)
        registry.histogram("repro_lat_seconds", "Latency.",
                           buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# TYPE repro_runs_total counter" in text
        assert "# HELP repro_pool_size Pool." in text
        samples = parse_prometheus(text)
        assert samples["repro_runs_total"] == [({"vendor": "hotspot8"}, 7.0)]
        assert samples["repro_pool_size"] == [({}, 42.0)]
        bucket = dict()
        for labels, value in samples["repro_lat_seconds_bucket"]:
            bucket[labels["le"]] = value
        assert bucket == {"0.1": 1.0, "1": 1.0, "+Inf": 1.0}

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("k",)).labels(k='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parse_prometheus(text)  # must stay parseable

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "", ("worker",))
        hist = registry.histogram("lat", buckets=(0.5,))
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def work(worker):
            child = counter.labels(worker=str(worker % 2))
            barrier.wait()
            for _ in range(per_thread):
                child.inc()
                hist.observe(0.1)

        pool = [threading.Thread(target=work, args=(i,))
                for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = sum(child.value for _, child in counter.children())
        assert total == threads * per_thread
        child = hist.labels()
        assert child.count == threads * per_thread
        assert child.bucket_counts()[0] == threads * per_thread


class TestFormatValue:
    def test_integers_render_bare(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"

    def test_floats_keep_precision(self):
        assert format_value(0.25) == "0.25"


class TestEventBus:
    def test_disabled_bus_writes_nothing(self, tmp_path):
        bus = EventBus()
        sink = JsonlSink(tmp_path / "events.jsonl")
        # Sink exists but is NOT attached: bus stays disabled.
        assert bus.enabled is False
        bus.emit(ITERATION, index=0)
        assert sink.written == 0
        assert not (tmp_path / "events.jsonl").exists()

    def test_enabled_after_sink_attached(self):
        bus = EventBus()
        seen = []
        bus.add_sink(CallbackSink(seen.append))
        assert bus.enabled is True
        bus.emit(ITERATION, index=1)
        assert len(seen) == 1
        assert seen[0].type == ITERATION
        assert seen[0].fields == {"index": 1}

    def test_sequence_numbers_are_total_order(self):
        bus = EventBus()
        seen = []
        bus.add_sink(CallbackSink(seen.append))
        for i in range(5):
            bus.emit(ITERATION, index=i)
        assert [e.seq for e in seen] == [1, 2, 3, 4, 5]

    def test_jsonl_round_trips_every_event_type(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        sink = bus.add_sink(JsonlSink(path))
        payloads = {
            "iteration": {"algorithm": "classfuzz[stbr]", "index": 3,
                          "accepted": True, "seconds": 0.01},
            "mutant_accepted": {"label": "M1", "mutator": "m.x",
                                "tests": 4},
            "mutant_discarded": {"category": "compile_error",
                                 "mutator": None},
            "mcmc_transition": {"frm": "a", "to": "b", "proposals": 2},
            "batch_round": {"algorithm": "classfuzz[stbr]", "round": 2,
                            "size": 8, "generated": 7, "accepted": 1,
                            "seconds": 0.05},
            "seed_scheduled": {"algorithm": "classfuzz[stbr]",
                               "label": "Seed3", "origin": "seed",
                               "picks": 2},
            "checkpoint_written": {"algorithm": "classfuzz[stbr]",
                                   "index": 50, "iterations": 200,
                                   "accepted": 9, "pool": 34,
                                   "path": "ckpt/checkpoint.pkl",
                                   "seconds": 0.002},
            "reduction_step": {"label": "M9", "description":
                               "delete method frob", "remaining": 12,
                               "tests_run": 7},
            "jvm_phase": {"vendor": "hotspot8", "phase": "linking",
                          "seconds": 0.001},
            "executor_batch": {"engine": "serial", "size": 10},
            "cache_hit": {"store": "outcome", "vendor": "j9"},
            "discrepancy_found": {"label": "M2", "codes": [0, 2, 2, 0, 0]},
            "triage_cluster": {"id": "Cdeadbeef0123", "kind": "fine",
                               "signature": [["gij", 0, ""],
                                             ["j9", 2, "VerifyError"]],
                               "representative": "M2",
                               "suppressed": False},
        }
        assert set(payloads) == set(EVENT_TYPES)
        for event_type, fields in payloads.items():
            bus.emit(event_type, **fields)
        bus.close()
        recovered = list(read_events(path))
        assert sink.written == len(EVENT_TYPES)
        assert [e.type for e in recovered] == list(payloads)
        for event, (event_type, fields) in zip(recovered, payloads.items()):
            assert event.fields == fields
            assert event.seq > 0 and event.ts > 0

    def test_ring_buffer_caps_and_filters(self):
        sink = RingBufferSink(capacity=3)
        bus = EventBus()
        bus.add_sink(sink)
        for i in range(5):
            bus.emit(ITERATION, index=i)
        bus.emit(DISCREPANCY_FOUND, label="M")
        assert len(sink) == 3
        assert [e.fields["index"] for e in sink.events(ITERATION)] == [3, 4]
        assert len(sink.events(DISCREPANCY_FOUND)) == 1

    def test_progress_sink_prints_every_n(self):
        stream = io.StringIO()
        sink = StderrProgressSink(every=2, stream=stream)
        bus = EventBus()
        bus.add_sink(sink)
        for i in range(4):
            bus.emit(ITERATION, algorithm="randfuzz", accepted=i % 2 == 0)
        bus.emit(DISCREPANCY_FOUND, label="M7", codes=[0, 1])
        output = stream.getvalue()
        assert output.count("iteration") == 2  # at 2 and 4
        assert "discrepancy: M7" in output

    def test_event_json_is_flat(self):
        event = Event(ITERATION, 1.5, 7, {"index": 2})
        assert Event.from_json(event.to_json()) == event

    def test_read_events_tolerates_truncated_tail(self, tmp_path):
        """A run killed mid-write leaves a partial final line; the
        reader must yield the intact prefix instead of raising."""
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.add_sink(JsonlSink(path))
        for i in range(5):
            bus.emit(ITERATION, index=i)
        bus.close()
        with path.open("a") as handle:
            handle.write('{"type": "iter')  # the torn write
        recovered = list(read_events(path))
        assert [e.fields["index"] for e in recovered] == [0, 1, 2, 3, 4]

    def test_read_events_truncated_tail_without_newline_prefix(
            self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "iteration", "ts": 1.0, "seq"')
        assert list(read_events(path)) == []

    def test_read_events_still_raises_on_interior_corruption(
            self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.add_sink(JsonlSink(path))
        bus.emit(ITERATION, index=0)
        bus.emit(ITERATION, index=1)
        bus.close()
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:20]  # corrupt a *non-final* record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            list(read_events(path))


class TestTracing:
    def test_span_records_duration_and_histogram(self):
        telemetry = Telemetry()
        with telemetry.span("unit.work") as span:
            pass
        assert span.seconds >= 0
        family = telemetry.registry.get("repro_span_seconds")
        assert family.labels(span="unit.work").count == 1

    def test_spans_nest_via_thread_local_stack(self):
        telemetry = Telemetry()
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                assert telemetry.tracer.current_span() is inner
            assert telemetry.tracer.current_span() is outer
        assert outer.parent is None
        assert inner.parent == "outer"
        assert telemetry.tracer.current_span() is None

    def test_span_with_event_type_emits(self):
        telemetry = Telemetry()
        seen = []
        telemetry.bus.add_sink(CallbackSink(seen.append))
        with telemetry.span("batch", event_type="executor_batch", size=5):
            pass
        assert len(seen) == 1
        assert seen[0].fields["span"] == "batch"
        assert seen[0].fields["size"] == 5
        assert seen[0].fields["seconds"] >= 0

    def test_ambient_defaults_to_null_span(self):
        assert ambient_telemetry() is None
        assert ambient_phase_span("hotspot8", "loading") is NULL_SPAN

    def test_activate_installs_and_uninstalls(self):
        telemetry = Telemetry()
        with telemetry.activate():
            assert ambient_telemetry() is telemetry
            span = ambient_phase_span("hotspot8", "loading")
            assert span is not NULL_SPAN
            with span:
                pass
        assert ambient_telemetry() is None
        family = telemetry.registry.get("repro_jvm_phase_seconds")
        child = family.labels(vendor="hotspot8", phase="loading")
        assert child.count == 1

    def test_second_active_telemetry_rejected(self):
        first, second = Telemetry(), Telemetry()
        install_ambient(first)
        try:
            with pytest.raises(RuntimeError):
                install_ambient(second)
            # Re-installing the same bundle is idempotent.
            install_ambient(first)
        finally:
            uninstall_ambient(first)
        assert ambient_telemetry() is None

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.note(anything="goes")


class TestSummary:
    def _events(self):
        bus = EventBus()
        seen = []
        bus.add_sink(CallbackSink(seen.append))
        for i in range(8):
            bus.emit(ITERATION, algorithm="classfuzz[stbr]", index=i,
                     accepted=i % 2 == 0, tests=i // 2, pool=30 + i,
                     seconds=0.001)
        bus.emit("jvm_phase", vendor="hotspot8", phase="linking",
                 seconds=0.002)
        bus.emit("jvm_phase", vendor="hotspot8", phase="loading",
                 seconds=0.001)
        bus.emit("mcmc_transition", frm="a", to="b", proposals=3)
        bus.emit("executor_batch", engine="serial", size=4, seconds=0.1)
        bus.emit(DISCREPANCY_FOUND, label="M9", codes=[0, 2])
        return seen

    def test_summarize_renders_core_tables(self):
        text = summarize_events(self._events())
        assert "Event counts" in text
        assert "Acceptance rate" in text
        assert "classfuzz[stbr]" in text
        assert "50.0%" in text
        assert "JVM phase latency" in text
        # Phases print in pipeline order.
        assert text.index("loading") < text.index("linking")
        assert "MCMC chain" in text
        assert "1 discrepancies" in text

    def test_summarize_empty(self):
        assert summarize_events([]) == "no events recorded"

    def test_replay_filters_and_limits(self):
        text = replay_events(self._events(), event_type=ITERATION, limit=3)
        lines = text.splitlines()
        assert len(lines) == 4 and lines[-1] == "..."
        assert all("iteration" in line for line in lines[:3])
        assert replay_events([], event_type="nope") == "no matching events"

    def test_timeseries_accumulates_acceptance(self, tmp_path):
        out = tmp_path / "ts.csv"
        rows = write_timeseries(self._events(), out)
        assert rows == 8
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("algorithm,iteration,accepted")
        last = lines[-1].split(",")
        assert last[0] == "classfuzz[stbr]"
        assert last[3] == "4"          # accepted_total
        assert last[4] == "0.5000"     # acceptance_rate

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is { not a sample\n")

    def test_parse_prometheus_scientific_notation(self):
        """Seconds-valued sums commonly render as ``8.9e-05``; the
        signed exponent must parse, not fail as malformed."""
        text = ('repro_jvm_run_seconds_sum{vendor="j9"} 8.957e-05\n'
                'tiny_negative -1.5e-3\n'
                'plain_exp 2E+6\n')
        samples = parse_prometheus(text)
        assert samples["repro_jvm_run_seconds_sum"][0][1] == \
            pytest.approx(8.957e-05)
        assert samples["tiny_negative"][0][1] == pytest.approx(-0.0015)
        assert samples["plain_exp"][0][1] == 2e6

    def test_summarize_prefilter_renders_hit_rate(self):
        text = ('repro_bitmap_prefilter_total'
                '{criterion="tr",outcome="new"} 30\n'
                'repro_bitmap_prefilter_total'
                '{criterion="tr",outcome="seen"} 90\n'
                'repro_bitmap_prefilter_total'
                '{criterion="tr",outcome="bypass"} 5\n'
                'repro_bitmap_prefilter_total'
                '{criterion="stbr",outcome="new"} 4\n')
        block = summarize_prefilter(parse_prometheus(text))
        assert block.startswith("=== Bitmap prefilter ===")
        assert "[tr] 30 new / 90 seen (hit rate 25.0%), 5 bypassed" in block
        assert "[stbr] 4 new / 0 seen (hit rate 100.0%)" in block
        # Criteria render in sorted order.
        assert block.index("[stbr]") < block.index("[tr]")

    def test_summarize_prefilter_absent_returns_none(self):
        assert summarize_prefilter({}) is None
        assert summarize_prefilter(
            parse_prometheus("repro_iterations_total 5\n")) is None

    def test_check_prometheus_reports_missing_families(self):
        problems = check_prometheus("repro_iterations_total 5\n")
        missing = {p.split(": ")[1] for p in problems}
        assert "repro_iterations_total" not in missing
        assert set(CORE_METRIC_FAMILIES) - {"repro_iterations_total"} \
            == missing


class TestMakeTelemetry:
    def test_flags_map_to_sinks(self, tmp_path):
        telemetry = make_telemetry(events_path=tmp_path / "e.jsonl",
                                   ring_capacity=8, progress=True)
        kinds = {type(sink).__name__ for sink in telemetry.bus.sinks}
        assert kinds == {"JsonlSink", "RingBufferSink",
                         "StderrProgressSink"}
        assert telemetry.bus.enabled

    def test_bare_telemetry_has_disabled_bus(self):
        telemetry = make_telemetry()
        assert telemetry.bus.enabled is False
