"""Additional attribution coverage: multi-axis splits and probe budgets."""

import pytest

from repro.core.attribution import attribute_discrepancy
from repro.jimple import ClassBuilder, MethodBuilder
from repro.jimple.to_classfile import compile_class_bytes
from repro.jimple.types import INT, JType
from repro.jvm.vendors import make_gij, make_hotspot8, make_j9


def duplicate_field_bytes():
    builder = ClassBuilder("DupA")
    builder.default_init()
    builder.main_printing()
    builder.field("x", INT, ["public"])
    builder.field("x", INT, ["public"])
    return compile_class_bytes(builder.build())


class TestMultiAxis:
    def test_gij_duplicate_fields_single_axis(self):
        attribution = attribute_discrepancy(
            duplicate_field_bytes(), make_gij(), make_hotspot8())
        # GIJ accepts; transplanting HotSpot's duplicate-field rejection
        # makes GIJ reject too.  (Direction: explain GIJ's divergence.)
        assert attribution.responsible_fields == ["reject_duplicate_fields"]

    def test_phase_split_attributed_to_check_placement(self):
        """HotSpot vs J9 both reject duplicate fields but in different
        phases; the responsible axis is where the member checks run."""
        attribution = attribute_discrepancy(
            duplicate_field_bytes(), make_hotspot8(), make_j9())
        assert "member_checks_at_linking" in attribution.responsible_fields

    def test_flipped_outcome_recorded(self):
        attribution = attribute_discrepancy(
            duplicate_field_bytes(), make_gij(), make_hotspot8())
        assert attribution.flipped is not None
        assert attribution.flipped.error == "ClassFormatError"
        assert attribution.baseline.ok

    def test_probe_budget_respected(self):
        attribution = attribute_discrepancy(
            duplicate_field_bytes(), make_gij(), make_hotspot8(),
            max_probes=3)
        # Even with a tiny budget the session terminates with a verdict.
        assert attribution.responsible_fields or attribution.environmental
