"""CLI campaign command (smoke, at a tiny scale)."""

from repro.cli import main


def test_campaign_command(capsys):
    code = main(["campaign", "--budget-scale", "0.002",
                 "--seed-count", "30",
                 "--algorithms", "classfuzz[stbr]", "randfuzz"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Table 4" in output
    assert "Table 6" in output
    assert "classfuzz[stbr]" in output
    assert "randfuzz" in output


def test_campaign_respects_algorithm_selection(capsys):
    main(["campaign", "--budget-scale", "0.002", "--seed-count", "20",
          "--algorithms", "greedyfuzz"])
    output = capsys.readouterr().out
    assert "greedyfuzz" in output
    assert "uniquefuzz" not in output
