"""Tests for the discrepancy triage subsystem (cluster/minimize/suppress)."""

import json

import pytest

from repro.cli import main
from repro.core.executor import make_executor
from repro.jimple import ClassBuilder, MethodBuilder
from repro.jimple.to_classfile import compile_class_bytes
from repro.jvm.outcome import DifferentialResult, Outcome, Phase
from repro.triage import (
    Cluster,
    SuppressionList,
    TriageEngine,
    TriageStore,
    cluster_id,
    coarse_signature,
    fine_signature,
    load_clusters,
    load_minimized,
    load_progress,
    load_records,
    load_suppressions,
    minimize_cluster,
    write_suppressions,
)
from repro.triage.cluster import COARSE, FINE
from repro.triage.store import CRASH_AFTER_ENV, TriageStoreError
from repro.triage.suppress import Suppression


def result_of(*specs, label="t"):
    """Build a DifferentialResult from (jvm, phase, error) triples."""
    outcomes = [Outcome(Phase(code), error=error or None, jvm_name=jvm)
                for jvm, code, error in specs]
    return DifferentialResult(outcomes=outcomes, label=label)


def bulky_bytes():
    """A bulky discrepant class; the bug is one duplicate field pair."""
    from repro.jimple.types import INT, JType

    builder = ClassBuilder("Bulky")
    builder.default_init()
    builder.main_printing()
    builder.field("MAP", JType("java.util.Map"), ["protected"])
    builder.field("MAP", JType("java.util.Map"), ["protected"])
    builder.field("unrelated1", INT, ["public"])
    builder.field("unrelated2", INT, ["public"])
    for i in range(3):
        method = MethodBuilder(f"noise{i}", modifiers=["public"])
        method.ret()
        builder.method(method.build())
    return compile_class_bytes(builder.build())


def figure2_bytes():
    """The Figure 2 mutant: abstract code-less <clinit>."""
    builder = ClassBuilder("M1436188543")
    builder.default_init()
    builder.main_printing("Completed!")
    method = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
    method.abstract_body()
    builder.method(method.build())
    return compile_class_bytes(builder.build())


def sub_unsafe_bytes():
    """Fine-only discrepancy: HotSpot 8 VerifyError vs HotSpot 9
    IllegalAccessError, both during linking."""
    builder = ClassBuilder("SubUnsafe", superclass="sun.misc.Unsafe")
    builder.default_init()
    builder.main_printing()
    return compile_class_bytes(builder.build())


def demo_bytes():
    builder = ClassBuilder("Demo")
    builder.default_init()
    builder.main_printing("Completed!")
    return compile_class_bytes(builder.build())


class TestSignatures:
    def test_fine_signature_sorted_by_jvm(self):
        forward = result_of(("a", 0, ""), ("b", 2, "VerifyError"))
        backward = result_of(("b", 2, "VerifyError"), ("a", 0, ""))
        assert fine_signature(forward) == fine_signature(backward)
        assert fine_signature(forward) == (
            ("a", 0, ""), ("b", 2, "VerifyError"))

    def test_coarse_signature_drops_errors(self):
        result = result_of(("a", 2, "VerifyError"),
                           ("b", 2, "ClassFormatError"))
        assert coarse_signature(result) == (("a", 2, ""), ("b", 2, ""))

    def test_cluster_id_shape_and_stability(self):
        signature = (("a", 0, ""), ("b", 2, "VerifyError"))
        cid = cluster_id(signature)
        assert cid.startswith("C") and len(cid) == 13
        assert cid == cluster_id(signature)
        assert cid == cluster_id(tuple(signature))

    def test_cluster_id_depends_on_kind_and_content(self):
        signature = (("a", 2, ""), ("b", 2, ""))
        assert cluster_id(signature, FINE) != cluster_id(signature, COARSE)
        other = (("a", 2, ""), ("b", 3, ""))
        assert cluster_id(signature) != cluster_id(other)


class TestEngine:
    def test_clean_result_ignored(self):
        engine = TriageEngine()
        clean = result_of(("a", 0, ""), ("b", 0, ""))
        assert engine.add(clean) is None
        assert len(engine) == 0

    def test_same_signature_same_cluster(self):
        engine = TriageEngine()
        first = engine.add(result_of(("a", 0, ""), ("b", 2, "VerifyError"),
                                     label="x"))
        second = engine.add(result_of(("a", 0, ""), ("b", 2, "VerifyError"),
                                      label="y"))
        assert first is second
        assert first.count == 2
        assert first.labels == ["x", "y"]
        assert first.representative == "x"

    def test_same_phase_different_errors_split(self):
        """The bug the coarse vector conflates: same phases, different
        error classes must land in different clusters."""
        engine = TriageEngine()
        a = engine.add(result_of(("a", 0, ""), ("b", 2, "VerifyError")))
        b = engine.add(result_of(("a", 0, ""), ("b", 2, "ClassFormatError")))
        assert a.cluster_id != b.cluster_id
        assert len(engine) == 2

    def test_step_budget_not_clustered_with_runtime_bugs(self):
        """A simulated hang (StepBudgetExceeded) and a real runtime error
        share phase codes but must never share a cluster."""
        engine = TriageEngine()
        hang = engine.add(result_of(
            ("a", 0, ""), ("b", 4, "StepBudgetExceeded")))
        crash = engine.add(result_of(
            ("a", 0, ""), ("b", 4, "ArithmeticException")))
        assert hang.cluster_id != crash.cluster_id

    def test_coarse_mode_groups_by_phase(self):
        engine = TriageEngine(kind=COARSE)
        a = engine.add(result_of(("a", 0, ""), ("b", 2, "VerifyError")))
        b = engine.add(result_of(("a", 0, ""), ("b", 2, "ClassFormatError")))
        assert a is b
        assert a.kind == COARSE

    def test_coarse_mode_keeps_fine_only_discrepancies(self):
        """Fine-only discrepancies are invisible to the coarse vector;
        coarse mode must not drop them."""
        engine = TriageEngine(kind=COARSE)
        cluster = engine.add(result_of(("a", 2, "VerifyError"),
                                       ("b", 2, "IllegalAccessError")))
        assert cluster is not None
        assert cluster.kind == FINE

    def test_label_cap(self):
        engine = TriageEngine(max_labels=3)
        for i in range(10):
            engine.add(result_of(("a", 0, ""), ("b", 2, "VerifyError"),
                                 label=f"m{i}"))
        (cluster,) = engine.clusters()
        assert cluster.count == 10
        assert cluster.labels == ["m0", "m1", "m2"]

    def test_representative_bytes_retained(self):
        engine = TriageEngine()
        cluster = engine.add(result_of(("a", 0, ""), ("b", 2, "E")),
                             data=b"\x01\x02")
        assert engine.representative_bytes(cluster.cluster_id) == b"\x01\x02"
        assert cluster.representative_digest

    def test_suppressions_flag_known_clusters(self):
        signature = (("a", 0, ""), ("b", 2, "VerifyError"))
        known = SuppressionList([Suppression(cluster_id(signature))])
        engine = TriageEngine(suppressions=known)
        engine.add(result_of(*signature))
        engine.add(result_of(("a", 0, ""), ("b", 2, "ClassFormatError")))
        assert len(engine.suppressed_clusters()) == 1
        assert len(engine.new_clusters()) == 1

    def test_restore_extends_without_reannouncing(self):
        first = TriageEngine()
        cluster = first.add(result_of(("a", 0, ""), ("b", 2, "E"),
                                      label="orig"))
        second = TriageEngine()
        assert second.restore(first.clusters()) == 1
        assert second.restore(first.clusters()) == 0  # idempotent
        extended = second.add(result_of(("a", 0, ""), ("b", 2, "E"),
                                        label="more"))
        assert extended.cluster_id == cluster.cluster_id
        assert extended.count == 2
        assert extended.representative == "orig"


class TestEngineTelemetry:
    def test_counter_and_event_once_per_cluster(self, tmp_path):
        from repro.observe import make_telemetry

        events = tmp_path / "events.jsonl"
        telemetry = make_telemetry(events_path=events)
        engine = TriageEngine(telemetry=telemetry)
        with telemetry.activate():
            for _ in range(3):
                engine.add(result_of(("a", 0, ""), ("b", 2, "E")))
            engine.add(result_of(("a", 0, ""), ("b", 2, "F")))
        dump = telemetry.render_prometheus()
        telemetry.close()
        assert 'repro_triage_clusters_total{kind="fine"} 2' in dump
        lines = [json.loads(line)
                 for line in events.read_text().splitlines()]
        emitted = [e for e in lines if e["type"] == "triage_cluster"]
        assert len(emitted) == 2
        assert {e["id"] for e in emitted} == \
            {c.cluster_id for c in engine.clusters()}


class TestStore:
    def _cluster(self, error="VerifyError", count=1):
        signature = (("a", 0, ""), ("b", 2, error))
        return Cluster(cluster_id=cluster_id(signature), kind=FINE,
                       signature=signature, count=count)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "triage.jsonl"
        with TriageStore(path) as store:
            store.append_cluster(self._cluster(count=1))
            store.append_progress(32)
            store.append_cluster(self._cluster(count=5))
            store.append_minimized({"id": "Cx", "blamed": ["f"]})
            store.append_progress(64)
        records = load_records(path)
        assert records[0] == {"type": "meta", "version": 1}
        clusters = load_clusters(path)
        assert len(clusters) == 1  # last record per id wins
        assert clusters[0].count == 5
        assert load_progress(path) == 64
        assert load_minimized(path)["Cx"]["blamed"] == ["f"]

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "triage.jsonl"
        with TriageStore(path) as store:
            store.append_cluster(self._cluster())
        with path.open("a") as handle:
            handle.write('{"type": "cluster", "id": "Cdead')  # the crash
        assert len(load_clusters(path)) == 1

    def test_corrupt_middle_raises(self, tmp_path):
        path = tmp_path / "triage.jsonl"
        with TriageStore(path) as store:
            store.append_cluster(self._cluster())
        text = path.read_text()
        path.write_text('not json\n' + text)
        with pytest.raises(TriageStoreError, match="unparseable"):
            load_records(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "triage.jsonl"
        path.write_text('{"type": "meta", "version": 99}\n')
        with pytest.raises(TriageStoreError, match="version"):
            load_records(path)

    def test_missing_file_defaults(self, tmp_path):
        assert load_progress(tmp_path / "absent.jsonl") == 0
        assert TriageStore(tmp_path / "absent.jsonl") \
            .existing_cluster_ids() == []

    def test_crash_hook_raises_after_nth_flush(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv(CRASH_AFTER_ENV, "2")
        store = TriageStore(tmp_path / "triage.jsonl")
        store.append_progress(1)
        with pytest.raises(KeyboardInterrupt):
            store.append_progress(2)


class TestSuppressions:
    def test_json_round_trip(self, tmp_path):
        engine = TriageEngine()
        engine.add(result_of(("a", 0, ""), ("b", 2, "VerifyError")))
        engine.add(result_of(("a", 0, ""), ("b", 2, "ClassFormatError")))
        path = tmp_path / "known.json"
        write_suppressions(path, engine.clusters())
        loaded = load_suppressions(path)
        assert len(loaded) == 2
        for cluster in engine.clusters():
            assert cluster.cluster_id in loaded

    def test_triage_store_as_baseline(self, tmp_path):
        engine = TriageEngine()
        cluster = engine.add(result_of(("a", 0, ""), ("b", 2, "E")))
        path = tmp_path / "triage.jsonl"
        with TriageStore(path) as store:
            store.append_cluster(cluster)
        loaded = load_suppressions(path)
        assert cluster.cluster_id in loaded
        assert "baseline cluster" in loaded.get(cluster.cluster_id).reason

    def test_store_without_clusters_is_empty_baseline(self, tmp_path):
        path = tmp_path / "triage.jsonl"
        with TriageStore(path) as store:
            store.append_progress(1)
        assert len(load_suppressions(path)) == 0

    def test_unrecognized_format_rejected(self, tmp_path):
        path = tmp_path / "what.json"
        path.write_text('{"unrelated": true}\n')
        with pytest.raises(ValueError):
            load_suppressions(path)


class TestMinimize:
    def _cluster_for(self, harness, data, label):
        engine = TriageEngine()
        result = harness.run_one(data, label)
        return engine.add(result, data)

    def test_bulky_blames_duplicate_fields(self, harness):
        data = bulky_bytes()
        cluster = self._cluster_for(harness, data, "Bulky")
        minimized = minimize_cluster(cluster, data)
        assert minimized.error == ""
        assert minimized.size_after < minimized.size_before
        assert minimized.codes == (2, 2, 2, 1, 0)
        assert "reject_duplicate_fields" in minimized.blamed_fields

    def test_record_shape(self, harness):
        data = figure2_bytes()
        cluster = self._cluster_for(harness, data, "M1436188543")
        minimized = minimize_cluster(cluster, data)
        record = minimized.to_record()
        assert record["type"] == "minimized"
        assert record["id"] == cluster.cluster_id
        assert record["size_after"] <= record["size_before"]
        from repro.triage.store import decode_classfile

        assert decode_classfile(record["classfile"])[:4] == \
            b"\xca\xfe\xba\xbe"

    def test_unreducible_degrades_gracefully(self, harness):
        """Unliftable bytes keep the original classfile and record why."""
        data = b"\xca\xfe\xba\xbe" + b"\x00" * 32
        signature = (("a", 1, "ClassFormatError"), ("b", 0, ""))
        cluster = Cluster(cluster_id=cluster_id(signature), kind=FINE,
                          signature=signature, representative="junk")
        minimized = minimize_cluster(cluster, data)
        assert minimized.error
        assert minimized.classfile == data


class TestBackendDeterminism:
    def test_cluster_ids_identical_across_backends(self):
        """The acceptance criterion: triaging the same suite through
        serial, thread, and process executors yields byte-identical
        cluster ids, counts, and representatives."""
        from repro.core.difftest import DifferentialHarness

        suite = [("Bulky", bulky_bytes()),
                 ("M1436188543", figure2_bytes()),
                 ("SubUnsafe", sub_unsafe_bytes()),
                 ("Demo", demo_bytes())]
        inventories = []
        for jobs, backend in ((1, "thread"), (4, "thread"),
                              (2, "process")):
            executor = make_executor(jobs=jobs, backend=backend)
            harness = DifferentialHarness(executor=executor)
            engine = TriageEngine()
            engine.add_many(harness.run_many(suite), dict(suite))
            inventories.append(
                [(c.cluster_id, c.count, c.representative, c.first_seen)
                 for c in engine.clusters()])
            executor.close()
        assert inventories[0] == inventories[1] == inventories[2]
        assert len(inventories[0]) == 3  # Demo is clean


class TestTriageCommand:
    @pytest.fixture
    def suite_dir(self, tmp_path):
        suite = tmp_path / "suite"
        suite.mkdir()
        (suite / "Bulky.class").write_bytes(bulky_bytes())
        (suite / "M1436188543.class").write_bytes(figure2_bytes())
        (suite / "Demo.class").write_bytes(demo_bytes())
        return suite

    def test_report_lists_clusters(self, suite_dir, capsys):
        assert main(["triage", "report", str(suite_dir)]) == 0
        output = capsys.readouterr().out
        assert "2 clusters (2 new, 0 suppressed)" in output
        assert "rep=Bulky" in output

    def test_minimize_writes_blamed_fields(self, suite_dir, tmp_path,
                                           capsys):
        out = tmp_path / "triage.jsonl"
        assert main(["triage", "minimize", str(suite_dir),
                     "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "blamed: " in output
        minimized = load_minimized(out)
        assert len(minimized) == 2
        blamed = {name for record in minimized.values()
                  for name in record["blamed"]}
        assert "reject_duplicate_fields" in blamed

    def test_diff_against_baseline(self, suite_dir, tmp_path, capsys):
        baseline = tmp_path / "baseline.jsonl"
        assert main(["triage", "report", str(suite_dir),
                     "--out", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["triage", "diff-against-baseline", str(suite_dir),
                     "--baseline", str(baseline)]) == 0
        assert "0 NEW" in capsys.readouterr().out
        # A discrepancy outside the baseline flips the exit code.
        (suite_dir / "SubUnsafe.class").write_bytes(sub_unsafe_bytes())
        assert main(["triage", "diff-against-baseline", str(suite_dir),
                     "--baseline", str(baseline)]) == 1
        output = capsys.readouterr().out
        assert "1 NEW" in output
        assert "rep=SubUnsafe" in output

    def test_write_suppressions_round_trip(self, suite_dir, tmp_path,
                                           capsys):
        known = tmp_path / "known.json"
        assert main(["triage", "report", str(suite_dir),
                     "--write-suppressions", str(known)]) == 0
        capsys.readouterr()
        assert main(["triage", "report", str(suite_dir),
                     "--baseline", str(known)]) == 0
        assert "(0 new, 2 suppressed)" in capsys.readouterr().out

    def test_kill_resume_reproduces_inventory(self, suite_dir, tmp_path,
                                              capsys, monkeypatch):
        """A killed run resumed from the durable store ends with the
        same inventory as an uninterrupted run."""
        uninterrupted = tmp_path / "full.jsonl"
        assert main(["triage", "report", str(suite_dir),
                     "--out", str(uninterrupted)]) == 0
        resumed = tmp_path / "resumed.jsonl"
        monkeypatch.setenv(CRASH_AFTER_ENV, "1")
        # Chunks of 32 > 3 classfiles, so force a flush per chunk by
        # interrupting on the very first progress record.
        assert main(["triage", "report", str(suite_dir),
                     "--out", str(resumed)]) == 130
        monkeypatch.delenv(CRASH_AFTER_ENV)
        capsys.readouterr()
        assert main(["triage", "report", str(suite_dir),
                     "--out", str(resumed), "--resume"]) == 0
        assert "resumed from" in capsys.readouterr().out

        def inventory(path):
            return [(c.cluster_id, c.count, c.representative)
                    for c in load_clusters(path)]

        assert inventory(resumed) == inventory(uninterrupted)

    def test_coarse_flag(self, suite_dir, capsys):
        assert main(["triage", "report", str(suite_dir),
                     "--coarse"]) == 0
        assert "coarse" in capsys.readouterr().out

    def test_diff_requires_baseline(self, suite_dir, capsys):
        assert main(["triage", "diff-against-baseline",
                     str(suite_dir)]) == 2

    def test_resume_requires_out(self, suite_dir):
        assert main(["triage", "report", str(suite_dir),
                     "--resume"]) == 2

    def test_missing_path_is_an_error(self, tmp_path):
        assert main(["triage", "report",
                     str(tmp_path / "absent")]) == 2

    def test_single_classfile_input(self, tmp_path, capsys):
        target = tmp_path / "Bulky.class"
        target.write_bytes(bulky_bytes())
        assert main(["triage", "report", str(target)]) == 0
        assert "1 clusters (1 new" in capsys.readouterr().out
