"""Tests for the donor-class pool backing replace-all-members mutators."""

import random

from repro.classfile.writer import write_class
from repro.core.mutators.donors import DONORS, random_donor
from repro.jimple.to_classfile import compile_class


class TestDonors:
    def test_pool_nonempty_and_varied(self):
        assert len(DONORS) >= 3
        names = {donor.name for donor in DONORS}
        assert len(names) == len(DONORS)

    def test_every_donor_compiles(self):
        for donor in DONORS:
            data = write_class(compile_class(donor))
            assert data[:4] == b"\xca\xfe\xba\xbe"

    def test_donors_offer_fields_and_methods(self):
        assert any(donor.fields for donor in DONORS)
        assert all(donor.methods for donor in DONORS)
        assert any(method.thrown
                   for donor in DONORS for method in donor.methods)

    def test_one_donor_carries_main(self):
        assert any(donor.find_method("main") for donor in DONORS)

    def test_random_donor_deterministic(self):
        assert random_donor(random.Random(4)).name == \
            random_donor(random.Random(4)).name

    def test_replace_all_does_not_alias_donor(self):
        """Mutators deep-copy donor members: mutating the mutant must not
        corrupt the shared pool."""
        from repro.core.mutators import mutator_by_name
        from repro.jimple import ClassBuilder

        rng = random.Random(0)
        victim = ClassBuilder("Victim").default_init().build()
        assert mutator_by_name("method.replace_all")(victim, rng)
        donor_names_before = [
            [m.name for m in donor.methods] for donor in DONORS]
        for method in victim.methods:
            method.name = "clobbered"
        donor_names_after = [
            [m.name for m in donor.methods] for donor in DONORS]
        assert donor_names_before == donor_names_after
