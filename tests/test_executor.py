"""Tests for the pluggable execution engines and the outcome cache."""

import pytest

from repro.core.campaign import run_campaign
from repro.core.difftest import DifferentialHarness
from repro.core.executor import (
    ExecutorStats,
    OutcomeCache,
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    classfile_digest,
    make_executor,
)
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple.to_classfile import compile_class_bytes
from repro.jvm.vendors import all_jvms, reference_jvm


@pytest.fixture(scope="module")
def suite():
    """A small (label, bytes) suite compiled from the seed corpus."""
    seeds = generate_corpus(CorpusConfig(count=12, seed=77))
    return [(jclass.name, compile_class_bytes(jclass))
            for jclass in seeds]


@pytest.fixture(scope="module")
def serial_results(suite):
    return SerialExecutor().run_differential(all_jvms(), suite)


class TestDigest:
    def test_stable(self):
        assert classfile_digest(b"x") == classfile_digest(b"x")

    def test_distinguishes_bytes(self):
        assert classfile_digest(b"x") != classfile_digest(b"y")


class TestSerialExecutor:
    def test_results_in_input_order(self, suite, serial_results):
        assert [r.label for r in serial_results] == \
            [label for label, _ in suite]

    def test_matches_direct_jvm_runs(self, suite, serial_results):
        label, data = suite[0]
        direct = [jvm.run(data) for jvm in all_jvms()]
        assert serial_results[0].outcomes == direct

    def test_uncached_by_default(self, suite):
        engine = SerialExecutor()
        assert engine.cache is None
        engine.run_differential(all_jvms(), suite[:2])
        assert engine.stats.cache_hits == 0
        assert engine.stats.runs == 2 * len(all_jvms())


class TestDeterminism:
    """Parallel engines must be bit-identical to the serial baseline."""

    def test_thread_equals_serial(self, suite, serial_results):
        with ThreadExecutor(jobs=4) as engine:
            assert engine.run_differential(all_jvms(), suite) == \
                serial_results

    def test_thread_cached_equals_serial(self, suite, serial_results):
        with ThreadExecutor(jobs=4, cache=OutcomeCache()) as engine:
            first = engine.run_differential(all_jvms(), suite)
            second = engine.run_differential(all_jvms(), suite)
        assert first == serial_results
        assert second == serial_results

    def test_process_equals_serial(self, suite, serial_results):
        try:
            with ProcessExecutor(jobs=2) as engine:
                results = engine.run_differential(all_jvms(), suite[:4])
        except (OSError, futures_broken()) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable: {exc}")
        assert results == serial_results[:4]

    def test_harness_parallel_equals_serial(self, suite, serial_results):
        with ParallelExecutor(jobs=3) as engine:
            harness = DifferentialHarness(executor=engine)
            assert harness.run_many(suite) == serial_results


def futures_broken():
    from concurrent.futures.process import BrokenProcessPool
    return BrokenProcessPool


class TestOutcomeCache:
    def test_run_one_hits_on_repeat(self, suite):
        engine = SerialExecutor(cache=OutcomeCache())
        jvm = all_jvms()[0]
        _, data = suite[0]
        first = engine.run_one(jvm, data)
        second = engine.run_one(jvm, data)
        assert first == second
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.runs == 1

    def test_vendors_cached_independently(self, suite):
        engine = SerialExecutor(cache=OutcomeCache())
        _, data = suite[0]
        for jvm in all_jvms():
            engine.run_one(jvm, data)
        assert engine.stats.cache_hits == 0
        assert engine.stats.runs == len(all_jvms())

    def test_reference_trace_cached(self, suite):
        engine = SerialExecutor(cache=OutcomeCache())
        jvm = reference_jvm()
        _, data = suite[0]
        first = engine.run_reference(jvm, data)
        second = engine.run_reference(jvm, data)
        assert first == second
        assert engine.stats.trace_hits == 1
        assert engine.stats.trace_misses == 1

    def test_uncached_reference_still_collects(self, suite):
        engine = SerialExecutor()
        outcome, trace = engine.run_reference(reference_jvm(), suite[0][1])
        assert trace.stmt > 0

    def test_process_batch_cache_hits(self, suite):
        try:
            with ProcessExecutor(jobs=2, cache=OutcomeCache()) as engine:
                engine.run_differential(all_jvms(), suite[:3])
                misses = engine.stats.cache_misses
                engine.run_differential(all_jvms(), suite[:3])
        except (OSError, futures_broken()) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable: {exc}")
        assert misses == 3 * len(all_jvms())
        assert engine.stats.cache_hits == 3 * len(all_jvms())

    def test_eviction_bounds_entries(self):
        from repro.jvm.outcome import Outcome

        cache = OutcomeCache(max_entries=2)
        for i in range(5):
            cache.put_outcome(str(i), "v", Outcome(phase=0))
        assert len(cache) == 2
        assert cache.get_outcome("0", "v") is None
        assert cache.get_outcome("4", "v") is not None

    def test_clear(self):
        from repro.jvm.outcome import Outcome

        cache = OutcomeCache()
        cache.put_outcome("d", "v", Outcome(phase=0))
        cache.clear()
        assert len(cache) == 0


class TestOutcomeCacheSplitLookup:
    """get_trace distinguishes outcome-only entries from full misses."""

    def test_put_trace_serves_outcome_lookups(self, suite):
        from repro.coverage.tracefile import Tracefile
        from repro.jvm.outcome import Outcome

        cache = OutcomeCache()
        outcome = Outcome(phase=0)
        cache.put_trace("d", "v", outcome, Tracefile())
        assert cache.get_outcome("d", "v") == outcome
        assert cache.get_trace("d", "v") == (outcome, Tracefile())

    def test_outcome_without_trace_reads_as_split(self):
        from repro.jvm.outcome import Outcome

        cache = OutcomeCache()
        outcome = Outcome(phase=0)
        cache.put_outcome("d", "v", outcome)
        assert cache.get_trace("d", "v") == (outcome, None)
        assert cache.get_trace("other", "v") is None

    def test_orphaned_trace_reads_as_full_miss(self):
        from repro.coverage.tracefile import Tracefile
        from repro.jvm.outcome import Outcome

        # Differential put_outcome traffic evicts an outcome whose trace
        # survives; the orphan is unusable and must read as a miss.
        cache = OutcomeCache(max_entries=2)
        cache.put_trace("r1", "v", Outcome(phase=0), Tracefile())
        cache.put_trace("r2", "v", Outcome(phase=0), Tracefile())
        cache.put_outcome("d1", "v", Outcome(phase=1))
        assert cache.get_trace("r1", "v") is None
        full = cache.get_trace("r2", "v")
        assert full is not None and full[1] is not None

    def test_reference_rerun_reuses_cached_outcome(self, suite):
        engine = SerialExecutor(cache=OutcomeCache())
        jvm = reference_jvm()
        _, data = suite[0]
        digest = classfile_digest(data)
        first_outcome, _ = engine.run_reference(jvm, data)
        # Simulate a trace eviction that spared the (smaller) outcome.
        engine.cache._traces.clear()
        outcome, trace = engine.run_reference(jvm, data)
        assert outcome == first_outcome
        assert trace.stmt > 0
        assert engine.stats.trace_outcome_only == 1
        assert engine.stats.trace_misses == 2
        assert "outcome-only" in engine.stats.format()
        # The re-run restored the trace: next lookup is a full hit.
        engine.run_reference(jvm, data)
        assert engine.stats.trace_hits == 1

    def test_batch_rerun_reuses_cached_outcome(self, suite):
        engine = SerialExecutor(cache=OutcomeCache())
        jvm = reference_jvm()
        batch = [data for _, data in suite[:3]]
        first = engine.run_reference_many(jvm, batch)
        engine.cache._traces.clear()
        again = engine.run_reference_many(jvm, batch)
        assert [o for o, _ in again] == [o for o, _ in first]
        assert engine.stats.trace_outcome_only == 3


class TestExecutorStats:
    def test_vendor_latency_recorded(self, suite):
        engine = SerialExecutor()
        engine.run_differential(all_jvms(), suite[:2])
        for jvm in all_jvms():
            assert engine.stats.vendor_runs[jvm.name] == 2
            assert engine.stats.vendor_seconds[jvm.name] >= 0.0
            assert engine.stats.vendor_mean_ms(jvm.name) >= 0.0

    def test_batches_counted(self, suite):
        engine = SerialExecutor()
        engine.run_differential(all_jvms(), suite[:2])
        engine.run_differential(all_jvms(), suite[:2])
        assert engine.stats.batches == 2

    def test_snapshot_and_since(self, suite):
        engine = SerialExecutor()
        engine.run_differential(all_jvms(), suite[:2])
        before = engine.stats.snapshot()
        engine.run_differential(all_jvms(), suite[:3])
        delta = engine.stats.since(before)
        assert delta.runs == 3 * len(all_jvms())
        assert delta.batches == 1
        assert before.runs == 2 * len(all_jvms())

    def test_add_merges(self):
        a = ExecutorStats()
        a.record_run("x", 0.5)
        b = ExecutorStats()
        b.record_run("x", 0.25)
        b.record_run("y", 0.25)
        a.add(b)
        assert a.runs == 3
        assert a.vendor_runs == {"x": 2, "y": 1}
        assert a.vendor_seconds["x"] == pytest.approx(0.75)

    def test_format_lists_vendors(self, suite):
        engine = SerialExecutor(cache=OutcomeCache())
        engine.run_differential(all_jvms(), suite[:1])
        text = engine.stats.format()
        for jvm in all_jvms():
            assert jvm.name in text
        assert "mean_ms" in text
        assert "outcome cache" in text


class TestFactories:
    def test_make_executor_serial_for_one_job(self):
        engine = make_executor(jobs=1)
        assert isinstance(engine, SerialExecutor)
        assert engine.cache is not None

    def test_make_executor_uncached(self):
        assert make_executor(jobs=1, cache=False).cache is None

    def test_make_executor_thread(self):
        engine = make_executor(jobs=3)
        assert isinstance(engine, ThreadExecutor)
        assert engine.jobs == 3

    def test_make_executor_process(self):
        engine = make_executor(jobs=2, backend="process")
        assert isinstance(engine, ProcessExecutor)

    def test_parallel_executor_rejects_serial(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelExecutor(jobs=2, backend="serial")

    def test_worker_mode_rejected_for_thread_backend(self):
        with pytest.raises(ValueError, match="worker_mode"):
            ParallelExecutor(jobs=2, backend="thread",
                             worker_mode="persistent")

    def test_process_rejects_unknown_worker_mode(self):
        with pytest.raises(ValueError, match="worker mode"):
            ProcessExecutor(jobs=2, worker_mode="bogus")

    def test_make_executor_worker_mode_plumbed(self):
        engine = make_executor(jobs=2, backend="process",
                               worker_mode="fork")
        assert engine.worker_mode == "fork"
        assert make_executor(jobs=2, backend="process").worker_mode == \
            "persistent"

    def test_context_manager_closes_pool(self, suite):
        engine = ThreadExecutor(jobs=2)
        with engine:
            engine.run_differential(all_jvms(), suite[:1])
        assert engine._pool is None


class TestProcessPoolReuse:
    """Steady-state batches must not re-pickle the JVM configuration."""

    def test_same_jvm_list_reuses_pool_without_pickling(self, suite):
        jvms = all_jvms()
        try:
            with ProcessExecutor(jobs=2) as engine:
                engine.run_differential(jvms, suite[:1])
                pool = engine._pool
                engine._pool_key = b"poisoned: a pickle pass would " \
                    b"rebuild the pool"
                engine.run_differential(jvms, suite[:1])
                assert engine._pool is pool  # identity fast path hit
        except (OSError, futures_broken()) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable: {exc}")

    def test_equal_but_distinct_list_still_reuses_pool(self, suite):
        try:
            with ProcessExecutor(jobs=2) as engine:
                engine.run_differential(all_jvms(), suite[:1])
                pool = engine._pool
                engine.run_differential(list(all_jvms()), suite[:1])
                assert engine._pool is pool  # blob comparison hit
        except (OSError, futures_broken()) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable: {exc}")

    def test_reference_pool_reuses_across_batches(self, suite):
        jvm = reference_jvm()
        try:
            with ProcessExecutor(jobs=2, cache=OutcomeCache()) as engine:
                engine.run_reference_many(jvm, [suite[0][1]])
                pool = engine._ref_pool
                engine.run_reference_many(jvm, [suite[1][1]])
                assert engine._ref_pool is pool
        except (OSError, futures_broken()) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable: {exc}")


class TestCampaignEquivalence:
    """A fixed-seed campaign is bit-identical serial vs. parallel."""

    @pytest.fixture(scope="class")
    def seeds(self):
        return generate_corpus(CorpusConfig(count=20, seed=5))

    def _vectors(self, runs):
        return [
            (run.label,
             [g.label for g in run.fuzz.test_classes],
             [r.codes for r in run.gen_report.results],
             [r.codes for r in run.test_report.results])
            for run in runs
        ]

    def test_thread_campaign_equals_serial(self, seeds):
        kwargs = dict(budget_seconds=1200.0,
                      algorithms=("classfuzz[stbr]", "randfuzz"),
                      rng_seed=4, evaluate=True)
        serial = run_campaign(seeds, executor=SerialExecutor(), **kwargs)
        with ThreadExecutor(jobs=4, cache=OutcomeCache()) as engine:
            threaded = run_campaign(seeds, executor=engine, **kwargs)
        assert self._vectors(serial) == self._vectors(threaded)

    def test_campaign_cache_reports_hits(self, seeds):
        runs = run_campaign(seeds, budget_seconds=600.0,
                            algorithms=("randfuzz",), rng_seed=1,
                            evaluate=True)
        # Gen and Test suites overlap for randfuzz, so evaluating the
        # second suite is pure cache hits.
        assert runs[0].executor_stats.cache_hits > 0
