"""Direct coverage of policy toggles not exercised elsewhere: each axis
must actually change observable behaviour when flipped."""

import pytest

from repro.classfile.writer import write_class
from repro.jimple import ClassBuilder, MethodBuilder, compile_class
from repro.jimple.types import INT, JType
from repro.jvm.machine import Jvm
from repro.jvm.outcome import Phase
from repro.jvm.policy import JvmPolicy
from repro.runtime.environment import build_environment


def jvm_with(**overrides):
    return Jvm("probe", JvmPolicy(**overrides), build_environment(8))


def demo_with_trailing_junk():
    builder = ClassBuilder("Junked")
    builder.default_init()
    builder.main_printing()
    return write_class(compile_class(builder.build())) + b"\x00garbage"


class TestLoadingToggles:
    def test_reject_trailing_bytes(self):
        data = demo_with_trailing_junk()
        strict = jvm_with(reject_trailing_bytes=True).run(data)
        assert strict.phase is Phase.LOADING
        lenient = jvm_with(reject_trailing_bytes=False).run(data)
        assert lenient.ok

    def test_descriptor_validity_toggle(self):
        builder = ClassBuilder("BadDesc")
        builder.main_printing()
        jclass = builder.build()
        data = write_class(compile_class(jclass))
        # Corrupt the field descriptor Utf8 in the compiled bytes:
        # build a class with a field, then patch its descriptor.
        builder = ClassBuilder("BadDesc2")
        builder.field("x", INT)
        builder.main_printing()
        classfile = compile_class(builder.build())
        # Point the field's descriptor at a non-descriptor Utf8.
        bogus = classfile.constant_pool.utf8("not-a-descriptor")
        classfile.fields[0].descriptor_index = bogus
        data = write_class(classfile)
        strict = jvm_with(check_descriptor_validity=True,
                          member_checks_at_linking=False).run(data)
        assert strict.phase is Phase.LOADING
        assert strict.error == "ClassFormatError"
        lenient = jvm_with(check_descriptor_validity=False,
                           eager_method_verification=False).run(data)
        assert lenient.ok

    def test_circularity_toggle(self):
        builder = ClassBuilder("Self", superclass="Self")
        builder.main_printing()
        data = write_class(compile_class(builder.build()))
        checking = jvm_with(check_class_circularity=True).run(data)
        assert checking.error == "ClassCircularityError"
        # With the check off, resolution proceeds and the lookup simply
        # fails to find the (self-named) class in the library.
        ignoring = jvm_with(check_class_circularity=False).run(data)
        assert ignoring.error == "NoClassDefFoundError"


class TestLinkingToggles:
    def _final_super(self):
        builder = ClassBuilder("SubStr", superclass="java.lang.String")
        builder.default_init()
        builder.main_printing()
        return write_class(compile_class(builder.build()))

    def test_final_superclass_toggle(self):
        data = self._final_super()
        assert jvm_with(check_final_superclass=True).run(data).error == \
            "VerifyError"
        assert jvm_with(check_final_superclass=False).run(data).ok

    def test_super_not_interface_toggle(self):
        builder = ClassBuilder("SubIface", superclass="java.lang.Runnable")
        builder.default_init()
        builder.main_printing()
        data = write_class(compile_class(builder.build()))
        strict = jvm_with(check_super_not_interface=True).run(data)
        assert strict.error == "IncompatibleClassChangeError"
        assert jvm_with(check_super_not_interface=False).run(data).ok

    def test_interfaces_are_interfaces_toggle(self):
        builder = ClassBuilder("ImplClass")
        builder.implements("java.lang.String")
        builder.default_init()
        builder.main_printing()
        data = write_class(compile_class(builder.build()))
        strict = jvm_with(check_interfaces_are_interfaces=True).run(data)
        assert strict.error == "IncompatibleClassChangeError"
        assert jvm_with(check_interfaces_are_interfaces=False).run(data).ok

    def test_verify_max_stack_toggle(self):
        builder = ClassBuilder("DeepStack")
        builder.default_init()
        builder.main_printing()
        classfile = compile_class(builder.build())
        main = classfile.main_method()
        main.code.max_stack = 1   # the println sequence needs 2
        data = write_class(classfile)
        strict = jvm_with(verify_max_stack=True).run(data)
        assert strict.error == "VerifyError"
        lenient = jvm_with(verify_max_stack=False).run(data)
        assert lenient.ok


class TestExecutionToggles:
    def test_interpreter_budget_toggle(self):
        builder = ClassBuilder("Spin")
        builder.default_init()
        method = MethodBuilder("main", None or JType("void"),
                               [JType("java.lang.String[]")],
                               ["public", "static"])
        method.label("top")
        method.goto("top")
        builder.method(method.build())
        data = write_class(compile_class(builder.build()))
        outcome = jvm_with(max_interpreter_steps=100).run(data)
        assert outcome.phase is Phase.RUNTIME
        # The budget error carries its own class name so a simulated
        # hang never clusters with a real runtime rejection.
        assert outcome.error == "StepBudgetExceeded"

    def test_interface_main_toggle(self):
        builder = ClassBuilder("IMain", modifiers=["public", "interface",
                                                   "abstract"])
        method = MethodBuilder("main", JType("void"),
                               [JType("java.lang.String[]")],
                               ["public", "static"])
        method.println("hi")
        method.ret()
        builder.method(method.build())
        jclass = builder.build()
        jclass.major_version = 52   # static interface methods legal
        data = write_class(compile_class(jclass))
        assert jvm_with(allow_interface_main=True).run(data).ok
        refused = jvm_with(allow_interface_main=False).run(data)
        assert refused.phase is Phase.RUNTIME
