"""Tests for automated discrepancy attribution to policy axes."""

import pytest

from repro.core.attribution import (
    attribute_all_pairs,
    attribute_discrepancy,
)
from repro.jimple import ClassBuilder, MethodBuilder
from repro.jimple.to_classfile import compile_class_bytes
from repro.jimple.types import JType, VOID
from repro.jvm.vendors import (
    all_jvms,
    make_gij,
    make_hotspot7,
    make_hotspot8,
    make_hotspot9,
    make_j9,
)


def figure2_bytes():
    builder = ClassBuilder("Fig2")
    builder.default_init()
    builder.main_printing()
    clinit = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
    clinit.abstract_body()
    builder.method(clinit.build())
    return compile_class_bytes(builder.build())


class TestSingleAxisAttribution:
    def test_problem1_attributed_to_clinit_rule(self):
        """J9's Figure 2 rejection is the <clinit> interpretation axis."""
        attribution = attribute_discrepancy(
            figure2_bytes(), make_j9(), make_hotspot8())
        assert not attribution.environmental
        assert "treat_nonstatic_clinit_as_ordinary" in \
            attribution.responsible_fields

    def test_problem2_attributed_to_assignability(self):
        from repro.jimple.statements import InvokeExpr, InvokeStmt, MethodRef

        builder = ClassBuilder("P2")
        builder.default_init()
        builder.main_printing()
        method = MethodBuilder("t", VOID, [JType("java.lang.String")],
                               ["protected"])
        method.local("r0", JType("java.util.Map"))
        method.identity("r0", "parameter0", JType("java.util.Map"))
        method.stmt(InvokeStmt(InvokeExpr(
            "static",
            MethodRef("java.lang.Boolean", "getBoolean",
                      JType("boolean"), (JType("java.util.Map"),)),
            None, ["r0"])))
        method.ret()
        builder.method(method.build())
        data = compile_class_bytes(builder.build())
        attribution = attribute_discrepancy(data, make_gij(),
                                            make_hotspot8())
        assert "verify_type_assignability" in \
            attribution.responsible_fields

    def test_problem3_attributed_to_access_checking(self):
        builder = ClassBuilder("P3")
        builder.default_init()
        main = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                             ["public", "static"])
        main.throws("sun.java2d.pisces.PiscesRenderingEngine$2")
        main.ret()
        builder.method(main.build())
        data = compile_class_bytes(builder.build())
        attribution = attribute_discrepancy(data, make_hotspot9(),
                                            make_j9())
        assert set(attribution.responsible_fields) <= {
            "check_restricted_access", "resolve_thrown_exceptions"}
        assert attribution.responsible_fields

    def test_environmental_difference_detected(self):
        """Extending a JRE7-only class: hotspot7 vs hotspot8 differ only
        through their JRE environments, not policy."""
        builder = ClassBuilder("EnvDiff",
                               superclass="sun.misc.JavaUtilJarAccess")
        builder.default_init()
        builder.main_printing()
        data = compile_class_bytes(builder.build())
        attribution = attribute_discrepancy(data, make_hotspot8(),
                                            make_hotspot7())
        assert attribution.environmental
        assert attribution.responsible_fields == []

    def test_agreeing_pair_rejected(self, demo_bytes):
        with pytest.raises(ValueError, match="agree"):
            attribute_discrepancy(demo_bytes, make_hotspot8(), make_j9())

    def test_summary_text(self):
        attribution = attribute_discrepancy(
            figure2_bytes(), make_j9(), make_hotspot8())
        assert "policy axes" in attribution.summary()
        assert "j9 vs hotspot8" in attribution.summary()


class TestAllPairs:
    def test_figure2_pairs(self):
        attributions = attribute_all_pairs(figure2_bytes(), all_jvms())
        # J9 disagrees with the four others -> four pairs.
        assert len(attributions) == 4
        assert all("j9" in (a.from_jvm, a.to_jvm) for a in attributions)

    def test_no_pairs_on_clean_class(self, demo_bytes):
        assert attribute_all_pairs(demo_bytes, all_jvms()) == []
