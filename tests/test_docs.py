"""Documentation consistency: the policy matrix must match the code."""

import re
from dataclasses import fields
from pathlib import Path

import pytest

from repro.jvm.policy import JvmPolicy
from repro.jvm.vendors import all_jvms

DOC = Path(__file__).resolve().parent.parent / "docs" / "policy-axes.md"


@pytest.fixture(scope="module")
def doc_rows():
    text = DOC.read_text()
    rows = {}
    for line in text.splitlines():
        match = re.match(r"\| `(\w+)` \| (.+?) \|", line)
        if match:
            cells = [c.strip() for c in line.strip("|").split("|")]
            rows[match.group(1)] = cells[1:6]
    return rows


def test_every_policy_field_documented(doc_rows):
    documented = set(doc_rows)
    actual = {f.name for f in fields(JvmPolicy)}
    assert actual <= documented, actual - documented


def test_documented_values_match_vendors(doc_rows):
    jvms = {jvm.name: jvm.policy for jvm in all_jvms()}
    order = ("hotspot7", "hotspot8", "hotspot9", "j9", "gij")
    for field_name, cells in doc_rows.items():
        if field_name not in {f.name for f in fields(JvmPolicy)}:
            continue
        for vendor, cell in zip(order, cells):
            assert cell == str(getattr(jvms[vendor], field_name)), \
                f"{field_name} for {vendor}: doc says {cell}"


def test_readme_mentions_core_entry_points():
    readme = (DOC.parent.parent / "README.md").read_text()
    for needle in ("classfuzz", "pytest benchmarks/", "python -m repro",
                   "DESIGN.md", "EXPERIMENTS.md"):
        assert needle in readme, needle


def test_design_doc_lists_every_bench():
    design = (DOC.parent.parent / "DESIGN.md").read_text()
    bench_dir = DOC.parent.parent / "benchmarks"
    for bench in bench_dir.glob("test_bench_*.py"):
        # Every bench file is referenced from DESIGN.md or EXPERIMENTS.md.
        experiments = (DOC.parent.parent / "EXPERIMENTS.md").read_text()
        assert bench.name in design + experiments, bench.name
