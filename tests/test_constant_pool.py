"""Unit tests for the constant pool model."""

import pytest

from repro.classfile.constant_pool import (
    ConstantPool,
    ConstantPoolError,
    CpInfo,
    CpTag,
)


class TestInterning:
    def test_utf8_interned_once(self):
        pool = ConstantPool()
        first = pool.utf8("hello")
        second = pool.utf8("hello")
        assert first == second
        assert len(pool) == 1

    def test_distinct_strings_get_distinct_indices(self):
        pool = ConstantPool()
        assert pool.utf8("a") != pool.utf8("b")

    def test_class_ref_creates_utf8(self):
        pool = ConstantPool()
        index = pool.class_ref("java/lang/Object")
        assert pool.get_class_name(index) == "java/lang/Object"
        # Two entries: the Utf8 and the Class.
        assert len(pool) == 2

    def test_method_ref_roundtrip(self):
        pool = ConstantPool()
        index = pool.method_ref("java/io/PrintStream", "println",
                                "(Ljava/lang/String;)V")
        assert pool.get_member_ref(index) == (
            "java/io/PrintStream", "println", "(Ljava/lang/String;)V")

    def test_field_ref_roundtrip(self):
        pool = ConstantPool()
        index = pool.field_ref("java/lang/System", "out",
                               "Ljava/io/PrintStream;")
        assert pool.get_member_ref(index) == (
            "java/lang/System", "out", "Ljava/io/PrintStream;")

    def test_interface_method_ref_tag(self):
        pool = ConstantPool()
        index = pool.interface_method_ref("java/util/Map", "get",
                                          "(Ljava/lang/Object;)Ljava/lang/Object;")
        assert pool.entry(index).tag is CpTag.INTERFACE_METHODREF

    def test_string_roundtrip(self):
        pool = ConstantPool()
        index = pool.string("Completed!")
        assert pool.get_string(index) == "Completed!"

    def test_name_and_type_roundtrip(self):
        pool = ConstantPool()
        index = pool.name_and_type("main", "([Ljava/lang/String;)V")
        assert pool.get_name_and_type(index) == ("main",
                                                 "([Ljava/lang/String;)V")


class TestWideEntries:
    def test_long_occupies_two_slots(self):
        pool = ConstantPool()
        first = pool.long(42)
        second = pool.utf8("after")
        assert second == first + 2

    def test_double_occupies_two_slots(self):
        pool = ConstantPool()
        first = pool.double(3.5)
        assert pool.utf8("x") == first + 2

    def test_hole_after_long_is_error(self):
        pool = ConstantPool()
        index = pool.long(42)
        with pytest.raises(ConstantPoolError, match="unusable"):
            pool.entry(index + 1)

    def test_long_value_roundtrip(self):
        pool = ConstantPool()
        index = pool.long(-(2 ** 40))
        assert pool.entry(index).value == -(2 ** 40)


class TestErrors:
    def test_index_zero_is_invalid(self):
        pool = ConstantPool()
        pool.utf8("x")
        with pytest.raises(ConstantPoolError):
            pool.entry(0)

    def test_out_of_range_index(self):
        pool = ConstantPool()
        pool.utf8("x")
        with pytest.raises(ConstantPoolError, match="out of range"):
            pool.entry(99)

    def test_tag_mismatch_on_typed_read(self):
        pool = ConstantPool()
        index = pool.integer(7)
        with pytest.raises(ConstantPoolError, match="expected"):
            pool.get_utf8(index)

    def test_maybe_entry_returns_none(self):
        pool = ConstantPool()
        assert pool.maybe_entry(5) is None


class TestIterationAndDiagnostics:
    def test_iteration_in_index_order(self):
        pool = ConstantPool()
        pool.utf8("a")
        pool.long(1)
        pool.utf8("b")
        indices = [index for index, _ in pool]
        assert indices == sorted(indices)

    def test_referenced_class_names(self):
        pool = ConstantPool()
        pool.class_ref("java/lang/Object")
        pool.class_ref("Demo")
        assert set(pool.referenced_class_names()) == {"java/lang/Object",
                                                      "Demo"}

    def test_add_at_interns_for_reuse(self):
        pool = ConstantPool()
        pool.add_at(1, CpInfo(CpTag.UTF8, "Code"))
        pool.set_count(2)
        assert pool.utf8("Code") == 1
        assert len(pool) == 1
