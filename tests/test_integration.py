"""End-to-end integration: corpus → classfuzz → differential testing →
reduction, exercising the full published pipeline on one small budget."""

import pytest

from repro import (
    CorpusConfig,
    DifferentialHarness,
    classfuzz,
    evaluate_suite,
    generate_corpus,
    reduce_discrepancy,
)
from repro.core.difftest import DifferentialHarness as Harness


@pytest.fixture(scope="module")
def pipeline():
    """Run one small classfuzz campaign and differential evaluation."""
    seeds = generate_corpus(CorpusConfig(count=40, seed=17))
    run = classfuzz(seeds, iterations=250, criterion="stbr", seed=17)
    harness = Harness()
    report = evaluate_suite(
        "TestClasses", [(g.label, g.data) for g in run.test_classes],
        harness)
    return seeds, run, harness, report


class TestPipeline:
    def test_fuzzer_produced_suite(self, pipeline):
        _, run, _, _ = pipeline
        assert len(run.test_classes) >= 30
        assert len(run.gen_classes) >= len(run.test_classes)

    def test_suite_reveals_discrepancies(self, pipeline):
        _, _, _, report = pipeline
        assert report.discrepancies > 0
        assert report.distinct_discrepancies >= 3

    def test_diff_rate_exceeds_seed_baseline(self, pipeline):
        """Finding 3: mutated representative classfiles trigger
        discrepancies far more often than library seeds."""
        seeds, _, harness, report = pipeline
        from repro.jimple.to_classfile import compile_class_bytes

        seed_report = evaluate_suite(
            "Seeds", [(s.name, compile_class_bytes(s)) for s in seeds],
            harness)
        assert report.diff > seed_report.diff

    def test_discrepancy_reduces(self, pipeline):
        _, run, harness, report = pipeline
        discrepant = next(r for r in report.results if r.is_discrepancy)
        jclass = next(g.jclass for g in run.test_classes
                      if g.label == discrepant.label)
        result = reduce_discrepancy(jclass, harness)
        assert result.codes == discrepant.codes

    def test_mutator_feedback_visible(self, pipeline):
        """Finding 2: success rates vary across mutators and the sampler
        selected productive ones more often."""
        _, run, _, _ = pipeline
        rates = [row[3] for row in run.mutator_report if row[1] > 0]
        assert max(rates) > 0.3
        top_selected = sum(row[1] for row in run.mutator_report[:20])
        bottom_selected = sum(row[1] for row in run.mutator_report[-20:])
        assert top_selected >= bottom_selected

    def test_public_api_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
