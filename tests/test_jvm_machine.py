"""Tests for the startup machine: phases, main lookup, initialization."""

import pytest

from repro.classfile.writer import write_class
from repro.jimple import ClassBuilder, MethodBuilder, compile_class
from repro.jimple.statements import (
    AssignBinopStmt,
    AssignConstStmt,
    AssignFieldGetStmt,
    AssignNewStmt,
    Constant,
    FieldRef,
    InvokeExpr,
    InvokeStmt,
    MethodRef,
    ThrowStmt,
)
from repro.jimple.types import INT, JType, VOID
from repro.jvm.machine import Jvm
from repro.jvm.outcome import Phase
from repro.jvm.policy import JvmPolicy
from repro.jvm.vendors import make_gij, make_hotspot8, make_j9
from repro.runtime.environment import build_environment


def run_on(jclass, jvm=None):
    jvm = jvm or make_hotspot8()
    return jvm.run(write_class(compile_class(jclass)))


def custom_jvm(**policy_overrides):
    return Jvm("custom", JvmPolicy(**policy_overrides), build_environment(8))


class TestPhases:
    def test_garbage_bytes_reject_at_loading(self):
        outcome = make_hotspot8().run(b"\x00\x01\x02")
        assert outcome.phase is Phase.LOADING
        assert outcome.error == "ClassFormatError"

    def test_missing_superclass_rejects_at_loading(self):
        """JVMS §5.3.5: superclass resolution is part of creation."""
        builder = ClassBuilder("NoSuper", superclass="com.example.Missing")
        builder.main_printing()
        outcome = run_on(builder.build())
        assert outcome.phase is Phase.LOADING
        assert outcome.error == "NoClassDefFoundError"

    def test_circularity_rejects_at_loading(self):
        builder = ClassBuilder("Loop", superclass="Loop")
        builder.main_printing()
        outcome = run_on(builder.build())
        assert outcome.phase is Phase.LOADING
        assert outcome.error == "ClassCircularityError"

    def test_final_superclass_rejects_at_linking(self):
        builder = ClassBuilder("SubString", superclass="java.lang.String")
        builder.default_init()
        builder.main_printing()
        outcome = run_on(builder.build())
        assert outcome.phase is Phase.LINKING
        assert outcome.error == "VerifyError"

    def test_runtime_exception_rejects_at_runtime(self):
        builder = ClassBuilder("Thrower")
        builder.default_init()
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["public", "static"])
        method.local("$e", JType("java.lang.RuntimeException"))
        method.stmt(AssignNewStmt("$e", "java.lang.RuntimeException"))
        method.stmt(InvokeStmt(InvokeExpr(
            "special",
            MethodRef("java.lang.RuntimeException", "<init>", VOID, ()),
            "$e", [])))
        method.stmt(ThrowStmt("$e"))
        builder.method(method.build())
        outcome = run_on(builder.build())
        assert outcome.phase is Phase.RUNTIME
        assert outcome.error == "RuntimeException"

    def test_output_captured_before_failure(self):
        builder = ClassBuilder("Partial")
        builder.default_init()
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["public", "static"])
        method.println("before crash")
        method.local("$a", INT)
        method.const("$a", 1)
        method.stmt(AssignBinopStmt("$a", "$a", "/", Constant(0, INT)))
        method.ret()
        builder.method(method.build())
        outcome = run_on(builder.build())
        assert outcome.phase is Phase.RUNTIME
        assert outcome.error == "ArithmeticException"
        assert outcome.output == ("before crash",)


class TestMainLookup:
    def test_missing_main_rejects_at_runtime(self):
        builder = ClassBuilder("NoMain").default_init()
        outcome = run_on(builder.build())
        assert outcome.phase is Phase.RUNTIME
        assert "Main method not found" in outcome.message

    def test_nonstatic_main_rejected_by_strict(self):
        builder = ClassBuilder("InstMain")
        builder.default_init()
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["public"])
        method.println("hi")
        method.ret()
        builder.method(method.build())
        strict = run_on(builder.build())
        assert strict.phase is Phase.RUNTIME and not strict.ok
        lenient = run_on(builder.build(), make_gij())
        assert lenient.ok

    def test_nonpublic_main_policy(self):
        builder = ClassBuilder("PrivMain")
        builder.default_init()
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["static"])
        method.println("hi")
        method.ret()
        builder.method(method.build())
        assert not run_on(builder.build()).ok
        assert run_on(builder.build(), make_gij()).ok


class TestInitialization:
    def _clinit_class(self, body_builder):
        builder = ClassBuilder("WithInit")
        builder.default_init()
        builder.main_printing("main ran")
        clinit = MethodBuilder("<clinit>", modifiers=["static"])
        body_builder(clinit)
        builder.method(clinit.build())
        return builder.build()

    def test_clinit_runs_before_main(self):
        def body(clinit):
            clinit.println("clinit ran")
            clinit.ret()
        outcome = run_on(self._clinit_class(body))
        assert outcome.ok
        assert outcome.output == ("clinit ran", "main ran")

    def test_clinit_error_wrapped(self):
        def body(clinit):
            clinit.local("$a", INT)
            clinit.const("$a", 1)
            clinit.stmt(AssignBinopStmt("$a", "$a", "/", Constant(0, INT)))
            clinit.ret()
        outcome = run_on(self._clinit_class(body))
        assert outcome.phase is Phase.INITIALIZATION
        assert outcome.error == "ExceptionInInitializerError"
        assert "ArithmeticException" in outcome.message

    def test_clinit_missing_class_stays_noclassdef(self):
        def body(clinit):
            clinit.stmt(InvokeStmt(InvokeExpr(
                "static", MethodRef("com.example.Missing", "f", VOID, ()),
                None, [])))
            clinit.ret()
        outcome = run_on(self._clinit_class(body))
        assert outcome.phase is Phase.INITIALIZATION
        assert outcome.error == "NoClassDefFoundError"

    def test_initializer_can_be_disabled(self):
        def body(clinit):
            clinit.println("clinit ran")
            clinit.ret()
        outcome = run_on(self._clinit_class(body),
                         custom_jvm(run_class_initializer=False))
        assert outcome.ok
        assert outcome.output == ("main ran",)

    def test_statics_persist_from_clinit_to_main(self):
        builder = ClassBuilder("Statics")
        builder.default_init()
        builder.field("value", INT, ["public", "static"])
        ref = FieldRef("Statics", "value", INT)
        clinit = MethodBuilder("<clinit>", modifiers=["static"])
        from repro.jimple.statements import AssignFieldPutStmt

        clinit.stmt(AssignFieldPutStmt(ref, Constant(7, INT)))
        clinit.ret()
        builder.method(clinit.build())
        main = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                             ["public", "static"])
        main.local("$v", INT)
        main.stmt(AssignFieldGetStmt("$v", ref))
        main.local("$ps", JType("java.io.PrintStream"))
        main.method.body.insert(0, AssignFieldGetStmt("$ps", FieldRef(
            "java.lang.System", "out", JType("java.io.PrintStream"))))
        main.stmt(InvokeStmt(InvokeExpr(
            "virtual", MethodRef("java.io.PrintStream", "println", VOID,
                                 (INT,)), "$ps", ["$v"])))
        main.ret()
        builder.method(main.build())
        outcome = run_on(builder.build())
        assert outcome.ok
        assert outcome.output == ("7",)


class TestSystemExit:
    def test_system_exit_counts_as_invoked(self):
        builder = ClassBuilder("Exiter")
        builder.default_init()
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["public", "static"])
        method.println("bye")
        method.stmt(InvokeStmt(InvokeExpr(
            "static", MethodRef("java.lang.System", "exit", VOID, (INT,)),
            None, [Constant(0, INT)])))
        method.println("never printed")
        method.ret()
        builder.method(method.build())
        outcome = run_on(builder.build())
        assert outcome.ok
        assert outcome.output == ("bye",)


class TestRunNeverRaises:
    def test_all_vendors_fold_errors_into_outcomes(self):
        for jvm in (make_hotspot8(), make_j9(), make_gij()):
            for data in (b"", b"\xca\xfe\xba\xbe", b"\xca\xfe\xba\xbe" +
                         b"\x00" * 40):
                outcome = jvm.run(data)
                assert outcome.phase is Phase.LOADING
