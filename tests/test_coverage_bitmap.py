"""Tests for the fixed-width coverage bitmap (repro.coverage.bitmap)."""

import pickle

import pytest

from repro.coverage.bitmap import (
    BITMAP_POWER,
    BITMAP_SIZE,
    AccumulatedBitmap,
    CoverageBitmap,
    branch_slot,
    classify_count,
    collector_bitmaps_enabled,
    coverage_slots,
    enable_collector_bitmaps,
    statement_slot,
)
from repro.coverage.probes import CoverageCollector, probe, branch
from repro.coverage.tracefile import Tracefile


class TestSlots:
    def test_power_of_two_table(self):
        assert BITMAP_SIZE == 1 << BITMAP_POWER
        assert BITMAP_SIZE & (BITMAP_SIZE - 1) == 0

    def test_statement_slot_deterministic_and_in_range(self):
        sites = [f"phase.site_{i}" for i in range(200)]
        first = [statement_slot(site) for site in sites]
        second = [statement_slot(site) for site in sites]
        assert first == second
        assert all(0 <= slot < BITMAP_SIZE for slot in first)

    def test_branch_slot_deterministic_and_in_range(self):
        outcomes = [(f"branch_{i}", taken)
                    for i in range(100) for taken in (True, False)]
        first = [branch_slot(key) for key in outcomes]
        assert first == [branch_slot(key) for key in outcomes]
        assert all(0 <= slot < BITMAP_SIZE for slot in first)

    def test_branch_outcomes_get_distinct_slots(self):
        # The taken/not-taken outcomes of one site are distinct ids,
        # hence (collisions aside) distinct slots.
        assert branch_slot(("slot_test.br", True)) != \
            branch_slot(("slot_test.br", False))

    def test_namespace_salting_separates_kinds(self):
        # A statement site and a branch outcome that share interner id 0
        # in their respective namespaces must not systematically share a
        # slot: statements hash from even ints, branches from odd.
        sites = [f"salt.s{i}" for i in range(50)]
        stmt_slots = {statement_slot(site) for site in sites}
        br_slots = {branch_slot((f"salt.b{i}", True)) for i in range(50)}
        # Not a proof of disjointness (collisions are allowed), but the
        # two namespaces must not collapse onto each other wholesale.
        assert stmt_slots != br_slots

    def test_coverage_slots_unions_both_kinds(self):
        statements = {"cs.a": 1, "cs.b": 2}
        branches = {("cs.c", True): 1}
        expected = ({statement_slot(site) for site in statements}
                    | {branch_slot(key) for key in branches})
        assert coverage_slots(statements, branches) == expected

    def test_coverage_slots_handles_fresh_sites(self):
        # Sites never seen by the process fall back to the interning
        # slow path and still land in the cache for the next call.
        statements = {"cs.fresh.never_seen_before_xyz": 1}
        slots = coverage_slots(statements, {})
        assert slots == coverage_slots(statements, {})
        assert len(slots) == 1


class TestClassification:
    @pytest.mark.parametrize("count,bucket", [
        (0, 0), (1, 1), (2, 2), (3, 4), (4, 8), (7, 8), (8, 16),
        (15, 16), (16, 32), (31, 32), (32, 64), (127, 64), (128, 128),
        (255, 128), (1000, 128),
    ])
    def test_afl_buckets(self, count, bucket):
        assert classify_count(count) == bucket

    def test_negative_counts_unhit(self):
        assert classify_count(-1) == 0


class TestCoverageBitmap:
    def test_len_and_density(self):
        bitmap = CoverageBitmap({"cb.a": 1, "cb.b": 1}, {})
        assert len(bitmap) == len(bitmap.slots)
        assert bitmap.density == len(bitmap.slots) / BITMAP_SIZE

    def test_buffer_is_fixed_width(self):
        bitmap = CoverageBitmap({"cb.a": 3}, {("cb.br", True): 1})
        assert len(bitmap.buffer) == BITMAP_SIZE

    def test_buffer_counts_hits(self):
        bitmap = CoverageBitmap({"cb.counted": 5}, {})
        assert bitmap.buffer[statement_slot("cb.counted")] == 5

    def test_buffer_saturates_at_255(self):
        bitmap = CoverageBitmap({"cb.hot": 100000}, {})
        assert bitmap.buffer[statement_slot("cb.hot")] == 255

    def test_nonzero_buffer_slots_match_slot_set(self):
        bitmap = CoverageBitmap(
            {f"cb.s{i}": i + 1 for i in range(40)},
            {(f"cb.b{i}", i % 2 == 0): 1 for i in range(30)})
        occupied = {i for i, c in enumerate(bitmap.buffer) if c}
        assert occupied == bitmap.slots

    def test_classified_applies_buckets_bytewise(self):
        bitmap = CoverageBitmap({"cb.once": 1, "cb.thrice": 3}, {})
        classified = bitmap.classified
        assert len(classified) == BITMAP_SIZE
        assert classified[statement_slot("cb.once")] == 1
        assert classified[statement_slot("cb.thrice")] == 4

    def test_empty_trace_empty_bitmap(self):
        bitmap = CoverageBitmap({}, {})
        assert len(bitmap) == 0
        assert bitmap.buffer == bytes(BITMAP_SIZE)


class TestAccumulatedBitmap:
    def test_fresh_accumulator_sees_everything_as_new(self):
        acc = AccumulatedBitmap()
        assert acc.has_new(CoverageBitmap({"acc.a": 1}, {}))

    def test_empty_bitmap_is_never_new(self):
        assert not AccumulatedBitmap().has_new(CoverageBitmap({}, {}))

    def test_absorb_then_seen(self):
        acc = AccumulatedBitmap()
        bitmap = CoverageBitmap({"acc.b": 1}, {("acc.br", True): 2})
        acc.absorb(bitmap)
        assert not acc.has_new(bitmap)
        assert len(acc) == len(bitmap.slots)

    def test_superset_trace_is_new(self):
        acc = AccumulatedBitmap()
        acc.absorb(CoverageBitmap({"acc.c": 1}, {}))
        assert acc.has_new(CoverageBitmap({"acc.c": 1, "acc.d": 1}, {}))

    def test_subset_trace_is_seen(self):
        acc = AccumulatedBitmap()
        acc.absorb(CoverageBitmap({"acc.e": 1, "acc.f": 1}, {}))
        assert not acc.has_new(CoverageBitmap({"acc.e": 7}, {}))


class TestTracefileIntegration:
    def test_bitmap_view_cached(self):
        trace = Tracefile(statements={"tf.a": 1}, branches={})
        assert trace.bitmap is trace.bitmap

    def test_bitmap_matches_trace_sites(self):
        trace = Tracefile(statements={"tf.b": 2, "tf.c": 1},
                          branches={("tf.br", False): 1})
        assert trace.bitmap.slots == coverage_slots(trace.statements,
                                                    trace.branches)

    def test_getstate_drops_cached_bitmap(self):
        trace = Tracefile(statements={"tf.d": 1}, branches={})
        trace.bitmap  # materialise the cache
        state = trace.__getstate__()
        assert set(state) == {"statements", "branches", "comparisons"}

    def test_pickle_round_trip_rebuilds_bitmap(self):
        # Slots are process-local; the clone must rebuild, not inherit.
        trace = Tracefile(statements={"tf.e": 1},
                          branches={("tf.ebr", True): 1})
        original = trace.bitmap
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.bitmap is not original
        assert clone.bitmap.slots == original.slots


class TestCollectorPrebuild:
    def test_flag_is_sticky(self):
        enable_collector_bitmaps()
        assert collector_bitmaps_enabled()
        enable_collector_bitmaps()
        assert collector_bitmaps_enabled()

    def test_collector_prebuilds_bitmap_when_enabled(self):
        enable_collector_bitmaps()
        collector = CoverageCollector()
        with collector:
            probe("prebuild.stmt")
            branch("prebuild.br", True)
        trace = collector.tracefile()
        # The view was built at collection time: the cache slot is set.
        assert getattr(trace, "_bitmap", None) is not None
        assert trace.bitmap.slots == coverage_slots(trace.statements,
                                                    trace.branches)
