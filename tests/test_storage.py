"""Tests for suite persistence (classfiles + LCOV traces + manifest)."""

import json

import pytest

from repro.core.fuzzing import classfuzz, randfuzz
from repro.core.storage import (
    load_manifest,
    load_suite,
    load_tracefile,
    save_suite,
)
from repro.corpus import CorpusConfig, generate_corpus


@pytest.fixture(scope="module")
def small_run():
    seeds = generate_corpus(CorpusConfig(count=15, seed=5))
    return classfuzz(seeds, iterations=40, seed=5)


class TestSaveLoad:
    def test_roundtrip(self, small_run, tmp_path):
        save_suite(small_run, tmp_path / "suite")
        suite = load_suite(tmp_path / "suite")
        assert len(suite) == len(small_run.test_classes)
        by_label = {g.label: g.data for g in small_run.test_classes}
        for label, data in suite:
            assert by_label[label] == data

    def test_manifest_statistics(self, small_run, tmp_path):
        manifest_path = save_suite(small_run, tmp_path / "suite")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["algorithm"] == "classfuzz"
        assert manifest["criterion"] == "stbr"
        assert manifest["test_count"] == len(small_run.test_classes)
        assert all(entry["mutator"] for entry in manifest["classes"])

    def test_tracefiles_roundtrip(self, small_run, tmp_path):
        save_suite(small_run, tmp_path / "suite")
        generated = small_run.test_classes[0]
        trace = load_tracefile(tmp_path / "suite", generated.label)
        assert trace is not None
        assert trace.signature == generated.tracefile.signature
        assert trace.stmt_set == generated.tracefile.stmt_set

    def test_include_gen_bucket(self, small_run, tmp_path):
        save_suite(small_run, tmp_path / "suite", include_gen=True)
        gen = load_suite(tmp_path / "suite", bucket="gen")
        expected = len(small_run.gen_classes) - len(small_run.test_classes)
        assert len(gen) == expected

    def test_randfuzz_suite_has_no_traces(self, tmp_path):
        seeds = generate_corpus(CorpusConfig(count=10, seed=6))
        run = randfuzz(seeds, iterations=20, seed=6)
        save_suite(run, tmp_path / "suite")
        label = run.test_classes[0].label
        assert load_tracefile(tmp_path / "suite", label) is None

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no manifest"):
            load_manifest(tmp_path)

    def test_wrong_version_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"version": 999}')
        with pytest.raises(ValueError, match="version"):
            load_manifest(tmp_path)

    def test_missing_classfile_named_in_error(self, small_run, tmp_path):
        save_suite(small_run, tmp_path / "suite")
        victim = small_run.test_classes[0].label
        (tmp_path / "suite" / "tests" / f"{victim}.class").unlink()
        with pytest.raises(ValueError, match=victim):
            load_suite(tmp_path / "suite")

    def test_include_gen_roundtrip_with_traces(self, small_run, tmp_path):
        save_suite(small_run, tmp_path / "suite", include_gen=True)
        accepted = {g.label for g in small_run.test_classes}
        rejected = [g for g in small_run.gen_classes
                    if g.label not in accepted]
        by_label = {g.label: g for g in rejected}
        for label, data in load_suite(tmp_path / "suite", bucket="gen"):
            assert by_label[label].data == data
            trace = load_tracefile(tmp_path / "suite", label,
                                   bucket="gen")
            original = by_label[label].tracefile
            if original is None:
                assert trace is None
            else:
                assert trace.signature == original.signature
                assert trace.stmt_set == original.stmt_set
                assert trace.br_set == original.br_set

    def test_v2_manifest_records_provenance(self, small_run, tmp_path):
        manifest_path = save_suite(small_run, tmp_path / "suite")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["version"] == 2
        assert manifest["scheduler"] == "uniform"
        assert manifest["batch"] == small_run.batch
        assert isinstance(manifest["seed_stats"], list)
        parents = {entry["parent"] for entry in manifest["classes"]}
        assert parents and None not in parents

    def test_v1_manifest_still_loads(self, small_run, tmp_path):
        manifest_path = save_suite(small_run, tmp_path / "suite")
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 1
        for key in ("scheduler", "seed_stats", "batch"):
            manifest.pop(key)
        for entry in manifest["classes"]:
            entry.pop("parent")
        manifest_path.write_text(json.dumps(manifest))
        suite = load_suite(tmp_path / "suite")
        assert len(suite) == len(small_run.test_classes)
        assert load_manifest(tmp_path / "suite")["version"] == 1
