"""Unit tests for MCMC mutator selection (§2.2.2)."""

import math
import random

import pytest

from repro.core.mcmc import (
    DEFAULT_P,
    McmcMutatorSelector,
    UniformMutatorSelector,
    estimate_p_range,
    geometric_pmf,
)
from repro.core.mutators import MUTATORS
from repro.core.mutators.base import Mutator


def dummy_mutators(count):
    def noop(jclass, rng):
        return True
    return [Mutator(f"mu{i}", "class", "noop", noop) for i in range(count)]


class TestParameterEstimation:
    def test_paper_range(self):
        """§2.2.2: the initial p must lie in (0.022, 0.025)."""
        low, high = estimate_p_range(129)
        assert low == pytest.approx(0.0232, abs=2e-3)
        assert 0.02 < low < high < 0.03

    def test_default_p_in_valid_range(self):
        low, high = estimate_p_range(129)
        assert low <= DEFAULT_P <= high

    def test_default_p_is_3_over_129(self):
        assert DEFAULT_P == pytest.approx(3 / 129)

    def test_conditions_hold_at_default_p(self):
        n, p = 129, DEFAULT_P
        mass = sum(geometric_pmf(k, p) for k in range(1, n + 1))
        assert 0.95 <= mass <= 1.0
        assert p >= 1 / n
        assert geometric_pmf(n, p) > 0.001

    def test_geometric_pmf_decreasing(self):
        values = [geometric_pmf(k) for k in range(1, 20)]
        assert values == sorted(values, reverse=True)

    def test_pmf_rejects_zero_rank(self):
        with pytest.raises(ValueError):
            geometric_pmf(0)


class TestMetropolisChoice:
    def test_better_rank_always_accepted(self):
        selector = McmcMutatorSelector(dummy_mutators(10),
                                       rng=random.Random(0))
        worst = selector.ranked[-1]
        best = selector.ranked[0]
        assert selector.acceptance_probability(worst, best) == 1.0

    def test_worse_rank_geometric(self):
        selector = McmcMutatorSelector(dummy_mutators(10), p=0.1,
                                       rng=random.Random(0))
        first, last = selector.ranked[0], selector.ranked[-1]
        assert selector.acceptance_probability(first, last) == \
            pytest.approx(0.9 ** 9)

    def test_chain_advances(self):
        selector = McmcMutatorSelector(dummy_mutators(5),
                                       rng=random.Random(1))
        drawn = {selector.next_mutator().name for _ in range(200)}
        assert len(drawn) == 5  # every mutator reachable

    def test_selection_counts_recorded(self):
        selector = McmcMutatorSelector(dummy_mutators(3),
                                       rng=random.Random(2))
        for _ in range(30):
            selector.next_mutator()
        assert sum(s.selected for s in selector.stats.values()) == 30

    def test_sampling_favours_top_ranked(self):
        """After feedback, high-success mutators are drawn more often —
        the paper's Proposition."""
        mutators = dummy_mutators(20)
        # p scaled up for the 20-element registry: the bias ratio between
        # ranks is (1-p)^(rank gap); at the paper's p = 3/129 it only
        # becomes substantial across a 129-deep ranking.
        selector = McmcMutatorSelector(mutators, p=0.2,
                                       rng=random.Random(3))
        # Give mu0 a perfect record and mu19 a dismal one.
        for _ in range(10):
            selector.stats["mu0"].selected += 1
            selector.record_success(mutators[0])
            selector.stats["mu19"].selected += 10
        counts = {name: 0 for name in selector.stats}
        for _ in range(3000):
            counts[selector.next_mutator().name] += 1
        assert counts["mu0"] > counts["mu19"] * 1.5

    def test_resort_after_success(self):
        mutators = dummy_mutators(4)
        selector = McmcMutatorSelector(mutators, rng=random.Random(4))
        selector.stats["mu3"].selected = 1
        selector.record_success(mutators[3])
        assert selector.ranked[0].name == "mu3"

    def test_report_sorted_by_rank(self):
        mutators = dummy_mutators(4)
        selector = McmcMutatorSelector(mutators, rng=random.Random(5))
        selector.stats["mu2"].selected = 2
        selector.record_success(mutators[2])
        report = selector.report()
        assert report[0][0] == "mu2"
        assert report[0][3] == pytest.approx(0.5)

    def test_rejects_empty_mutator_list(self):
        with pytest.raises(ValueError):
            McmcMutatorSelector([])

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            McmcMutatorSelector(dummy_mutators(2), p=1.5)

    def test_works_with_full_registry(self):
        selector = McmcMutatorSelector(MUTATORS, rng=random.Random(6))
        for _ in range(50):
            assert selector.next_mutator() in MUTATORS


class TestUniformSelector:
    def test_roughly_uniform(self):
        selector = UniformMutatorSelector(dummy_mutators(4),
                                          rng=random.Random(7))
        counts = {f"mu{i}": 0 for i in range(4)}
        for _ in range(4000):
            counts[selector.next_mutator().name] += 1
        for count in counts.values():
            assert 800 < count < 1200

    def test_report_shape(self):
        selector = UniformMutatorSelector(dummy_mutators(2),
                                          rng=random.Random(8))
        mutator = selector.next_mutator()
        selector.record_success(mutator)
        report = selector.report()
        assert report[0][3] == 1.0
