"""Tests for the embedded campaign monitor (server, status, SSE).

Covers the SSE fan-out sink (bounded queues, drop-oldest semantics, the
dropped-events counter), the status tracker (event folding, registry
reads, snapshot schema), the HTTP server end-to-end against a live
fuzzing run (all four endpoints, concurrent scrapes, client
connect/disconnect), and the replay-mode ``repro monitor`` command.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core.fuzzing import classfuzz
from repro.corpus import CorpusConfig, generate_corpus
from repro.observe import (
    MonitorServer,
    SseSink,
    StatusTracker,
    Telemetry,
    config_fingerprint,
)
from repro.observe.events import Event, EventBus, JsonlSink


def _event(event_type="iteration", seq=1, **fields):
    return Event(event_type, time.time(), seq, fields)


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers, response.read()


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=16, seed=7))


# ---------------------------------------------------------------------------
# SseSink
# ---------------------------------------------------------------------------

class TestSseSink:
    def test_fan_out_to_every_client(self):
        sink = SseSink()
        a, b = sink.register(), sink.register()
        sink.emit(_event(index=1))
        assert a.get(timeout=1).fields["index"] == 1
        assert b.get(timeout=1).fields["index"] == 1

    def test_client_names_unique(self):
        sink = SseSink()
        names = {sink.register().name for _ in range(5)}
        assert len(names) == 5

    def test_unregister_stops_delivery(self):
        sink = SseSink()
        client = sink.register()
        sink.unregister(client)
        sink.emit(_event())
        assert client.pending() == 0

    def test_slow_client_drops_oldest_never_blocks(self):
        registry = Telemetry().registry
        sink = SseSink(registry, client_queue=4)
        client = sink.register()
        for index in range(10):
            sink.emit(_event(seq=index + 1, index=index))
        # The queue holds the *newest* four events; six were shed.
        assert client.pending() == 4
        assert client.dropped == 6
        got = [client.get(timeout=1).fields["index"] for _ in range(4)]
        assert got == [6, 7, 8, 9]
        dropped = registry.get("repro_monitor_dropped_events_total")
        assert dropped.labels(client=client.name).value == 6

    def test_fast_client_drops_nothing(self):
        sink = SseSink(client_queue=16)
        client = sink.register()
        for index in range(10):
            sink.emit(_event(seq=index + 1))
        assert client.pending() == 10
        assert client.dropped == 0

    def test_get_times_out_with_none(self):
        client = SseSink().register()
        assert client.get(timeout=0.01) is None


# ---------------------------------------------------------------------------
# StatusTracker
# ---------------------------------------------------------------------------

class TestConfigFingerprint:
    def test_stable_under_key_order(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})

    def test_distinct_configs_differ(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_short_hex(self):
        fp = config_fingerprint({})
        assert len(fp) == 12
        int(fp, 16)


class TestStatusTracker:
    def test_snapshot_schema_empty(self):
        snapshot = StatusTracker().snapshot()
        for section in ("run", "campaign", "progress", "coverage",
                        "prefilter", "executor", "discrepancies",
                        "checkpoint", "events", "now"):
            assert section in snapshot
        assert snapshot["progress"]["iterations"] == 0
        assert snapshot["progress"]["acceptance_rate"] == 0.0

    def test_begin_run_and_update(self):
        tracker = StatusTracker()
        tracker.begin_run("run-1", config={"batch": 8})
        tracker.update(phase="fuzz", legs=3)
        snapshot = tracker.snapshot()
        assert snapshot["run"]["id"] == "run-1"
        assert snapshot["run"]["config_fingerprint"] == \
            config_fingerprint({"batch": 8})
        assert snapshot["run"]["uptime_seconds"] >= 0
        assert snapshot["campaign"] == {"phase": "fuzz", "legs": 3}

    def test_folds_iteration_events(self):
        tracker = StatusTracker()
        for index in range(10):
            tracker.emit(_event(seq=index + 1, algorithm="classfuzz",
                                index=index, generated=True,
                                accepted=index % 2 == 0,
                                tests=index, pool=20 + index))
        progress = tracker.snapshot()["progress"]
        assert progress["iterations"] == 10
        assert progress["accepted"] == 5
        assert progress["acceptance_rate"] == 0.5
        assert progress["algorithm"] == "classfuzz"
        assert progress["tests"] == 9
        assert progress["pool"] == 29
        assert progress["mutants_per_second"] > 0

    def test_folds_rounds_discards_checkpoints(self):
        tracker = StatusTracker()
        tracker.emit(_event("batch_round", round=3))
        tracker.emit(_event("mutant_discarded", category="inapplicable"))
        tracker.emit(_event("mutant_discarded", category="inapplicable"))
        tracker.emit(_event("checkpoint_written", index=2, iterations=100,
                            path="/tmp/cp"))
        snapshot = tracker.snapshot()
        assert snapshot["progress"]["round"] == 3
        assert snapshot["progress"]["discards"] == {"inapplicable": 2}
        assert snapshot["checkpoint"]["index"] == 2
        assert snapshot["checkpoint"]["age_seconds"] >= 0
        assert snapshot["events"]["batch_round"] == 1

    def test_folds_discrepancies_and_clusters(self):
        tracker = StatusTracker()
        for index in range(12):
            tracker.emit(_event("discrepancy_found",
                                label=f"C{index}", codes=[0, 2]))
        tracker.emit(_event("triage_cluster", id="Cdeadbeef"))
        section = tracker.snapshot()["discrepancies"]
        assert section["total"] == 12
        assert len(section["recent"]) == 10  # bounded
        assert section["triage_clusters"] == 1

    def test_reads_registry_families(self):
        telemetry = Telemetry()
        registry = telemetry.registry
        registry.counter("repro_bitmap_prefilter_total", "",
                         ("criterion", "outcome")) \
            .labels(criterion="tr", outcome="new").inc(30)
        registry.counter("repro_bitmap_prefilter_total", "",
                         ("criterion", "outcome")) \
            .labels(criterion="tr", outcome="seen").inc(10)
        registry.gauge("repro_coverage_bitmap_slots", "",
                       ("criterion",)).labels(criterion="tr").set(512)
        registry.counter("repro_jvm_runs_total", "", ("vendor",)) \
            .labels(vendor="hotspot9").inc(5)
        registry.counter("repro_cache_lookups_total", "",
                         ("store", "result")) \
            .labels(store="outcome", result="hit").inc(8)
        registry.counter("repro_cache_lookups_total", "",
                         ("store", "result")) \
            .labels(store="outcome", result="miss").inc(2)
        snapshot = StatusTracker(registry).snapshot()
        assert snapshot["prefilter"]["tr"]["hit_rate"] == 0.75
        assert snapshot["prefilter"]["tr"]["outcomes"]["new"] == 30
        assert snapshot["coverage"]["bitmap_slots"]["tr"] == 512
        assert snapshot["coverage"]["bitmap_occupancy"] == \
            pytest.approx(512 / 65536, abs=1e-6)
        assert snapshot["executor"]["vendor_runs"]["hotspot9"] == 5
        assert snapshot["executor"]["caches"]["outcome"]["hit_rate"] == 0.8

    def test_snapshot_is_json_serializable(self):
        tracker = StatusTracker(Telemetry().registry)
        tracker.begin_run("r", config={"path": object()})
        tracker.emit(_event(algorithm="x", accepted=True))
        json.dumps(tracker.snapshot(), default=str)


# ---------------------------------------------------------------------------
# EventBus.dispatch (the replay path)
# ---------------------------------------------------------------------------

class TestDispatch:
    def test_preserves_ts_and_seq(self):
        bus = EventBus()
        seen = []
        bus.add_sink(type("S", (), {"emit": lambda self, e: seen.append(e),
                                    "close": lambda self: None})())
        original = Event("iteration", 123.5, 42, {"index": 1})
        bus.dispatch(original)
        assert seen == [original]

    def test_noop_when_disabled(self):
        EventBus().dispatch(_event())  # no sinks: must not raise

    def test_interleaved_emits_stay_ordered(self):
        bus = EventBus()
        seen = []
        bus.add_sink(type("S", (), {"emit": lambda self, e: seen.append(e),
                                    "close": lambda self: None})())
        bus.dispatch(Event("iteration", 1.0, 100, {}))
        bus.emit("iteration", index=2)
        assert seen[1].seq == 101


# ---------------------------------------------------------------------------
# MonitorServer end-to-end
# ---------------------------------------------------------------------------

class TestMonitorServer:
    def test_serves_all_four_endpoints(self, seeds):
        telemetry = Telemetry()
        monitor = MonitorServer(telemetry).start()
        try:
            classfuzz(seeds, 30, criterion="tr", seed=1,
                      telemetry=telemetry, coverage_index="bitmap")
            code, headers, body = _get(monitor.url + "/")
            assert code == 200 and b"campaign monitor" in body
            assert "text/html" in headers["Content-Type"]
            code, headers, body = _get(monitor.url + "/metrics")
            assert code == 200
            text = body.decode()
            assert "repro_iterations_total" in text
            assert "repro_bitmap_prefilter_total" in text
            from repro.observe.summary import parse_prometheus
            assert parse_prometheus(text)  # well-formed exposition
            code, _, body = _get(monitor.url + "/status")
            status = json.loads(body)
            assert status["progress"]["iterations"] == 30
            assert status["run"]["id"].startswith("classfuzz#")
            assert status["run"]["config"]["coverage_index"] == "bitmap"
            assert status["coverage"]["bitmap_slots"]["tr"] > 0
        finally:
            monitor.stop()

    def test_404_on_unknown_path(self):
        monitor = MonitorServer(Telemetry()).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(monitor.url + "/nope")
            assert info.value.code == 404
        finally:
            monitor.stop()

    def test_concurrent_scrapes_during_fuzzing(self, seeds):
        telemetry = Telemetry()
        monitor = MonitorServer(telemetry).start()
        errors = []
        done = threading.Event()

        def scraper(path):
            while not done.is_set():
                try:
                    code, _, body = _get(monitor.url + path, timeout=5)
                    assert code == 200 and body
                    if path == "/status":
                        json.loads(body)
                except Exception as exc:  # pragma: no cover - failure
                    errors.append(exc)
                    return

        scrapers = [threading.Thread(target=scraper, args=(path,))
                    for path in ("/metrics", "/status", "/metrics",
                                 "/status")]
        for thread in scrapers:
            thread.start()
        try:
            classfuzz(seeds, 60, criterion="tr", seed=2,
                      telemetry=telemetry, coverage_index="bitmap")
        finally:
            done.set()
            for thread in scrapers:
                thread.join(timeout=10)
            monitor.stop()
        assert not errors

    def test_sse_connect_stream_disconnect(self, seeds):
        telemetry = Telemetry()
        monitor = MonitorServer(telemetry).start()
        try:
            sock = socket.create_connection(("127.0.0.1", monitor.port),
                                            timeout=5)
            sock.sendall(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
            time.sleep(0.2)
            assert len(monitor.sse.clients()) == 1
            classfuzz(seeds, 10, criterion="tr", seed=3,
                      telemetry=telemetry)
            sock.settimeout(5)
            data = b""
            while b"\n\n" not in data or b"data: " not in data:
                data += sock.recv(65536)
            head, _, stream = data.partition(b"\r\n\r\n")
            assert b"200" in head.split(b"\r\n", 1)[0]
            assert b"text/event-stream" in head
            frame = [part for part in stream.split(b"\n\n")
                     if b"data: " in part][0]
            payload = json.loads(
                frame.split(b"data: ", 1)[1].split(b"\n", 1)[0])
            from repro.observe import EVENT_TYPES
            assert payload["type"] in EVENT_TYPES
            # Disconnect mid-campaign: the sink must notice and the
            # bus must keep emitting without error.
            sock.close()
            classfuzz(seeds, 10, criterion="tr", seed=4,
                      telemetry=telemetry)
            deadline = time.time() + 10
            while monitor.sse.clients() and time.time() < deadline:
                telemetry.emit("iteration", algorithm="poke", index=0,
                               generated=False, accepted=False,
                               tests=0, pool=0, seconds=0.0)
                time.sleep(0.05)
            assert monitor.sse.clients() == []
        finally:
            monitor.stop()

    def test_attach_status_is_idempotent(self):
        telemetry = Telemetry()
        first = telemetry.attach_status()
        monitor = MonitorServer(telemetry)
        assert monitor.tracker is first
        assert telemetry.bus.sinks.count(first) == 1
        monitor._httpd.server_close()

    def test_hot_path_unchanged_without_monitor(self, seeds):
        # The contract behind the benchmark gate: with no --serve the
        # decision stream is byte-identical to a bare run.
        plain = classfuzz(seeds, 25, criterion="tr", seed=9)
        again = classfuzz(seeds, 25, criterion="tr", seed=9)
        assert [g.label for g in plain.test_classes] == \
            [g.label for g in again.test_classes]


# ---------------------------------------------------------------------------
# Replay mode (repro monitor)
# ---------------------------------------------------------------------------

class TestReplayMode:
    def _record(self, tmp_path, seeds):
        events = tmp_path / "events.jsonl"
        telemetry = Telemetry()
        telemetry.bus.add_sink(JsonlSink(events))
        classfuzz(seeds, 20, criterion="tr", seed=5, telemetry=telemetry)
        telemetry.close()
        return events

    def test_replay_feeds_tracker_and_sse(self, tmp_path, seeds):
        from repro.observe import read_events

        events = self._record(tmp_path, seeds)
        telemetry = Telemetry()
        monitor = MonitorServer(telemetry).start()
        try:
            client = monitor.sse.register()
            for event in read_events(events):
                telemetry.bus.dispatch(event)
            snapshot = monitor.tracker.snapshot()
            assert snapshot["progress"]["iterations"] == 20
            assert client.pending() > 0
        finally:
            monitor.stop()

    def test_monitor_command_replays_and_exits(self, tmp_path, seeds,
                                               capsys):
        events = self._record(tmp_path, seeds)
        assert main(["monitor", str(events), "--port", "0",
                     "--duration", "0.2"]) == 0
        err = capsys.readouterr().err
        assert "replay mode" in err
        assert "replayed" in err

    def test_monitor_command_missing_file(self, tmp_path):
        assert main(["monitor", str(tmp_path / "nope.jsonl"),
                     "--port", "0", "--duration", "0"]) == 2

    def test_monitor_command_serves_status(self, tmp_path, seeds):
        events = self._record(tmp_path, seeds)
        # Drive the command on a thread and scrape it mid-serve.
        port_box = {}

        def run():
            port_box["code"] = main(["monitor", str(events), "--port",
                                     "0", "--speed", "0",
                                     "--duration", "5"])

        # A fixed ephemeral port isn't knowable from outside main();
        # replay through the API instead, then assert the CLI path on
        # a known port.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        thread = threading.Thread(target=lambda: port_box.update(
            code=main(["monitor", str(events), "--port", str(port),
                       "--duration", "2"])))
        thread.start()
        try:
            deadline = time.time() + 5
            status = None
            while time.time() < deadline:
                try:
                    _, _, body = _get(
                        f"http://127.0.0.1:{port}/status", timeout=1)
                    status = json.loads(body)
                    if status["progress"]["iterations"] == 20:
                        break
                except Exception:
                    time.sleep(0.05)
            assert status is not None
            assert status["run"]["id"] == f"replay:{events.name}"
            assert status["run"]["config"]["mode"] == "replay"
            assert status["progress"]["iterations"] == 20
        finally:
            thread.join(timeout=15)
        assert port_box["code"] == 0
