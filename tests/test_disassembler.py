"""Tests for the javap-style disassembler."""

from repro.classfile.disassembler import disassemble
from repro.classfile.reader import read_class
from repro.classfile.writer import write_class
from repro.jimple import ClassBuilder, MethodBuilder, compile_class
from repro.jimple.types import INT, JType


def render(jclass, **kwargs):
    classfile = compile_class(jclass)
    data = write_class(classfile)
    return disassemble(read_class(data), data, **kwargs)


class TestDisassembler:
    def test_figure2_shape(self, demo_class):
        """The output carries Figure 2's landmarks."""
        text = render(demo_class)
        assert "MD5 checksum" in text
        assert "class Demo" in text
        assert "minor version: 0" in text
        assert "major version: 51" in text
        assert "flags: ACC_PUBLIC, ACC_SUPER" in text
        assert "Constant pool:" in text

    def test_code_listing_with_comments(self, demo_class):
        text = render(demo_class)
        assert "getstatic" in text
        assert "// Field java/lang/System.out:Ljava/io/PrintStream;" in text
        assert "invokevirtual" in text
        assert ("// Method java/io/PrintStream.println:"
                "(Ljava/lang/String;)V") in text
        assert "ldc" in text
        assert "return" in text

    def test_stack_and_locals_line(self, demo_class):
        text = render(demo_class)
        assert "stack=" in text and "locals=" in text

    def test_constant_pool_entries(self, demo_class):
        text = render(demo_class)
        assert "Utf8" in text
        assert "Methodref" in text
        assert "NameAndType" in text

    def test_pool_can_be_suppressed(self, demo_class):
        text = render(demo_class, show_constant_pool=False)
        assert "Constant pool:" not in text

    def test_fields_and_constant_values(self):
        builder = ClassBuilder("WithField")
        builder.field("LIMIT", INT, ["public", "static", "final"],
                      constant_value=42)
        text = render(builder.build())
        assert "int LIMIT;" in text
        assert "ConstantValue:" in text

    def test_exceptions_attribute(self):
        builder = ClassBuilder("Thrower")
        method = MethodBuilder("risky", modifiers=["public"])
        method.throws("java.io.IOException")
        method.ret()
        builder.method(method.build())
        text = render(builder.build())
        assert "throws java/io/IOException" in text

    def test_abstract_clinit_renders(self):
        """The Figure 2 mutant disassembles without crashing."""
        builder = ClassBuilder("M1436188543")
        builder.default_init()
        builder.main_printing()
        clinit = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
        clinit.abstract_body()
        builder.method(clinit.build())
        text = render(builder.build())
        assert "ACC_PUBLIC, ACC_ABSTRACT" in text

    def test_robust_against_dangling_refs(self):
        """Disassembly must not crash on mutant-grade classfiles."""
        from repro.classfile.model import ClassFile

        classfile = ClassFile()
        pool = classfile.constant_pool
        classfile.this_class = pool.class_ref("Broken")
        classfile.super_class = pool.class_ref("java/lang/Object")
        from repro.classfile.access_flags import AccessFlags
        from repro.classfile.attributes import CodeAttribute
        from repro.classfile.methods import MethodInfo

        # getstatic pointing at a dangling pool slot.
        code = CodeAttribute(1, 1, bytes([0xb2, 0x00, 0x63, 0xb1]))
        classfile.methods.append(MethodInfo(
            AccessFlags.PUBLIC, pool.utf8("m"), pool.utf8("()V"), [code]))
        text = disassemble(classfile)
        assert "<dangling>" in text
