"""Tests for the Jimple textual printer."""

from repro.jimple import ClassBuilder, MethodBuilder, print_class, print_method
from repro.jimple.statements import (
    AssignFieldGetStmt,
    Constant,
    FieldRef,
    InvokeExpr,
    InvokeStmt,
    MethodRef,
)
from repro.jimple.types import INT, JType, STRING, VOID


class TestPrintClass:
    def test_header_matches_table2_style(self):
        builder = ClassBuilder("M1437185190")
        text = print_class(builder.build())
        assert text.startswith(
            "public class M1437185190 extends java.lang.Object")

    def test_private_modifier_and_thread_super(self):
        """Table 2's class-mutation example rendering."""
        builder = ClassBuilder("M1437185190", superclass="java.lang.Thread",
                               modifiers=["private", "super"])
        text = print_class(builder.build())
        assert "private class M1437185190 extends java.lang.Thread" in text

    def test_implements_clause(self):
        builder = ClassBuilder("X")
        builder.implements("java.security.PrivilegedAction")
        text = print_class(builder.build())
        assert "implements java.security.PrivilegedAction" in text

    def test_interface_rendering(self):
        builder = ClassBuilder("I", modifiers=["public", "interface",
                                               "abstract"])
        text = print_class(builder.build())
        assert "public interface I" in text
        assert "abstract interface" not in text

    def test_fields_rendered(self):
        builder = ClassBuilder("F")
        builder.field("MAP", JType("java.util.Map"), ["protected", "final"])
        text = print_class(builder.build())
        assert "protected final java.util.Map MAP;" in text


class TestPrintMethod:
    def test_signature_and_throws(self):
        method = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                               ["public", "static"])
        method.throws("sun.java2d.pisces.PiscesRenderingEngine$2")
        method.ret()
        text = print_method(method.build())
        assert "public static void main(java.lang.String[])" in text
        assert "throws sun.java2d.pisces.PiscesRenderingEngine$2" in text

    def test_abstract_method_semicolon_form(self):
        method = MethodBuilder("op", modifiers=["public", "abstract"])
        method.abstract_body()
        text = print_method(method.build())
        assert text.strip().endswith(";")
        assert "{" not in text

    def test_statements_in_paper_syntax(self):
        method = MethodBuilder("m", VOID, [], ["public", "static"])
        method.local("$r1", JType("java.io.PrintStream"))
        method.stmt(AssignFieldGetStmt("$r1", FieldRef(
            "java.lang.System", "out", JType("java.io.PrintStream"))))
        method.stmt(InvokeStmt(InvokeExpr(
            "virtual",
            MethodRef("java.io.PrintStream", "println", VOID, (STRING,)),
            "$r1", [Constant("Executed", STRING)])))
        method.ret()
        text = print_method(method.build())
        assert "$r1 = <java.lang.System: java.io.PrintStream out>;" in text
        assert ("virtualinvoke $r1.<java.io.PrintStream: void "
                "println(java.lang.String)>(\"Executed\");") in text

    def test_identity_statement_syntax(self):
        method = MethodBuilder("m", VOID, [STRING], ["public", "static"])
        method.local("r0", STRING)
        method.identity("r0", "parameter0", STRING)
        method.ret()
        text = print_method(method.build())
        assert "r0 := @parameter0: java.lang.String;" in text

    def test_labels_outdented(self):
        method = MethodBuilder("m", VOID, [], ["public", "static"])
        method.local("$i", INT)
        method.const("$i", 1)
        method.if_zero("$i", "==", "done")
        method.label("done")
        method.ret()
        text = print_method(method.build())
        assert "if $i == 0 goto done;" in text
        assert "done:" in text
