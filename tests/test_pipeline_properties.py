"""Property-based tests over the mutation→dump→run pipeline.

The pipeline invariant behind the whole experiment: whatever a mutator
does, the outcome is either a *dump failure* (a counted, failed iteration)
or genuine classfile bytes that every JVM consumes without crashing the
harness.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.classfile.reader import ReaderOptions, read_class
from repro.core.mutators import MUTATORS
from repro.corpus import CorpusConfig, generate_corpus
from repro.errors import JavaError
from repro.jimple.to_classfile import JimpleCompileError, compile_class_bytes
from repro.jvm.outcome import Phase
from repro.jvm.vendors import all_jvms

_SEEDS = generate_corpus(CorpusConfig(count=24, seed=1234))
_JVMS = all_jvms()

_LENIENT = ReaderOptions(max_supported_major=99, min_supported_major=0,
                         reject_trailing_bytes=False)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=len(_SEEDS) - 1),
       st.integers(min_value=0, max_value=len(MUTATORS) - 1),
       st.integers(min_value=0, max_value=2 ** 31))
def test_mutant_bytes_always_parseable(seed_index, mutator_index, rng_seed):
    """A dumped mutant is always structurally parseable bytes."""
    rng = random.Random(rng_seed)
    mutant = _SEEDS[seed_index].clone()
    try:
        if not MUTATORS[mutator_index](mutant, rng):
            return
        data = compile_class_bytes(mutant)
    except (JimpleCompileError, Exception):
        return  # a failed iteration, which the fuzzers count
    parsed = read_class(data, _LENIENT)
    assert parsed.this_class != 0


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=len(_SEEDS) - 1),
       st.integers(min_value=0, max_value=len(MUTATORS) - 1),
       st.integers(min_value=0, max_value=2 ** 31))
def test_jvms_never_crash_on_mutants(seed_index, mutator_index, rng_seed):
    """Every JVM folds every mutant into an Outcome — no exception ever
    escapes ``Jvm.run``."""
    rng = random.Random(rng_seed)
    mutant = _SEEDS[seed_index].clone()
    try:
        MUTATORS[mutator_index](mutant, rng)
        data = compile_class_bytes(mutant)
    except Exception:
        return
    for jvm in _JVMS:
        outcome = jvm.run(data)
        assert outcome.phase in Phase
        if not outcome.ok:
            assert outcome.error


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=len(_SEEDS) - 1),
       st.lists(st.integers(min_value=0, max_value=len(MUTATORS) - 1),
                min_size=2, max_size=6),
       st.integers(min_value=0, max_value=2 ** 31))
def test_mutation_chains_stay_well_behaved(seed_index, chain, rng_seed):
    """Stacked mutations (the fuzzers' seed-feedback regime) preserve the
    dump-or-fail invariant."""
    rng = random.Random(rng_seed)
    mutant = _SEEDS[seed_index].clone()
    for mutator_index in chain:
        try:
            MUTATORS[mutator_index](mutant, rng)
        except Exception:
            return
    try:
        data = compile_class_bytes(mutant)
    except Exception:
        return
    parsed = read_class(data, _LENIENT)
    assert len(parsed.constant_pool) > 0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_determinism_of_one_iteration(rng_seed):
    """Identical RNG seeds produce identical mutants."""
    first = _run_once(rng_seed)
    second = _run_once(rng_seed)
    assert first == second


def _run_once(rng_seed):
    rng = random.Random(rng_seed)
    mutant = _SEEDS[rng.randrange(len(_SEEDS))].clone()
    mutator = MUTATORS[rng.randrange(len(MUTATORS))]
    try:
        if not mutator(mutant, rng):
            return ("inapplicable", mutator.name)
        return ("bytes", compile_class_bytes(mutant))
    except Exception as exc:
        return ("failed", type(exc).__name__)
