"""Golden-value tests for the interpreter's JVM arithmetic semantics.

Each case pins an opcode family to the value the JVM specification
mandates (JVMS §6.5): NaN ordering in the fcmp/dcmp pairs, two's-
complement negation wrap, narrowing-conversion truncation, float-to-
integral NaN/infinity saturation, and 64-bit bitwise/shift masking.
The policy-axis variants (`fcmpg_nan_result`, the lax branch of
`strict_narrowing_conversions`) are asserted alongside the spec
behaviour so a vendor-policy regression cannot pass silently.
"""

import math

import pytest

from repro.bytecode.opcodes import Op
from repro.classfile.reader import read_class
from repro.classfile.writer import write_class
from repro.jimple import ClassBuilder, MethodBuilder, compile_class
from repro.jimple.statements import AssignCmpStmt, AssignUnopStmt, ReturnStmt
from repro.jimple.types import DOUBLE, FLOAT, INT, JType, LONG
from repro.jvm.interpreter import Interpreter
from repro.jvm.policy import JvmPolicy
from repro.runtime.environment import build_environment

INT_MIN, INT_MAX = -0x80000000, 0x7FFFFFFF
LONG_MIN, LONG_MAX = -0x8000000000000000, 0x7FFFFFFFFFFFFFFF

NAN = float("nan")
INF = float("inf")


def _invoke(jclass, **policy_overrides):
    """Compile, reload, and run the static ``f`` method; return its value."""
    data = write_class(compile_class(jclass))
    classfile = read_class(data)
    interp = Interpreter(classfile, JvmPolicy(**policy_overrides),
                         build_environment(8))
    method = classfile.find_method("f")
    assert method is not None
    return interp.invoke_method(method, [])


def run_unop(op, value, src_type, dst_type, **policy_overrides):
    """``f() { $src = value; $dst = <op> $src; return $dst; }``"""
    builder = ClassBuilder("T")
    method = MethodBuilder("f", dst_type, [], ["public", "static"])
    method.local("$src", src_type)
    method.local("$dst", dst_type)
    method.const("$src", value, src_type)
    method.stmt(AssignUnopStmt("$dst", op, "$src"))
    method.stmt(ReturnStmt("$dst"))
    builder.method(method.build())
    return _invoke(builder.build(), **policy_overrides)


def run_cmp(op, left, right, operand_type, **policy_overrides):
    """``f() { $l = left; $r = right; $c = $l <op> $r; return $c; }``"""
    builder = ClassBuilder("T")
    method = MethodBuilder("f", INT, [], ["public", "static"])
    method.local("$l", operand_type)
    method.local("$r", operand_type)
    method.local("$c", INT)
    method.const("$l", left, operand_type)
    method.const("$r", right, operand_type)
    method.stmt(AssignCmpStmt("$c", "$l", op, "$r"))
    method.stmt(ReturnStmt("$c"))
    builder.method(method.build())
    return _invoke(builder.build(), **policy_overrides)


class TestFloatCompareNaN:
    """fcmpl/fcmpg/dcmpl/dcmpg: NaN pushes -1 (l) or +1 (g), JVMS §6.5."""

    @pytest.mark.parametrize("op, jtype, expected", [
        ("fcmpl", FLOAT, -1), ("fcmpg", FLOAT, 1),
        ("dcmpl", DOUBLE, -1), ("dcmpg", DOUBLE, 1),
    ])
    def test_nan_left(self, op, jtype, expected):
        assert run_cmp(op, NAN, 0.0, jtype) == expected

    @pytest.mark.parametrize("op, jtype, expected", [
        ("fcmpl", FLOAT, -1), ("fcmpg", FLOAT, 1),
        ("dcmpl", DOUBLE, -1), ("dcmpg", DOUBLE, 1),
    ])
    def test_nan_right(self, op, jtype, expected):
        assert run_cmp(op, 1.5, NAN, jtype) == expected

    @pytest.mark.parametrize("op, jtype", [
        ("fcmpl", FLOAT), ("fcmpg", FLOAT),
        ("dcmpl", DOUBLE), ("dcmpg", DOUBLE),
    ])
    def test_ordered_operands_agree(self, op, jtype):
        assert run_cmp(op, 1.0, 2.0, jtype) == -1
        assert run_cmp(op, 2.0, 1.0, jtype) == 1
        assert run_cmp(op, 3.5, 3.5, jtype) == 0

    def test_lcmp(self):
        assert run_cmp("lcmp", LONG_MIN, LONG_MAX, LONG) == -1
        assert run_cmp("lcmp", LONG_MAX, LONG_MIN, LONG) == 1
        assert run_cmp("lcmp", 7, 7, LONG) == 0

    def test_folded_vendor_axis(self):
        # gij's fcmpg_nan_result=0 folds both NaN results to zero.
        assert run_cmp("fcmpg", NAN, 0.0, FLOAT, fcmpg_nan_result=0) == 0
        assert run_cmp("fcmpl", NAN, 0.0, FLOAT, fcmpg_nan_result=0) == 0
        assert run_cmp("dcmpg", NAN, 0.0, DOUBLE, fcmpg_nan_result=0) == 0


class TestNegationWrap:
    """ineg/lneg: negating MIN_VALUE wraps back to MIN_VALUE."""

    @pytest.mark.parametrize("value, expected", [
        (5, -5), (-5, 5), (0, 0), (INT_MAX, -INT_MAX),
        (INT_MIN, INT_MIN),
    ])
    def test_ineg(self, value, expected):
        assert run_unop("ineg", value, INT, INT) == expected

    @pytest.mark.parametrize("value, expected", [
        (5, -5), (0, 0), (LONG_MAX, -LONG_MAX), (LONG_MIN, LONG_MIN),
    ])
    def test_lneg(self, value, expected):
        assert run_unop("lneg", value, LONG, LONG) == expected

    def test_fneg_dneg(self):
        assert run_unop("fneg", 2.5, FLOAT, FLOAT) == -2.5
        assert run_unop("dneg", -4.0, DOUBLE, DOUBLE) == 4.0


class TestNarrowingTruncation:
    """i2b/i2c/i2s truncate and sign-extend per JVMS §6.5."""

    @pytest.mark.parametrize("value, expected", [
        (300, 44), (128, -128), (-129, 127), (255, -1), (44, 44),
    ])
    def test_i2b(self, value, expected):
        assert run_unop("i2b", value, INT, INT) == expected

    @pytest.mark.parametrize("value, expected", [
        (-1, 65535), (65536, 0), (0x12345, 0x2345), (97, 97),
    ])
    def test_i2c(self, value, expected):
        assert run_unop("i2c", value, INT, INT) == expected

    @pytest.mark.parametrize("value, expected", [
        (0x8000, -0x8000), (65535, -1), (0x12345, 0x2345), (-42, -42),
    ])
    def test_i2s(self, value, expected):
        assert run_unop("i2s", value, INT, INT) == expected

    def test_lax_vendor_passthrough(self):
        # The lax axis only wraps to 32 bits — i2b(300) stays 300.
        lax = dict(strict_narrowing_conversions=False)
        assert run_unop("i2b", 300, INT, INT, **lax) == 300
        assert run_unop("i2c", -1, INT, INT, **lax) == -1
        assert run_unop("i2s", 65535, INT, INT, **lax) == 65535

    def test_i2l_l2i(self):
        assert run_unop("i2l", -7, INT, LONG) == -7
        assert run_unop("l2i", 0x1_0000_0001, LONG, INT) == 1
        assert run_unop("l2i", LONG_MIN, LONG, INT) == 0


class TestFloatToIntegral:
    """f2i/d2i/f2l/d2l: NaN is 0, infinities saturate, JVMS §6.5."""

    @pytest.mark.parametrize("op, src, dst", [
        ("f2i", FLOAT, INT), ("d2i", DOUBLE, INT),
        ("f2l", FLOAT, LONG), ("d2l", DOUBLE, LONG),
    ])
    def test_nan_is_zero(self, op, src, dst):
        assert run_unop(op, NAN, src, dst) == 0

    @pytest.mark.parametrize("op, src, expected", [
        ("f2i", FLOAT, INT_MAX), ("d2i", DOUBLE, INT_MAX),
        ("f2l", FLOAT, LONG_MAX), ("d2l", DOUBLE, LONG_MAX),
    ])
    def test_positive_infinity_saturates(self, op, src, expected):
        dst = INT if expected == INT_MAX else LONG
        assert run_unop(op, INF, src, dst) == expected

    @pytest.mark.parametrize("op, src, expected", [
        ("f2i", FLOAT, INT_MIN), ("d2i", DOUBLE, INT_MIN),
        ("f2l", FLOAT, LONG_MIN), ("d2l", DOUBLE, LONG_MIN),
    ])
    def test_negative_infinity_saturates(self, op, src, expected):
        dst = INT if expected == INT_MIN else LONG
        assert run_unop(op, -INF, src, dst) == expected

    def test_out_of_range_saturates(self):
        assert run_unop("f2i", 1e12, FLOAT, INT) == INT_MAX
        assert run_unop("d2i", -1e12, DOUBLE, INT) == INT_MIN

    def test_in_range_truncates_toward_zero(self):
        assert run_unop("f2i", 3.9, FLOAT, INT) == 3
        assert run_unop("d2i", -3.9, DOUBLE, INT) == -3
        assert run_unop("d2l", 2.5, DOUBLE, LONG) == 2

    def test_lax_vendor_nan_is_min(self):
        lax = dict(strict_narrowing_conversions=False)
        assert run_unop("f2i", NAN, FLOAT, INT, **lax) == INT_MIN
        assert run_unop("d2l", NAN, DOUBLE, LONG, **lax) == LONG_MIN


class TestLongBitwiseAndShifts:
    """LAND/LOR/LXOR/LSHL/LSHR/LUSHR golden values (shift mask & 63).

    The long bitwise family has no Jimple surface syntax, so the opcode
    lambdas are pinned directly.
    """

    def _arith(self, op, left, right):
        return Interpreter._ARITH[op](left, right)

    def test_bitwise(self):
        assert self._arith(Op.LAND, 0x0FF0, 0x00FF) == 0x00F0
        assert self._arith(Op.LOR, 0x0FF0, 0x00FF) == 0x0FFF
        assert self._arith(Op.LXOR, 0x0FF0, 0x00FF) == 0x0F0F
        assert self._arith(Op.LAND, -1, LONG_MIN) == LONG_MIN

    def test_lshl_wraps_and_masks(self):
        assert self._arith(Op.LSHL, 1, 63) == LONG_MIN
        assert self._arith(Op.LSHL, 1, 64) == 1       # 64 & 63 == 0
        assert self._arith(Op.LSHL, 1, 65) == 2
        assert self._arith(Op.LSHL, 3, 2) == 12

    def test_lshr_is_arithmetic(self):
        assert self._arith(Op.LSHR, -8, 1) == -4
        assert self._arith(Op.LSHR, LONG_MIN, 63) == -1
        assert self._arith(Op.LSHR, 8, 64) == 8

    def test_lushr_is_logical(self):
        assert self._arith(Op.LUSHR, -1, 1) == LONG_MAX
        assert self._arith(Op.LUSHR, LONG_MIN, 63) == 1
        assert self._arith(Op.LUSHR, -8, 64) == -8    # 64 & 63 == 0

    def test_int_shifts_mask_31(self):
        assert self._arith(Op.ISHL, 1, 32) == 1
        assert self._arith(Op.ISHL, 1, 31) == INT_MIN
        assert self._arith(Op.IUSHR, -1, 1) == INT_MAX
        assert self._arith(Op.ISHR, INT_MIN, 31) == -1
