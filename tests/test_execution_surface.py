"""Tests for the execution-phase differential surface.

Covers the runtime-divergent seed templates, the opt-in execution-
targeted mutators, the corpus `exec_fraction` knob, and the service-spec
plumbing for the new flags.
"""

import random

import pytest

from repro.core.difftest import DifferentialHarness
from repro.core.mutators import (
    EXECUTION_MUTATORS,
    MUTATOR_COUNT,
    MUTATORS,
    mutator_by_name,
    mutators_in_category,
)
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.corpus.templates import (
    EXEC_TEMPLATES,
    exec_clinit_template,
    exec_fcmp_template,
    exec_handler_order_template,
    exec_narrowing_template,
    exec_string_template,
)
from repro.jimple.to_classfile import compile_class_bytes
from repro.service.jobs import JobError, validate_spec

RUNTIME = 4  # phase code of an execution-phase outcome


class TestExecTemplates:
    """Each template splits the vendors at the execution phase."""

    @pytest.fixture(scope="class")
    def harness(self):
        return DifferentialHarness()

    def _codes(self, harness, template):
        jclass = template("L1436009001")
        result = harness.run_one(compile_class_bytes(jclass),
                                 label=jclass.name)
        assert result.is_discrepancy, template.__name__
        return {o.jvm_name: (o.code, o.error) for o in result.outcomes}

    def test_narrowing_splits_gij(self, harness):
        by_jvm = self._codes(harness, exec_narrowing_template)
        assert by_jvm["gij"] == (RUNTIME, "ArithmeticException")
        assert by_jvm["hotspot9"] == (0, None)

    def test_fcmp_splits_gij(self, harness):
        by_jvm = self._codes(harness, exec_fcmp_template)
        assert by_jvm["gij"] == (RUNTIME, "ArithmeticException")
        assert by_jvm["hotspot7"] == (0, None)

    def test_clinit_splits_j9(self, harness):
        by_jvm = self._codes(harness, exec_clinit_template)
        assert by_jvm["j9"] == (RUNTIME, "ArithmeticException")
        assert by_jvm["gij"] == (0, None)

    def test_handler_order_splits_j9(self, harness):
        by_jvm = self._codes(harness, exec_handler_order_template)
        assert by_jvm["j9"] == (RUNTIME, "ArithmeticException")
        assert by_jvm["hotspot8"] == (0, None)

    def test_string_intrinsic_splits_gij(self, harness):
        by_jvm = self._codes(harness, exec_string_template)
        assert by_jvm["hotspot9"] == (RUNTIME,
                                      "StringIndexOutOfBoundsException")
        # gij has no charAt intrinsic: the call fails at linking instead.
        assert by_jvm["gij"][0] != RUNTIME

    def test_all_templates_compile(self):
        for template in EXEC_TEMPLATES:
            data = compile_class_bytes(template("L1436009002"))
            assert data[:4] == b"\xca\xfe\xba\xbe"


class TestExecFraction:
    def test_default_draws_no_templates(self):
        seeds = generate_corpus(CorpusConfig(count=40, seed=9))
        again = generate_corpus(CorpusConfig(count=40, seed=9,
                                             exec_fraction=0.0))
        assert [str(s) for s in seeds] == [str(a) for a in again]

    def test_full_fraction_yields_runnable_classes(self):
        seeds = generate_corpus(CorpusConfig(count=10, seed=9,
                                             exec_fraction=1.0))
        assert len(seeds) == 10
        for jclass in seeds:
            assert any(m.name == "main" for m in jclass.methods)

    def test_fraction_is_deterministic(self):
        config = CorpusConfig(count=25, seed=3, exec_fraction=0.5)
        first = [str(s) for s in generate_corpus(config)]
        second = [str(s) for s in generate_corpus(config)]
        assert first == second

    def test_mixed_fraction_blends(self):
        seeds = generate_corpus(CorpusConfig(count=60, seed=1,
                                             exec_fraction=0.4))
        with_main = sum(1 for s in seeds
                        if any(m.name == "main" for m in s.methods))
        assert 0 < with_main < 60


class TestExecutionMutators:
    def test_registry_stays_at_paper_count(self):
        assert len(MUTATORS) == MUTATOR_COUNT == 129
        assert not any(m in MUTATORS for m in EXECUTION_MUTATORS)

    def test_lookup_and_category(self):
        assert len(EXECUTION_MUTATORS) == 4
        for mutator in EXECUTION_MUTATORS:
            assert mutator_by_name(mutator.name) is mutator
            assert mutator.category == "execution"
        assert mutators_in_category("execution") == EXECUTION_MUTATORS

    @pytest.mark.parametrize("name, template", [
        ("jimple.inject_edge_value", exec_narrowing_template),
        ("jimple.nudge_comparison", exec_narrowing_template),
        ("jimple.insert_narrowing_cast", exec_narrowing_template),
        ("jimple.permute_handlers", exec_handler_order_template),
    ])
    def test_applies_and_still_compiles(self, name, template):
        mutator = mutator_by_name(name)
        jclass = template("L1436009003")
        assert mutator(jclass, random.Random(5)) is True
        data = compile_class_bytes(jclass)
        assert data[:4] == b"\xca\xfe\xba\xbe"

    def test_permute_handlers_needs_two_traps(self):
        mutator = mutator_by_name("jimple.permute_handlers")
        jclass = exec_narrowing_template("L1436009004")  # no traps
        assert mutator(jclass, random.Random(5)) is False


class TestServiceSpec:
    def test_defaults_off(self):
        spec = validate_spec({"type": "fuzz"})
        assert spec["exec_fraction"] == 0.0
        assert spec["execution_mutators"] is False
        assert spec["cmp_coverage"] is False

    def test_roundtrip(self):
        spec = validate_spec({"type": "campaign", "exec_fraction": 0.25,
                              "execution_mutators": True,
                              "cmp_coverage": True})
        assert spec["exec_fraction"] == 0.25
        assert spec["execution_mutators"] is True
        assert spec["cmp_coverage"] is True

    @pytest.mark.parametrize("bad", [-0.1, 1.5, "half"])
    def test_rejects_bad_fraction(self, bad):
        with pytest.raises(JobError):
            validate_spec({"type": "fuzz", "exec_fraction": bad})
