"""Tests for the Jimple → classfile compiler and the lifter."""

import pytest

from repro.bytecode import Op, decode_code
from repro.classfile import read_class, write_class
from repro.classfile.access_flags import AccessFlags
from repro.jimple import (
    ClassBuilder,
    MethodBuilder,
    compile_class,
    lift_class,
    print_class,
)
from repro.jimple.model import JLocal
from repro.jimple.statements import (
    AssignBinopStmt,
    AssignConstStmt,
    AssignLocalStmt,
    Constant,
    GotoStmt,
    IfStmt,
    InvokeExpr,
    InvokeStmt,
    LabelStmt,
    MethodRef,
    ReturnStmt,
    ThrowStmt,
)
from repro.jimple.to_classfile import JimpleCompileError, compile_class_bytes
from repro.jimple.types import INT, JType, STRING, VOID


class TestCompile:
    def test_demo_compiles(self, demo_class):
        classfile = compile_class(demo_class)
        assert classfile.name == "Demo"
        assert classfile.main_method() is not None

    def test_modifiers_become_flags(self):
        builder = ClassBuilder("Flags", modifiers=["public", "final",
                                                   "super"])
        classfile = compile_class(builder.build())
        assert classfile.access_flags & AccessFlags.PUBLIC
        assert classfile.access_flags & AccessFlags.FINAL

    def test_thrown_exceptions_compile(self):
        builder = ClassBuilder("Thrower")
        method = MethodBuilder("risky", modifiers=["public"])
        method.throws("java.io.IOException")
        method.ret()
        builder.method(method.build())
        classfile = compile_class(builder.build())
        exceptions = classfile.methods[0].exceptions
        assert exceptions.exception_names(classfile.constant_pool) == \
            ["java/io/IOException"]

    def test_abstract_method_has_no_code(self):
        builder = ClassBuilder("Abs", modifiers=["public", "abstract",
                                                 "super"])
        method = MethodBuilder("todo", modifiers=["public", "abstract"])
        method.abstract_body()
        builder.method(method.build())
        classfile = compile_class(builder.build())
        assert classfile.methods[0].code is None

    def test_undeclared_local_fails(self):
        builder = ClassBuilder("Bad")
        method = MethodBuilder("broken", modifiers=["public"])
        method.stmt(AssignLocalStmt("a", "ghost"))
        method.ret()
        builder.method(method.build())
        with pytest.raises(JimpleCompileError, match="undeclared"):
            compile_class(builder.build())

    def test_missing_label_fails(self):
        builder = ClassBuilder("Bad2")
        method = MethodBuilder("broken", modifiers=["public"])
        method.goto("nowhere")
        builder.method(method.build())
        with pytest.raises(JimpleCompileError):
            compile_class(builder.build())

    def test_this_in_static_method_fails(self):
        builder = ClassBuilder("Bad3")
        method = MethodBuilder("s", modifiers=["public", "static"])
        method.local("r0", JType("Bad3"))
        method.identity("r0", "this", JType("Bad3"))
        method.ret()
        builder.method(method.build())
        with pytest.raises(JimpleCompileError, match="static"):
            compile_class(builder.build())

    def test_identity_for_missing_parameter_fails(self):
        builder = ClassBuilder("Bad4")
        method = MethodBuilder("m", modifiers=["public", "static"])
        method.local("p0", INT)
        method.identity("p0", "parameter0", INT)
        method.ret()
        builder.method(method.build())
        with pytest.raises(JimpleCompileError, match="missing parameter"):
            compile_class(builder.build())

    def test_branching_body_compiles(self):
        builder = ClassBuilder("Branchy")
        method = MethodBuilder("m", INT, [INT], ["public", "static"])
        method.local("p0", INT)
        method.identity("p0", "parameter0", INT)
        method.if_zero("p0", "==", "zero")
        method.stmt(ReturnStmt(Constant(1, INT)))
        method.label("zero")
        method.stmt(ReturnStmt(Constant(0, INT)))
        builder.method(method.build())
        code = compile_class(builder.build()).methods[0].code
        ops = [i.op for i in decode_code(code.code)]
        assert Op.IFEQ in ops
        assert ops.count(Op.IRETURN) == 2

    def test_max_locals_accounts_for_wide_types(self):
        builder = ClassBuilder("Wide")
        method = MethodBuilder("m", VOID, [JType("long"), JType("double")],
                               ["public", "static"])
        method.local("x", JType("long"))
        method.ret()
        builder.method(method.build())
        code = compile_class(builder.build()).methods[0].code
        assert code.max_locals >= 6  # 2 + 2 params + 2 local

    def test_constant_value_field(self):
        builder = ClassBuilder("Consts")
        builder.field("LIMIT", INT, ["public", "static", "final"],
                      constant_value=42)
        classfile = compile_class(builder.build())
        attr = classfile.fields[0].attribute("ConstantValue")
        assert attr is not None

    def test_int_constant_encodings(self):
        builder = ClassBuilder("Ints")
        method = MethodBuilder("m", VOID, [], ["public", "static"])
        for i, value in enumerate((3, 100, 30000, 100000)):
            name = f"$v{i}"
            method.local(name, INT)
            method.const(name, value)
        method.ret()
        builder.method(method.build())
        code = compile_class(builder.build()).methods[0].code
        ops = [i.op for i in decode_code(code.code)]
        assert Op.ICONST_3 in ops
        assert Op.BIPUSH in ops
        assert Op.SIPUSH in ops
        assert Op.LDC_W in ops


class TestLift:
    def test_structural_roundtrip(self, demo_class):
        data = write_class(compile_class(demo_class))
        lifted = lift_class(read_class(data))
        assert lifted.name == "Demo"
        assert lifted.superclass == "java.lang.Object"
        assert {m.name for m in lifted.methods} == {"<init>", "main"}

    def test_lift_recompiles_identically(self, demo_class):
        data = write_class(compile_class(demo_class))
        lifted = lift_class(read_class(data))
        data2 = write_class(compile_class(lifted))
        # Re-lift of the recompiled bytes must match the first lift.
        relifted = lift_class(read_class(data2))
        assert print_class(relifted) == print_class(lifted)

    def test_lift_thrown(self):
        builder = ClassBuilder("T")
        method = MethodBuilder("m", modifiers=["public"])
        method.throws("java.io.IOException")
        method.ret()
        builder.method(method.build())
        lifted = lift_class(read_class(compile_class_bytes(builder.build())))
        assert lifted.methods[0].thrown == ["java.io.IOException"]

    def test_lift_arithmetic_and_branches(self):
        builder = ClassBuilder("Arith")
        method = MethodBuilder("m", INT, [], ["public", "static"])
        method.local("$a", INT)
        method.const("$a", 5)
        method.stmt(AssignBinopStmt("$a", "$a", "*", Constant(3, INT)))
        method.if_zero("$a", ">", "big")
        method.stmt(ReturnStmt(Constant(0, INT)))
        method.label("big")
        method.stmt(ReturnStmt("$a"))
        builder.method(method.build())
        lifted = lift_class(read_class(compile_class_bytes(builder.build())))
        body = lifted.methods[0].body
        assert body is not None
        kinds = {type(stmt).__name__ for stmt in body}
        assert "AssignBinopStmt" in kinds
        assert "IfStmt" in kinds
        assert "LabelStmt" in kinds

    def test_unliftable_body_carried_raw(self):
        # Hand-assemble a body using an opcode the lifter does not model
        # (dup2_x2 gymnastics) and check the raw-code fallback.
        from repro.bytecode import Assembler
        from repro.classfile import CodeAttribute, MethodInfo
        from repro.classfile.model import ClassFile

        classfile = ClassFile()
        pool = classfile.constant_pool
        classfile.this_class = pool.class_ref("Raw")
        classfile.super_class = pool.class_ref("java/lang/Object")
        classfile.access_flags = AccessFlags.PUBLIC | AccessFlags.SUPER
        asm = Assembler()
        asm.emit(Op.LCONST_0)
        asm.emit(Op.LCONST_1)
        asm.emit(Op.DUP2_X2)
        asm.emit(Op.POP2)
        asm.emit(Op.POP2)
        asm.emit(Op.POP2)
        asm.emit(Op.RETURN)
        classfile.methods.append(MethodInfo(
            AccessFlags.PUBLIC | AccessFlags.STATIC,
            pool.utf8("weird"), pool.utf8("()V"),
            [CodeAttribute(8, 1, asm.build())]))
        lifted = lift_class(classfile)
        method = lifted.methods[0]
        assert method.body is None
        assert method.raw_code is not None
        # The raw body must survive re-compilation byte-for-byte.
        recompiled = compile_class(lifted)
        assert recompiled.methods[0].code.code == \
            classfile.methods[0].code.code
