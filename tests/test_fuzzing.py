"""Tests for the four fuzzing algorithms (Algorithm 1 + baselines)."""

import pytest

from repro.classfile import read_class
from repro.core.fuzzing import (
    classfuzz,
    greedyfuzz,
    randfuzz,
    supplement_main,
    uniquefuzz,
)
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple import ClassBuilder


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=25, seed=11))


class TestSupplementMain:
    def test_adds_main_when_absent(self):
        jclass = ClassBuilder("NoMain").default_init().build()
        supplement_main(jclass)
        assert jclass.find_method("main") is not None

    def test_keeps_existing_main(self):
        jclass = ClassBuilder("HasMain").main_printing("mine").build()
        supplement_main(jclass)
        mains = [m for m in jclass.methods if m.name == "main"]
        assert len(mains) == 1


class TestClassfuzz:
    def test_produces_unique_tests(self, seeds):
        result = classfuzz(seeds, iterations=60, seed=3)
        assert result.algorithm == "classfuzz"
        assert result.iterations == 60
        assert 0 < len(result.test_classes) <= len(result.gen_classes)
        # All accepted tests carry distinct coverage signatures.
        signatures = [g.tracefile.signature for g in result.test_classes]
        assert len(set(signatures)) == len(signatures)

    def test_st_criterion_unique_statement_counts(self, seeds):
        result = classfuzz(seeds, iterations=60, criterion="st", seed=3)
        counts = [g.tracefile.stmt for g in result.test_classes]
        assert len(set(counts)) == len(counts)

    def test_tr_accepts_at_least_stbr(self, seeds):
        stbr = classfuzz(seeds, iterations=80, criterion="stbr", seed=5)
        tr = classfuzz(seeds, iterations=80, criterion="tr", seed=5)
        assert len(tr.test_classes) >= len(stbr.test_classes)

    def test_deterministic_given_seed(self, seeds):
        first = classfuzz(seeds, iterations=40, seed=9)
        second = classfuzz(seeds, iterations=40, seed=9)
        assert [g.label for g in first.test_classes] == \
            [g.label for g in second.test_classes]

    def test_mutants_are_parseable_bytes(self, seeds):
        result = classfuzz(seeds, iterations=40, seed=1)
        for generated in result.gen_classes[:10]:
            assert read_class(generated.data).name == generated.label

    def test_every_mutant_has_main(self, seeds):
        result = classfuzz(seeds, iterations=40, seed=1)
        for generated in result.gen_classes:
            assert generated.jclass.find_method("main") is not None

    def test_mutator_report_covers_selected(self, seeds):
        result = classfuzz(seeds, iterations=50, seed=2)
        assert len(result.mutator_report) == 129
        assert sum(row[1] for row in result.mutator_report) == 50

    def test_succ_definition(self, seeds):
        result = classfuzz(seeds, iterations=50, seed=2)
        assert result.succ == pytest.approx(
            len(result.test_classes) / 50)


class TestBaselines:
    def test_uniquefuzz_unique_signatures(self, seeds):
        result = uniquefuzz(seeds, iterations=60, seed=3)
        signatures = [g.tracefile.signature for g in result.test_classes]
        assert len(set(signatures)) == len(signatures)

    def test_greedyfuzz_accepts_fewest(self, seeds):
        greedy = greedyfuzz(seeds, iterations=60, seed=3)
        unique = uniquefuzz(seeds, iterations=60, seed=3)
        assert len(greedy.test_classes) <= len(unique.test_classes)

    def test_greedyfuzz_coverage_growth_only(self, seeds):
        result = greedyfuzz(seeds, iterations=60, seed=3)
        seen = set()
        for generated in result.test_classes:
            new = generated.tracefile.stmt_set | {
                ("br",) + k for k in generated.tracefile.br_set}
            assert not new <= seen
            seen |= new

    def test_randfuzz_accepts_everything(self, seeds):
        result = randfuzz(seeds, iterations=60, seed=3)
        assert result.test_classes == result.gen_classes
        assert result.gen_classes, "randfuzz produced nothing"

    def test_randfuzz_skips_coverage(self, seeds):
        result = randfuzz(seeds, iterations=30, seed=3)
        assert all(g.tracefile is None for g in result.gen_classes)

    def test_randfuzz_generates_most(self, seeds):
        rand = randfuzz(seeds, iterations=60, seed=3)
        greedy = greedyfuzz(seeds, iterations=60, seed=3)
        assert len(rand.test_classes) > len(greedy.test_classes)


class TestDiscardAccounting:
    """Discarded iterations are counted by failure category, not swallowed."""

    ALGORITHMS = (classfuzz, uniquefuzz, greedyfuzz, randfuzz)

    @pytest.mark.parametrize("algorithm", ALGORITHMS,
                             ids=lambda fn: fn.__name__)
    def test_iterations_fully_accounted(self, seeds, algorithm):
        result = algorithm(seeds, iterations=60, seed=3)
        assert result.iterations == \
            len(result.gen_classes) + result.discarded
        assert all(count > 0 for count in result.discards.values())

    def test_known_categories_only(self, seeds):
        from repro.core.fuzzing import (
            DISCARD_COMPILE_ERROR,
            DISCARD_DUMP_ERROR,
            DISCARD_INAPPLICABLE,
            DISCARD_MUTATOR_ERROR,
        )

        result = classfuzz(seeds, iterations=80, seed=3)
        known = {DISCARD_MUTATOR_ERROR, DISCARD_INAPPLICABLE,
                 DISCARD_COMPILE_ERROR, DISCARD_DUMP_ERROR}
        assert set(result.discards) <= known

    def test_crashing_mutator_counted_not_fatal(self, seeds):
        from repro.core.fuzzing import _FuzzEngine
        from repro.core.mutators import Mutator

        def _crash(jclass, rng):
            raise RuntimeError("rewrite blew up")

        crasher = Mutator("crasher", "jimple", "always crashes", _crash)
        engine = _FuzzEngine(seeds, __import__("random").Random(0),
                             [crasher])
        assert engine.mutate_once(crasher) is None
        assert engine.discards == {"mutator_error": 1}

    def test_unexpected_dump_failure_propagates(self, seeds):
        # Only JimpleCompileError / struct.error are discardable; a
        # genuine writer bug must surface, not vanish into the counters.
        import random as _random

        from repro.core.fuzzing import _FuzzEngine, supplement_main
        from repro.core import fuzzing as fuzzing_module
        from repro.core.mutators import Mutator

        identity = Mutator("identity", "jimple", "no-op",
                           lambda jclass, rng: True)
        engine = _FuzzEngine(seeds, _random.Random(0), [identity])

        def _boom(compiled):
            raise KeyError("writer bug")

        original = fuzzing_module.write_class
        fuzzing_module.write_class = _boom
        try:
            with pytest.raises(KeyError):
                engine.mutate_once(identity)
        finally:
            fuzzing_module.write_class = original


class _StubReference:
    """A fake reference JVM recording whether it was ever executed."""

    name = "stub-ref"

    def __init__(self):
        self.calls = 0

    def run(self, data):
        from repro.jvm.vendors import reference_jvm

        self.calls += 1
        return reference_jvm().run(data)


class TestReferenceInjection:
    def test_randfuzz_accepts_reference(self, seeds):
        stub = _StubReference()
        result = randfuzz(seeds, iterations=20, seed=3, reference=stub)
        assert result.gen_classes
        # Parity only: randfuzz never executes the reference JVM.
        assert stub.calls == 0

    @pytest.mark.parametrize("algorithm",
                             (classfuzz, uniquefuzz, greedyfuzz),
                             ids=lambda fn: fn.__name__)
    def test_directed_algorithms_use_injected_reference(self, seeds,
                                                        algorithm):
        stub = _StubReference()
        result = algorithm(seeds, iterations=15, seed=3, reference=stub)
        # Seed priming alone already runs the reference once per seed.
        assert stub.calls >= len(seeds)
        assert result.iterations == 15

    def test_all_four_signatures_align(self):
        import inspect

        for algorithm in (classfuzz, uniquefuzz, greedyfuzz, randfuzz):
            parameters = inspect.signature(algorithm).parameters
            assert "reference" in parameters, algorithm.__name__
            assert "executor" in parameters, algorithm.__name__


class TestExecutorInjection:
    def test_shared_executor_caches_across_algorithms(self, seeds):
        from repro.core.executor import OutcomeCache, SerialExecutor

        engine = SerialExecutor(cache=OutcomeCache())
        uniquefuzz(seeds, iterations=10, seed=3, executor=engine)
        misses = engine.stats.trace_misses
        # Re-priming the same seed corpus is pure tracefile-cache hits.
        greedyfuzz(seeds, iterations=10, seed=3, executor=engine)
        assert engine.stats.trace_hits >= len(seeds) - 2
        assert engine.stats.trace_misses >= misses

    def test_results_identical_with_and_without_cache(self, seeds):
        from repro.core.executor import SerialExecutor

        cached = classfuzz(seeds, iterations=40, seed=9)
        uncached = classfuzz(seeds, iterations=40, seed=9,
                             executor=SerialExecutor())
        assert [g.label for g in cached.test_classes] == \
            [g.label for g in uncached.test_classes]


class TestCampaign:
    def test_cost_model_iteration_ratios(self):
        from repro.core.campaign import (
            PAPER_BUDGET_SECONDS,
            iterations_for_budget,
        )

        directed = iterations_for_budget("classfuzz[stbr]",
                                         PAPER_BUDGET_SECONDS)
        blind = iterations_for_budget("randfuzz", PAPER_BUDGET_SECONDS)
        assert directed == 2130
        assert blind == 46318
        assert blind / directed > 20

    def test_scaled_budget_preserves_ratio(self):
        from repro.core.campaign import iterations_for_budget

        budget = 10000.0
        assert iterations_for_budget("randfuzz", budget) > \
            20 * iterations_for_budget("classfuzz[stbr]", budget)

    def test_run_campaign_smoke(self, seeds):
        from repro.core.campaign import format_table4, run_campaign

        runs = run_campaign(seeds, budget_seconds=3600.0,
                            algorithms=("classfuzz[stbr]", "randfuzz"))
        table = format_table4(runs)
        assert "classfuzz[stbr]" in table
        assert runs[0].fuzz.iterations < runs[1].fuzz.iterations
