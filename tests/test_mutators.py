"""Tests for the 129-mutator registry and representative members of each
Table 2 family."""

import random

import pytest

from repro.core.mutators import (
    MUTATORS,
    MUTATOR_COUNT,
    SYNTACTIC_COUNT,
    mutator_by_name,
    mutators_in_category,
)
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple import ClassBuilder, MethodBuilder
from repro.jimple.to_classfile import JimpleCompileError, compile_class_bytes
from repro.jimple.types import INT, JType


@pytest.fixture
def rng():
    return random.Random(42)


@pytest.fixture
def rich_class():
    """A class with material for every mutator family."""
    builder = ClassBuilder("Rich")
    builder.implements("java.lang.Runnable")
    builder.field("count", INT, ["private"])
    builder.field("name", JType("java.lang.String"), ["public"])
    builder.default_init()
    method = MethodBuilder("work", INT, [INT], ["public"])
    method.throws("java.io.IOException")
    method.local("p0", INT)
    method.identity("p0", "parameter0", INT)
    from repro.jimple.statements import ReturnStmt

    method.stmt(ReturnStmt("p0"))
    builder.method(method.build())
    builder.main_printing()
    return builder.build()


class TestRegistry:
    def test_exactly_129_mutators(self):
        assert len(MUTATORS) == MUTATOR_COUNT == 129

    def test_123_syntactic_6_jimple(self):
        jimple = mutators_in_category("jimple")
        assert len(jimple) == 6
        assert len(MUTATORS) - len(jimple) == SYNTACTIC_COUNT == 123

    def test_names_unique(self):
        names = [m.name for m in MUTATORS]
        assert len(set(names)) == 129

    def test_all_table2_families_present(self):
        categories = {m.category for m in MUTATORS}
        assert categories == {"class", "interface", "field", "method",
                              "exception", "parameter", "localvar", "jimple"}

    def test_lookup_by_name(self):
        mutator = mutator_by_name("method.rename")
        assert mutator.category == "method"
        with pytest.raises(ValueError):
            mutator_by_name("no.such")

    def test_every_mutator_has_description(self):
        assert all(m.description for m in MUTATORS)


class TestApplication:
    def test_every_mutator_runs_without_crashing(self, rich_class, rng):
        for mutator in MUTATORS:
            clone = rich_class.clone()
            mutator(clone, rng)  # applicability varies; crashes do not

    def test_every_mutator_applicable_somewhere(self, rng):
        """No mutator is permanently inapplicable.

        A couple only fire on classes another mutation already touched
        (e.g. clearing ``final`` needs a final class first), so retry on a
        primed clone before declaring a mutator dead.
        """
        corpus = generate_corpus(CorpusConfig(count=40))
        for mutator in MUTATORS:
            applied = any(mutator(seed.clone(), rng) for seed in corpus)
            if not applied:
                primed = corpus[0].clone()
                primed.modifiers = ["final", "super"]  # non-public, final
                applied = mutator(primed, rng)
            assert applied, f"{mutator.name} never applied"

    def test_mutation_does_not_touch_original(self, rich_class, rng):
        import copy

        snapshot = copy.deepcopy(rich_class)
        for mutator in MUTATORS[:25]:
            mutator(rich_class.clone(), rng)
        assert rich_class.fields[0].name == snapshot.fields[0].name
        assert len(rich_class.methods) == len(snapshot.methods)


class TestSpecificMutators:
    def test_rename_method(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("method.rename")(clone, rng)
        assert {m.name for m in clone.methods} != \
            {m.name for m in rich_class.methods}

    def test_superclass_self_circularity(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("class.set_superclass_self")(clone, rng)
        assert clone.superclass == clone.name

    def test_abstract_and_drop_code_recipe(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("method.abstract_and_drop_code")(clone, rng)
        mutated = [m for m in clone.methods
                   if "abstract" in m.modifiers and m.body is None]
        assert mutated

    def test_replace_all_methods_from_donor(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("method.replace_all")(clone, rng)
        assert {m.name for m in clone.methods}.isdisjoint(
            {"work"})

    def test_duplicate_field_exact(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("field.insert_duplicate")(clone, rng)
        names = [f.name for f in clone.fields]
        assert len(names) == len(rich_class.fields) + 1

    def test_delete_local_leaves_dangling_uses(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("localvar.delete_all_declarations")(clone, rng)
        with pytest.raises(JimpleCompileError):
            compile_class_bytes(clone)

    def test_exception_add_restricted(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("exception.add_restricted_synthetic")(
            clone, rng)
        thrown = [t for m in clone.methods for t in m.thrown]
        assert "sun.java2d.pisces.PiscesRenderingEngine$2" in thrown

    def test_parameter_insert_object_front(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("parameter.insert_object_front")(clone, rng)
        assert any(m.parameter_types
                   and m.parameter_types[0].name == "java.lang.Object"
                   for m in clone.methods)

    def test_interface_delete_inapplicable_without_interfaces(self, rng):
        bare = ClassBuilder("Bare").build()
        assert not mutator_by_name("interface.delete_one")(bare, rng)

    def test_jimple_swap_statements(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("jimple.swap_statements")(clone, rng)

    def test_class_rename_changes_name(self, rich_class, rng):
        clone = rich_class.clone()
        assert mutator_by_name("class.rename")(clone, rng)
        assert clone.name != rich_class.name
        assert clone.name.startswith("M")

    def test_clear_absent_modifier_inapplicable(self, rng):
        bare = ClassBuilder("Bare2", modifiers=["public", "super"]).build()
        assert not mutator_by_name("class.clear_modifier_final")(bare, rng)

    def test_most_mutants_still_dump(self, rich_class):
        """The bulk of single mutations keep the class dumpable — matching
        the paper's GenClasses/iterations ratios (~70 %)."""
        rng = random.Random(7)
        dumped = 0
        applied = 0
        for mutator in MUTATORS:
            clone = rich_class.clone()
            try:
                if not mutator(clone, rng):
                    continue
            except Exception:
                continue
            applied += 1
            try:
                compile_class_bytes(clone)
                dumped += 1
            except JimpleCompileError:
                pass
        assert applied > 100
        assert dumped / applied > 0.6
