"""Unit tests for the bytecode verifier's policy-dependent checks."""

import pytest

from repro.bytecode import Assembler, Op
from repro.classfile.access_flags import AccessFlags
from repro.classfile.attributes import CodeAttribute
from repro.classfile.methods import MethodInfo
from repro.classfile.model import ClassFile
from repro.errors import ClassFormatError, VerifyError
from repro.jvm.policy import JvmPolicy
from repro.jvm.verifier import MethodVerifier, VType
from repro.runtime.environment import build_environment

LIBRARY = build_environment(8).library


def make_method(code_builder, descriptor="()V", max_stack=4, max_locals=4,
                static=True):
    """Build a one-method classfile and return (classfile, method, code)."""
    classfile = ClassFile()
    pool = classfile.constant_pool
    classfile.this_class = pool.class_ref("VTest")
    classfile.super_class = pool.class_ref("java/lang/Object")
    classfile.access_flags = AccessFlags.PUBLIC | AccessFlags.SUPER
    asm = Assembler()
    code_builder(asm, pool)
    flags = AccessFlags.PUBLIC
    if static:
        flags |= AccessFlags.STATIC
    code = CodeAttribute(max_stack, max_locals, asm.build())
    method = MethodInfo(flags, pool.utf8("m"), pool.utf8(descriptor), [code])
    classfile.methods.append(method)
    return classfile, method, code


def verify(code_builder, descriptor="()V", max_stack=4, max_locals=4,
           static=True, **policy_overrides):
    classfile, method, code = make_method(code_builder, descriptor,
                                          max_stack, max_locals, static)
    policy = JvmPolicy(**policy_overrides)
    MethodVerifier(classfile, method, code, policy, LIBRARY).verify()


class TestBasicChecks:
    def test_trivial_return_verifies(self):
        verify(lambda asm, pool: asm.emit(Op.RETURN))

    def test_stack_underflow(self):
        def build(asm, pool):
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError, match="empty stack"):
            verify(build)

    def test_stack_overflow_against_max_stack(self):
        def build(asm, pool):
            for _ in range(3):
                asm.emit(Op.ICONST_0)
            asm.emit(Op.POP)
            asm.emit(Op.POP)
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError, match="stack size"):
            verify(build, max_stack=2)
        verify(build, max_stack=3)

    def test_falling_off_end(self):
        with pytest.raises(VerifyError, match="Falling off"):
            verify(lambda asm, pool: asm.emit(Op.NOP))

    def test_bad_branch_target(self):
        def build(asm, pool):
            asm.emit(Op.ICONST_0)
            instruction = asm.emit(Op.IFEQ)
            instruction.operands["target"] = 999
            asm._pending.append(instruction)
            asm.emit(Op.RETURN)
        classfile, method, code = make_method(lambda a, p: None)
        # Craft bytes manually: ifeq to out-of-range offset.
        code.code = bytes([int(Op.ICONST_0), int(Op.IFEQ), 0x7F, 0x00,
                           int(Op.RETURN)])
        with pytest.raises(VerifyError, match="Illegal target"):
            MethodVerifier(classfile, method, code, JvmPolicy(),
                           LIBRARY).verify()

    def test_undecodable_bytecode(self):
        classfile, method, code = make_method(
            lambda asm, pool: asm.emit(Op.RETURN))
        code.code = bytes([0xFD])
        with pytest.raises(VerifyError, match="Bad instruction"):
            MethodVerifier(classfile, method, code, JvmPolicy(),
                           LIBRARY).verify()

    def test_local_out_of_range(self):
        def build(asm, pool):
            asm.emit(Op.ICONST_0)
            asm.emit(Op.ISTORE, index=9)
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError, match="out of range"):
            verify(build, max_locals=2)

    def test_load_undefined_local(self):
        def build(asm, pool):
            asm.emit(Op.ILOAD, index=1)
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError, match="uninitialized register"):
            verify(build)

    def test_parameters_prefill_locals(self):
        def build(asm, pool):
            asm.emit(Op.ILOAD, index=0)
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        verify(build, descriptor="(I)V")

    def test_args_must_fit_in_max_locals(self):
        with pytest.raises(VerifyError, match="fit into locals"):
            verify(lambda asm, pool: asm.emit(Op.RETURN),
                   descriptor="(JJJ)V", max_locals=2)


class TestReturnTypes:
    def test_wrong_return_type(self):
        def build(asm, pool):
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError, match="Wrong return type"):
            verify(build, descriptor="()I")

    def test_matching_int_return(self):
        def build(asm, pool):
            asm.emit(Op.ICONST_0)
            asm.emit(Op.IRETURN)
        verify(build, descriptor="()I")

    def test_return_check_can_be_disabled(self):
        verify(lambda asm, pool: asm.emit(Op.RETURN), descriptor="()I",
               verify_return_types=False)


class TestStackShapes:
    def _merge_mismatch(self, asm, pool):
        # Two paths to the same label with different stack depths.
        asm.emit(Op.ICONST_0)
        asm.branch(Op.IFEQ, "join")
        asm.emit(Op.ICONST_1)          # depth 1 on this path
        asm.label("join")
        asm.emit(Op.RETURN)

    def test_strict_vendor_rejects_shape_mismatch(self):
        with pytest.raises(VerifyError, match="Stack shape inconsistent"):
            verify(self._merge_mismatch, strict_stack_shapes=True)

    def test_lenient_vendor_tolerates_shape_mismatch(self):
        verify(self._merge_mismatch, strict_stack_shapes=False)

    def test_category_mismatch_rejected_everywhere(self):
        def build(asm, pool):
            asm.emit(Op.ICONST_0)
            asm.branch(Op.IFEQ, "other")
            asm.emit(Op.ICONST_1)
            asm.branch(Op.GOTO, "join")
            asm.label("other")
            asm.emit(Op.FCONST_0)
            asm.label("join")
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        with pytest.raises(VerifyError, match="Mismatched stack types"):
            verify(build)


class TestTypeAssignability:
    def _string_where_map_wanted(self, asm, pool):
        index = pool.method_ref("java/lang/Boolean", "getBoolean",
                                "(Ljava/util/Map;)Z")
        asm.emit(Op.LDC_W, index=pool.string("oops"))
        asm.emit(Op.INVOKESTATIC, index=index)
        asm.emit(Op.POP)
        asm.emit(Op.RETURN)

    def test_deep_verifier_catches_final_class_to_interface(self):
        """Problem 2: GIJ flags String→Map, HotSpot does not."""
        with pytest.raises(VerifyError, match="not assignable"):
            verify(self._string_where_map_wanted,
                   verify_type_assignability=True)

    def test_shallow_verifier_misses_it(self):
        verify(self._string_where_map_wanted,
               verify_type_assignability=False)

    def test_throw_non_throwable_with_deep_verification(self):
        def build(asm, pool):
            hashmap = pool.class_ref("java/util/HashMap")
            init = pool.method_ref("java/util/HashMap", "<init>", "()V")
            asm.emit(Op.NEW, index=hashmap)
            asm.emit(Op.DUP)
            asm.emit(Op.INVOKESPECIAL, index=init)
            asm.emit(Op.ATHROW)
        with pytest.raises(VerifyError, match="Throwable"):
            verify(build, verify_type_assignability=True)


class TestUninitializedTracking:
    def _use_before_init(self, asm, pool):
        thread = pool.class_ref("java/lang/Thread")
        start = pool.method_ref("java/lang/Thread", "start", "()V")
        asm.emit(Op.NEW, index=thread)
        asm.emit(Op.INVOKEVIRTUAL, index=start)
        asm.emit(Op.RETURN)

    def test_gij_rejects_uninitialized_receiver(self):
        with pytest.raises(VerifyError, match="uninitialized"):
            verify(self._use_before_init, verify_uninitialized_merge=True)

    def test_hotspot_tolerates_uninitialized_receiver(self):
        verify(self._use_before_init, verify_uninitialized_merge=False)


class TestConstantPoolReferences:
    def test_ldc_of_long_rejected(self):
        def build(asm, pool):
            asm.emit(Op.LDC_W, index=pool.long(1))
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        with pytest.raises(ClassFormatError, match="tag"):
            verify(build)

    def test_invoke_through_fieldref_rejected(self):
        def build(asm, pool):
            index = pool.field_ref("java/lang/System", "out",
                                   "Ljava/io/PrintStream;")
            asm.emit(Op.INVOKESTATIC, index=index)
            asm.emit(Op.RETURN)
        with pytest.raises(ClassFormatError):
            verify(build)

    def test_dangling_cp_index(self):
        def build(asm, pool):
            asm.emit(Op.GETSTATIC, index=999)
            asm.emit(Op.POP)
            asm.emit(Op.RETURN)
        with pytest.raises(ClassFormatError, match="constant pool"):
            verify(build)


class TestEagerResolution:
    def _missing_owner(self, asm, pool):
        index = pool.method_ref("com/example/Missing", "f", "()V")
        asm.emit(Op.INVOKESTATIC, index=index)
        asm.emit(Op.RETURN)

    def test_eager_resolver_reports_missing_class(self):
        from repro.errors import NoClassDefFoundError

        with pytest.raises(NoClassDefFoundError):
            verify(self._missing_owner, resolve_refs_eagerly=True)

    def test_lazy_resolver_defers(self):
        verify(self._missing_owner, resolve_refs_eagerly=False)

    def test_eager_resolver_reports_missing_method(self):
        from repro.errors import NoSuchMethodError

        def build(asm, pool):
            index = pool.method_ref("java/lang/Math", "nosuch", "()V")
            asm.emit(Op.INVOKESTATIC, index=index)
            asm.emit(Op.RETURN)
        with pytest.raises(NoSuchMethodError):
            verify(build, resolve_refs_eagerly=True)


def test_vtype_sizes():
    assert VType("l").size == 2
    assert VType("i").size == 1
    assert VType("a", "uninit:Foo").is_uninitialized
