"""Unit tests for the bytecode opcode table and codec."""

import pytest

from repro.bytecode import (
    Assembler,
    Instruction,
    InstructionError,
    OPCODES,
    Op,
    decode_code,
    encode_code,
)
from repro.bytecode.opcodes import NEWARRAY_TYPES, RETURN_OPS


class TestOpcodeTable:
    def test_every_standard_opcode_present(self):
        assert len(OPCODES) == len(Op)

    def test_mnemonics_unique(self):
        mnemonics = [info.mnemonic for info in OPCODES.values()]
        assert len(mnemonics) == len(set(mnemonics))

    def test_return_is_terminal(self):
        assert OPCODES[int(Op.RETURN)].is_terminal
        assert OPCODES[int(Op.ATHROW)].is_terminal
        assert OPCODES[int(Op.GOTO)].is_terminal

    def test_conditional_branch_not_terminal(self):
        info = OPCODES[int(Op.IFEQ)]
        assert info.is_branch and not info.is_terminal

    def test_invoke_has_dynamic_stack_effect(self):
        info = OPCODES[int(Op.INVOKEVIRTUAL)]
        assert info.pops is None and info.pushes is None

    def test_iadd_stack_effect(self):
        info = OPCODES[int(Op.IADD)]
        assert info.pops == 2 and info.pushes == 1

    def test_return_ops_cover_all_type_chars(self):
        for char in "VIZBCSJFDL[":
            assert char in RETURN_OPS

    def test_newarray_types(self):
        assert NEWARRAY_TYPES[10] == "int"
        assert len(NEWARRAY_TYPES) == 8


class TestDecode:
    def test_simple_sequence(self):
        code = bytes([int(Op.ICONST_0), int(Op.ICONST_1), int(Op.IADD),
                      int(Op.IRETURN)])
        instructions = decode_code(code)
        assert [i.op for i in instructions] == [
            Op.ICONST_0, Op.ICONST_1, Op.IADD, Op.IRETURN]
        assert [i.offset for i in instructions] == [0, 1, 2, 3]

    def test_bipush_operand(self):
        code = bytes([int(Op.BIPUSH), 0x85])  # -123 as signed byte
        (instruction,) = decode_code(code)
        assert instruction.operands["value"] == -123

    def test_branch_target_absolute(self):
        # ifeq +5 at offset 0 -> target 5
        code = bytes([int(Op.IFEQ), 0, 5, int(Op.NOP), int(Op.NOP),
                      int(Op.RETURN)])
        instructions = decode_code(code)
        assert instructions[0].operands["target"] == 5
        assert instructions[0].branch_targets() == [5]

    def test_unknown_opcode(self):
        with pytest.raises(InstructionError, match="unknown opcode"):
            decode_code(bytes([0xFD]))

    def test_truncated_operand(self):
        with pytest.raises(InstructionError, match="truncated"):
            decode_code(bytes([int(Op.SIPUSH), 0x01]))

    def test_wide_iload(self):
        code = bytes([int(Op.WIDE_PREFIX), int(Op.ILOAD), 0x01, 0x00,
                      int(Op.RETURN)])
        instructions = decode_code(code)
        assert instructions[0].op is Op.ILOAD
        assert instructions[0].operands["index"] == 256
        assert instructions[0].operands["wide"]

    def test_wide_iinc(self):
        code = bytes([int(Op.WIDE_PREFIX), int(Op.IINC),
                      0x00, 0x05, 0xFF, 0xFF])
        (instruction,) = decode_code(code)
        assert instruction.operands["index"] == 5
        assert instruction.operands["const"] == -1

    def test_wide_bad_target(self):
        with pytest.raises(InstructionError, match="wide"):
            decode_code(bytes([int(Op.WIDE_PREFIX), int(Op.NOP)]))

    def test_invokeinterface_extras(self):
        code = bytes([int(Op.INVOKEINTERFACE), 0, 7, 2, 0])
        (instruction,) = decode_code(code)
        assert instruction.operands["index"] == 7
        assert instruction.operands["count"] == 2


class TestSwitches:
    def test_tableswitch_roundtrip(self):
        asm = Assembler()
        asm.emit(Op.ICONST_1)
        asm.switch(Op.TABLESWITCH, "dflt", low=0, high=1,
                   targets=["a", "b"])
        asm.label("a")
        asm.emit(Op.NOP)
        asm.label("b")
        asm.emit(Op.NOP)
        asm.label("dflt")
        asm.emit(Op.RETURN)
        code = asm.build()
        instructions = decode_code(code)
        switch = instructions[1]
        assert switch.op is Op.TABLESWITCH
        assert len(switch.operands["targets"]) == 2
        # Re-encode and re-decode must be stable.
        assert encode_code(decode_code(code)) == code

    def test_lookupswitch_roundtrip(self):
        asm = Assembler()
        asm.emit(Op.ICONST_1)
        asm.switch(Op.LOOKUPSWITCH, "dflt", pairs=[(10, "case"),
                                                   (20, "dflt")])
        asm.label("case")
        asm.emit(Op.NOP)
        asm.label("dflt")
        asm.emit(Op.RETURN)
        code = asm.build()
        instructions = decode_code(code)
        assert instructions[1].operands["pairs"][0][0] == 10
        assert encode_code(decode_code(code)) == code

    def test_tableswitch_high_below_low(self):
        # Hand-craft a tableswitch with high < low at offset 0.
        import struct

        body = bytes([int(Op.TABLESWITCH)]) + b"\x00" * 3
        body += struct.pack(">iii", 12, 5, 2)
        with pytest.raises(InstructionError, match="high"):
            decode_code(body)


class TestEncode:
    def test_roundtrip_stability(self):
        code = bytes([int(Op.ICONST_0), int(Op.ISTORE_1), int(Op.ILOAD_1),
                      int(Op.IRETURN)])
        assert encode_code(decode_code(code)) == code

    def test_branch_retargeting_after_deletion(self):
        # goto over a nop; delete the nop and the delta must shrink.
        code = bytes([int(Op.GOTO), 0, 4, int(Op.NOP), int(Op.RETURN)])
        instructions = decode_code(code)
        del instructions[1]  # remove the nop at offset 3... wait: 1 is nop
        recoded = encode_code(instructions)
        redecoded = decode_code(recoded)
        assert redecoded[0].operands["target"] == redecoded[1].offset

    def test_dangling_branch_target_rejected(self):
        instruction = Instruction(0, Op.GOTO, {"target": 99})
        with pytest.raises(InstructionError, match="not an instruction"):
            encode_code([instruction])


class TestAssembler:
    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(InstructionError, match="duplicate"):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.branch(Op.GOTO, "nowhere")
        with pytest.raises(InstructionError, match="undefined"):
            asm.build()

    def test_forward_and_backward_branches(self):
        asm = Assembler()
        asm.label("top")
        asm.emit(Op.ICONST_0)
        asm.branch(Op.IFEQ, "end")
        asm.branch(Op.GOTO, "top")
        asm.label("end")
        asm.emit(Op.RETURN)
        instructions = decode_code(asm.build())
        assert instructions[2].operands["target"] == 0      # back to top
        assert instructions[1].operands["target"] == \
            instructions[3].offset                           # forward to end
