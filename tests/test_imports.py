"""Package hygiene: every module imports cleanly and carries a docstring."""

import importlib
import pkgutil

import pytest

import repro

_MODULES = [name for _, name, _ in pkgutil.walk_packages(
    repro.__path__, prefix="repro.")
    if not name.endswith("__main__")]  # importing __main__ runs the CLI


@pytest.mark.parametrize("module_name", _MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


def test_module_inventory_is_substantial():
    """The package keeps its many-small-modules structure."""
    assert len(_MODULES) > 40
    packages = {name.rsplit(".", 1)[0] for name in _MODULES}
    for subsystem in ("repro.classfile", "repro.bytecode", "repro.jimple",
                      "repro.runtime", "repro.jvm", "repro.coverage",
                      "repro.corpus", "repro.core",
                      "repro.core.mutators", "repro.core.extensions"):
        assert subsystem in packages | set(_MODULES), subsystem


def test_public_classes_have_docstrings():
    import inspect

    for module_name in _MODULES:
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) and obj.__module__ == module_name:
                assert obj.__doc__, f"{module_name}.{name}"
