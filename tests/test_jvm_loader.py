"""Unit tests for the loading phase's format checks."""

import pytest

from repro.classfile.writer import write_class
from repro.errors import ClassFormatError, UnsupportedClassVersionError
from repro.jimple import ClassBuilder, MethodBuilder, compile_class
from repro.jimple.types import INT, JType, VOID
from repro.jvm.loader import Loader
from repro.jvm.policy import JvmPolicy


def load(jclass, **policy_overrides):
    policy = JvmPolicy(**policy_overrides)
    return Loader(policy).load(write_class(compile_class(jclass)))


def simple_class(name="L1", modifiers=None):
    return ClassBuilder(name, modifiers=modifiers).default_init().build()


class TestClassFlags:
    def test_valid_class_loads(self):
        assert load(simple_class()).name == "L1"

    def test_final_abstract_rejected(self):
        jclass = simple_class(modifiers=["public", "final", "abstract",
                                         "super"])
        with pytest.raises(ClassFormatError, match="ACC_FINAL and"):
            load(jclass)

    def test_final_abstract_tolerated_when_lenient(self):
        jclass = simple_class(modifiers=["public", "final", "abstract",
                                         "super"])
        load(jclass, reject_final_abstract_class=False)

    def test_interface_without_abstract_rejected(self):
        jclass = ClassBuilder("I1", modifiers=["public", "interface"]).build()
        with pytest.raises(ClassFormatError, match="ACC_ABSTRACT"):
            load(jclass)

    def test_interface_without_abstract_ok_when_lenient(self):
        jclass = ClassBuilder("I1", modifiers=["public", "interface"]).build()
        load(jclass, interface_requires_abstract_flag=False)

    def test_final_interface_rejected(self):
        jclass = ClassBuilder(
            "I2", modifiers=["public", "interface", "abstract",
                             "final"]).build()
        with pytest.raises(ClassFormatError, match="ACC_FINAL"):
            load(jclass)

    def test_version_ceiling(self):
        jclass = simple_class()
        jclass.major_version = 53
        with pytest.raises(UnsupportedClassVersionError):
            load(jclass, max_class_version=52)
        load(jclass, max_class_version=53)


class TestFieldChecks:
    def test_duplicate_fields_rejected(self):
        builder = ClassBuilder("F1").default_init()
        builder.field("x", INT, ["public"])
        builder.field("x", INT, ["public"])
        with pytest.raises(ClassFormatError, match="Duplicate field"):
            load(builder.build())

    def test_duplicate_fields_accepted_by_lenient_vendor(self):
        builder = ClassBuilder("F1").default_init()
        builder.field("x", INT, ["public"])
        builder.field("x", INT, ["public"])
        load(builder.build(), reject_duplicate_fields=False)

    def test_same_name_different_type_allowed(self):
        builder = ClassBuilder("F2").default_init()
        builder.field("x", INT, ["public"])
        builder.field("x", JType("java.lang.String"), ["public"])
        load(builder.build())

    def test_conflicting_visibility_rejected(self):
        builder = ClassBuilder("F3").default_init()
        builder.field("x", INT, ["public", "private"])
        with pytest.raises(ClassFormatError, match="conflicting visibility"):
            load(builder.build())

    def test_final_volatile_rejected(self):
        builder = ClassBuilder("F4").default_init()
        builder.field("x", INT, ["public", "final", "volatile"])
        with pytest.raises(ClassFormatError, match="final"):
            load(builder.build())

    def test_interface_field_must_be_constant(self):
        builder = ClassBuilder("I3", modifiers=["public", "interface",
                                                "abstract"])
        builder.field("x", INT, ["public"])
        with pytest.raises(ClassFormatError, match="public static final"):
            load(builder.build())

    def test_interface_constant_field_ok(self):
        builder = ClassBuilder("I4", modifiers=["public", "interface",
                                                "abstract"])
        builder.field("X", INT, ["public", "static", "final"])
        load(builder.build())


class TestMethodChecks:
    def test_duplicate_methods_rejected(self):
        builder = ClassBuilder("M1")
        for _ in range(2):
            method = MethodBuilder("dup", modifiers=["public"])
            method.ret()
            builder.method(method.build())
        with pytest.raises(ClassFormatError, match="Duplicate method"):
            load(builder.build())

    def test_overload_is_not_duplicate(self):
        builder = ClassBuilder("M2")
        first = MethodBuilder("f", VOID, [], ["public"])
        first.ret()
        second = MethodBuilder("f", VOID, [INT], ["public"])
        second.ret()
        builder.method(first.build()).method(second.build())
        load(builder.build())

    def test_static_init_rejected(self):
        builder = ClassBuilder("M3")
        method = MethodBuilder("<init>", modifiers=["public", "static"])
        method.ret()
        builder.method(method.build())
        with pytest.raises(ClassFormatError, match="<init>"):
            load(builder.build())

    def test_static_init_accepted_by_gij_style_policy(self):
        builder = ClassBuilder("M3")
        method = MethodBuilder("<init>", modifiers=["public", "static"])
        method.ret()
        builder.method(method.build())
        load(builder.build(), init_method_strict=False)

    def test_init_with_return_type_rejected(self):
        builder = ClassBuilder("M4")
        method = MethodBuilder("<init>", JType("java.lang.Thread"),
                               modifiers=["public"])
        method.abstract_body()  # the check fires on the descriptor alone
        builder.method(method.build())
        with pytest.raises(ClassFormatError, match="return void"):
            load(builder.build(), check_code_presence=False)

    def test_abstract_with_body_rejected(self):
        builder = ClassBuilder("M5")
        method = MethodBuilder("m", modifiers=["public", "abstract"])
        method.ret()
        builder.method(method.build())
        with pytest.raises(ClassFormatError, match="Code attribute"):
            load(builder.build())

    def test_concrete_without_code_at_loading_when_j9_style(self):
        builder = ClassBuilder("M6")
        method = MethodBuilder("m", modifiers=["public"])
        method.abstract_body()
        builder.method(method.build())
        with pytest.raises(ClassFormatError, match="Absent Code"):
            load(builder.build(), code_presence_checked_at_loading=True)
        # HotSpot style defers the check to linking: loading succeeds.
        load(builder.build(), code_presence_checked_at_loading=False)

    def test_nonstatic_clinit_ordinary_under_se8_reading(self):
        """Problem 1: a non-static, code-less <clinit> in a v51 class."""
        builder = ClassBuilder("M7").default_init()
        method = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
        method.abstract_body()
        builder.method(method.build())
        # HotSpot reading: of no consequence -> loads.
        load(builder.build(), treat_nonstatic_clinit_as_ordinary=True)
        # J9 reading: it is the initializer and lacks Code -> format error.
        with pytest.raises(ClassFormatError, match="no Code attribute"):
            load(builder.build(), treat_nonstatic_clinit_as_ordinary=False)

    def test_interface_method_must_be_public(self):
        builder = ClassBuilder("I5", modifiers=["public", "interface",
                                                "abstract"])
        method = MethodBuilder("m", modifiers=["private"])
        method.ret()
        builder.method(method.build())
        with pytest.raises(ClassFormatError, match="public"):
            load(builder.build())

    def test_static_interface_method_version_gate(self):
        builder = ClassBuilder("I6", modifiers=["public", "interface",
                                                "abstract"])
        method = MethodBuilder("m", modifiers=["public", "static"])
        method.ret()
        builder.method(method.build())
        jclass = builder.build()
        jclass.major_version = 51
        with pytest.raises(ClassFormatError, match="abstract"):
            load(jclass)
        jclass52 = builder.build()
        jclass52.major_version = 52
        load(jclass52)
