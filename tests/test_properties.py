"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.classfile.constant_pool import ConstantPool
from repro.classfile.descriptors import (
    parse_field_descriptor,
    parse_method_descriptor,
)
from repro.classfile.writer import _clamp_s32, _clamp_s64
from repro.coverage.tracefile import Tracefile, merge
from repro.coverage.uniqueness import StBrUniqueness, StUniqueness, TrUniqueness

# ---------------------------------------------------------------------------
# Descriptor grammar
# ---------------------------------------------------------------------------

_base_type = st.sampled_from(list("BCDFIJSZ"))
_class_name = st.from_regex(r"[a-z][a-z0-9]{0,8}(/[A-Z][a-zA-Z0-9]{0,8}){1,3}",
                            fullmatch=True)
_object_type = _class_name.map(lambda name: f"L{name};")
_field_descriptor = st.builds(
    lambda dims, base: "[" * dims + base,
    st.integers(min_value=0, max_value=4),
    st.one_of(_base_type, _object_type))


@given(_field_descriptor)
def test_field_descriptor_roundtrip(descriptor):
    assert parse_field_descriptor(descriptor).descriptor() == descriptor


@given(st.lists(_field_descriptor, max_size=5),
       st.one_of(st.just("V"), _field_descriptor))
def test_method_descriptor_roundtrip(params, ret):
    descriptor = f"({''.join(params)}){ret}"
    parsed = parse_method_descriptor(descriptor)
    assert parsed.descriptor() == descriptor
    assert len(parsed.parameters) == len(params)


@given(_field_descriptor)
def test_java_name_conversion_roundtrip(descriptor):
    from repro.jimple.types import descriptor_to_java, java_to_descriptor

    assert java_to_descriptor(descriptor_to_java(descriptor)) == descriptor


# ---------------------------------------------------------------------------
# Constant pool
# ---------------------------------------------------------------------------

@given(st.lists(st.text(max_size=20), min_size=1, max_size=30))
def test_utf8_interning_idempotent(texts):
    pool = ConstantPool()
    indices = {text: pool.utf8(text) for text in texts}
    for text, index in indices.items():
        assert pool.utf8(text) == index
        assert pool.get_utf8(index) == text
    assert len(pool) == len(set(texts))


@given(st.lists(st.one_of(
    st.tuples(st.just("int"), st.integers(-2**31, 2**31 - 1)),
    st.tuples(st.just("long"), st.integers(-2**63, 2**63 - 1)),
    st.tuples(st.just("utf8"), st.text(max_size=10)),
), max_size=20))
def test_pool_slot_accounting(entries):
    """Slot count equals sum of entry widths, regardless of order."""
    pool = ConstantPool()
    expected = 0
    seen = set()
    for kind, value in entries:
        if (kind, value) in seen:
            continue
        seen.add((kind, value))
        if kind == "int":
            pool.integer(value)
            expected += 1
        elif kind == "long":
            pool.long(value)
            expected += 2
        else:
            pool.utf8(value)
            expected += 1
    assert len(pool) == expected


# ---------------------------------------------------------------------------
# Java integer wrapping
# ---------------------------------------------------------------------------

@given(st.integers())
def test_clamp_s32_range_and_congruence(value):
    clamped = _clamp_s32(value)
    assert -2**31 <= clamped < 2**31
    assert (clamped - value) % 2**32 == 0


@given(st.integers())
def test_clamp_s64_range_and_congruence(value):
    clamped = _clamp_s64(value)
    assert -2**63 <= clamped < 2**63
    assert (clamped - value) % 2**64 == 0


# ---------------------------------------------------------------------------
# Tracefile merge (⊕) algebra
# ---------------------------------------------------------------------------

_sites = st.dictionaries(st.text(min_size=1, max_size=4),
                         st.integers(min_value=1, max_value=5), max_size=8)
_branches = st.dictionaries(
    st.tuples(st.text(min_size=1, max_size=4), st.booleans()),
    st.integers(min_value=1, max_value=5), max_size=8)
_tracefiles = st.builds(Tracefile, statements=_sites, branches=_branches)


@given(_tracefiles, _tracefiles)
def test_merge_commutative_on_sets(a, b):
    ab, ba = merge(a, b), merge(b, a)
    assert ab.stmt_set == ba.stmt_set
    assert ab.br_set == ba.br_set
    assert ab.statements == ba.statements  # counts commute too


@given(_tracefiles, _tracefiles, _tracefiles)
def test_merge_associative(a, b, c):
    left = merge(merge(a, b), c)
    right = merge(a, merge(b, c))
    assert left.statements == right.statements
    assert left.branches == right.branches


@given(_tracefiles)
def test_merge_idempotent_on_sets(a):
    merged = merge(a, a)
    assert merged.stmt_set == a.stmt_set
    assert merged.stmt == a.stmt


@given(_tracefiles, _tracefiles)
def test_merge_monotone(a, b):
    merged = merge(a, b)
    assert merged.stmt >= max(a.stmt, b.stmt)
    assert merged.br >= max(a.br, b.br)


# ---------------------------------------------------------------------------
# Uniqueness criteria invariants
# ---------------------------------------------------------------------------

@given(st.lists(_tracefiles, max_size=20))
def test_criterion_hierarchy(traces):
    """Acceptance strictness: [st] rejects ⊇ [stbr] rejects ⊇ [tr] rejects.

    Equivalently: anything [stbr] accepts, [tr] accepts; anything [st]
    accepts, [stbr] accepts.
    """
    st_c, stbr_c, tr_c = StUniqueness(), StBrUniqueness(), TrUniqueness()
    for trace in traces:
        if st_c.is_unique(trace):
            assert stbr_c.is_unique(trace)
        if stbr_c.is_unique(trace):
            assert tr_c.is_unique(trace)
        st_c.check_and_accept(trace)
        stbr_c.check_and_accept(trace)
        tr_c.check_and_accept(trace)


@given(st.lists(_tracefiles, max_size=20))
def test_accepted_suite_pairwise_unique(traces):
    criterion = TrUniqueness()
    accepted = [t for t in traces if criterion.check_and_accept(t)]
    keys = [(t.stmt_set, t.br_set) for t in accepted]
    assert len(set(keys)) == len(keys)


@given(_tracefiles)
def test_duplicate_never_accepted_twice(trace):
    for criterion in (StUniqueness(), StBrUniqueness(), TrUniqueness()):
        assert criterion.check_and_accept(trace)
        assert not criterion.check_and_accept(trace)


# ---------------------------------------------------------------------------
# Bytecode codec
# ---------------------------------------------------------------------------

@given(st.lists(st.sampled_from([
    0x00, 0x01, 0x03, 0x04, 0x57, 0x59, 0xb1, 0x02, 0x05, 0x06, 0x08,
]), min_size=1, max_size=40))
def test_operand_free_codec_roundtrip(opcodes):
    from repro.bytecode import decode_code, encode_code

    code = bytes(opcodes)
    assert encode_code(decode_code(code)) == code


@given(st.integers(min_value=-128, max_value=127))
def test_bipush_value_roundtrip(value):
    from repro.bytecode import Op, decode_code, encode_code, Instruction

    encoded = encode_code([Instruction(0, Op.BIPUSH, {"value": value})])
    (decoded,) = decode_code(encoded)
    assert decoded.operands["value"] == value


# ---------------------------------------------------------------------------
# MCMC invariants
# ---------------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=200),
       st.floats(min_value=0.01, max_value=0.5))
def test_acceptance_probability_bounds(count, p):
    import random

    from repro.core.mcmc import McmcMutatorSelector
    from repro.core.mutators.base import Mutator

    def noop(jclass, rng):
        return True

    mutators = [Mutator(f"m{i}", "class", "x", noop) for i in range(count)]
    selector = McmcMutatorSelector(mutators, p=p, rng=random.Random(0))
    first, last = selector.ranked[0], selector.ranked[-1]
    up = selector.acceptance_probability(last, first)
    down = selector.acceptance_probability(first, last)
    assert up == 1.0
    assert 0.0 < down <= 1.0
