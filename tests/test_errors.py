"""Tests for the JVM error taxonomy."""

import pytest

from repro import errors
from repro.errors import (
    ClassFormatError,
    IncompatibleClassChangeError,
    JavaError,
    LinkageError,
    NoSuchFieldError,
    NullPointerException,
    PHASE_ERRORS,
    UnsupportedClassVersionError,
    VerifyError,
)


class TestHierarchy:
    def test_format_error_is_linkage_error(self):
        assert issubclass(ClassFormatError, LinkageError)
        assert issubclass(UnsupportedClassVersionError, ClassFormatError)

    def test_incompatible_change_family(self):
        assert issubclass(NoSuchFieldError, IncompatibleClassChangeError)
        assert issubclass(IncompatibleClassChangeError, LinkageError)

    def test_everything_is_java_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and name.endswith(("Error", "Error_",
                                                        "Exception")):
                assert issubclass(obj, JavaError), name

    def test_java_names_fully_qualified(self):
        assert VerifyError.java_name == "java.lang.VerifyError"
        assert NullPointerException("x").simple_name == \
            "NullPointerException"

    def test_message_attribute(self):
        error = ClassFormatError("bad magic")
        assert error.message == "bad magic"
        assert str(error) == "bad magic"

    def test_catchable_as_python_exception(self):
        with pytest.raises(JavaError):
            raise VerifyError("nope")


class TestPhaseTable:
    def test_table1_phases_present(self):
        assert set(PHASE_ERRORS) == {"loading", "linking",
                                     "initialization", "execution"}

    def test_loading_errors_match_table1(self):
        names = {cls.__name__ for cls in PHASE_ERRORS["loading"]}
        assert {"ClassCircularityError", "ClassFormatError",
                "NoClassDefFoundError"} <= names

    def test_linking_errors_match_table1(self):
        names = {cls.__name__ for cls in PHASE_ERRORS["linking"]}
        assert "VerifyError" in names
        assert "IncompatibleClassChangeError" in names
