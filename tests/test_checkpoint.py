"""Tests for resumable campaign checkpoints (kill → resume bit-equality)."""

import hashlib
import json

import pytest

from repro.core.campaign import run_campaign
from repro.core.checkpoint import (
    CRASH_AFTER_ENV,
    META_FILE,
    STATE_FILE,
    CheckpointError,
    Checkpointer,
    has_checkpoint,
    load_checkpoint,
    read_meta,
)
from repro.core.fuzzing import classfuzz, greedyfuzz, randfuzz, uniquefuzz
from repro.corpus import CorpusConfig, generate_corpus
from repro.observe import make_telemetry
from repro.observe.events import CHECKPOINT_WRITTEN


@pytest.fixture(scope="module")
def seeds():
    return generate_corpus(CorpusConfig(count=20, seed=11))


def fingerprint(result):
    """Everything the golden-fixture comparison checks, plus lineage."""
    return {
        "gen": [g.label for g in result.gen_classes],
        "tests": [t.label for t in result.test_classes],
        "parents": [g.parent for g in result.gen_classes],
        "discards": dict(result.discards),
        "report": [row for row in result.mutator_report if row[1] > 0],
        "digests": [hashlib.sha256(g.data).hexdigest()[:16]
                    for g in result.gen_classes],
        "signatures": [t.tracefile.signature if t.tracefile else None
                       for t in result.test_classes],
    }


def kill_after(monkeypatch, count):
    monkeypatch.setenv(CRASH_AFTER_ENV, str(count))


class TestCheckpointer:
    def test_writes_on_cadence(self, seeds, tmp_path):
        directory = tmp_path / "ckpt"
        classfuzz(seeds, iterations=40, seed=7,
                  checkpoint_dir=directory, checkpoint_every=10)
        assert has_checkpoint(directory)
        state = load_checkpoint(directory)
        assert state["index"] == 40  # final completion checkpoint
        meta = read_meta(directory)
        assert meta["algorithm"] == "classfuzz"
        assert meta["index"] == 40

    def test_atomic_files_only(self, seeds, tmp_path):
        directory = tmp_path / "ckpt"
        classfuzz(seeds, iterations=20, seed=7,
                  checkpoint_dir=directory, checkpoint_every=5)
        names = {p.name for p in directory.iterdir()}
        assert names == {STATE_FILE, META_FILE}

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError, match=">= 1"):
            Checkpointer(tmp_path, every=0)

    def test_missing_checkpoint_rejected(self, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        (tmp_path / STATE_FILE).write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(tmp_path)

    def test_wrong_version_rejected(self, tmp_path):
        import pickle

        (tmp_path / STATE_FILE).write_bytes(
            pickle.dumps({"version": 999}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(tmp_path)


class TestKillAndResume:
    @pytest.mark.parametrize("algorithm", [classfuzz, uniquefuzz,
                                           greedyfuzz, randfuzz])
    def test_resumed_run_matches_uninterrupted(self, algorithm, seeds,
                                               tmp_path, monkeypatch):
        baseline = algorithm(seeds, iterations=50, seed=7)
        directory = tmp_path / "ckpt"
        kill_after(monkeypatch, 2)
        with pytest.raises(KeyboardInterrupt):
            algorithm(seeds, iterations=50, seed=7,
                      checkpoint_dir=directory, checkpoint_every=10)
        monkeypatch.delenv(CRASH_AFTER_ENV)
        resumed = algorithm(seeds, iterations=50, seed=7,
                            checkpoint_dir=directory,
                            checkpoint_every=10, resume=True)
        assert fingerprint(resumed) == fingerprint(baseline)

    def test_resume_with_batching(self, seeds, tmp_path, monkeypatch):
        baseline = classfuzz(seeds, iterations=48, seed=3, batch=8)
        directory = tmp_path / "ckpt"
        kill_after(monkeypatch, 1)
        with pytest.raises(KeyboardInterrupt):
            classfuzz(seeds, iterations=48, seed=3, batch=8,
                      checkpoint_dir=directory, checkpoint_every=16)
        monkeypatch.delenv(CRASH_AFTER_ENV)
        resumed = classfuzz(seeds, iterations=48, seed=3, batch=8,
                            checkpoint_dir=directory,
                            checkpoint_every=16, resume=True)
        assert fingerprint(resumed) == fingerprint(baseline)

    def test_resume_after_completion_is_noop(self, seeds, tmp_path):
        directory = tmp_path / "ckpt"
        first = classfuzz(seeds, iterations=30, seed=7,
                          checkpoint_dir=directory, checkpoint_every=10)
        again = classfuzz(seeds, iterations=30, seed=7,
                          checkpoint_dir=directory,
                          checkpoint_every=10, resume=True)
        assert fingerprint(again) == fingerprint(first)

    def test_resume_without_checkpoint_is_fresh_start(self, seeds,
                                                      tmp_path):
        baseline = classfuzz(seeds, iterations=30, seed=7)
        result = classfuzz(seeds, iterations=30, seed=7,
                           checkpoint_dir=tmp_path / "empty",
                           checkpoint_every=10, resume=True)
        assert fingerprint(result) == fingerprint(baseline)

    def test_resume_requires_checkpoint_dir(self, seeds):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            classfuzz(seeds, iterations=10, seed=7, resume=True)

    def test_checkpointing_does_not_change_results(self, seeds,
                                                   tmp_path):
        baseline = classfuzz(seeds, iterations=40, seed=7)
        checkpointed = classfuzz(seeds, iterations=40, seed=7,
                                 checkpoint_dir=tmp_path / "ckpt",
                                 checkpoint_every=10)
        assert fingerprint(checkpointed) == fingerprint(baseline)

    def test_mismatched_algorithm_rejected(self, seeds, tmp_path):
        directory = tmp_path / "ckpt"
        classfuzz(seeds, iterations=20, seed=7,
                  checkpoint_dir=directory, checkpoint_every=10)
        with pytest.raises(CheckpointError, match="algorithm"):
            uniquefuzz(seeds, iterations=20, seed=7,
                       checkpoint_dir=directory, checkpoint_every=10,
                       resume=True)

    def test_mismatched_batch_rejected(self, seeds, tmp_path):
        directory = tmp_path / "ckpt"
        classfuzz(seeds, iterations=20, seed=7, batch=4,
                  checkpoint_dir=directory, checkpoint_every=10)
        with pytest.raises(CheckpointError, match="batch"):
            classfuzz(seeds, iterations=20, seed=7, batch=2,
                      checkpoint_dir=directory, checkpoint_every=10,
                      resume=True)

    def test_mismatched_schedule_rejected(self, seeds, tmp_path):
        directory = tmp_path / "ckpt"
        classfuzz(seeds, iterations=20, seed=7,
                  checkpoint_dir=directory, checkpoint_every=10)
        with pytest.raises(CheckpointError, match="seed schedule"):
            classfuzz(seeds, iterations=20, seed=7,
                      schedule="coverage-yield",
                      checkpoint_dir=directory, checkpoint_every=10,
                      resume=True)

    def test_checkpoint_written_events(self, seeds, tmp_path):
        telemetry = make_telemetry(ring_capacity=1024)
        ring = telemetry.bus.sinks[0]
        classfuzz(seeds, iterations=30, seed=7, telemetry=telemetry,
                  checkpoint_dir=tmp_path / "ckpt", checkpoint_every=10)
        events = ring.events(CHECKPOINT_WRITTEN)
        assert events  # periodic + final completion writes
        assert events[-1].fields["index"] == 30
        text = telemetry.render_prometheus()
        assert "repro_checkpoints_total" in text


class TestCampaignResume:
    def test_killed_campaign_resumes_equal(self, seeds, tmp_path,
                                           monkeypatch):
        algorithms = ("classfuzz[stbr]", "randfuzz")
        baseline = run_campaign(seeds, budget_seconds=9000,
                                algorithms=algorithms, rng_seed=5)
        directory = tmp_path / "campaign"
        kill_after(monkeypatch, 2)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(seeds, budget_seconds=9000,
                         algorithms=algorithms, rng_seed=5,
                         checkpoint_dir=directory, checkpoint_every=20)
        monkeypatch.delenv(CRASH_AFTER_ENV)
        resumed = run_campaign(seeds, budget_seconds=9000,
                               algorithms=algorithms, rng_seed=5,
                               checkpoint_dir=directory,
                               checkpoint_every=20, resume=True)
        assert len(resumed) == len(baseline)
        for left, right in zip(resumed, baseline):
            assert left.label == right.label
            assert fingerprint(left.fuzz) == fingerprint(right.fuzz)

    def test_each_leg_gets_its_own_subdir(self, seeds, tmp_path):
        directory = tmp_path / "campaign"
        run_campaign(seeds, budget_seconds=4000,
                     algorithms=("classfuzz[stbr]", "randfuzz"),
                     rng_seed=5, checkpoint_dir=directory,
                     checkpoint_every=20)
        subdirs = sorted(p.name for p in directory.iterdir())
        assert subdirs == ["classfuzz-stbr-r0", "randfuzz-r0"]
        for sub in subdirs:
            assert has_checkpoint(directory / sub)
