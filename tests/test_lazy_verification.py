"""J9-style lazy per-invocation verification (Problem 2, the timing side)."""

import pytest

from repro.classfile.writer import write_class
from repro.jimple import ClassBuilder, MethodBuilder, compile_class
from repro.jimple.statements import InvokeExpr, InvokeStmt, MethodRef, ReturnStmt
from repro.jimple.types import INT, JType, VOID
from repro.jvm.outcome import Phase
from repro.jvm.vendors import make_hotspot8, make_j9


def class_with_broken_helper(invoke_from_main: bool):
    """A class whose helper method has a broken body (bare return in an
    int-returning method); ``main`` optionally calls it."""
    builder = ClassBuilder("Lazy")
    builder.default_init()
    main = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                         ["public", "static"])
    if invoke_from_main:
        main.local("$x", INT)
        from repro.jimple.statements import AssignInvokeStmt

        main.stmt(AssignInvokeStmt("$x", InvokeExpr(
            "static", MethodRef("Lazy", "broken", INT, ()), None, [])))
    main.println("done")
    main.ret()
    builder.method(main.build())
    broken = MethodBuilder("broken", INT, [], ["public", "static"])
    broken.ret()   # wrong return opcode for an int method
    builder.method(broken.build())
    return write_class(compile_class(builder.build()))


class TestLazyVerification:
    def test_uncalled_broken_method_passes_on_j9(self):
        data = class_with_broken_helper(invoke_from_main=False)
        outcome = make_j9().run(data)
        assert outcome.ok, outcome.brief()
        assert outcome.output == ("done",)

    def test_uncalled_broken_method_fails_on_hotspot(self):
        data = class_with_broken_helper(invoke_from_main=False)
        outcome = make_hotspot8().run(data)
        assert outcome.phase is Phase.LINKING
        assert outcome.error == "VerifyError"

    def test_called_broken_method_fails_on_j9_too(self):
        """Lazy verification fires at first invocation: once main calls
        the broken helper, J9 also rejects."""
        data = class_with_broken_helper(invoke_from_main=True)
        outcome = make_j9().run(data)
        assert not outcome.ok
        assert outcome.error == "VerifyError"

    def test_verification_happens_once(self):
        """The lazy verifier memoizes per method (no re-verification on
        repeated calls) — exercised through a loop calling a valid helper."""
        builder = ClassBuilder("Memo")
        builder.default_init()
        helper = MethodBuilder("h", INT, [], ["public", "static"])
        helper.local("$v", INT)
        helper.const("$v", 1)
        helper.stmt(ReturnStmt("$v"))
        builder.method(helper.build())
        main = MethodBuilder("main", VOID, [JType("java.lang.String[]")],
                             ["public", "static"])
        main.local("$i", INT)
        main.local("$r", INT)
        main.const("$i", 5)
        main.label("top")
        from repro.jimple.statements import AssignBinopStmt, AssignInvokeStmt, Constant

        main.stmt(AssignInvokeStmt("$r", InvokeExpr(
            "static", MethodRef("Memo", "h", INT, ()), None, [])))
        main.stmt(AssignBinopStmt("$i", "$i", "-", Constant(1, INT)))
        main.if_zero("$i", ">", "top")
        main.println("looped")
        main.ret()
        builder.method(main.build())
        data = write_class(compile_class(builder.build()))
        outcome = make_j9().run(data)
        assert outcome.ok
        assert outcome.output == ("looped",)
