"""Tests for the outcome model itself."""

from repro.jvm.outcome import DifferentialResult, Outcome, Phase


class TestPhase:
    def test_codes_are_stable(self):
        assert [int(p) for p in Phase] == [0, 1, 2, 3, 4]

    def test_labels_match_paper_wording(self):
        assert Phase.INVOKED.label == "normally invoked"
        assert Phase.LOADING.label == \
            "rejected during the creation/loading phase"
        assert Phase.RUNTIME.label == "rejected at runtime"


class TestOutcome:
    def test_ok_predicate(self):
        assert Outcome(Phase.INVOKED).ok
        assert not Outcome(Phase.LINKING, error="VerifyError").ok

    def test_brief_for_success(self):
        outcome = Outcome(Phase.INVOKED, jvm_name="gij")
        assert outcome.brief() == "gij: invoked normally"

    def test_brief_for_rejection(self):
        outcome = Outcome(Phase.LOADING, error="ClassFormatError",
                          jvm_name="j9")
        assert "j9: ClassFormatError during loading" == outcome.brief()

    def test_outcome_is_immutable(self):
        outcome = Outcome(Phase.INVOKED)
        try:
            outcome.phase = Phase.RUNTIME
            mutated = True
        except AttributeError:
            mutated = False
        assert not mutated


class TestDifferentialResult:
    def _mk(self, *codes):
        return DifferentialResult(outcomes=[
            Outcome(Phase(code), error=None if code == 0 else "E",
                    jvm_name=f"jvm{i}") for i, code in enumerate(codes)])

    def test_theoretical_space_is_5_to_the_5(self):
        """Figure 3's note: 5^5 possible encoded sequences."""
        assert len(Phase) ** 5 == 3125

    def test_codes_property(self):
        assert self._mk(0, 1, 2, 3, 4).codes == (0, 1, 2, 3, 4)

    def test_all_invoked(self):
        assert self._mk(0, 0, 0).all_invoked
        assert not self._mk(0, 0, 1).all_invoked

    def test_all_rejected_same_stage_excludes_invoked(self):
        assert self._mk(2, 2, 2).all_rejected_same_stage
        assert not self._mk(0, 0, 0).all_rejected_same_stage
        assert not self._mk(2, 2, 3).all_rejected_same_stage

    def test_trichotomy(self):
        """Every result is exactly one of: all invoked, all rejected at
        one stage, or a discrepancy — the Table 6 row partition."""
        for codes in ((0, 0), (3, 3), (0, 2), (1, 4)):
            result = self._mk(*codes)
            buckets = [result.all_invoked,
                       result.all_rejected_same_stage,
                       result.is_discrepancy]
            assert sum(buckets) == 1, codes
