"""Concurrent-interning stress tests (the free-threaded read-path fix).

``SiteInterner``'s fast path reads the table without the lock; the fix
under test makes the *whole* optimistic pass abort to the locked path on
any missing key, instead of computing ``missing`` and the final lookups
lock-free around a locked insert (which a racing writer on a no-GIL
interpreter could interleave with).  These tests hammer the interner
from many threads over overlapping site batches and assert the id space
stays dense, stable, and agreed-upon.
"""

import threading

import pytest

from repro.coverage.interner import SiteInterner


def _hammer(threads, worker):
    barrier = threading.Barrier(threads)
    errors = []

    def body(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=body, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors


class TestConcurrentInterning:
    THREADS = 8
    ROUNDS = 40

    def test_overlapping_batches_agree(self):
        interner = SiteInterner()
        sites = [f"stress.site_{i}" for i in range(120)]
        results = {}

        def worker(index):
            # Every thread interns a different overlapping window, many
            # times, so lock-free readers race concurrent inserters.
            window = sites[index * 10:index * 10 + 60] or sites[:60]
            for _ in range(self.ROUNDS):
                results[index] = interner.statement_ids(window)

        _hammer(self.THREADS, worker)
        # Terminal state: every id is final, dense, and shared.
        expected = interner.statement_ids(sites)
        assert expected == frozenset(range(len(sites)))
        for index, ids in results.items():
            window = sites[index * 10:index * 10 + 60] or sites[:60]
            assert ids == interner.statement_ids(window)

    def test_single_site_lookups_race_batch_interning(self):
        interner = SiteInterner()
        sites = [f"mixed.site_{i}" for i in range(200)]
        observed = [dict() for _ in range(self.THREADS)]

        def worker(index):
            if index % 2 == 0:
                for _ in range(self.ROUNDS):
                    interner.statement_ids(sites)
            else:
                for _ in range(self.ROUNDS):
                    for site in sites[::7]:
                        seen = interner.statement_id(site)
                        prior = observed[index].setdefault(site, seen)
                        # An id observed once must never change.
                        assert prior == seen

        _hammer(self.THREADS, worker)
        ids = interner.statement_ids(sites)
        assert ids == frozenset(range(len(sites)))

    def test_branch_namespace_raced_independently(self):
        interner = SiteInterner()
        outcomes = [(f"br.site_{i}", taken)
                    for i in range(60) for taken in (True, False)]

        def worker(index):
            for _ in range(self.ROUNDS):
                interner.branch_ids(outcomes[index::self.THREADS])
                interner.branch_id(outcomes[index % len(outcomes)])

        _hammer(self.THREADS, worker)
        assert interner.branch_ids(outcomes) == \
            frozenset(range(len(outcomes)))

    def test_ids_dense_under_duplicate_heavy_batches(self):
        interner = SiteInterner()
        sites = [f"dup.site_{i}" for i in range(30)]

        def worker(index):
            for round_index in range(self.ROUNDS):
                # Duplicate-heavy input: the same site repeated within
                # one batch must intern to one id.
                batch = [sites[(index + round_index) % len(sites)]] * 50
                ids = interner.statement_ids(batch)
                assert len(ids) == 1

        _hammer(self.THREADS, worker)
        assert interner.statement_ids(sites) == \
            frozenset(range(len(sites)))


class TestSingleThreadSemantics:
    def test_first_come_first_numbered(self):
        interner = SiteInterner()
        assert interner.statement_id("a") == 0
        assert interner.statement_id("b") == 1
        assert interner.statement_id("a") == 0
        assert interner.statement_ids(["c", "a"]) == frozenset({0, 2})

    def test_namespaces_independent(self):
        interner = SiteInterner()
        assert interner.statement_id("x") == 0
        assert interner.branch_id(("x", True)) == 0
        assert len(interner) == 2

    def test_batch_and_single_agree(self):
        interner = SiteInterner()
        batch = interner.statement_ids(["p", "q", "r"])
        assert batch == frozenset(
            interner.statement_id(site) for site in ("p", "q", "r"))
