#!/usr/bin/env python
"""Hierarchical delta debugging of a discrepancy-triggering classfile (§2.3).

Fuzzes until a discrepancy appears, then reduces the triggering class while
preserving its encoded outcome vector, and prints the minimized Jimple —
the workflow an engineer follows before filing a JVM bug report.

Run:
    python examples/reduce_discrepancy.py
"""

from repro import (
    CorpusConfig,
    classfuzz,
    generate_corpus,
    print_class,
    reduce_discrepancy,
)
from repro.core.difftest import DifferentialHarness


def find_discrepant_mutant(harness):
    """Fuzz until some accepted test classfile triggers a discrepancy."""
    seeds = generate_corpus(CorpusConfig(count=60, seed=23))
    run = classfuzz(seeds, iterations=300, criterion="stbr", seed=23)
    for generated in run.test_classes:
        result = harness.run_one(generated.data, generated.label)
        if result.is_discrepancy:
            return generated, result
    raise SystemExit("no discrepancy found; increase the iteration budget")


def main():
    harness = DifferentialHarness()
    generated, result = find_discrepant_mutant(harness)

    print("=== Discrepancy-triggering mutant (before reduction) ===")
    print(f"produced by mutator: {generated.mutator}")
    print(f"encoded outcome vector: {result.codes}")
    print(print_class(generated.jclass))
    print()

    reduction = reduce_discrepancy(generated.jclass, harness)
    print(f"=== Reduction: {reduction.tests_run} retests, "
          f"{len(reduction.steps)} deletions survived ===")
    for step in reduction.steps:
        print(f"  - {step.description} "
              f"({step.remaining_size} components left)")
    print()

    print("=== Minimized class (same outcome vector "
          f"{reduction.codes}) ===")
    print(print_class(reduction.reduced))
    print()
    print("=== Per-JVM behaviour of the minimized class ===")
    from repro.jimple.to_classfile import compile_class_bytes

    final = harness.run_one(compile_class_bytes(reduction.reduced), "final")
    print(final.summary())


if __name__ == "__main__":
    main()
