#!/usr/bin/env python
"""A small classfuzz campaign: corpus → coverage-directed fuzzing →
differential testing — the paper's full pipeline at laptop scale.

Compares classfuzz[stbr] against uniquefuzz (no MCMC) and randfuzz
(no coverage), then differential-tests each suite and prints Table 4 /
Table 6 style rows.

Run:
    python examples/fuzzing_campaign.py [iterations]
"""

import sys

from repro import (
    CorpusConfig,
    classfuzz,
    evaluate_suite,
    generate_corpus,
    randfuzz,
    uniquefuzz,
)
from repro.core.difftest import DifferentialHarness
from repro.core.metrics import format_table
from repro.jimple.to_classfile import compile_class_bytes


def main():
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    print(f"generating seed corpus (120 classes), "
          f"fuzzing {iterations} iterations per algorithm...")
    seeds = generate_corpus(CorpusConfig(count=120, seed=42))

    runs = {
        "classfuzz[stbr]": classfuzz(seeds, iterations, criterion="stbr",
                                     seed=42),
        "uniquefuzz": uniquefuzz(seeds, iterations, seed=42),
        "randfuzz": randfuzz(seeds, iterations, seed=42),
    }

    print("\n=== Generation statistics (Table 4 style) ===")
    header = f"{'algorithm':18s} {'iter':>5s} {'Gen':>5s} {'Test':>5s} {'succ':>7s}"
    print(header)
    for label, run in runs.items():
        print(f"{label:18s} {run.iterations:5d} {len(run.gen_classes):5d} "
              f"{len(run.test_classes):5d} {run.succ:7.1%}")

    harness = DifferentialHarness()
    print("\n=== Differential testing (Table 6 style) ===")
    reports = []
    seed_suite = [(s.name, compile_class_bytes(s)) for s in seeds]
    reports.append(evaluate_suite("Seeds", seed_suite, harness))
    for label, run in runs.items():
        suite = [(g.label, g.data) for g in run.test_classes]
        reports.append(evaluate_suite(f"Test_{label}", suite, harness))
    print(format_table(reports))

    stbr = reports[1]
    print("\n=== Sample discrepancies found by classfuzz[stbr] ===")
    shown = 0
    for result in stbr.results:
        if result.is_discrepancy and shown < 5:
            shown += 1
            print(f"\n{result.summary()}")

    print("\n=== Top mutators by success rate (Table 5 style) ===")
    print(f"{'mutator':40s} {'succ rate':>9s} {'selected':>9s}")
    for name, selected, successes, rate in runs[
            "classfuzz[stbr]"].mutator_report[:10]:
        if selected:
            print(f"{name:40s} {rate:9.3f} {selected:9d}")


if __name__ == "__main__":
    main()
