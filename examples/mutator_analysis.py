#!/usr/bin/env python
"""Mutator selection analysis: the Figure 4 experiment.

Runs classfuzz[stbr] (MCMC-guided) and uniquefuzz (uniform selection) on
the same seeds, then plots — in ASCII — each mutator's success rate against
its selection frequency.  With MCMC the two correlate (Finding 2); with
uniform selection the frequencies are flat.

Run:
    python examples/mutator_analysis.py
"""

from repro import CorpusConfig, classfuzz, generate_corpus, uniquefuzz


def ascii_chart(rows, title, width=50):
    """Bar-chart ``(label, value)`` rows, values in [0, 1]."""
    print(f"\n{title}")
    for label, value in rows:
        bar = "#" * int(value * width)
        print(f"  {label:42s} |{bar:<{width}s}| {value:.2f}")


def main():
    seeds = generate_corpus(CorpusConfig(count=100, seed=31))
    iterations = 500
    print(f"running classfuzz[stbr] and uniquefuzz for "
          f"{iterations} iterations each...")
    mcmc_run = classfuzz(seeds, iterations, criterion="stbr", seed=31)
    uniform_run = uniquefuzz(seeds, iterations, seed=31)

    # Figure 4a: success rates, sorted descending (classfuzz ranking).
    report = mcmc_run.mutator_report
    selected_rows = [(name, rate) for name, sel, _, rate in report
                     if sel > 0][:15]
    ascii_chart(selected_rows,
                "Figure 4a — top mutator success rates (classfuzz[stbr])")

    # Figure 4b: selection frequencies under MCMC, same mutator order.
    total = sum(sel for _, sel, _, _ in report) or 1
    freq_rows = [(name, sel / total * 10) for name, sel, _, rate in report
                 if sel > 0][:15]
    ascii_chart(freq_rows,
                "Figure 4b — selection frequencies ×10 (classfuzz[stbr], "
                "same order)")

    # Figure 4c: uniquefuzz frequencies in the classfuzz order — flat.
    uniform_by_name = {name: sel for name, sel, _, _ in
                       uniform_run.mutator_report}
    uniform_total = sum(uniform_by_name.values()) or 1
    flat_rows = [(name, uniform_by_name.get(name, 0) / uniform_total * 10)
                 for name, _, _, _ in report][:15]
    ascii_chart(flat_rows,
                "Figure 4c — selection frequencies ×10 (uniquefuzz, "
                "same order)")

    gain = (len(mcmc_run.test_classes) - len(uniform_run.test_classes)) \
        / max(1, len(uniform_run.test_classes))
    print(f"\nMCMC benefit: classfuzz[stbr] accepted "
          f"{len(mcmc_run.test_classes)} representative classfiles vs "
          f"uniquefuzz's {len(uniform_run.test_classes)} "
          f"({gain:+.0%}; the paper reports +43%).")


if __name__ == "__main__":
    main()
