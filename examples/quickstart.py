#!/usr/bin/env python
"""Quickstart: build a classfile, run it on five JVMs, see a discrepancy.

Reproduces the paper's Figure 2 end to end: a class whose ``<clinit>`` is
``public abstract`` with no Code attribute runs normally on HotSpot but is
rejected by J9 with a ClassFormatError ("no Code attribute specified").

Run:
    python examples/quickstart.py
"""

from repro import ClassBuilder, MethodBuilder, all_jvms, print_class
from repro.core.difftest import DifferentialHarness
from repro.jimple.to_classfile import compile_class_bytes


def build_figure2_class():
    """The M1436188543 mutant of Figure 2."""
    builder = ClassBuilder("M1436188543")
    builder.default_init()
    builder.main_printing("Completed!")
    clinit = MethodBuilder("<clinit>", modifiers=["public", "abstract"])
    clinit.abstract_body()
    builder.method(clinit.build())
    return builder.build()


def main():
    jclass = build_figure2_class()
    print("=== Jimple form of the test class ===")
    print(print_class(jclass))
    print()

    data = compile_class_bytes(jclass)
    print(f"compiled to {len(data)} bytes "
          f"(magic {data[:4].hex()}, version {data[6]}.{data[7]})")
    print()

    print("=== Running on the five JVMs of Table 3 ===")
    for jvm in all_jvms():
        outcome = jvm.run(data)
        detail = outcome.message[:72] if outcome.message else \
            " ".join(outcome.output)
        print(f"  {jvm.name:10s} code={outcome.code}  {outcome.brief()}")
        if detail:
            print(f"  {'':10s}   {detail}")
    print()

    result = DifferentialHarness().run_one(data, "M1436188543")
    print(f"encoded outcome sequence (Figure 3 style): {result.codes}")
    print(f"discrepancy: {result.is_discrepancy}")
    print()

    print("=== Root-cause attribution (policy-axis bisection) ===")
    from repro.core.attribution import attribute_all_pairs

    for attribution in attribute_all_pairs(data, all_jvms()):
        print(f"  {attribution.summary()}")


if __name__ == "__main__":
    main()
