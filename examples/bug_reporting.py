#!/usr/bin/env python
"""The paper's reporting workflow (§3.3): fuzz, triage, and render the
bug reports the authors filed with JVM developers.

Runs a campaign, collects every discrepancy in the accepted suite,
classifies each (defect-indicative / verification-policy / compatibility —
the paper's 28/30/4 split over 62 reports), and prints one full report
with the reduced classfile in both Jimple and javap form.

Run:
    python examples/bug_reporting.py
"""

from repro import CorpusConfig, classfuzz, generate_corpus
from repro.core.difftest import DifferentialHarness
from repro.core.reporting import report_discrepancy, summarize_reports


def main():
    print("fuzzing for discrepancies...")
    seeds = generate_corpus(CorpusConfig(count=80, seed=13))
    run = classfuzz(seeds, iterations=350, criterion="stbr", seed=13)
    harness = DifferentialHarness()

    reports = []
    for generated in run.test_classes:
        result = harness.run_one(generated.data, generated.label)
        if not result.is_discrepancy:
            continue
        reports.append(report_discrepancy(generated.jclass, harness,
                                          reduce=len(reports) < 3))
        if len(reports) >= 12:
            break

    if not reports:
        raise SystemExit("no discrepancies found; raise the budget")

    print()
    print(summarize_reports(reports))
    print()
    print("=" * 70)
    print("Full text of the first report:")
    print("=" * 70)
    print(reports[0].text)


if __name__ == "__main__":
    main()
