"""Taxonomy of JVM errors and exceptions thrown during startup.

The JVM specification names the error classes a conforming implementation
must raise when a constraint is violated during class creation/loading,
linking, initialization, or execution (Table 1 of the paper).  The simulated
JVMs in :mod:`repro.jvm` raise these Python exceptions; the differential
harness compares their *names* and the startup phase in which they occur.
"""

from __future__ import annotations


class JavaError(Exception):
    """Base class for every simulated JVM error or exception.

    Attributes:
        message: human-readable detail, mirroring a real JVM's message.
    """

    #: Fully-qualified Java name of the error class.
    java_name = "java.lang.Throwable"

    def __init__(self, message: str = ""):
        super().__init__(message)
        self.message = message

    @property
    def simple_name(self) -> str:
        """The unqualified Java class name (e.g. ``VerifyError``)."""
        return self.java_name.rsplit(".", 1)[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.simple_name}({self.message!r})"


# ---------------------------------------------------------------------------
# Creation & loading phase
# ---------------------------------------------------------------------------

class LinkageError(JavaError):
    """A class-linkage failure (JVMS §5): base of the loading/linking error family."""

    java_name = "java.lang.LinkageError"


class ClassFormatError(LinkageError):
    """The binary classfile is structurally malformed."""

    java_name = "java.lang.ClassFormatError"


class UnsupportedClassVersionError(ClassFormatError):
    """The classfile's major.minor version is outside the supported range."""

    java_name = "java.lang.UnsupportedClassVersionError"


class NoClassDefFoundError(LinkageError):
    """A referenced class definition could not be located."""

    java_name = "java.lang.NoClassDefFoundError"


class ClassCircularityError(LinkageError):
    """A class is (transitively) its own superclass or superinterface."""

    java_name = "java.lang.ClassCircularityError"


# ---------------------------------------------------------------------------
# Linking phase
# ---------------------------------------------------------------------------

class VerifyError(LinkageError):
    """Bytecode or structural verification failed."""

    java_name = "java.lang.VerifyError"


class IncompatibleClassChangeError(LinkageError):
    """An incompatible class change was detected during resolution."""

    java_name = "java.lang.IncompatibleClassChangeError"


class AbstractMethodError(IncompatibleClassChangeError):
    """An abstract method was invoked."""

    java_name = "java.lang.AbstractMethodError"


class IllegalAccessError(IncompatibleClassChangeError):
    """An inaccessible class, field, or method was referenced."""

    java_name = "java.lang.IllegalAccessError"


class InstantiationError(IncompatibleClassChangeError):
    """An abstract class or interface was instantiated."""

    java_name = "java.lang.InstantiationError"


class NoSuchFieldError(IncompatibleClassChangeError):
    """A referenced field does not exist."""

    java_name = "java.lang.NoSuchFieldError"


class NoSuchMethodError(IncompatibleClassChangeError):
    """A referenced method does not exist."""

    java_name = "java.lang.NoSuchMethodError"


class UnsatisfiedLinkError(LinkageError):
    """A native method's implementation could not be found."""

    java_name = "java.lang.UnsatisfiedLinkError"


# ---------------------------------------------------------------------------
# Initialization phase
# ---------------------------------------------------------------------------

class ExceptionInInitializerError(JavaError):
    """An exception occurred in a static initializer."""

    java_name = "java.lang.ExceptionInInitializerError"


# ---------------------------------------------------------------------------
# Invocation & execution phase
# ---------------------------------------------------------------------------

class JavaRuntimeException(JavaError):
    """Base of the unchecked runtime exception family."""

    java_name = "java.lang.RuntimeException"


class NullPointerException(JavaRuntimeException):
    """A null reference was dereferenced."""

    java_name = "java.lang.NullPointerException"


class ArithmeticException(JavaRuntimeException):
    """An exceptional arithmetic condition (e.g. integer division by zero)."""

    java_name = "java.lang.ArithmeticException"


class ArrayIndexOutOfBoundsException(JavaRuntimeException):
    """An array was indexed outside its bounds."""

    java_name = "java.lang.ArrayIndexOutOfBoundsException"


class ClassCastException(JavaRuntimeException):
    """An object was cast to an incompatible type."""

    java_name = "java.lang.ClassCastException"


class NegativeArraySizeException(JavaRuntimeException):
    """An array was created with a negative length."""

    java_name = "java.lang.NegativeArraySizeException"


class MissingResourceException(JavaRuntimeException):
    """A resource bundle could not be located at run time."""

    java_name = "java.util.MissingResourceException"


class StackOverflowError_(JavaError):
    """The interpreter's call depth budget was exhausted."""

    java_name = "java.lang.StackOverflowError"


class OutOfMemoryError_(JavaError):
    """The simulated heap was exhausted."""

    java_name = "java.lang.OutOfMemoryError"


class StepBudgetExceeded(JavaError):
    """The interpreter's step budget ran out (a simulated hang).

    Real harnesses kill a spinning JVM with a timeout; the simulated
    interpreter bounds execution with ``JvmPolicy.max_interpreter_steps``
    instead.  The error carries its own class name (rather than reusing a
    ``java.lang`` runtime error) so encoded outcomes — and therefore
    triage clusters — never conflate a simulated hang with a real
    runtime rejection.
    """

    java_name = "harness.StepBudgetExceeded"


class MainMethodNotFoundError(JavaError):
    """Raised when the launcher cannot locate ``public static void main``.

    Real JVM launchers print an error message rather than throwing; we model
    it as an error object so outcomes stay uniform.
    """

    java_name = "java.lang.NoSuchMethodError"


#: Errors a JVM may legitimately raise during each startup phase, mirroring
#: Table 1 of the paper.  Used by tests to sanity-check the pipeline.
PHASE_ERRORS = {
    "loading": (ClassCircularityError, ClassFormatError, NoClassDefFoundError),
    "linking": (VerifyError, IncompatibleClassChangeError, UnsatisfiedLinkError,
                NoClassDefFoundError, ClassFormatError),
    "initialization": (NoClassDefFoundError, ExceptionInInitializerError),
    "execution": (MainMethodNotFoundError, JavaRuntimeException, JavaError),
}
