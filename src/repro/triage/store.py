"""The persistent triage inventory: crash-tolerant JSONL.

Mirrors :mod:`repro.core.checkpoint`'s durability contract at
append-granularity: every record is one JSON line, appended with
flush + fsync, so a kill mid-run loses at most the line being written.
Loading tolerates a truncated trailing line (the crash artefact) and
ignores it, so a resumed run can pick up exactly the records that were
durably written.

Record types:

``meta``       store header: schema version, signature kind, suite path.
``cluster``    one deduplicated discrepancy cluster (see
               :meth:`repro.triage.cluster.Cluster.to_record`); a
               resumed run re-appends updated snapshots, and loaders
               keep the last record per id.
``minimized``  a cluster representative's minimization outcome: the
               reduced classfile (base64), size delta, and the blamed
               policy fields.
``progress``   a durable high-water mark: how many suite entries have
               been fully triaged.  A resumed run restores the
               recorded clusters and continues from this index.

Testing hook: when the environment variable
``REPRO_CRASH_AFTER_TRIAGE_FLUSHES`` is set to ``N``, the process
simulates a kill (raises ``KeyboardInterrupt``) right after the
``N``-th progress record is durably appended — the same deterministic
kill → resume idiom :mod:`repro.core.checkpoint` uses.
"""

from __future__ import annotations

import base64
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.triage.cluster import Cluster

#: Triage store schema version.
STORE_VERSION = 1

#: Simulated-kill testing hook (see module docstring).
CRASH_AFTER_ENV = "REPRO_CRASH_AFTER_TRIAGE_FLUSHES"


class TriageStoreError(ValueError):
    """The store file is unreadable or version-incompatible."""


class TriageStore:
    """Appends triage records to a JSONL file, durably.

    Attributes:
        path: the JSONL file (parent directories created on first
            append).
        written: records durably appended by this instance.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.written = 0
        self._handle = None
        self._progress_written = 0

    def _ensure_open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header_needed = not self.path.exists() \
                or self.path.stat().st_size == 0
            self._handle = self.path.open("a", encoding="utf-8")
            if header_needed:
                self._write_line({"type": "meta",
                                  "version": STORE_VERSION})
        return self._handle

    def _write_line(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.written += 1

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record (flush + fsync)."""
        self._ensure_open()
        self._write_line(record)

    def append_cluster(self, cluster: Cluster) -> None:
        self.append(cluster.to_record())

    def append_minimized(self, record: Dict[str, object]) -> None:
        if record.get("type") != "minimized":
            record = dict(record, type="minimized")
        self.append(record)

    def append_progress(self, index: int) -> None:
        """Durably mark ``index`` suite entries as fully triaged."""
        self.append({"type": "progress", "index": index})
        self._progress_written += 1
        crash_after = os.environ.get(CRASH_AFTER_ENV)
        if crash_after and self._progress_written >= int(crash_after):
            raise KeyboardInterrupt(
                f"simulated kill after triage flush "
                f"{self._progress_written} "
                f"({CRASH_AFTER_ENV}={crash_after})")

    def existing_cluster_ids(self) -> List[str]:
        """Cluster ids already durably recorded (resume support)."""
        if not self.path.exists():
            return []
        return [r["id"] for r in load_records(self.path)
                if r.get("type") == "cluster"]

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TriageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_records(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a store's records, tolerating a truncated trailing line.

    A kill mid-append leaves at most one partial final line; it is
    dropped silently.  A malformed line *before* the last one means the
    file is not a triage store at all and raises.

    Raises:
        TriageStoreError: on a non-trailing parse error or an
            unsupported schema version.
    """
    path = Path(path)
    records: List[Dict[str, object]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                break  # the crash-truncated tail
            raise TriageStoreError(
                f"{path}:{index + 1}: unparseable record: {exc}") from exc
        records.append(record)
    for record in records:
        if record.get("type") == "meta":
            version = record.get("version")
            if version != STORE_VERSION:
                raise TriageStoreError(
                    f"{path}: unsupported store version {version!r}")
    return records


def load_clusters(path: Union[str, Path]) -> List[Cluster]:
    """The cluster records of a store, as :class:`Cluster` objects.

    Later records win when a cluster id repeats (a resumed run
    re-appends the updated cluster).
    """
    by_id: Dict[str, Cluster] = {}
    for record in load_records(path):
        if record.get("type") == "cluster":
            cluster = Cluster.from_record(record)
            by_id[cluster.cluster_id] = cluster
    return sorted(by_id.values(), key=lambda c: c.first_seen)


def encode_classfile(data: bytes) -> str:
    """Classfile bytes → base64 text for JSONL embedding."""
    return base64.b64encode(data).decode("ascii")


def decode_classfile(text: str) -> bytes:
    """The inverse of :func:`encode_classfile`."""
    return base64.b64decode(text.encode("ascii"))


def load_minimized(path: Union[str, Path]
                   ) -> Dict[str, Dict[str, object]]:
    """The minimized records of a store, keyed by cluster id."""
    return {r["id"]: r for r in load_records(path)
            if r.get("type") == "minimized"}


def load_progress(path: Union[str, Path]) -> int:
    """The durable high-water mark: suite entries fully triaged."""
    if not Path(path).exists():
        return 0
    indexes = [int(r["index"]) for r in load_records(path)
               if r.get("type") == "progress"]
    return max(indexes, default=0)
