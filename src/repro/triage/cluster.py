"""Discrepancy clustering with stable, content-derived cluster ids.

Two discrepancies are the *same bug candidate* when their fine-grained
``(jvm, phase, error class)`` signatures match (§2.3's fine encoding);
the coarse phase-only code vector is available as a fallback view for
the paper's original §3.1.3 grouping.  A cluster's id is a hash of its
signature alone — never of arrival order, timestamps, or backend — so
ids are byte-identical across serial/thread/process executors and
across a checkpoint kill/resume of the producing campaign.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.executor import classfile_digest
from repro.jvm.outcome import DifferentialResult
from repro.observe.events import TRIAGE_CLUSTER

#: Signature kinds a cluster can be keyed on.
FINE = "fine"
COARSE = "coarse"

#: How many member labels a cluster retains (the rest are counted only).
MAX_LABELS = 25


def fine_signature(result: DifferentialResult
                   ) -> Tuple[Tuple[str, int, str], ...]:
    """The fine-grained signature: ``(jvm, phase, error)`` per JVM.

    Sorted by JVM name so the id is independent of harness column
    order (a reloaded run may list vendors differently).
    """
    return tuple(sorted((o.jvm_name, o.code, o.error or "")
                        for o in result.outcomes))


def coarse_signature(result: DifferentialResult
                     ) -> Tuple[Tuple[str, int, str], ...]:
    """The phase-only signature: ``(jvm, phase, "")`` per JVM."""
    return tuple(sorted((o.jvm_name, o.code, "")
                        for o in result.outcomes))


def cluster_id(signature: Sequence[Tuple[str, int, str]],
               kind: str = FINE) -> str:
    """A stable 13-character id derived only from the signature.

    ``C`` + the first 12 hex digits of the SHA-256 of the canonical
    JSON form.  Deterministic across processes, backends, and runs.
    """
    blob = json.dumps([kind, [list(entry) for entry in signature]],
                      sort_keys=True, separators=(",", ":"))
    return "C" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


@dataclass
class Cluster:
    """One deduplicated bug candidate.

    Attributes:
        cluster_id: stable content-derived id (see :func:`cluster_id`).
        kind: ``fine`` or ``coarse`` — which signature keyed it.
        signature: the ``(jvm, phase, error)`` tuples, sorted by JVM.
        count: how many results fell into this cluster.
        labels: member labels, capped at :data:`MAX_LABELS`.
        representative: label of the first member seen (the
            minimization candidate).
        representative_digest: SHA-256 of the representative's
            classfile bytes, when they were supplied.
        first_seen: 0-based index of the first member in feed order.
        suppressed: whether a suppression list matched this cluster.
    """

    cluster_id: str
    kind: str
    signature: Tuple[Tuple[str, int, str], ...]
    count: int = 0
    labels: List[str] = field(default_factory=list)
    representative: str = ""
    representative_digest: str = ""
    first_seen: int = 0
    suppressed: bool = False

    def describe(self) -> str:
        """One-line human summary of the signature."""
        parts = [f"{jvm}:{code}" + (f"/{error}" if error else "")
                 for jvm, code, error in self.signature]
        return " ".join(parts)

    def to_record(self) -> Dict[str, object]:
        """The JSONL store record for this cluster."""
        return {
            "type": "cluster",
            "id": self.cluster_id,
            "kind": self.kind,
            "signature": [list(entry) for entry in self.signature],
            "count": self.count,
            "labels": list(self.labels),
            "representative": self.representative,
            "representative_digest": self.representative_digest,
            "first_seen": self.first_seen,
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Cluster":
        signature = tuple(tuple(entry) for entry in record["signature"])
        return cls(
            cluster_id=record["id"],
            kind=record.get("kind", FINE),
            signature=signature,
            count=int(record.get("count", 0)),
            labels=list(record.get("labels", [])),
            representative=record.get("representative", ""),
            representative_digest=record.get("representative_digest", ""),
            first_seen=int(record.get("first_seen", 0)),
            suppressed=bool(record.get("suppressed", False)),
        )


class TriageEngine:
    """Clusters differential results into a deduplicated inventory.

    Feed it results one at a time (:meth:`add`) or in bulk
    (:meth:`add_many`); it groups the discrepant ones by signature,
    keeps the first member of each cluster as the representative, and —
    when telemetry is attached — increments
    ``repro_triage_clusters_total`` and emits a ``triage_cluster``
    event the first time each cluster appears.

    Attributes:
        kind: the primary signature kind (``fine`` by default; the
            coarse phase-only vector is the fallback view, selected
            with ``kind="coarse"``).  Fine-only discrepancies — same
            phases, different error classes — are invisible to the
            coarse vector, so in coarse mode they still cluster under
            their fine signature rather than being dropped.
        suppressions: optional known-issue list; matching clusters are
            flagged ``suppressed`` and excluded from
            :meth:`new_clusters`.
    """

    def __init__(self, kind: str = FINE, suppressions=None,
                 telemetry=None, max_labels: int = MAX_LABELS):
        if kind not in (FINE, COARSE):
            raise ValueError(f"unknown signature kind {kind!r}")
        self.kind = kind
        self.suppressions = suppressions
        self.telemetry = telemetry
        self.max_labels = max_labels
        self._clusters: Dict[str, Cluster] = {}
        self._representatives: Dict[str, bytes] = {}
        self._seen = 0
        if telemetry is not None:
            self._counter = telemetry.registry.counter(
                "repro_triage_clusters_total",
                "Distinct discrepancy clusters discovered by triage.",
                ("kind",))
        else:
            self._counter = None

    def __len__(self) -> int:
        return len(self._clusters)

    def _signature_for(self, result: DifferentialResult):
        """Pick the signature (and its kind) for one discrepant result."""
        if self.kind == COARSE and result.is_discrepancy:
            return COARSE, coarse_signature(result)
        return FINE, fine_signature(result)

    def add(self, result: DifferentialResult,
            data: Optional[bytes] = None) -> Optional[Cluster]:
        """Feed one result; returns its cluster, or ``None`` if clean.

        ``data`` (the classfile bytes) is retained for the cluster's
        representative so minimization can run without reloading the
        suite.
        """
        if not result.is_fine_discrepancy:
            return None
        kind, signature = self._signature_for(result)
        cid = cluster_id(signature, kind)
        cluster = self._clusters.get(cid)
        if cluster is None:
            cluster = Cluster(
                cluster_id=cid, kind=kind, signature=signature,
                representative=result.label,
                representative_digest=(classfile_digest(data)
                                       if data is not None else ""),
                first_seen=self._seen,
                suppressed=(self.suppressions is not None
                            and cid in self.suppressions))
            self._clusters[cid] = cluster
            if data is not None:
                self._representatives[cid] = data
            if self._counter is not None:
                self._counter.labels(kind=kind).inc()
            if (self.telemetry is not None
                    and self.telemetry.bus.enabled):
                self.telemetry.bus.emit(
                    TRIAGE_CLUSTER, id=cid, kind=kind,
                    signature=[list(entry) for entry in signature],
                    representative=result.label,
                    suppressed=cluster.suppressed)
        cluster.count += 1
        if len(cluster.labels) < self.max_labels:
            cluster.labels.append(result.label)
        self._seen += 1
        return cluster

    def add_many(self, results: Iterable[DifferentialResult],
                 data_by_label: Optional[Dict[str, bytes]] = None
                 ) -> List[Cluster]:
        """Feed many results; returns the clusters touched, deduplicated."""
        touched: Dict[str, Cluster] = {}
        for result in results:
            data = None
            if data_by_label is not None:
                data = data_by_label.get(result.label)
            cluster = self.add(result, data)
            if cluster is not None:
                touched[cluster.cluster_id] = cluster
        return sorted(touched.values(), key=lambda c: c.first_seen)

    def representative_bytes(self, cid: str) -> Optional[bytes]:
        """The retained classfile bytes of a cluster's representative."""
        return self._representatives.get(cid)

    def clusters(self) -> List[Cluster]:
        """Every cluster, in first-seen order."""
        return sorted(self._clusters.values(), key=lambda c: c.first_seen)

    def new_clusters(self) -> List[Cluster]:
        """Clusters not matched by the suppression list."""
        return [c for c in self.clusters() if not c.suppressed]

    def suppressed_clusters(self) -> List[Cluster]:
        """Clusters the suppression list filtered out."""
        return [c for c in self.clusters() if c.suppressed]

    def restore(self, clusters: Iterable[Cluster]) -> int:
        """Seed the engine from a prior run's clusters (resume support).

        Restored clusters keep their counts, labels, and first-seen
        order; subsequent :meth:`add` calls extend them without
        re-announcing them as new.  Returns how many were restored.
        """
        restored = 0
        for cluster in clusters:
            if cluster.cluster_id in self._clusters:
                continue
            self._clusters[cluster.cluster_id] = cluster
            self._seen = max(self._seen,
                             cluster.first_seen + cluster.count)
            restored += 1
        return restored
