"""Auto-minimization of cluster representatives.

For one representative classfile per cluster, drives the §2.3 pipeline
end to end: lift to Jimple, hierarchical delta-debugging reduction
(:func:`~repro.core.reducer.reduce_discrepancy`), then policy-axis
attribution (:func:`~repro.core.attribution.attribute_all_pairs`) of
the minimized trigger — all through one cached executor, so the
restart-heavy HDD loop and the attribution probes answer repeated runs
from the content-addressed outcome cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classfile.reader import read_class
from repro.core.attribution import attribute_all_pairs
from repro.core.difftest import DifferentialHarness
from repro.core.executor import Executor, OutcomeCache, SerialExecutor
from repro.core.reducer import reduce_discrepancy
from repro.jimple.from_classfile import lift_class
from repro.jimple.to_classfile import compile_class_bytes
from repro.triage.cluster import Cluster
from repro.triage.store import encode_classfile


@dataclass
class MinimizedRepresentative:
    """One cluster representative's minimization outcome.

    Attributes:
        cluster_id: the cluster this representative belongs to.
        label: the representative classfile's label.
        classfile: the minimized classfile bytes (the original bytes
            when reduction was not possible).
        size_before/size_after: byte sizes around the reduction.
        codes: the preserved coarse discrepancy vector.
        steps: surviving deletions; ``tests_run``: candidate retests.
        blamed_fields: policy axes responsible for the discrepancy,
            unioned over every disagreeing vendor pair.
        environmental: True when some pair's divergence is explained by
            the JRE environment rather than any policy axis.
        error: why minimization degraded to a no-op, when it did
            (unliftable classfile, non-reproducing roundtrip, …).
    """

    cluster_id: str
    label: str
    classfile: bytes
    size_before: int
    size_after: int
    codes: Tuple[int, ...] = ()
    steps: int = 0
    tests_run: int = 0
    blamed_fields: List[str] = field(default_factory=list)
    environmental: bool = False
    error: str = ""

    def to_record(self) -> Dict[str, object]:
        """The JSONL store record for this minimization."""
        return {
            "type": "minimized",
            "id": self.cluster_id,
            "label": self.label,
            "classfile": encode_classfile(self.classfile),
            "size_before": self.size_before,
            "size_after": self.size_after,
            "codes": list(self.codes),
            "steps": self.steps,
            "tests_run": self.tests_run,
            "blamed": list(self.blamed_fields),
            "environmental": self.environmental,
            "error": self.error,
        }


def _default_executor(telemetry=None) -> Executor:
    return SerialExecutor(cache=OutcomeCache(), telemetry=telemetry)


def minimize_cluster(cluster: Cluster, data: bytes,
                     jvms=None,
                     executor: Optional[Executor] = None,
                     telemetry=None) -> MinimizedRepresentative:
    """Minimize and attribute one cluster's representative.

    Args:
        cluster: the cluster being minimized.
        data: the representative's classfile bytes.
        jvms: the vendor set (default: all five).
        executor: the execution engine (default: a fresh cached serial
            engine shared by the reduction and the attribution probes).
        telemetry: threaded into the harness and the reducer.

    Reduction failures (unliftable bytes, a lift→dump roundtrip that no
    longer reproduces the discrepancy) degrade gracefully: the original
    bytes are kept and attribution still runs on them, with ``error``
    explaining the degradation.
    """
    engine = executor if executor is not None \
        else _default_executor(telemetry)
    harness = DifferentialHarness(jvms=jvms, executor=engine,
                                  telemetry=telemetry)
    label = cluster.representative or (cluster.labels[0]
                                       if cluster.labels else "")
    minimized = MinimizedRepresentative(
        cluster_id=cluster.cluster_id, label=label,
        classfile=data, size_before=len(data), size_after=len(data))
    reduced_bytes = data
    try:
        jclass = lift_class(read_class(data))
        reduction = reduce_discrepancy(jclass, harness,
                                       telemetry=telemetry)
        reduced_bytes = compile_class_bytes(reduction.reduced)
        minimized.classfile = reduced_bytes
        minimized.size_after = len(reduced_bytes)
        minimized.codes = reduction.codes
        minimized.steps = len(reduction.steps)
        minimized.tests_run = reduction.tests_run
    except Exception as exc:  # degraded, not fatal
        minimized.error = f"{type(exc).__name__}: {exc}"
        reduced_bytes = data
    try:
        attributions = attribute_all_pairs(reduced_bytes, harness.jvms,
                                           executor=engine)
    except ValueError as exc:
        if not minimized.error:
            minimized.error = f"attribution failed: {exc}"
        return minimized
    blamed = sorted({name for attribution in attributions
                     for name in attribution.responsible_fields})
    minimized.blamed_fields = blamed
    minimized.environmental = any(a.environmental for a in attributions)
    return minimized


def minimize_clusters(clusters: Sequence[Cluster],
                      data_by_id: Dict[str, bytes],
                      jvms=None,
                      executor: Optional[Executor] = None,
                      telemetry=None) -> List[MinimizedRepresentative]:
    """Minimize every cluster whose representative bytes are known.

    One cached executor (the supplied one, or a fresh cached serial
    engine) is shared across all clusters, so vendor runs repeated
    between reductions hit the cache.
    """
    engine = executor if executor is not None \
        else _default_executor(telemetry)
    results = []
    for cluster in clusters:
        data = data_by_id.get(cluster.cluster_id)
        if data is None:
            continue
        results.append(minimize_cluster(cluster, data, jvms=jvms,
                                        executor=engine,
                                        telemetry=telemetry))
    return results
