"""Known-issue suppression lists, matched by cluster id.

A suppression file records clusters that have already been triaged (or
deliberately ignored) so re-runs report only *new* clusters.  Two
formats load interchangeably:

* a **suppression JSON** file::

      {"version": 1,
       "suppressions": [{"cluster_id": "Cab12…", "reason": "JDK-123"}]}

* a **triage JSONL store** from a prior ``repro triage report --out``
  run — every recorded cluster id is treated as suppressed, which
  makes "diff this run against the last one" a one-flag operation.

Because cluster ids are derived only from the discrepancy signature,
a suppression written on one machine/backend matches the same bug
everywhere.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.triage.cluster import Cluster
from repro.triage.store import load_records

#: Suppression file schema version.
SUPPRESSION_VERSION = 1


@dataclass(frozen=True)
class Suppression:
    """One suppressed cluster.

    Attributes:
        cluster_id: the stable id to match.
        reason: free-text justification (bug tracker link, verdict).
    """

    cluster_id: str
    reason: str = ""


class SuppressionList:
    """A set of suppressions with membership by cluster id."""

    def __init__(self, suppressions: Iterable[Suppression] = ()):
        self._by_id: Dict[str, Suppression] = {
            s.cluster_id: s for s in suppressions}

    def __contains__(self, cluster_id: str) -> bool:
        return cluster_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def get(self, cluster_id: str) -> Optional[Suppression]:
        return self._by_id.get(cluster_id)

    def ids(self) -> List[str]:
        return sorted(self._by_id)


def _load_suppression_json(payload: Dict[str, object],
                           path: Path) -> SuppressionList:
    version = payload.get("version")
    if version != SUPPRESSION_VERSION:
        raise ValueError(
            f"{path}: unsupported suppression version {version!r}")
    suppressions = []
    for entry in payload.get("suppressions", []):
        if "cluster_id" not in entry:
            raise ValueError(f"{path}: suppression entry without "
                             f"cluster_id: {entry!r}")
        suppressions.append(Suppression(entry["cluster_id"],
                                        entry.get("reason", "")))
    return SuppressionList(suppressions)


def load_suppressions(path: Union[str, Path]) -> SuppressionList:
    """Load a suppression JSON file or a prior run's triage JSONL.

    The format is sniffed from the first parseable structure: a JSON
    object with a ``suppressions`` key is the dedicated format;
    anything else is read as a triage store whose cluster records
    become suppressions.

    Raises:
        ValueError: when the file is neither format.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8").strip()
    if not text:
        return SuppressionList()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "suppressions" in payload:
        return _load_suppression_json(payload, path)
    # Fall back to a triage JSONL store (also covers a single-line
    # store, which the whole-file json.loads above may have parsed).
    records = load_records(path)
    suppressions = [
        Suppression(record["id"],
                    reason=f"baseline cluster ({record.get('count', 0)} "
                           f"occurrences)")
        for record in records if record.get("type") == "cluster"]
    if not suppressions and not any(
            record.get("type") in ("meta", "minimized")
            for record in records):
        raise ValueError(
            f"{path}: neither a suppression file nor a triage store")
    return SuppressionList(suppressions)


def write_suppressions(path: Union[str, Path],
                       clusters: Iterable[Cluster],
                       reason: str = "") -> int:
    """Write a suppression JSON covering ``clusters``; returns count."""
    entries = [{"cluster_id": cluster.cluster_id,
                "reason": reason or f"suppressed {cluster.describe()}"}
               for cluster in clusters]
    payload = {"version": SUPPRESSION_VERSION, "suppressions": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
    return len(entries)
