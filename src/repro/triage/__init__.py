"""Discrepancy triage: cluster, minimize, suppress (§2.3/§3.3).

The paper's payoff is not *finding* discrepancies but turning them into
a deduplicated, minimized, root-caused bug inventory.  This package
wires the existing pieces — the fine-grained outcome encoding, the
delta-debugging reducer, and policy-axis attribution — into one
subsystem:

* :mod:`repro.triage.cluster` — group :class:`DifferentialResult`s by
  their fine-grained ``(phase, error class)`` signature into clusters
  with stable content-derived ids;
* :mod:`repro.triage.minimize` — minimize one representative per
  cluster and blame the responsible policy axes;
* :mod:`repro.triage.suppress` — known-issue lists matched by cluster
  id, so re-runs report only *new* clusters;
* :mod:`repro.triage.store` — a crash-tolerant JSONL inventory
  (atomic appends, truncation-tolerant loads, resumable like
  :mod:`repro.core.checkpoint`).

The ``repro triage`` CLI command drives the pipeline over a stored
suite or a directory of classfiles.
"""

from repro.triage.cluster import (
    Cluster,
    TriageEngine,
    cluster_id,
    coarse_signature,
    fine_signature,
)
from repro.triage.minimize import (
    MinimizedRepresentative,
    minimize_cluster,
    minimize_clusters,
)
from repro.triage.store import (
    TriageStore,
    load_clusters,
    load_minimized,
    load_progress,
    load_records,
)
from repro.triage.suppress import (
    SuppressionList,
    load_suppressions,
    write_suppressions,
)

__all__ = [
    "Cluster",
    "TriageEngine",
    "cluster_id",
    "coarse_signature",
    "fine_signature",
    "MinimizedRepresentative",
    "minimize_cluster",
    "minimize_clusters",
    "TriageStore",
    "load_clusters",
    "load_minimized",
    "load_progress",
    "load_records",
    "SuppressionList",
    "load_suppressions",
    "write_suppressions",
]
