"""Classfile attributes (JVMS §4.7).

Attributes attach metadata to classes, fields, methods, and ``Code`` blocks.
We model the attributes the JVM startup pipeline interprets (``Code``,
``Exceptions``, ``ConstantValue``, ``SourceFile``) as typed dataclasses; any
other attribute round-trips untouched as a :class:`RawAttribute`, exactly as
real JVMs ignore attributes they do not recognise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.classfile.constant_pool import ConstantPool


@dataclass
class Attribute:
    """Base class for all attributes.

    Attributes:
        name: the attribute's name as stored in the constant pool.
    """

    name: str


@dataclass
class RawAttribute(Attribute):
    """An attribute we carry opaquely as bytes."""

    data: bytes = b""


@dataclass
class ExceptionHandler:
    """One entry of a ``Code`` attribute's exception table.

    Attributes:
        start_pc/end_pc: the protected bytecode range ``[start_pc, end_pc)``.
        handler_pc: where control transfers on a match.
        catch_type: constant-pool ``Class`` index of the caught type,
            or 0 to catch everything (``finally``).
    """

    start_pc: int
    end_pc: int
    handler_pc: int
    catch_type: int


@dataclass
class CodeAttribute(Attribute):
    """The ``Code`` attribute: a method body.

    Attributes:
        max_stack: declared operand-stack depth.
        max_locals: declared local-variable count.
        code: raw bytecode.
        exception_table: exception handlers.
        attributes: nested attributes (line numbers etc., kept raw).
    """

    max_stack: int = 0
    max_locals: int = 0
    code: bytes = b""
    exception_table: List[ExceptionHandler] = field(default_factory=list)
    attributes: List[Attribute] = field(default_factory=list)

    def __init__(self, max_stack: int = 0, max_locals: int = 0,
                 code: bytes = b"",
                 exception_table: List[ExceptionHandler] | None = None,
                 attributes: List[Attribute] | None = None,
                 name: str = "Code"):
        super().__init__(name=name)
        self.max_stack = max_stack
        self.max_locals = max_locals
        self.code = code
        self.exception_table = exception_table or []
        self.attributes = attributes or []


@dataclass
class ExceptionsAttribute(Attribute):
    """The ``Exceptions`` attribute: a method's declared thrown types.

    Attributes:
        exception_indices: constant-pool ``Class`` indices.
    """

    exception_indices: List[int] = field(default_factory=list)

    def __init__(self, exception_indices: List[int] | None = None,
                 name: str = "Exceptions"):
        super().__init__(name=name)
        self.exception_indices = exception_indices or []

    def exception_names(self, pool: ConstantPool) -> List[str]:
        """Resolve the declared exception class names through ``pool``."""
        return [pool.get_class_name(i) for i in self.exception_indices]


@dataclass
class ConstantValueAttribute(Attribute):
    """The ``ConstantValue`` attribute on ``static final`` fields."""

    constant_index: int = 0

    def __init__(self, constant_index: int = 0, name: str = "ConstantValue"):
        super().__init__(name=name)
        self.constant_index = constant_index


@dataclass
class SourceFileAttribute(Attribute):
    """The ``SourceFile`` attribute on a class."""

    sourcefile_index: int = 0

    def __init__(self, sourcefile_index: int = 0, name: str = "SourceFile"):
        super().__init__(name=name)
        self.sourcefile_index = sourcefile_index


def find_attribute(attributes: List[Attribute], name: str) -> Attribute | None:
    """First attribute called ``name``, or ``None``."""
    for attr in attributes:
        if attr.name == name:
            return attr
    return None


def count_attributes(attributes: List[Attribute], name: str) -> int:
    """How many attributes called ``name`` are present (duplicates are
    a format error for Code/Exceptions — JVMs differ in enforcing it)."""
    return sum(1 for attr in attributes if attr.name == name)
