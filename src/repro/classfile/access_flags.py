"""Access and property flags for classes, fields, and methods (JVMS §4.1/4.5/4.6)."""

from __future__ import annotations

from enum import IntFlag


class AccessFlags(IntFlag):
    """Bit mask of JVM access/property flags.

    The same bit can mean different things in different contexts
    (e.g. ``0x0020`` is ``ACC_SUPER`` on a class but ``ACC_SYNCHRONIZED``
    on a method); aliases are provided for both readings.
    """

    NONE = 0x0000
    PUBLIC = 0x0001
    PRIVATE = 0x0002
    PROTECTED = 0x0004
    STATIC = 0x0008
    FINAL = 0x0010
    SUPER = 0x0020          # class context
    SYNCHRONIZED = 0x0020   # method context (same bit)
    VOLATILE = 0x0040       # field context
    BRIDGE = 0x0040         # method context
    TRANSIENT = 0x0080      # field context
    VARARGS = 0x0080        # method context
    NATIVE = 0x0100
    INTERFACE = 0x0200
    ABSTRACT = 0x0400
    STRICT = 0x0800
    SYNTHETIC = 0x1000
    ANNOTATION = 0x2000
    ENUM = 0x4000
    MODULE = 0x8000


#: Bits with a defined meaning on a class.
CLASS_FLAG_MASK = (
    AccessFlags.PUBLIC | AccessFlags.FINAL | AccessFlags.SUPER
    | AccessFlags.INTERFACE | AccessFlags.ABSTRACT | AccessFlags.SYNTHETIC
    | AccessFlags.ANNOTATION | AccessFlags.ENUM | AccessFlags.MODULE
)

#: Bits with a defined meaning on a field.
FIELD_FLAG_MASK = (
    AccessFlags.PUBLIC | AccessFlags.PRIVATE | AccessFlags.PROTECTED
    | AccessFlags.STATIC | AccessFlags.FINAL | AccessFlags.VOLATILE
    | AccessFlags.TRANSIENT | AccessFlags.SYNTHETIC | AccessFlags.ENUM
)

#: Bits with a defined meaning on a method.
METHOD_FLAG_MASK = (
    AccessFlags.PUBLIC | AccessFlags.PRIVATE | AccessFlags.PROTECTED
    | AccessFlags.STATIC | AccessFlags.FINAL | AccessFlags.SYNCHRONIZED
    | AccessFlags.BRIDGE | AccessFlags.VARARGS | AccessFlags.NATIVE
    | AccessFlags.ABSTRACT | AccessFlags.STRICT | AccessFlags.SYNTHETIC
)

#: Flags that are mutually exclusive visibility modifiers.
VISIBILITY_FLAGS = (AccessFlags.PUBLIC, AccessFlags.PRIVATE, AccessFlags.PROTECTED)

_CLASS_FLAG_NAMES = [
    (AccessFlags.PUBLIC, "ACC_PUBLIC"),
    (AccessFlags.PRIVATE, "ACC_PRIVATE"),
    (AccessFlags.PROTECTED, "ACC_PROTECTED"),
    (AccessFlags.STATIC, "ACC_STATIC"),
    (AccessFlags.FINAL, "ACC_FINAL"),
    (AccessFlags.SUPER, "ACC_SUPER"),
    (AccessFlags.NATIVE, "ACC_NATIVE"),
    (AccessFlags.INTERFACE, "ACC_INTERFACE"),
    (AccessFlags.ABSTRACT, "ACC_ABSTRACT"),
    (AccessFlags.STRICT, "ACC_STRICT"),
    (AccessFlags.SYNTHETIC, "ACC_SYNTHETIC"),
    (AccessFlags.ANNOTATION, "ACC_ANNOTATION"),
    (AccessFlags.ENUM, "ACC_ENUM"),
]


def flag_names(flags: AccessFlags) -> str:
    """Render ``flags`` like ``javap`` does: ``ACC_PUBLIC, ACC_STATIC``."""
    names = [name for bit, name in _CLASS_FLAG_NAMES if flags & bit]
    return ", ".join(names)


def count_visibility_flags(flags: AccessFlags) -> int:
    """How many of public/private/protected are set (valid members have ≤1)."""
    return sum(1 for bit in VISIBILITY_FLAGS if flags & bit)
