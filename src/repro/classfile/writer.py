"""Binary classfile serializer — the inverse of :mod:`repro.classfile.reader`.

The writer is deliberately permissive: mutators may have produced structures
a strict JVM must reject (dangling indices, contradictory flags), and the
writer's job is to emit exactly those bytes so the *JVMs under test* make
the accept/reject decision, not the serializer.
"""

from __future__ import annotations

import struct
from typing import List

from repro.classfile.attributes import (
    Attribute,
    CodeAttribute,
    ConstantValueAttribute,
    ExceptionsAttribute,
    RawAttribute,
    SourceFileAttribute,
)
from repro.classfile.constant_pool import ConstantPool, CpInfo, CpTag
from repro.classfile.fields import FieldInfo
from repro.classfile.methods import MethodInfo
from repro.classfile.model import MAGIC, ClassFile


class ClassWriter:
    """Serializes a :class:`ClassFile` to classfile bytes."""

    def write(self, classfile: ClassFile) -> bytes:
        """Serialize ``classfile``, returning the binary image."""
        self._intern_attribute_names(classfile)
        out = bytearray()
        out += struct.pack(">IHH", MAGIC, classfile.minor_version,
                           classfile.major_version)
        out += self._constant_pool(classfile.constant_pool)
        out += struct.pack(">HHH", int(classfile.access_flags) & 0xFFFF,
                           classfile.this_class, classfile.super_class)
        out += struct.pack(">H", len(classfile.interfaces))
        for index in classfile.interfaces:
            out += struct.pack(">H", index)
        out += struct.pack(">H", len(classfile.fields))
        for field_info in classfile.fields:
            out += self._member(field_info, classfile.constant_pool)
        out += struct.pack(">H", len(classfile.methods))
        for method in classfile.methods:
            out += self._member(method, classfile.constant_pool)
        out += self._attributes(classfile.attributes, classfile.constant_pool)
        return bytes(out)

    # -- sections ---------------------------------------------------------------

    def _intern_attribute_names(self, classfile: ClassFile) -> None:
        """Intern every attribute name Utf8 before the pool is serialized.

        Attribute headers reference their names by pool index, so the names
        must exist in the pool when its length header is written.
        """
        pool = classfile.constant_pool

        def visit(attributes: List[Attribute]) -> None:
            for attr in attributes:
                pool.utf8(attr.name)
                if isinstance(attr, CodeAttribute):
                    visit(attr.attributes)

        visit(classfile.attributes)
        for member in (*classfile.fields, *classfile.methods):
            visit(member.attributes)

    def _constant_pool(self, pool: ConstantPool) -> bytes:
        out = bytearray(struct.pack(">H", len(pool) + 1))
        for _, info in pool:
            out += self._cp_entry(info)
        return bytes(out)

    def _cp_entry(self, info: CpInfo) -> bytes:
        tag = info.tag
        out = bytearray([int(tag)])
        if tag is CpTag.UTF8:
            raw = str(info.value).encode("utf-8")
            out += struct.pack(">H", len(raw)) + raw
        elif tag is CpTag.INTEGER:
            out += struct.pack(">i", _clamp_s32(int(info.value)))
        elif tag is CpTag.FLOAT:
            out += struct.pack(">f", float(info.value))
        elif tag is CpTag.LONG:
            out += struct.pack(">q", _clamp_s64(int(info.value)))
        elif tag is CpTag.DOUBLE:
            out += struct.pack(">d", float(info.value))
        elif tag in (CpTag.CLASS, CpTag.STRING, CpTag.METHOD_TYPE):
            (index,) = info.value  # type: ignore[misc]
            out += struct.pack(">H", index)
        elif tag is CpTag.METHOD_HANDLE:
            kind, index = info.value  # type: ignore[misc]
            out += struct.pack(">BH", kind, index)
        else:  # two-u2 payloads
            first, second = info.value  # type: ignore[misc]
            out += struct.pack(">HH", first, second)
        return bytes(out)

    def _member(self, member: FieldInfo | MethodInfo,
                pool: ConstantPool) -> bytes:
        out = bytearray(struct.pack(
            ">HHH", int(member.access_flags) & 0xFFFF,
            member.name_index, member.descriptor_index))
        out += self._attributes(member.attributes, pool)
        return bytes(out)

    def _attributes(self, attributes: List[Attribute],
                    pool: ConstantPool) -> bytes:
        out = bytearray(struct.pack(">H", len(attributes)))
        for attr in attributes:
            body = self._attribute_body(attr, pool)
            out += struct.pack(">HI", pool.utf8(attr.name), len(body))
            out += body
        return bytes(out)

    def _attribute_body(self, attr: Attribute, pool: ConstantPool) -> bytes:
        if isinstance(attr, CodeAttribute):
            out = bytearray(struct.pack(
                ">HHI", attr.max_stack, attr.max_locals, len(attr.code)))
            out += attr.code
            out += struct.pack(">H", len(attr.exception_table))
            for handler in attr.exception_table:
                out += struct.pack(">HHHH", handler.start_pc, handler.end_pc,
                                   handler.handler_pc, handler.catch_type)
            out += self._attributes(attr.attributes, pool)
            return bytes(out)
        if isinstance(attr, ExceptionsAttribute):
            out = bytearray(struct.pack(">H", len(attr.exception_indices)))
            for index in attr.exception_indices:
                out += struct.pack(">H", index)
            return bytes(out)
        if isinstance(attr, ConstantValueAttribute):
            return struct.pack(">H", attr.constant_index)
        if isinstance(attr, SourceFileAttribute):
            return struct.pack(">H", attr.sourcefile_index)
        if isinstance(attr, RawAttribute):
            return attr.data
        raise TypeError(f"unserializable attribute {type(attr).__name__}")


def _clamp_s32(value: int) -> int:
    """Wrap ``value`` into signed 32-bit range, like Java int arithmetic."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def _clamp_s64(value: int) -> int:
    """Wrap ``value`` into signed 64-bit range, like Java long arithmetic."""
    value &= 0xFFFFFFFFFFFFFFFF
    return value - 0x10000000000000000 if value >= 0x8000000000000000 else value


def write_class(classfile: ClassFile) -> bytes:
    """Serialize ``classfile`` with a fresh :class:`ClassWriter`."""
    return ClassWriter().write(classfile)
