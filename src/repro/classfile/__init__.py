"""JVM classfile binary format: model, reader, and writer.

This package implements the ``.class`` file format from the JVM
specification (JVMS §4): the constant pool, access flags, fields, methods,
attributes (including ``Code``), and binary (de)serialization.  It plays the
role that real classfile bytes played in the paper — every mutant produced
by classfuzz is serialized through :func:`repro.classfile.writer.write_class`
and re-parsed by each simulated JVM through
:func:`repro.classfile.reader.read_class`.
"""

from repro.classfile.access_flags import AccessFlags
from repro.classfile.constant_pool import ConstantPool, CpInfo, CpTag
from repro.classfile.model import ClassFile, JAVA7_MAJOR, MAGIC
from repro.classfile.fields import FieldInfo
from repro.classfile.methods import MethodInfo
from repro.classfile.attributes import (
    Attribute,
    CodeAttribute,
    ExceptionsAttribute,
    SourceFileAttribute,
    ConstantValueAttribute,
    RawAttribute,
)
from repro.classfile.reader import ClassReader, read_class
from repro.classfile.writer import ClassWriter, write_class

__all__ = [
    "AccessFlags",
    "Attribute",
    "ClassFile",
    "ClassReader",
    "ClassWriter",
    "CodeAttribute",
    "ConstantPool",
    "ConstantValueAttribute",
    "CpInfo",
    "CpTag",
    "ExceptionsAttribute",
    "FieldInfo",
    "JAVA7_MAJOR",
    "MAGIC",
    "MethodInfo",
    "RawAttribute",
    "SourceFileAttribute",
    "read_class",
    "write_class",
]
