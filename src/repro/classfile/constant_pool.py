"""The classfile constant pool (JVMS §4.4).

The constant pool is a 1-indexed table of tagged entries holding every
symbolic reference a class makes: UTF-8 strings, class references, field and
method references, and literal constants.  ``Long`` and ``Double`` entries
occupy *two* slots (a historical quirk preserved here because mutators can
exploit it to produce malformed pools).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterator, List, Optional, Tuple, Union


class CpTag(IntEnum):
    """Constant pool entry tags (JVMS Table 4.4-A)."""

    UTF8 = 1
    INTEGER = 3
    FLOAT = 4
    LONG = 5
    DOUBLE = 6
    CLASS = 7
    STRING = 8
    FIELDREF = 9
    METHODREF = 10
    INTERFACE_METHODREF = 11
    NAME_AND_TYPE = 12
    METHOD_HANDLE = 15
    METHOD_TYPE = 16
    INVOKE_DYNAMIC = 18


#: Tags whose entries occupy two constant-pool slots.
WIDE_TAGS = (CpTag.LONG, CpTag.DOUBLE)

CpValue = Union[str, int, float, Tuple[int, ...]]


@dataclass
class CpInfo:
    """One constant pool entry.

    Attributes:
        tag: the entry's :class:`CpTag`.
        value: payload, whose shape depends on the tag:

            * ``UTF8`` — the decoded string.
            * ``INTEGER``/``FLOAT``/``LONG``/``DOUBLE`` — the number.
            * ``CLASS``/``STRING``/``METHOD_TYPE`` — a 1-tuple ``(utf8_index,)``.
            * ``FIELDREF``/``METHODREF``/``INTERFACE_METHODREF`` —
              ``(class_index, name_and_type_index)``.
            * ``NAME_AND_TYPE`` — ``(name_index, descriptor_index)``.
            * ``METHOD_HANDLE`` — ``(reference_kind, reference_index)``.
            * ``INVOKE_DYNAMIC`` — ``(bootstrap_index, name_and_type_index)``.
    """

    tag: CpTag
    value: CpValue

    @property
    def is_wide(self) -> bool:
        """Whether this entry occupies two pool slots."""
        return self.tag in WIDE_TAGS


class ConstantPoolError(ValueError):
    """Raised on structurally invalid constant-pool access or construction."""


class ConstantPool:
    """A mutable, 1-indexed constant pool with interning helpers.

    Entries are stored sparsely in a dict because ``Long``/``Double`` leave
    holes at the slot following them — reading a hole is a format error,
    which the reader surfaces as ``ClassFormatError``.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, CpInfo] = {}
        self._next_index = 1
        self._intern: Dict[Tuple[CpTag, CpValue], int] = {}

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        """The declared pool slot count (``constant_pool_count - 1``)."""
        return self._next_index - 1

    def __iter__(self) -> Iterator[Tuple[int, CpInfo]]:
        """Iterate ``(index, entry)`` pairs in index order, skipping holes."""
        for index in sorted(self._entries):
            yield index, self._entries[index]

    def __contains__(self, index: int) -> bool:
        return index in self._entries

    def entry(self, index: int) -> CpInfo:
        """Return the entry at ``index``.

        Raises:
            ConstantPoolError: for out-of-range indices or wide-entry holes.
        """
        if not isinstance(index, int) or index <= 0 or index >= self._next_index:
            raise ConstantPoolError(f"constant pool index {index} out of range "
                                    f"(count={self._next_index})")
        info = self._entries.get(index)
        if info is None:
            raise ConstantPoolError(f"constant pool index {index} is the unusable "
                                    "slot after a long/double entry")
        return info

    def maybe_entry(self, index: int) -> Optional[CpInfo]:
        """Like :meth:`entry` but returning ``None`` instead of raising."""
        return self._entries.get(index)

    # -- construction -------------------------------------------------------

    def add(self, info: CpInfo) -> int:
        """Append ``info``, returning its index.  Does not intern."""
        index = self._next_index
        self._entries[index] = info
        self._next_index += 2 if info.is_wide else 1
        return index

    def add_at(self, index: int, info: CpInfo) -> None:
        """Place ``info`` at an explicit index (used by the binary reader)."""
        self._entries[index] = info
        key = (info.tag, info.value)
        self._intern.setdefault(key, index)
        advance = index + (2 if info.is_wide else 1)
        if advance > self._next_index:
            self._next_index = advance

    def set_count(self, count: int) -> None:
        """Force the declared slot count (reader use; count = slots + 1)."""
        self._next_index = count

    def _interned(self, tag: CpTag, value: CpValue) -> int:
        key = (tag, value)
        index = self._intern.get(key)
        if index is None:
            index = self.add(CpInfo(tag, value))
            self._intern[key] = index
        return index

    # -- typed interning helpers --------------------------------------------

    def utf8(self, text: str) -> int:
        """Intern a ``CONSTANT_Utf8`` entry and return its index."""
        return self._interned(CpTag.UTF8, text)

    def class_ref(self, internal_name: str) -> int:
        """Intern a ``CONSTANT_Class`` for ``internal_name`` (slash form)."""
        return self._interned(CpTag.CLASS, (self.utf8(internal_name),))

    def string(self, text: str) -> int:
        """Intern a ``CONSTANT_String`` literal."""
        return self._interned(CpTag.STRING, (self.utf8(text),))

    def integer(self, value: int) -> int:
        """Intern a ``CONSTANT_Integer``."""
        return self._interned(CpTag.INTEGER, value)

    def float_(self, value: float) -> int:
        """Intern a ``CONSTANT_Float``."""
        return self._interned(CpTag.FLOAT, value)

    def long(self, value: int) -> int:
        """Intern a ``CONSTANT_Long`` (occupies two slots)."""
        return self._interned(CpTag.LONG, value)

    def double(self, value: float) -> int:
        """Intern a ``CONSTANT_Double`` (occupies two slots)."""
        return self._interned(CpTag.DOUBLE, value)

    def name_and_type(self, name: str, descriptor: str) -> int:
        """Intern a ``CONSTANT_NameAndType``."""
        return self._interned(
            CpTag.NAME_AND_TYPE, (self.utf8(name), self.utf8(descriptor)))

    def field_ref(self, class_name: str, name: str, descriptor: str) -> int:
        """Intern a ``CONSTANT_Fieldref``."""
        return self._interned(
            CpTag.FIELDREF,
            (self.class_ref(class_name), self.name_and_type(name, descriptor)))

    def method_ref(self, class_name: str, name: str, descriptor: str) -> int:
        """Intern a ``CONSTANT_Methodref``."""
        return self._interned(
            CpTag.METHODREF,
            (self.class_ref(class_name), self.name_and_type(name, descriptor)))

    def interface_method_ref(self, class_name: str, name: str,
                             descriptor: str) -> int:
        """Intern a ``CONSTANT_InterfaceMethodref``."""
        return self._interned(
            CpTag.INTERFACE_METHODREF,
            (self.class_ref(class_name), self.name_and_type(name, descriptor)))

    # -- typed accessors -----------------------------------------------------

    def _expect(self, index: int, *tags: CpTag) -> CpInfo:
        info = self.entry(index)
        if info.tag not in tags:
            wanted = "/".join(t.name for t in tags)
            raise ConstantPoolError(
                f"constant pool index {index} has tag {info.tag.name}, "
                f"expected {wanted}")
        return info

    def get_utf8(self, index: int) -> str:
        """Read a ``CONSTANT_Utf8`` string."""
        return self._expect(index, CpTag.UTF8).value  # type: ignore[return-value]

    def get_class_name(self, index: int) -> str:
        """Read the internal name behind a ``CONSTANT_Class``."""
        info = self._expect(index, CpTag.CLASS)
        (utf8_index,) = info.value  # type: ignore[misc]
        return self.get_utf8(utf8_index)

    def get_string(self, index: int) -> str:
        """Read the text behind a ``CONSTANT_String``."""
        info = self._expect(index, CpTag.STRING)
        (utf8_index,) = info.value  # type: ignore[misc]
        return self.get_utf8(utf8_index)

    def get_name_and_type(self, index: int) -> Tuple[str, str]:
        """Read ``(name, descriptor)`` behind a ``CONSTANT_NameAndType``."""
        info = self._expect(index, CpTag.NAME_AND_TYPE)
        name_index, desc_index = info.value  # type: ignore[misc]
        return self.get_utf8(name_index), self.get_utf8(desc_index)

    def get_member_ref(self, index: int) -> Tuple[str, str, str]:
        """Read ``(class, name, descriptor)`` behind any member reference."""
        info = self._expect(index, CpTag.FIELDREF, CpTag.METHODREF,
                            CpTag.INTERFACE_METHODREF)
        class_index, nat_index = info.value  # type: ignore[misc]
        name, descriptor = self.get_name_and_type(nat_index)
        return self.get_class_name(class_index), name, descriptor

    # -- diagnostics ---------------------------------------------------------

    def referenced_class_names(self) -> List[str]:
        """All internal class names the pool mentions via ``CONSTANT_Class``."""
        names = []
        for _, info in self:
            if info.tag is CpTag.CLASS:
                (utf8_index,) = info.value  # type: ignore[misc]
                entry = self.maybe_entry(utf8_index)
                if entry is not None and entry.tag is CpTag.UTF8:
                    names.append(entry.value)  # type: ignore[arg-type]
        return names
