"""Field and method descriptor grammar (JVMS §4.3).

Descriptors are the compact type strings stored in the constant pool,
e.g. ``(Ljava/lang/String;I)V`` for a method taking a ``String`` and an
``int`` and returning ``void``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Base (primitive) type descriptor characters.
BASE_TYPES = {
    "B": "byte",
    "C": "char",
    "D": "double",
    "F": "float",
    "I": "int",
    "J": "long",
    "S": "short",
    "Z": "boolean",
}

#: Types occupying two local-variable / operand-stack slots.
TWO_SLOT_TYPES = {"J", "D"}


class DescriptorError(ValueError):
    """Raised when a descriptor string is malformed."""


@dataclass(frozen=True)
class FieldType:
    """A parsed field type.

    Attributes:
        kind: ``"base"``, ``"object"``, or ``"array"``.
        name: primitive char for base types, internal class name for
            object types, or the element descriptor for arrays.
        dimensions: array nesting depth (0 for non-arrays).
    """

    kind: str
    name: str
    dimensions: int = 0

    @property
    def slots(self) -> int:
        """Number of local-variable slots this type occupies.

        Arrays are references and always occupy one slot, even when the
        element type is long/double.
        """
        if self.kind == "base" and not self.dimensions \
                and self.name in TWO_SLOT_TYPES:
            return 2
        return 1

    def descriptor(self) -> str:
        """Re-render this type as a descriptor string."""
        prefix = "[" * self.dimensions
        if self.kind == "base":
            return prefix + self.name
        return f"{prefix}L{self.name};"

    @property
    def java_name(self) -> str:
        """Human-readable Java source name (``java.lang.String``, ``int[]``)."""
        if self.kind == "base":
            base = BASE_TYPES[self.name]
        else:
            base = self.name.replace("/", ".")
        return base + "[]" * self.dimensions


def parse_field_type(descriptor: str, offset: int = 0) -> Tuple[FieldType, int]:
    """Parse one field type starting at ``offset``.

    Returns:
        The parsed :class:`FieldType` and the offset just past it.

    Raises:
        DescriptorError: when the descriptor is malformed.
    """
    dims = 0
    i = offset
    while i < len(descriptor) and descriptor[i] == "[":
        dims += 1
        i += 1
    if dims > 255:
        raise DescriptorError(f"array dimensionality {dims} exceeds 255")
    if i >= len(descriptor):
        raise DescriptorError(f"truncated descriptor: {descriptor!r}")
    ch = descriptor[i]
    if ch in BASE_TYPES:
        return FieldType("base", ch, dims), i + 1
    if ch == "L":
        end = descriptor.find(";", i)
        if end < 0:
            raise DescriptorError(f"unterminated class type in {descriptor!r}")
        name = descriptor[i + 1:end]
        if not name:
            raise DescriptorError(f"empty class name in {descriptor!r}")
        return FieldType("object", name, dims), end + 1
    raise DescriptorError(f"bad type char {ch!r} in {descriptor!r}")


def parse_field_descriptor(descriptor: str) -> FieldType:
    """Parse a complete field descriptor, rejecting trailing garbage."""
    ftype, end = parse_field_type(descriptor)
    if end != len(descriptor):
        raise DescriptorError(f"trailing characters in {descriptor!r}")
    return ftype


@dataclass(frozen=True)
class MethodDescriptor:
    """A parsed method descriptor.

    Attributes:
        parameters: parameter types in declaration order.
        return_type: the return type, or ``None`` for ``void``.
    """

    parameters: Tuple[FieldType, ...]
    return_type: FieldType | None

    @property
    def parameter_slots(self) -> int:
        """Total local-variable slots occupied by the parameters."""
        return sum(p.slots for p in self.parameters)

    def descriptor(self) -> str:
        """Re-render as a descriptor string."""
        params = "".join(p.descriptor() for p in self.parameters)
        ret = self.return_type.descriptor() if self.return_type else "V"
        return f"({params}){ret}"


def parse_method_descriptor(descriptor: str) -> MethodDescriptor:
    """Parse a method descriptor such as ``([Ljava/lang/String;)V``.

    Raises:
        DescriptorError: when the descriptor is malformed.
    """
    if not descriptor.startswith("("):
        raise DescriptorError(f"method descriptor must start with '(': {descriptor!r}")
    params: List[FieldType] = []
    i = 1
    while i < len(descriptor) and descriptor[i] != ")":
        ftype, i = parse_field_type(descriptor, i)
        params.append(ftype)
    if i >= len(descriptor):
        raise DescriptorError(f"missing ')' in {descriptor!r}")
    i += 1  # skip ')'
    if i >= len(descriptor):
        raise DescriptorError(f"missing return type in {descriptor!r}")
    if descriptor[i] == "V":
        if i + 1 != len(descriptor):
            raise DescriptorError(f"trailing characters in {descriptor!r}")
        return MethodDescriptor(tuple(params), None)
    ret, end = parse_field_type(descriptor, i)
    if end != len(descriptor):
        raise DescriptorError(f"trailing characters in {descriptor!r}")
    return MethodDescriptor(tuple(params), ret)


def is_valid_field_descriptor(descriptor: str) -> bool:
    """Whether ``descriptor`` is a well-formed field descriptor."""
    try:
        parse_field_descriptor(descriptor)
    except DescriptorError:
        return False
    return True


def is_valid_method_descriptor(descriptor: str) -> bool:
    """Whether ``descriptor`` is a well-formed method descriptor."""
    try:
        parse_method_descriptor(descriptor)
    except DescriptorError:
        return False
    return True


def object_descriptor(internal_name: str) -> str:
    """Descriptor for an object type given its internal name."""
    return f"L{internal_name};"
