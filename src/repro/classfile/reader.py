"""Binary classfile parser (JVMS §4).

Parsing is the *creation & loading* phase's format check: any structural
violation raises :class:`repro.errors.ClassFormatError` with a message in
the style real JVMs print.  A strictness knob lets different simulated
vendors accept or reject borderline constructs (e.g. unknown constant-pool
tags, truncated trailing bytes) the way real JVMs diverge.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from repro.classfile.access_flags import AccessFlags
from repro.classfile.attributes import (
    Attribute,
    CodeAttribute,
    ConstantValueAttribute,
    ExceptionHandler,
    ExceptionsAttribute,
    RawAttribute,
    SourceFileAttribute,
)
from repro.classfile.constant_pool import ConstantPool, ConstantPoolError, CpInfo, CpTag
from repro.classfile.fields import FieldInfo
from repro.coverage.probes import probe
from repro.classfile.methods import MethodInfo
from repro.classfile.model import MAGIC, ClassFile
from repro.errors import ClassFormatError, UnsupportedClassVersionError


@dataclass
class ReaderOptions:
    """Vendor-specific parsing strictness.

    Attributes:
        max_supported_major: reject classfiles above this major version.
        min_supported_major: reject classfiles below this major version.
        reject_trailing_bytes: whether extra bytes after the class
            structure are a format error (HotSpot rejects, GIJ ignores).
        reject_unknown_cp_tags: whether unknown constant-pool tags are a
            format error (all real JVMs reject; kept togglable for fuzzing
            the parser itself).
    """

    max_supported_major: int = 52
    min_supported_major: int = 45
    reject_trailing_bytes: bool = True
    reject_unknown_cp_tags: bool = True


class _ByteCursor:
    """A bounds-checked big-endian byte cursor."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise ClassFormatError(
                f"Truncated class file (wanted {count} bytes at offset "
                f"{self._pos}, have {self.remaining})")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def u1(self) -> int:
        return self._take(1)[0]

    def u2(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u4(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def s4(self) -> int:
        return struct.unpack(">i", self._take(4))[0]

    def s8(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def f4(self) -> float:
        return struct.unpack(">f", self._take(4))[0]

    def f8(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def raw(self, count: int) -> bytes:
        return self._take(count)


class ClassReader:
    """Parses classfile bytes into a :class:`ClassFile`."""

    def __init__(self, options: ReaderOptions | None = None):
        self.options = options or ReaderOptions()

    def read(self, data: bytes) -> ClassFile:
        """Parse ``data``.

        Raises:
            ClassFormatError: for any structural violation.
            UnsupportedClassVersionError: for version range violations.
        """
        cursor = _ByteCursor(data)
        magic = cursor.u4()
        if magic != MAGIC:
            raise ClassFormatError(
                f"Incompatible magic value {magic:#010x} in class file")
        minor = cursor.u2()
        major = cursor.u2()
        self._check_version(major, minor)

        pool = self._read_constant_pool(cursor)
        access_flags = AccessFlags(cursor.u2())
        this_class = cursor.u2()
        super_class = cursor.u2()
        self._check_class_index(pool, this_class, "this_class", allow_zero=False)
        self._check_class_index(pool, super_class, "super_class", allow_zero=True)

        interfaces = [cursor.u2() for _ in range(cursor.u2())]
        for index in interfaces:
            self._check_class_index(pool, index, "interface", allow_zero=False)

        fields = [self._read_field(cursor, pool) for _ in range(cursor.u2())]
        methods = [self._read_method(cursor, pool) for _ in range(cursor.u2())]
        attributes = self._read_attributes(cursor, pool)

        if cursor.remaining and self.options.reject_trailing_bytes:
            raise ClassFormatError(
                f"Extra bytes at the end of class file ({cursor.remaining} left)")

        return ClassFile(
            minor_version=minor,
            major_version=major,
            constant_pool=pool,
            access_flags=access_flags,
            this_class=this_class,
            super_class=super_class,
            interfaces=interfaces,
            fields=fields,
            methods=methods,
            attributes=attributes,
        )

    # -- pieces ---------------------------------------------------------------

    def _check_version(self, major: int, minor: int) -> None:
        if major > self.options.max_supported_major:
            raise UnsupportedClassVersionError(
                f"Unsupported major.minor version {major}.{minor} "
                f"(max supported {self.options.max_supported_major}.0)")
        if major < self.options.min_supported_major:
            raise UnsupportedClassVersionError(
                f"Unsupported major.minor version {major}.{minor} "
                f"(min supported {self.options.min_supported_major}.0)")

    def _check_class_index(self, pool: ConstantPool, index: int, what: str,
                           allow_zero: bool) -> None:
        if index == 0:
            if allow_zero:
                return
            raise ClassFormatError(f"Invalid {what} constant pool index 0")
        try:
            info = pool.entry(index)
        except ConstantPoolError as exc:
            raise ClassFormatError(f"Invalid {what} index: {exc}") from exc
        if info.tag is not CpTag.CLASS:
            raise ClassFormatError(
                f"{what} index {index} is a {info.tag.name}, not a Class")

    def _read_constant_pool(self, cursor: _ByteCursor) -> ConstantPool:
        count = cursor.u2()
        if count == 0:
            raise ClassFormatError("Illegal constant pool count 0")
        pool = ConstantPool()
        index = 1
        while index < count:
            tag_value = cursor.u1()
            try:
                tag = CpTag(tag_value)
            except ValueError:
                if self.options.reject_unknown_cp_tags:
                    raise ClassFormatError(
                        f"Unknown constant tag {tag_value} at index {index}")
                # Lenient mode: treat the rest of the pool as opaque.
                break
            probe(f"reader.cp.{tag.name.lower()}")
            info = self._read_cp_entry(cursor, tag)
            pool.add_at(index, info)
            index += 2 if info.is_wide else 1
        pool.set_count(count)
        return pool

    def _read_cp_entry(self, cursor: _ByteCursor, tag: CpTag) -> CpInfo:
        if tag is CpTag.UTF8:
            length = cursor.u2()
            raw = cursor.raw(length)
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ClassFormatError(f"Malformed UTF-8 constant: {exc}") from exc
            return CpInfo(tag, text)
        if tag is CpTag.INTEGER:
            return CpInfo(tag, cursor.s4())
        if tag is CpTag.FLOAT:
            return CpInfo(tag, cursor.f4())
        if tag is CpTag.LONG:
            return CpInfo(tag, cursor.s8())
        if tag is CpTag.DOUBLE:
            return CpInfo(tag, cursor.f8())
        if tag in (CpTag.CLASS, CpTag.STRING, CpTag.METHOD_TYPE):
            return CpInfo(tag, (cursor.u2(),))
        if tag in (CpTag.FIELDREF, CpTag.METHODREF, CpTag.INTERFACE_METHODREF,
                   CpTag.NAME_AND_TYPE, CpTag.INVOKE_DYNAMIC):
            return CpInfo(tag, (cursor.u2(), cursor.u2()))
        if tag is CpTag.METHOD_HANDLE:
            return CpInfo(tag, (cursor.u1(), cursor.u2()))
        raise ClassFormatError(f"Unhandled constant tag {tag}")  # pragma: no cover

    def _read_member_name(self, pool: ConstantPool, index: int,
                          what: str) -> None:
        try:
            info = pool.entry(index)
        except ConstantPoolError as exc:
            raise ClassFormatError(f"Invalid {what} name index: {exc}") from exc
        if info.tag is not CpTag.UTF8:
            raise ClassFormatError(
                f"{what} name index {index} is a {info.tag.name}, not Utf8")

    def _read_field(self, cursor: _ByteCursor, pool: ConstantPool) -> FieldInfo:
        flags = AccessFlags(cursor.u2())
        name_index = cursor.u2()
        descriptor_index = cursor.u2()
        self._read_member_name(pool, name_index, "field")
        self._read_member_name(pool, descriptor_index, "field descriptor")
        attributes = self._read_attributes(cursor, pool)
        return FieldInfo(flags, name_index, descriptor_index, attributes)

    def _read_method(self, cursor: _ByteCursor, pool: ConstantPool) -> MethodInfo:
        flags = AccessFlags(cursor.u2())
        name_index = cursor.u2()
        descriptor_index = cursor.u2()
        self._read_member_name(pool, name_index, "method")
        self._read_member_name(pool, descriptor_index, "method descriptor")
        attributes = self._read_attributes(cursor, pool)
        return MethodInfo(flags, name_index, descriptor_index, attributes)

    def _read_attributes(self, cursor: _ByteCursor,
                         pool: ConstantPool) -> List[Attribute]:
        count = cursor.u2()
        return [self._read_attribute(cursor, pool) for _ in range(count)]

    def _read_attribute(self, cursor: _ByteCursor,
                        pool: ConstantPool) -> Attribute:
        name_index = cursor.u2()
        try:
            name = pool.get_utf8(name_index)
        except ConstantPoolError as exc:
            raise ClassFormatError(f"Invalid attribute name index: {exc}") from exc
        length = cursor.u4()
        body = cursor.raw(length)
        try:
            return self._decode_attribute(name, body, pool)
        except ClassFormatError:
            raise
        except Exception as exc:
            raise ClassFormatError(
                f"Malformed {name} attribute: {exc}") from exc

    def _decode_attribute(self, name: str, body: bytes,
                          pool: ConstantPool) -> Attribute:
        known = ("Code", "Exceptions", "ConstantValue", "SourceFile")
        probe(f"reader.attr.{name if name in known else 'other'}")
        inner = _ByteCursor(body)
        if name == "Code":
            max_stack = inner.u2()
            max_locals = inner.u2()
            code_length = inner.u4()
            if code_length == 0:
                raise ClassFormatError("Code attribute with zero-length code")
            code = inner.raw(code_length)
            table = [
                ExceptionHandler(inner.u2(), inner.u2(), inner.u2(), inner.u2())
                for _ in range(inner.u2())
            ]
            nested = self._read_attributes(inner, pool)
            return CodeAttribute(max_stack, max_locals, code, table, nested)
        if name == "Exceptions":
            indices = [inner.u2() for _ in range(inner.u2())]
            for index in indices:
                self._check_class_index(pool, index, "exception", allow_zero=False)
            return ExceptionsAttribute(indices)
        if name == "ConstantValue":
            if len(body) != 2:
                raise ClassFormatError(
                    f"ConstantValue attribute has length {len(body)}, expected 2")
            return ConstantValueAttribute(inner.u2())
        if name == "SourceFile":
            if len(body) != 2:
                raise ClassFormatError(
                    f"SourceFile attribute has length {len(body)}, expected 2")
            return SourceFileAttribute(inner.u2())
        return RawAttribute(name=name, data=body)


def read_class(data: bytes, options: ReaderOptions | None = None) -> ClassFile:
    """Parse ``data`` with a fresh :class:`ClassReader`."""
    return ClassReader(options).read(data)
