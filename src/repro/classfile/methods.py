"""Method entries of a classfile (JVMS §4.6)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.classfile.access_flags import AccessFlags
from repro.classfile.attributes import (
    Attribute,
    CodeAttribute,
    ExceptionsAttribute,
    find_attribute,
)

#: Special method names defined by the specification.
INSTANCE_INIT = "<init>"
CLASS_INIT = "<clinit>"


@dataclass
class MethodInfo:
    """One ``method_info`` structure.

    Attributes:
        access_flags: the method's access/property flags.
        name_index: constant-pool Utf8 index of the method name.
        descriptor_index: constant-pool Utf8 index of the method descriptor.
        attributes: method attributes (``Code``, ``Exceptions``, ...).
    """

    access_flags: AccessFlags
    name_index: int
    descriptor_index: int
    attributes: List[Attribute] = field(default_factory=list)

    def attribute(self, name: str) -> Attribute | None:
        """First attribute called ``name``."""
        return find_attribute(self.attributes, name)

    @property
    def code(self) -> Optional[CodeAttribute]:
        """The method's ``Code`` attribute, if any."""
        attr = self.attribute("Code")
        return attr if isinstance(attr, CodeAttribute) else None

    @property
    def exceptions(self) -> Optional[ExceptionsAttribute]:
        """The method's ``Exceptions`` attribute, if any."""
        attr = self.attribute("Exceptions")
        return attr if isinstance(attr, ExceptionsAttribute) else None

    @property
    def is_static(self) -> bool:
        return bool(self.access_flags & AccessFlags.STATIC)

    @property
    def is_abstract(self) -> bool:
        return bool(self.access_flags & AccessFlags.ABSTRACT)

    @property
    def is_native(self) -> bool:
        return bool(self.access_flags & AccessFlags.NATIVE)

    @property
    def is_public(self) -> bool:
        return bool(self.access_flags & AccessFlags.PUBLIC)

    @property
    def needs_code(self) -> bool:
        """Whether the spec requires this method to carry a Code attribute."""
        return not (self.is_abstract or self.is_native)
