"""Field entries of a classfile (JVMS §4.5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.classfile.access_flags import AccessFlags
from repro.classfile.attributes import Attribute, find_attribute


@dataclass
class FieldInfo:
    """One ``field_info`` structure.

    Attributes:
        access_flags: the field's access/property flags.
        name_index: constant-pool Utf8 index of the field name.
        descriptor_index: constant-pool Utf8 index of the field descriptor.
        attributes: field attributes (``ConstantValue`` etc.).
    """

    access_flags: AccessFlags
    name_index: int
    descriptor_index: int
    attributes: List[Attribute] = field(default_factory=list)

    def attribute(self, name: str) -> Attribute | None:
        """First attribute called ``name``."""
        return find_attribute(self.attributes, name)

    @property
    def is_static(self) -> bool:
        return bool(self.access_flags & AccessFlags.STATIC)

    @property
    def is_final(self) -> bool:
        return bool(self.access_flags & AccessFlags.FINAL)

    @property
    def is_public(self) -> bool:
        return bool(self.access_flags & AccessFlags.PUBLIC)
