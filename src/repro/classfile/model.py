"""The top-level ``ClassFile`` structure (JVMS §4.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.classfile.access_flags import AccessFlags
from repro.classfile.attributes import Attribute, find_attribute
from repro.classfile.constant_pool import ConstantPool
from repro.classfile.fields import FieldInfo
from repro.classfile.methods import MethodInfo

#: The mandatory magic number at the start of every classfile.
MAGIC = 0xCAFEBABE

#: Major version numbers per platform.
JAVA5_MAJOR = 49
JAVA6_MAJOR = 50
JAVA7_MAJOR = 51
JAVA8_MAJOR = 52
JAVA9_MAJOR = 53

#: Internal name of the root class.
OBJECT_NAME = "java/lang/Object"


@dataclass
class ClassFile:
    """A parsed (or constructed) classfile.

    Attributes:
        minor_version/major_version: classfile version pair.
        constant_pool: the constant pool.
        access_flags: class access/property flags.
        this_class: constant-pool Class index of this class.
        super_class: constant-pool Class index of the superclass (0 only
            for ``java/lang/Object``).
        interfaces: constant-pool Class indices of direct superinterfaces.
        fields/methods: member tables.
        attributes: class attributes.
    """

    minor_version: int = 0
    major_version: int = JAVA7_MAJOR
    constant_pool: ConstantPool = field(default_factory=ConstantPool)
    access_flags: AccessFlags = AccessFlags.SUPER
    this_class: int = 0
    super_class: int = 0
    interfaces: List[int] = field(default_factory=list)
    fields: List[FieldInfo] = field(default_factory=list)
    methods: List[MethodInfo] = field(default_factory=list)
    attributes: List[Attribute] = field(default_factory=list)

    # -- resolved-name conveniences ------------------------------------------

    @property
    def name(self) -> str:
        """This class's internal name (slash-separated)."""
        return self.constant_pool.get_class_name(self.this_class)

    @property
    def super_name(self) -> Optional[str]:
        """The superclass internal name, or ``None`` when ``super_class`` is 0."""
        if self.super_class == 0:
            return None
        return self.constant_pool.get_class_name(self.super_class)

    @property
    def interface_names(self) -> List[str]:
        """Internal names of all direct superinterfaces."""
        return [self.constant_pool.get_class_name(i) for i in self.interfaces]

    @property
    def is_interface(self) -> bool:
        return bool(self.access_flags & AccessFlags.INTERFACE)

    def attribute(self, name: str) -> Attribute | None:
        """First class attribute called ``name``."""
        return find_attribute(self.attributes, name)

    # -- member lookup ---------------------------------------------------------

    def method_name(self, method: MethodInfo) -> str:
        """Resolve a method's name through the constant pool."""
        return self.constant_pool.get_utf8(method.name_index)

    def method_descriptor(self, method: MethodInfo) -> str:
        """Resolve a method's descriptor through the constant pool."""
        return self.constant_pool.get_utf8(method.descriptor_index)

    def field_name(self, field_info: FieldInfo) -> str:
        """Resolve a field's name through the constant pool."""
        return self.constant_pool.get_utf8(field_info.name_index)

    def field_descriptor(self, field_info: FieldInfo) -> str:
        """Resolve a field's descriptor through the constant pool."""
        return self.constant_pool.get_utf8(field_info.descriptor_index)

    def find_method(self, name: str, descriptor: str | None = None
                    ) -> Optional[MethodInfo]:
        """First method matching ``name`` (and ``descriptor`` when given)."""
        for method in self.methods:
            if self.method_name(method) != name:
                continue
            if descriptor is None or self.method_descriptor(method) == descriptor:
                return method
        return None

    def find_field(self, name: str) -> Optional[FieldInfo]:
        """First field called ``name``."""
        for field_info in self.fields:
            if self.field_name(field_info) == name:
                return field_info
        return None

    def main_method(self) -> Optional[MethodInfo]:
        """The launcher entry point ``main([Ljava/lang/String;)V``, if present."""
        return self.find_method("main", "([Ljava/lang/String;)V")
