"""A javap-style classfile disassembler.

Produces output in the format of ``javap -v`` that the paper's Figure 2
shows: header with version and flags, the constant pool, and per-method
code listings with symbolic comments.  Used by the CLI (``repro inspect``)
and by discrepancy reports.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.bytecode.instructions import InstructionError, decode_code
from repro.classfile.access_flags import flag_names
from repro.classfile.attributes import (
    CodeAttribute,
    ConstantValueAttribute,
    ExceptionsAttribute,
    SourceFileAttribute,
)
from repro.classfile.constant_pool import ConstantPool, CpTag
from repro.classfile.descriptors import (
    DescriptorError,
    parse_field_descriptor,
    parse_method_descriptor,
)
from repro.classfile.model import ClassFile

#: Operand kinds that index the constant pool.
_CP_OPS = {"ldc", "ldc_w", "ldc2_w", "getstatic", "putstatic", "getfield",
           "putfield", "invokevirtual", "invokespecial", "invokestatic",
           "invokeinterface", "invokedynamic", "new", "anewarray",
           "checkcast", "instanceof", "multianewarray"}


def _safe(fn, fallback="?"):
    try:
        return fn()
    except Exception:
        return fallback


def _describe_constant(pool: ConstantPool, index: int) -> str:
    """A javap-style ``// comment`` for a constant-pool operand."""
    entry = pool.maybe_entry(index)
    if entry is None:
        return "<dangling>"
    if entry.tag is CpTag.CLASS:
        return "class " + _safe(lambda: pool.get_class_name(index))
    if entry.tag is CpTag.STRING:
        return "String " + _safe(lambda: pool.get_string(index))
    if entry.tag in (CpTag.FIELDREF, CpTag.METHODREF,
                     CpTag.INTERFACE_METHODREF):
        def render():
            owner, name, descriptor = pool.get_member_ref(index)
            kind = {CpTag.FIELDREF: "Field", CpTag.METHODREF: "Method",
                    CpTag.INTERFACE_METHODREF: "InterfaceMethod"}[entry.tag]
            return f"{kind} {owner}.{name}:{descriptor}"
        return _safe(render)
    return f"{entry.tag.name.title()} {entry.value}"


def _render_cp_entry(pool: ConstantPool, index: int) -> str:
    entry = pool.maybe_entry(index)
    if entry is None:
        return ""
    tag = entry.tag
    if tag is CpTag.UTF8:
        return f"Utf8               {entry.value}"
    if tag in (CpTag.INTEGER, CpTag.FLOAT, CpTag.LONG, CpTag.DOUBLE):
        return f"{tag.name.title():18s} {entry.value}"
    if tag is CpTag.CLASS:
        (utf8,) = entry.value
        name = _safe(lambda: pool.get_class_name(index))
        return f"Class              #{utf8:<13d} // {name}"
    if tag is CpTag.STRING:
        (utf8,) = entry.value
        return f"String             #{utf8:<13d} // " + \
            _safe(lambda: pool.get_string(index))
    if tag is CpTag.NAME_AND_TYPE:
        a, b = entry.value
        def render():
            name, descriptor = pool.get_name_and_type(index)
            return f"{name}:{descriptor}"
        return f"NameAndType        #{a}:#{b:<10d} // {_safe(render)}"
    if tag in (CpTag.FIELDREF, CpTag.METHODREF, CpTag.INTERFACE_METHODREF):
        a, b = entry.value
        label = {CpTag.FIELDREF: "Fieldref", CpTag.METHODREF: "Methodref",
                 CpTag.INTERFACE_METHODREF: "InterfaceMethodref"}[tag]
        return (f"{label:18s} #{a}.#{b:<11d} // "
                + _describe_constant(pool, index))
    return f"{tag.name:18s} {entry.value}"


def _method_signature(classfile: ClassFile, method) -> str:
    name = _safe(lambda: classfile.method_name(method))
    descriptor = _safe(lambda: classfile.method_descriptor(method), "()V")
    try:
        parsed = parse_method_descriptor(descriptor)
        params = ", ".join(p.java_name for p in parsed.parameters)
        ret = parsed.return_type.java_name if parsed.return_type else "void"
    except DescriptorError:
        params, ret = "?", "?"
    modifiers = flag_names(method.access_flags).replace(
        "ACC_", "").lower().replace(",", "")
    if name == "<clinit>":
        rendered = f"{{}};" if not params else f"({params});"
        return f"{modifiers} {rendered}".strip()
    return f"{modifiers} {ret} {name}({params});".strip()


def disassemble(classfile: ClassFile, data: bytes = b"",
                show_constant_pool: bool = True) -> str:
    """Render ``classfile`` like ``javap -v`` (Figure 2 of the paper)."""
    pool = classfile.constant_pool
    lines: List[str] = []
    if data:
        digest = hashlib.md5(data).hexdigest()
        lines.append(f"  MD5 checksum {digest}")
    kind = "interface" if classfile.is_interface else "class"
    lines.append(f"{kind} {_safe(lambda: classfile.name)}")
    lines.append(f"  minor version: {classfile.minor_version}")
    lines.append(f"  major version: {classfile.major_version}")
    lines.append(f"  flags: {flag_names(classfile.access_flags)}")
    super_name = _safe(lambda: classfile.super_name, None)
    if super_name:
        lines.append(f"  super: {super_name}")
    interfaces = _safe(lambda: classfile.interface_names, [])
    if interfaces:
        lines.append("  interfaces: " + ", ".join(interfaces))
    if show_constant_pool:
        lines.append("Constant pool:")
        for index, _ in pool:
            rendered = _render_cp_entry(pool, index)
            if rendered:
                lines.append(f"  #{index:<3d}= {rendered}")
    lines.append("{")
    for field_info in classfile.fields:
        name = _safe(lambda: classfile.field_name(field_info))
        descriptor = _safe(lambda: classfile.field_descriptor(field_info),
                           "?")
        try:
            java_type = parse_field_descriptor(descriptor).java_name
        except DescriptorError:
            java_type = descriptor
        modifiers = flag_names(field_info.access_flags).replace(
            "ACC_", "").lower().replace(",", "")
        lines.append(f"  {modifiers} {java_type} {name};".replace("  ", " "))
        lines.append(f"    descriptor: {descriptor}")
        lines.append(f"    flags: {flag_names(field_info.access_flags)}")
        constant = field_info.attribute("ConstantValue")
        if isinstance(constant, ConstantValueAttribute):
            lines.append(
                "    ConstantValue: "
                + _describe_constant(pool, constant.constant_index))
        lines.append("")
    for method in classfile.methods:
        lines.append(f"  {_method_signature(classfile, method)}")
        lines.append("    descriptor: "
                     + _safe(lambda: classfile.method_descriptor(method)))
        lines.append(f"    flags: {flag_names(method.access_flags)}")
        code = method.code
        if isinstance(code, CodeAttribute):
            lines.append("    Code:")
            lines.append(f"      stack={code.max_stack}, "
                         f"locals={code.max_locals}")
            lines.extend(_render_code(pool, code))
        exceptions = method.exceptions
        if isinstance(exceptions, ExceptionsAttribute):
            names = _safe(lambda: exceptions.exception_names(pool), [])
            lines.append("    Exceptions:")
            lines.append("      throws " + ", ".join(names))
        lines.append("")
    source = classfile.attribute("SourceFile")
    if isinstance(source, SourceFileAttribute):
        lines.append("  SourceFile: \""
                     + _safe(lambda: pool.get_utf8(source.sourcefile_index))
                     + "\"")
    lines.append("}")
    return "\n".join(lines)


def _render_code(pool: ConstantPool, code: CodeAttribute) -> List[str]:
    lines: List[str] = []
    try:
        instructions = decode_code(code.code)
    except InstructionError as exc:
        return [f"      <undecodable: {exc}>"]
    for instruction in instructions:
        operand_text = ""
        comment = ""
        operands = instruction.operands
        if "index" in operands:
            operand_text = f" #{operands['index']}" \
                if instruction.mnemonic in _CP_OPS else f" {operands['index']}"
            if instruction.mnemonic in _CP_OPS:
                comment = _describe_constant(pool, operands["index"])
        elif "value" in operands:
            operand_text = f" {operands['value']}"
        elif "target" in operands:
            operand_text = f" {operands['target']}"
        if "const" in operands:
            operand_text += f", {operands['const']}"
        line = (f"      {instruction.offset:4d}: "
                f"{instruction.mnemonic}{operand_text}")
        if comment:
            line = f"{line:50s} // {comment}"
        lines.append(line)
    for handler in code.exception_table:
        catch = "any" if not handler.catch_type else \
            _safe(lambda: pool.get_class_name(handler.catch_type))
        lines.append(f"      Exception table: {handler.start_pc}.."
                     f"{handler.end_pc} -> {handler.handler_pc} "
                     f"(catch {catch})")
    return lines
