"""Deterministic generator of JRE-library-like seed classes.

The paper seeds classfuzz with 1,216 classfiles sampled from the JRE7
libraries.  We have no JRE, so this module synthesises a corpus with the
properties that matter for the experiments:

* classes are structurally varied (fields, methods with real bodies,
  declared exceptions, initializers, interfaces) so the 129 mutators have
  material to rewrite;
* most classes are *valid* and behave identically on all five JVMs;
* a small, configurable fraction references version-sensitive platform
  classes (JRE7-only classes, the final-in-JRE8 ``EnumEditor``, restricted
  ``sun.*`` internals), reproducing the preliminary study's baseline
  discrepancy rate (1.7 % for the full corpus, 3.0 % for sampled seeds);
* like real library classes, most have *no* ``main`` method — the fuzzer
  supplements mutants with one (§2.2.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.jimple.builder import ClassBuilder, MethodBuilder
from repro.jimple.model import JClass
from repro.jimple.statements import (
    AssignBinopStmt,
    AssignCastStmt,
    AssignFieldGetStmt,
    AssignInstanceOfStmt,
    AssignInvokeStmt,
    AssignNewStmt,
    Constant,
    FieldRef,
    InvokeExpr,
    InvokeStmt,
    MethodRef,
    ReturnStmt,
)
from repro.jimple.types import INT, JType, STRING, VOID
from repro.corpus.templates import (
    EXEC_TEMPLATES,
    FIELD_TYPES,
    SAFE_EXCEPTIONS,
    SAFE_INTERFACES,
    SAFE_SUPERCLASSES,
    SENSITIVE_RESOURCES,
    SENSITIVE_SUPERCLASSES,
    SENSITIVE_THROWN,
    clinit_template,
    resource_clinit_template,
    switch_shape,
    trap_shape,
)


@dataclass
class CorpusConfig:
    """Knobs for corpus generation.

    Attributes:
        count: number of seed classes (the paper samples 1,216).
        seed: RNG seed for determinism.
        main_fraction: fraction of classes given a runnable ``main``.
        sensitive_fraction: fraction referencing version-sensitive
            platform classes (drives the baseline discrepancy rate).
        interface_fraction: fraction generated as interfaces.
        clinit_fraction: fraction given a static initializer.
        exec_fraction: fraction built from the execution-phase seed
            templates (runtime-divergent classes; 0 keeps the default
            corpus — and its RNG stream — bit-identical).
    """

    count: int = 1216
    seed: int = 20160613            # PLDI'16 opening day
    main_fraction: float = 0.015
    sensitive_fraction: float = 0.030
    interface_fraction: float = 0.12
    clinit_fraction: float = 0.10
    exec_fraction: float = 0.0


def generate_corpus(config: Optional[CorpusConfig] = None) -> List[JClass]:
    """Generate the full seed corpus deterministically."""
    config = config or CorpusConfig()
    rng = random.Random(config.seed)
    return [generate_seed(rng, index, config) for index in range(config.count)]


def generate_seed(rng: random.Random, index: int,
                  config: Optional[CorpusConfig] = None) -> JClass:
    """Generate one seed class."""
    config = config or CorpusConfig()
    name = f"L{1436000000 + index}"
    # Short-circuit keeps the default RNG stream untouched when the
    # execution templates are off (exec_fraction == 0).
    if config.exec_fraction > 0 and rng.random() < config.exec_fraction:
        return EXEC_TEMPLATES[rng.randrange(len(EXEC_TEMPLATES))](name)
    if rng.random() < config.interface_fraction:
        return _generate_interface(rng, name)
    return _generate_class(rng, name, config)


# ---------------------------------------------------------------------------
# Interfaces
# ---------------------------------------------------------------------------

def _generate_interface(rng: random.Random, name: str) -> JClass:
    builder = ClassBuilder(name, modifiers=["public", "interface", "abstract"])
    for extended in rng.sample(SAFE_INTERFACES, rng.randint(0, 2)):
        builder.implements(extended)
    for i in range(rng.randint(0, 3)):
        builder.field(f"CONST_{i}", rng.choice((INT, STRING)),
                      ["public", "static", "final"],
                      constant_value=rng.randint(0, 100))
    for i in range(rng.randint(1, 4)):
        method = MethodBuilder(
            f"op{i}", rng.choice((VOID, INT, STRING)),
            [rng.choice(FIELD_TYPES) for _ in range(rng.randint(0, 2))],
            modifiers=["public", "abstract"])
        method.abstract_body()
        builder.method(method.build())
    return builder.build()


# ---------------------------------------------------------------------------
# Classes
# ---------------------------------------------------------------------------

def _generate_class(rng: random.Random, name: str,
                    config: CorpusConfig) -> JClass:
    sensitive = rng.random() < config.sensitive_fraction
    superclass = rng.choice(SAFE_SUPERCLASSES)
    sensitive_throw = False
    sensitive_resource = None
    if sensitive:
        roll = rng.random()
        if roll < 0.6:
            superclass = rng.choice(SENSITIVE_SUPERCLASSES)
        elif roll < 0.85:
            sensitive_throw = True
        else:
            sensitive_resource = rng.choice(SENSITIVE_RESOURCES)

    builder = ClassBuilder(name, superclass=superclass)
    if rng.random() < 0.25:
        builder.implements(rng.choice(SAFE_INTERFACES))
    for i in range(rng.randint(0, 4)):
        modifiers = [rng.choice(("public", "private", "protected"))]
        if rng.random() < 0.4:
            modifiers.append("static")
        if rng.random() < 0.2:
            modifiers.append("final")
        builder.field(f"f{i}", rng.choice(FIELD_TYPES), modifiers)
    builder.default_init()
    if sensitive_resource is not None:
        builder.method(resource_clinit_template(sensitive_resource))
    elif rng.random() < config.clinit_fraction:
        builder.method(clinit_template(rng))
    method_count = rng.randint(1, 3)
    for i in range(method_count):
        thrown = None
        if sensitive_throw and i == 0:
            thrown = rng.choice(SENSITIVE_THROWN)
        elif rng.random() < 0.3:
            thrown = rng.choice(SAFE_EXCEPTIONS)
        builder.method(_generate_method(rng, name, f"m{i}", thrown))
    if rng.random() < config.main_fraction:
        builder.main_printing(f"{name} executed")
    return builder.build()


def _generate_method(rng: random.Random, class_name: str, method_name: str,
                     thrown: Optional[str]):
    return_type = rng.choice((VOID, VOID, INT, STRING))
    parameter_types = [rng.choice((INT, STRING, JType("java.util.Map")))
                       for _ in range(rng.randint(0, 2))]
    modifiers = [rng.choice(("public", "protected", "public"))]
    static = rng.random() < 0.4
    if static:
        modifiers.append("static")
    method = MethodBuilder(method_name, return_type, parameter_types,
                           modifiers)
    if thrown:
        method.throws(thrown)
    if not static:
        method.local("r_this", JType(class_name))
        method.identity("r_this", "this", JType(class_name))
    for position, ptype in enumerate(parameter_types):
        local = f"p{position}"
        method.local(local, ptype)
        method.identity(local, f"parameter{position}", ptype)
    _generate_body(rng, method, class_name)
    if return_type.is_void:
        method.ret()
    elif return_type == INT:
        method.local("$ret", INT)
        method.const("$ret", rng.randint(0, 99))
        method.stmt(ReturnStmt("$ret"))
    else:
        method.stmt(ReturnStmt(Constant("done", STRING)))
    return method.build()


def _generate_body(rng: random.Random, method: MethodBuilder,
                   class_name: str) -> None:
    """Emit a few valid statements of varied shapes."""
    choices = rng.randint(1, 4)
    counter = 0
    for _ in range(choices):
        counter += 1
        shape = rng.randrange(9)
        if shape == 0:
            local = f"$i{counter}"
            method.local(local, INT)
            method.const(local, rng.randint(-5, 127))
            method.stmt(AssignBinopStmt(
                local, local, rng.choice("+-*&|"),
                Constant(rng.randint(1, 9), INT)))
        elif shape == 1:
            local = f"$r{counter}"
            method.local(local, JType("java.util.HashMap"))
            method.stmt(AssignNewStmt(local, "java.util.HashMap"))
            method.stmt(InvokeStmt(InvokeExpr(
                "special",
                MethodRef("java.util.HashMap", "<init>", VOID, ()),
                local, [])))
        elif shape == 2:
            local = f"$s{counter}"
            method.local(local, STRING)
            method.stmt(AssignInvokeStmt(local, InvokeExpr(
                "static",
                MethodRef("java.lang.String", "valueOf", STRING, (INT,)),
                None, [Constant(rng.randint(0, 9), INT)])))
        elif shape == 3:
            cond_local = f"$c{counter}"
            label = f"skip{counter}"
            method.local(cond_local, INT)
            method.const(cond_local, rng.randint(0, 1))
            method.if_zero(cond_local, "==", label)
            method.stmt(AssignBinopStmt(cond_local, cond_local, "+",
                                        Constant(1, INT)))
            method.label(label)
        elif shape == 4:
            local = f"$o{counter}"
            cast = f"$cast{counter}"
            method.local(local, JType("java.lang.Object"))
            method.stmt(AssignInvokeStmt(local, InvokeExpr(
                "static",
                MethodRef("java.lang.Integer", "valueOf",
                          JType("java.lang.Integer"), (INT,)),
                None, [Constant(1, INT)])))
            method.local(cast, JType("java.lang.Number"))
            method.stmt(AssignCastStmt(cast, JType("java.lang.Number"),
                                       local))
        elif shape == 5:
            local = f"$n{counter}"
            flag = f"$inst{counter}"
            method.local(local, JType("java.lang.Object"))
            method.stmt(AssignInvokeStmt(local, InvokeExpr(
                "static",
                MethodRef("java.lang.Integer", "valueOf",
                          JType("java.lang.Integer"), (INT,)),
                None, [Constant(2, INT)])))
            method.local(flag, INT)
            method.stmt(AssignInstanceOfStmt(flag, local,
                                             JType("java.lang.Number")))
        elif shape == 6:
            local = f"$ps{counter}"
            method.local(local, JType("java.io.PrintStream"))
            method.stmt(AssignFieldGetStmt(local, FieldRef(
                "java.lang.System", "err", JType("java.io.PrintStream"))))
        elif shape == 7:
            switch_shape(rng, method, counter)
        else:
            trap_shape(rng, method, counter)
