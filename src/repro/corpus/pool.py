"""The mutation seed pool: scheduled picks, per-seed stats, lineage.

The fuzzing engine used to keep its seeds as a bare ``List[JClass]`` and
pick uniformly.  :class:`SeedPool` replaces that list with a corpus that

* tracks per-seed statistics — times picked, accepted children, the
  coverage novelty those children contributed, classfile byte size —
  which feed the v2 suite manifest and the campaign checkpoints;
* delegates the pick decision to a pluggable, deterministic
  :class:`~repro.corpus.schedule.SeedScheduler` (default: the paper's
  uniform policy, byte-identical to the historical ``rng.choice``);
* accumulates the pool-wide set of interned coverage sites so each
  accepted mutant's *novelty* (sites never hit before by the suite) can
  be credited back to the seed it was mutated from.

The pool itself never touches the RNG except through the scheduler, and
interned site ids never leave the process: :meth:`get_state` exports only
raw Python objects (the interned novelty set is rebuilt on restore by
re-absorbing tracefiles).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.corpus.schedule import SeedScheduler, make_scheduler
from repro.jimple.model import JClass

#: Entry origin markers.
ORIGIN_SEED = "seed"
ORIGIN_MUTANT = "mutant"


@dataclass
class SeedEntry:
    """One pool member and its scheduling statistics.

    Attributes:
        jclass: the Jimple form handed to mutators.
        label: the class name (manifest lineage key).
        origin: ``"seed"`` for corpus members, ``"mutant"`` for accepted
            representatives fed back (Algorithm 1, line 14).
        size: classfile byte size (0 when the seed was never dumped).
        picks: times the scheduler chose this entry.
        accepted: accepted children mutated from this entry.
        novelty: interned coverage sites first opened by those children.
    """

    jclass: JClass
    label: str
    origin: str = ORIGIN_SEED
    size: int = 0
    picks: int = 0
    accepted: int = 0
    novelty: int = 0

    def stats_row(self) -> Dict[str, object]:
        """The manifest/checkpoint view of this entry (no class body)."""
        return {"label": self.label, "origin": self.origin,
                "size": self.size, "picks": self.picks,
                "accepted": self.accepted, "novelty": self.novelty}


class SeedPool:
    """The scheduled corpus of mutation seeds.

    Attributes:
        scheduler: the pick policy (uniform unless configured).
        entries: pool members in insertion order — the original seed
            corpus first (``seed_count`` of them), accepted mutants after.
        seed_count: how many leading entries are original corpus seeds.
    """

    def __init__(self, seeds: Sequence[JClass],
                 scheduler: Optional[SeedScheduler] = None):
        self.scheduler = scheduler if scheduler is not None \
            else make_scheduler(None)
        self.entries: List[SeedEntry] = [
            SeedEntry(seed.clone(), seed.name) for seed in seeds]
        if not self.entries:
            raise ValueError("need at least one seed class")
        self.seed_count = len(self.entries)
        self._seen_statements: Set[int] = set()
        self._seen_branches: Set[int] = set()

    def __len__(self) -> int:
        return len(self.entries)

    # -- scheduling ---------------------------------------------------------

    def pick(self, rng: random.Random) -> Tuple[int, SeedEntry]:
        """Choose the next mutation seed; counts the pick."""
        index = self.scheduler.pick(rng, self.entries)
        entry = self.entries[index]
        entry.picks += 1
        return index, entry

    # -- feedback -----------------------------------------------------------

    def add(self, jclass: JClass, label: str, size: int = 0) -> int:
        """Feed an accepted representative back into the pool."""
        self.entries.append(SeedEntry(jclass, label,
                                      origin=ORIGIN_MUTANT, size=size))
        return len(self.entries) - 1

    def absorb(self, trace) -> int:
        """Fold a tracefile's sites into the pool-wide coverage set.

        Returns the *novelty*: how many interned statement/branch sites
        the trace hit that no previously absorbed trace had.  Seed
        priming absorbs the corpus's own coverage first, so mutant
        novelty is measured against the whole suite.
        """
        new = len(trace.stmt_ids - self._seen_statements) \
            + len(trace.br_ids - self._seen_branches)
        if new:
            self._seen_statements |= trace.stmt_ids
            self._seen_branches |= trace.br_ids
        return new

    def credit(self, index: int, novelty: int = 0) -> None:
        """Credit entry ``index`` with one accepted child."""
        entry = self.entries[index]
        entry.accepted += 1
        entry.novelty += novelty

    # -- reporting ----------------------------------------------------------

    def stats_rows(self, active_only: bool = True
                   ) -> List[Dict[str, object]]:
        """Per-seed stats rows (manifest v2's ``seed_stats``).

        ``active_only`` drops never-picked, never-credited corpus seeds
        so a 1,216-seed manifest stays readable; accepted mutants are
        always included (they *are* the lineage).
        """
        return [entry.stats_row() for entry in self.entries
                if not active_only or entry.picks or entry.accepted
                or entry.origin == ORIGIN_MUTANT]

    def summary(self) -> Dict[str, object]:
        """Aggregate pool statistics."""
        return {
            "scheduler": self.scheduler.name,
            "size": len(self.entries),
            "seed_count": self.seed_count,
            "total_picks": sum(e.picks for e in self.entries),
            "total_accepted": sum(e.accepted for e in self.entries),
            "total_novelty": sum(e.novelty for e in self.entries),
        }

    # -- checkpointing ------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        """Picklable pool state (no interned ids — see :meth:`set_state`)."""
        return {
            "scheduler": self.scheduler.spec(),
            "seed_count": self.seed_count,
            "entries": [(entry.jclass, entry.label, entry.origin,
                         entry.size, entry.picks, entry.accepted,
                         entry.novelty) for entry in self.entries],
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Restore entries and stats from :meth:`get_state` output.

        The interned novelty set is *not* restored — interned ids are
        process-local — so the resume path must re-absorb the seed-prime
        and accepted tracefiles (exactly what the fuzzing pipeline's
        priming step does).
        """
        spec = state["scheduler"]
        if spec["name"] != self.scheduler.name:
            raise ValueError(
                f"checkpoint used seed schedule {spec['name']!r}, "
                f"this run uses {self.scheduler.name!r}")
        self.seed_count = state["seed_count"]
        self.entries = [
            SeedEntry(jclass, label, origin=origin, size=size,
                      picks=picks, accepted=accepted, novelty=novelty)
            for jclass, label, origin, size, picks, accepted, novelty
            in state["entries"]]
        self._seen_statements = set()
        self._seen_branches = set()
