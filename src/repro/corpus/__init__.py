"""The corpus subsystem: seed generation, scheduling, and distillation.

* :mod:`repro.corpus.generator` — the synthetic JRE7-library stand-in
  seed corpus (§3.1.1);
* :mod:`repro.corpus.pool` / :mod:`repro.corpus.schedule` — the
  scheduled mutation seed pool and its pluggable pick policies;
* :mod:`repro.corpus.distill` — greedy set-cover suite distillation.
"""

from repro.corpus.distill import DistillResult, distill_suite, distill_traces
from repro.corpus.generator import CorpusConfig, generate_corpus, generate_seed
from repro.corpus.pool import SeedEntry, SeedPool
from repro.corpus.schedule import (
    DEFAULT_SCHEDULE,
    SCHEDULERS,
    SeedScheduler,
    make_scheduler,
)

__all__ = [
    "CorpusConfig", "generate_corpus", "generate_seed",
    "SeedEntry", "SeedPool",
    "SeedScheduler", "SCHEDULERS", "DEFAULT_SCHEDULE", "make_scheduler",
    "DistillResult", "distill_traces", "distill_suite",
]
