"""Synthetic seed corpus: the JRE7-library stand-in (§3.1.1)."""

from repro.corpus.generator import CorpusConfig, generate_corpus, generate_seed

__all__ = ["CorpusConfig", "generate_corpus", "generate_seed"]
