"""Coverage distillation: shrink a suite to a minimal covering subset.

A long campaign accumulates thousands of accepted classfiles whose
coverage overlaps heavily — representative under the acceptance
criterion, but redundant as a *regression suite*.  Distillation solves
the classic set-cover problem greedily over interned coverage sites
(:mod:`repro.coverage.interner`): keep picking the classfile that covers
the most still-uncovered statement sites and branch outcomes until the
kept subset covers **exactly** the same site set as the full suite.

Greedy set cover is deterministic here — ties break toward the earlier
suite entry — and its ``ln(n)``-approximation is the standard trade:
minutes of set algebra instead of an NP-hard exact minimisation, with
the exact-coverage guarantee preserved by construction.

Exposed on the CLI as ``repro distill SUITE_DIR [--out DIR]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.coverage.tracefile import Tracefile


@dataclass
class DistillResult:
    """The outcome of one distillation.

    Attributes:
        selected: labels kept, in greedy pick order.
        dropped: labels whose coverage was fully redundant.
        statement_sites: distinct statement sites the suite covers.
        branch_sites: distinct branch outcomes the suite covers.
        input_count: suite size before distillation.
    """

    selected: List[str] = field(default_factory=list)
    dropped: List[str] = field(default_factory=list)
    statement_sites: int = 0
    branch_sites: int = 0
    input_count: int = 0

    @property
    def kept_count(self) -> int:
        return len(self.selected)

    @property
    def reduction(self) -> float:
        """Fraction of the suite distilled away (0.0 when nothing was)."""
        if self.input_count == 0:
            return 0.0
        return 1.0 - len(self.selected) / self.input_count

    def summary(self) -> str:
        return (f"distilled {self.input_count} -> {self.kept_count} "
                f"classes ({self.reduction:.1%} smaller), preserving "
                f"{self.statement_sites} statement sites and "
                f"{self.branch_sites} branch outcomes")


def distill_traces(entries: Sequence[Tuple[str, Tracefile]]
                   ) -> DistillResult:
    """Greedy set-cover over ``(label, tracefile)`` pairs.

    The returned selection covers exactly the union of the input's
    interned statement and branch site sets, with ``len(selected) <=
    len(entries)``.  Entries whose tracefile is ``None`` are rejected —
    a suite without coverage (randfuzz) cannot be distilled.

    Raises:
        ValueError: when any entry lacks a tracefile.
    """
    for label, trace in entries:
        if trace is None:
            raise ValueError(
                f"suite member {label!r} has no tracefile; distillation "
                "needs coverage (was this suite fuzzed with randfuzz?)")
    # Branch ids are offset past the statement id space so one set per
    # entry carries both kinds without id collisions.
    offset = 1 + max((max(t.stmt_ids, default=0)
                      for _, t in entries), default=0)
    sites: List[Set[int]] = [
        set(trace.stmt_ids) | {offset + b for b in trace.br_ids}
        for _, trace in entries]
    uncovered: Set[int] = set().union(*sites) if sites else set()
    statement_sites = len(set().union(
        *(t.stmt_ids for _, t in entries))) if entries else 0
    branch_sites = len(set().union(
        *(t.br_ids for _, t in entries))) if entries else 0

    result = DistillResult(statement_sites=statement_sites,
                           branch_sites=branch_sites,
                           input_count=len(entries))
    remaining = list(range(len(entries)))
    while uncovered:
        best_position = best_index = -1
        best_gain = 0
        for position, index in enumerate(remaining):
            gain = len(sites[index] & uncovered)
            if gain > best_gain:
                best_gain = gain
                best_position, best_index = position, index
        if best_gain == 0:  # pragma: no cover - uncovered ⊆ union(sites)
            break
        result.selected.append(entries[best_index][0])
        uncovered -= sites[best_index]
        del remaining[best_position]
    result.dropped = [entries[index][0] for index in remaining]
    return result


def covered_sites(traces: Sequence[Tracefile]
                  ) -> Tuple[Set[int], Set[int]]:
    """The union interned (statement, branch) site sets of ``traces``."""
    statements: Set[int] = set()
    branches: Set[int] = set()
    for trace in traces:
        statements |= trace.stmt_ids
        branches |= trace.br_ids
    return statements, branches


def distill_suite(directory, out: Optional[object] = None,
                  bucket: str = "tests") -> DistillResult:
    """Distill a saved suite directory; optionally write the subset.

    Loads the suite's classfiles and tracefiles through
    :mod:`repro.core.storage`, runs :func:`distill_traces`, and — when
    ``out`` is given — writes a loadable distilled suite (classfiles,
    tracefiles, and a v2 manifest recording the provenance).

    Raises:
        ValueError: on missing manifests/classfiles or a coverage-less
            suite.
    """
    from pathlib import Path

    from repro.core.storage import (
        MANIFEST_VERSION,
        load_manifest,
        load_suite,
        load_tracefile,
    )

    directory = Path(directory)
    manifest = load_manifest(directory)
    suite = load_suite(directory, bucket=bucket)
    entries = [(label, load_tracefile(directory, label, bucket=bucket))
               for label, _ in suite]
    result = distill_traces(entries)
    if out is None:
        return result

    import json
    import shutil

    out = Path(out)
    out_bucket = out / bucket
    out_bucket.mkdir(parents=True, exist_ok=True)
    keep = set(result.selected)
    kept_entries: List[Dict[str, object]] = []
    for entry in manifest["classes"]:
        if entry.get("bucket", "tests") != bucket \
                or entry["label"] not in keep:
            continue
        kept_entries.append(dict(entry))
        for suffix in (".class", ".info"):
            source = directory / bucket / f"{entry['label']}{suffix}"
            if source.exists():
                shutil.copyfile(source, out_bucket / source.name)
    distilled_manifest = dict(manifest)
    distilled_manifest.update({
        "version": MANIFEST_VERSION,
        "classes": kept_entries,
        "test_count": len(kept_entries),
        "distilled_from": str(directory),
        "distillation": {
            "input_count": result.input_count,
            "kept_count": result.kept_count,
            "statement_sites": result.statement_sites,
            "branch_sites": result.branch_sites,
        },
    })
    (out / "manifest.json").write_text(
        json.dumps(distilled_manifest, indent=2))
    return result
