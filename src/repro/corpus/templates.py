"""Reusable class/method shape templates for the seed corpus.

The generator composes seeds from these building blocks: safe platform
references (available in every simulated JRE), version-sensitive
references (the preliminary study's discrepancy sources), and method-body
shapes (arithmetic, allocation, branching, switches, traps, resource
loading).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.jimple.builder import ClassBuilder, MethodBuilder
from repro.jimple.statements import (
    AssignBinopStmt,
    AssignCmpStmt,
    AssignFieldGetStmt,
    AssignFieldPutStmt,
    AssignInvokeStmt,
    AssignNewStmt,
    AssignUnopStmt,
    Constant,
    FieldRef,
    IdentityStmt,
    InvokeExpr,
    InvokeStmt,
    MethodRef,
    SwitchStmt,
    ThrowStmt,
    Trap,
)
from repro.jimple.types import (FLOAT, INT, JType, STRING, STRING_ARRAY,
                                VOID)

# ---------------------------------------------------------------------------
# Reference pools
# ---------------------------------------------------------------------------

#: Library classes safe to extend on every simulated JVM.
SAFE_SUPERCLASSES = [
    "java.lang.Object", "java.lang.Object", "java.lang.Object",
    "java.lang.Thread", "java.lang.Exception", "java.lang.RuntimeException",
    "java.util.HashMap", "java.util.ArrayList", "java.io.OutputStream",
]

#: Interfaces safe to implement everywhere.
SAFE_INTERFACES = [
    "java.lang.Runnable", "java.io.Serializable", "java.lang.Cloneable",
    "java.lang.Comparable", "java.security.PrivilegedAction",
    "java.util.Map", "java.util.Iterator",
]

#: Exception types safe to declare everywhere.
SAFE_EXCEPTIONS = [
    "java.lang.Exception", "java.io.IOException",
    "java.lang.RuntimeException", "java.lang.IllegalArgumentException",
]

#: Field/local types used by the generator.
FIELD_TYPES = [
    INT, STRING, JType("boolean"), JType("java.lang.Object"),
    JType("java.util.Map"), JType("java.util.HashMap"),
    JType("java.lang.Thread"), JType("int[]"), JType("java.lang.String[]"),
]

#: Version-sensitive superclasses (baseline discrepancy sources).
SENSITIVE_SUPERCLASSES = [
    "com.sun.beans.editors.EnumEditor",   # final from JRE 8 on
    "sun.beans.editors.EnumEditor",       # exists only in JRE 7
    "sun.misc.JavaUtilJarAccess",         # exists only in JRE 7
    "com.sun.image.codec.jpeg.JPEGCodec",  # exists only in JRE 7
]

#: Version-sensitive thrown-exception references.
SENSITIVE_THROWN = [
    "sun.java2d.pisces.PiscesRenderingEngine$2",  # restricted synthetic
    "sun.misc.JavaLangAccess",                    # JRE7-only interface
]

#: Resource bundles that ship only with JRE 7 (MissingResourceException
#: elsewhere — the preliminary study's resource discrepancies).
SENSITIVE_RESOURCES = [
    "sun.text.resources.FormatData",
    "sun.util.resources.CalendarData",
    "com.sun.swing.internal.plaf.basic.resources.basic",
]


# ---------------------------------------------------------------------------
# Method shapes
# ---------------------------------------------------------------------------

def clinit_template(rng: random.Random):
    """A benign static initializer doing local arithmetic."""
    method = MethodBuilder("<clinit>", modifiers=["static"])
    method.local("$i0", INT)
    method.const("$i0", rng.randint(0, 9))
    if rng.random() < 0.5:
        method.stmt(AssignBinopStmt("$i0", "$i0", "+",
                                    Constant(rng.randint(1, 5), INT)))
    method.ret()
    return method.build()


def resource_clinit_template(bundle: str):
    """A static initializer loading a (possibly version-specific) resource
    bundle — the preliminary study's MissingResourceException source."""
    method = MethodBuilder("<clinit>", modifiers=["static"])
    method.local("$bundle", JType("java.util.ResourceBundle"))
    method.stmt(AssignInvokeStmt("$bundle", InvokeExpr(
        "static",
        MethodRef("java.util.ResourceBundle", "getBundle",
                  JType("java.util.ResourceBundle"), (STRING,)),
        None, [Constant(bundle, STRING)])))
    method.ret()
    return method.build()


def switch_shape(rng: random.Random, method: MethodBuilder,
                 counter: int) -> None:
    """A small switch with fall-through-free arms."""
    key = f"$sw{counter}"
    method.local(key, INT)
    method.const(key, rng.randint(0, 3))
    arms = rng.randint(2, 3)
    labels = [f"case{counter}_{i}" for i in range(arms)]
    done = f"swdone{counter}"
    contiguous = rng.random() < 0.5
    if contiguous:
        cases = [(i, labels[i]) for i in range(arms)]
    else:
        cases = [(i * 3 + 1, labels[i]) for i in range(arms)]
    method.stmt(SwitchStmt(key, cases, done))
    for i, label in enumerate(labels):
        method.label(label)
        method.stmt(AssignBinopStmt(key, key, "+", Constant(i, INT)))
        method.goto(done)
    method.label(done)


def trap_shape(rng: random.Random, method: MethodBuilder,
               counter: int) -> None:
    """A try/catch over a throwing region."""
    begin, end = f"try{counter}", f"endtry{counter}"
    handler, done = f"catch{counter}", f"aftertry{counter}"
    exc_local = f"$exc{counter}"
    caught = f"$caught{counter}"
    method.local(exc_local, JType("java.lang.RuntimeException"))
    method.local(caught, JType("java.lang.Exception"))
    method.label(begin)
    method.stmt(AssignNewStmt(exc_local, "java.lang.RuntimeException"))
    method.stmt(InvokeStmt(InvokeExpr(
        "special",
        MethodRef("java.lang.RuntimeException", "<init>", VOID, ()),
        exc_local, [])))
    method.stmt(ThrowStmt(exc_local))
    method.label(end)
    method.goto(done)
    method.label(handler)
    method.stmt(IdentityStmt(caught, "caughtexception",
                             JType("java.lang.Exception")))
    method.label(done)
    method.method.traps.append(
        Trap(begin, end, handler, "java.lang.Exception", caught))


# ---------------------------------------------------------------------------
# Execution-phase seed templates
# ---------------------------------------------------------------------------
#
# Each template below builds a complete runnable class whose *startup*
# is identical on all five vendors but whose *execution* deterministically
# diverges along exactly one execution-semantics policy axis
# (`docs/policy-axes.md`).  Silent value differences are escalated into
# control flow (a division whose divisor is the divergent value), so the
# `(phase, error)` outcome vectors the differential harness compares
# actually separate.

def _exec_main() -> MethodBuilder:
    method = MethodBuilder("main", VOID, [STRING_ARRAY],
                           ["public", "static"])
    method.local("r0", STRING_ARRAY)
    method.identity("r0", "parameter0", STRING_ARRAY)
    return method


def exec_narrowing_template(name: str):
    """`strict_narrowing_conversions`: i2b(300) is 44 strictly, 300 lax.

    The lax vendor's divisor collapses to zero → ArithmeticException.
    """
    builder = ClassBuilder(name)
    builder.default_init()
    method = _exec_main()
    for local in ("$v", "$b", "$d", "$q"):
        method.local(local, INT)
    method.const("$v", 300)
    method.stmt(AssignUnopStmt("$b", "i2b", "$v"))
    method.stmt(AssignBinopStmt("$d", "$b", "-", Constant(300, INT)))
    method.stmt(AssignBinopStmt("$q", Constant(100, INT), "/", "$d"))
    method.println("narrowing strict")
    method.ret()
    builder.method(method.build())
    return builder.build()


def exec_fcmp_template(name: str):
    """`fcmpg_nan_result`: NaN fcmpg 0.0f is +1 per spec, 0 on the
    folded vendor — whose divisor then hits zero."""
    builder = ClassBuilder(name)
    builder.default_init()
    method = _exec_main()
    method.local("$f", FLOAT)
    method.local("$c", INT)
    method.local("$q", INT)
    method.const("$f", float("nan"), FLOAT)
    method.stmt(AssignCmpStmt("$c", "$f", "fcmpg", Constant(0.0, FLOAT)))
    method.stmt(AssignBinopStmt("$q", Constant(100, INT), "/", "$c"))
    method.println("fcmpg nan is one")
    method.ret()
    builder.method(method.build())
    return builder.build()


def exec_clinit_template(name: str):
    """`clinit_visibility_order`: a deferred vendor reads the field
    default (0) in main instead of the initializer's write (5)."""
    builder = ClassBuilder(name)
    builder.field("SEED", INT, ["public", "static"])
    builder.default_init()
    ref = FieldRef(name, "SEED", INT)
    clinit = MethodBuilder("<clinit>", modifiers=["static"])
    clinit.stmt(AssignFieldPutStmt(ref, Constant(5, INT)))
    clinit.ret()
    builder.method(clinit.build())
    method = _exec_main()
    method.local("$s", INT)
    method.local("$q", INT)
    method.stmt(AssignFieldGetStmt("$s", ref))
    method.stmt(AssignBinopStmt("$q", Constant(100, INT), "/", "$s"))
    method.println("clinit visible")
    method.ret()
    builder.method(method.build())
    return builder.build()


def exec_handler_order_template(name: str):
    """`exception_handler_scan_order`: two handlers match the thrown
    RuntimeException; declaration order lands in the benign one,
    reversed order in the one that divides by zero."""
    builder = ClassBuilder(name)
    builder.default_init()
    method = _exec_main()
    method.local("$exc", JType("java.lang.RuntimeException"))
    method.local("$c1", JType("java.lang.RuntimeException"))
    method.local("$c2", JType("java.lang.Exception"))
    method.local("$q", INT)
    method.label("try0")
    method.stmt(AssignNewStmt("$exc", "java.lang.RuntimeException"))
    method.stmt(InvokeStmt(InvokeExpr(
        "special",
        MethodRef("java.lang.RuntimeException", "<init>", VOID, ()),
        "$exc", [])))
    method.stmt(ThrowStmt("$exc"))
    method.label("endtry0")
    method.goto("done")
    method.label("h1")
    method.stmt(IdentityStmt("$c1", "caughtexception",
                             JType("java.lang.RuntimeException")))
    method.goto("done")
    method.label("h2")
    method.stmt(IdentityStmt("$c2", "caughtexception",
                             JType("java.lang.Exception")))
    method.stmt(AssignBinopStmt("$q", Constant(100, INT), "/",
                                Constant(0, INT)))
    method.goto("done")
    method.label("done")
    method.println("first handler won")
    method.ret()
    method.method.traps.append(Trap("try0", "endtry0", "h1",
                                    "java.lang.RuntimeException", "$c1"))
    method.method.traps.append(Trap("try0", "endtry0", "h2",
                                    "java.lang.Exception", "$c2"))
    builder.method(method.build())
    return builder.build()


def exec_string_template(name: str):
    """`string_intrinsic_compat`: charAt(10) on a 4-char string throws
    StringIndexOutOfBoundsException where the intrinsic exists and
    falls through to the harmless library stub where it does not."""
    builder = ClassBuilder(name)
    builder.default_init()
    method = _exec_main()
    method.local("$s", STRING)
    method.local("$c", INT)
    method.const("$s", "seed", STRING)
    method.stmt(AssignInvokeStmt("$c", InvokeExpr(
        "virtual",
        MethodRef("java.lang.String", "charAt", INT, (INT,)),
        "$s", [Constant(10, INT)])))
    method.println("charAt tolerated")
    method.ret()
    builder.method(method.build())
    return builder.build()


#: The execution-phase seed templates, in a fixed order for determinism.
EXEC_TEMPLATES = [
    exec_narrowing_template,
    exec_fcmp_template,
    exec_clinit_template,
    exec_handler_order_template,
    exec_string_template,
]
