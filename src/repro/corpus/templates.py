"""Reusable class/method shape templates for the seed corpus.

The generator composes seeds from these building blocks: safe platform
references (available in every simulated JRE), version-sensitive
references (the preliminary study's discrepancy sources), and method-body
shapes (arithmetic, allocation, branching, switches, traps, resource
loading).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.jimple.builder import MethodBuilder
from repro.jimple.statements import (
    AssignBinopStmt,
    AssignInvokeStmt,
    AssignNewStmt,
    Constant,
    IdentityStmt,
    InvokeExpr,
    InvokeStmt,
    MethodRef,
    SwitchStmt,
    ThrowStmt,
    Trap,
)
from repro.jimple.types import INT, JType, STRING, VOID

# ---------------------------------------------------------------------------
# Reference pools
# ---------------------------------------------------------------------------

#: Library classes safe to extend on every simulated JVM.
SAFE_SUPERCLASSES = [
    "java.lang.Object", "java.lang.Object", "java.lang.Object",
    "java.lang.Thread", "java.lang.Exception", "java.lang.RuntimeException",
    "java.util.HashMap", "java.util.ArrayList", "java.io.OutputStream",
]

#: Interfaces safe to implement everywhere.
SAFE_INTERFACES = [
    "java.lang.Runnable", "java.io.Serializable", "java.lang.Cloneable",
    "java.lang.Comparable", "java.security.PrivilegedAction",
    "java.util.Map", "java.util.Iterator",
]

#: Exception types safe to declare everywhere.
SAFE_EXCEPTIONS = [
    "java.lang.Exception", "java.io.IOException",
    "java.lang.RuntimeException", "java.lang.IllegalArgumentException",
]

#: Field/local types used by the generator.
FIELD_TYPES = [
    INT, STRING, JType("boolean"), JType("java.lang.Object"),
    JType("java.util.Map"), JType("java.util.HashMap"),
    JType("java.lang.Thread"), JType("int[]"), JType("java.lang.String[]"),
]

#: Version-sensitive superclasses (baseline discrepancy sources).
SENSITIVE_SUPERCLASSES = [
    "com.sun.beans.editors.EnumEditor",   # final from JRE 8 on
    "sun.beans.editors.EnumEditor",       # exists only in JRE 7
    "sun.misc.JavaUtilJarAccess",         # exists only in JRE 7
    "com.sun.image.codec.jpeg.JPEGCodec",  # exists only in JRE 7
]

#: Version-sensitive thrown-exception references.
SENSITIVE_THROWN = [
    "sun.java2d.pisces.PiscesRenderingEngine$2",  # restricted synthetic
    "sun.misc.JavaLangAccess",                    # JRE7-only interface
]

#: Resource bundles that ship only with JRE 7 (MissingResourceException
#: elsewhere — the preliminary study's resource discrepancies).
SENSITIVE_RESOURCES = [
    "sun.text.resources.FormatData",
    "sun.util.resources.CalendarData",
    "com.sun.swing.internal.plaf.basic.resources.basic",
]


# ---------------------------------------------------------------------------
# Method shapes
# ---------------------------------------------------------------------------

def clinit_template(rng: random.Random):
    """A benign static initializer doing local arithmetic."""
    method = MethodBuilder("<clinit>", modifiers=["static"])
    method.local("$i0", INT)
    method.const("$i0", rng.randint(0, 9))
    if rng.random() < 0.5:
        method.stmt(AssignBinopStmt("$i0", "$i0", "+",
                                    Constant(rng.randint(1, 5), INT)))
    method.ret()
    return method.build()


def resource_clinit_template(bundle: str):
    """A static initializer loading a (possibly version-specific) resource
    bundle — the preliminary study's MissingResourceException source."""
    method = MethodBuilder("<clinit>", modifiers=["static"])
    method.local("$bundle", JType("java.util.ResourceBundle"))
    method.stmt(AssignInvokeStmt("$bundle", InvokeExpr(
        "static",
        MethodRef("java.util.ResourceBundle", "getBundle",
                  JType("java.util.ResourceBundle"), (STRING,)),
        None, [Constant(bundle, STRING)])))
    method.ret()
    return method.build()


def switch_shape(rng: random.Random, method: MethodBuilder,
                 counter: int) -> None:
    """A small switch with fall-through-free arms."""
    key = f"$sw{counter}"
    method.local(key, INT)
    method.const(key, rng.randint(0, 3))
    arms = rng.randint(2, 3)
    labels = [f"case{counter}_{i}" for i in range(arms)]
    done = f"swdone{counter}"
    contiguous = rng.random() < 0.5
    if contiguous:
        cases = [(i, labels[i]) for i in range(arms)]
    else:
        cases = [(i * 3 + 1, labels[i]) for i in range(arms)]
    method.stmt(SwitchStmt(key, cases, done))
    for i, label in enumerate(labels):
        method.label(label)
        method.stmt(AssignBinopStmt(key, key, "+", Constant(i, INT)))
        method.goto(done)
    method.label(done)


def trap_shape(rng: random.Random, method: MethodBuilder,
               counter: int) -> None:
    """A try/catch over a throwing region."""
    begin, end = f"try{counter}", f"endtry{counter}"
    handler, done = f"catch{counter}", f"aftertry{counter}"
    exc_local = f"$exc{counter}"
    caught = f"$caught{counter}"
    method.local(exc_local, JType("java.lang.RuntimeException"))
    method.local(caught, JType("java.lang.Exception"))
    method.label(begin)
    method.stmt(AssignNewStmt(exc_local, "java.lang.RuntimeException"))
    method.stmt(InvokeStmt(InvokeExpr(
        "special",
        MethodRef("java.lang.RuntimeException", "<init>", VOID, ()),
        exc_local, [])))
    method.stmt(ThrowStmt(exc_local))
    method.label(end)
    method.goto(done)
    method.label(handler)
    method.stmt(IdentityStmt(caught, "caughtexception",
                             JType("java.lang.Exception")))
    method.label(done)
    method.method.traps.append(
        Trap(begin, end, handler, "java.lang.Exception", caught))
