"""Seed schedulers: who gets mutated next (Algorithm 1, line 11).

The paper's loop picks the next mutation seed uniformly from the pool.
"Selecting Initial Seeds for Better JVM Fuzzing" shows seed choice
dominates JVM-fuzzing yield, so the pool exposes the decision as a
pluggable :class:`SeedScheduler`.  Three policies ship:

================== ========================================================
``uniform``        the paper's policy; **byte-identical RNG consumption**
                   to the historical ``rng.choice(pool)`` call, so default
                   runs reproduce the golden serial fixture bit for bit
``epsilon-greedy`` with probability ε explore uniformly, otherwise exploit
                   the seed with the best acceptance-per-pick yield
``coverage-yield`` sample seeds weighted by the coverage novelty their
                   accepted children contributed (plus-one smoothed so
                   cold seeds keep probability mass)
================== ========================================================

Every scheduler is **deterministic** given the run's ``random.Random``:
scores are computed from the pool's recorded stats and ties break toward
the lower pool index, so a fixed ``(seed, schedule)`` pair replays the
same pick sequence on every backend — the property the campaign
checkpoint layer relies on to make resumed runs bit-equal to
uninterrupted ones.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Union

#: Scheduler registry name of the default (paper) policy.
DEFAULT_SCHEDULE = "uniform"


class SeedScheduler:
    """Interface: choose the next mutation seed from the pool.

    ``pick`` receives the run's RNG and the pool's entries (objects
    exposing ``picks``/``accepted``/``novelty`` counters) and returns the
    chosen index.  Implementations must be pure functions of
    ``(rng state, entry stats)`` so runs stay deterministic and
    checkpoint/resume can replay them.
    """

    #: Registry name (also recorded in manifests and checkpoints).
    name = "abstract"

    def pick(self, rng: random.Random, entries: Sequence) -> int:
        raise NotImplementedError

    def spec(self) -> Dict[str, object]:
        """The scheduler's configuration, for manifests/checkpoints."""
        return {"name": self.name}


class UniformScheduler(SeedScheduler):
    """The paper's uniform pick.

    ``rng.randrange(n)`` consumes the Mersenne Twister exactly like the
    historical ``rng.choice(pool)`` (both reduce to one ``_randbelow``
    draw), which keeps default runs byte-identical to the
    ``tests/data/golden_serial_fuzz.json`` fixture.
    """

    name = "uniform"

    def pick(self, rng: random.Random, entries: Sequence) -> int:
        return rng.randrange(len(entries))


def _yield_score(entry) -> float:
    """Acceptance-plus-novelty yield per pick (plus-one smoothed)."""
    return (entry.accepted + entry.novelty) / (entry.picks + 1.0)


class EpsilonGreedyScheduler(SeedScheduler):
    """Explore uniformly with probability ε, otherwise exploit.

    Exploitation picks the entry with the highest
    ``(accepted + novelty) / (picks + 1)`` yield, ties breaking toward
    the lower pool index; when *every* score is equal (the all-zero cold
    start) exploitation degenerates to a uniform draw so the pool is not
    pinned to index 0 before any feedback exists.
    """

    name = "epsilon-greedy"

    def __init__(self, epsilon: float = 0.1):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon

    def pick(self, rng: random.Random, entries: Sequence) -> int:
        explore = rng.random() < self.epsilon
        if not explore:
            best_index, best_score = 0, _yield_score(entries[0])
            tied = True
            for index in range(1, len(entries)):
                score = _yield_score(entries[index])
                if score > best_score:
                    best_index, best_score = index, score
                    tied = False
                elif score != best_score:
                    tied = False
            if not tied:
                return best_index
        return rng.randrange(len(entries))

    def spec(self) -> Dict[str, object]:
        return {"name": self.name, "epsilon": self.epsilon}


class CoverageYieldScheduler(SeedScheduler):
    """Weighted sampling by accumulated coverage-novelty yield.

    Each entry's weight is ``1 + novelty + accepted``: seeds whose
    accepted children opened new coverage sites are revisited more often,
    while the ``1 +`` smoothing keeps every seed reachable (fresh pool
    members start at the uniform baseline).
    """

    name = "coverage-yield"

    def pick(self, rng: random.Random, entries: Sequence) -> int:
        weights: List[float] = [1.0 + entry.novelty + entry.accepted
                                for entry in entries]
        point = rng.random() * sum(weights)
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if point < cumulative:
                return index
        return len(entries) - 1


#: Scheduler name → factory (zero-argument construction defaults).
SCHEDULERS = {
    "uniform": UniformScheduler,
    "epsilon-greedy": EpsilonGreedyScheduler,
    "coverage-yield": CoverageYieldScheduler,
}


def make_scheduler(schedule: Union[str, SeedScheduler, None],
                   **kwargs) -> SeedScheduler:
    """Resolve a scheduler from a registry name or pass one through.

    ``None`` resolves to the default :class:`UniformScheduler`, so every
    caller that never heard of scheduling keeps the paper's policy.
    """
    if schedule is None:
        schedule = DEFAULT_SCHEDULE
    if isinstance(schedule, SeedScheduler):
        return schedule
    try:
        factory = SCHEDULERS[schedule]
    except KeyError:
        raise ValueError(
            f"unknown seed schedule {schedule!r} "
            f"(available: {', '.join(sorted(SCHEDULERS))})") from None
    return factory(**kwargs)
