"""Simulated Java platform class library and per-JRE environments."""

from repro.runtime.library import LibraryClass, LibraryMember, ClassLibrary
from repro.runtime.environment import JreEnvironment, build_environment

__all__ = [
    "ClassLibrary",
    "JreEnvironment",
    "LibraryClass",
    "LibraryMember",
    "build_environment",
]
