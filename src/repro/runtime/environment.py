"""Per-JRE execution environments.

A :class:`JreEnvironment` is the paper's ``e`` in ``r = jvm(e, c, i)``:
the libraries and resources a JVM execution depends on.  Environments for
different Java versions contain *different* classes — the root cause of the
compatibility discrepancies (NoClassDefFoundError, final-superclass
VerifyError) the preliminary study observed when running JRE7 classfiles
on newer JVMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.runtime.library import (
    ClassLibrary,
    LibraryClass,
    LibraryMember,
    base_catalogue,
    _cls,
    _exception,
    _iface,
)


@dataclass
class JreEnvironment:
    """The environment ``e`` of a JVM execution.

    Attributes:
        name: identifier such as ``"jre7"``.
        java_version: numeric feature version (5, 7, 8, 9).
        library: the class library visible on the boot classpath.
        resources: resource bundle names available at run time —
            missing ones raise ``MissingResourceException``.
    """

    name: str
    java_version: int
    library: ClassLibrary
    resources: Set[str] = field(default_factory=set)


#: Classes that shipped in JRE 7 but were removed or relocated afterwards.
_JRE7_ONLY = [
    _cls("sun/beans/editors/EnumEditor",
         superclass="com/sun/beans/editors/EnumEditor", restricted=True),
    _cls("sun/misc/JavaUtilJarAccess", restricted=True),
    _cls("sun/tools/jar/JarHelper", restricted=True),
    _iface("sun/misc/JavaLangAccess", restricted=True),
    _cls("com/sun/image/codec/jpeg/JPEGCodec", restricted=True),
]

#: Classes introduced in JRE 8.
_JRE8_PLUS = [
    _iface("java/util/function/Function"),
    _iface("java/util/function/Supplier"),
    _iface("java/util/stream/Stream"),
    _cls("java/time/Instant", is_final=True),
    _cls("java/util/Optional", is_final=True),
]

#: Classes introduced in JRE 9.
_JRE9_PLUS = [
    _cls("java/lang/Module", is_final=True),
    _cls("java/lang/StackWalker", is_final=True),
]

#: Resources bundled with JRE 7 that later versions dropped.
_JRE7_RESOURCES = {"sun.text.resources.FormatData",
                   "sun.util.resources.CalendarData",
                   "com.sun.swing.internal.plaf.basic.resources.basic"}

_COMMON_RESOURCES = {"java.text.resources.FormatData"}


def _enum_editor(final: bool) -> LibraryClass:
    """``com.sun.beans.editors.EnumEditor`` — declared final from JRE 8 on.

    The preliminary study's example: ``sun.beans.editors.EnumEditor``
    extends it, so loading that JRE7 class on a JRE8 JVM raises a
    VerifyError ("cannot inherit from final class").
    """
    return _cls("com/sun/beans/editors/EnumEditor", restricted=True,
                is_final=final)


def build_environment(java_version: int,
                      name: Optional[str] = None) -> JreEnvironment:
    """Build the simulated environment for a Java feature version.

    Supported versions: 5 (GIJ's classpath-era library), 7, 8, and 9.
    """
    library = ClassLibrary(base_catalogue())
    resources = set(_COMMON_RESOURCES)

    if java_version <= 5:
        # Classpath-era library: no JRE7 internals, no newer APIs, and the
        # vendor-internal sun.* classes of OpenJDK are absent.
        library.remove("sun/java2d/pisces/PiscesRenderingEngine")
        library.remove("sun/java2d/pisces/PiscesRenderingEngine$2")
        library.remove("sun/java2d/pipe/RenderingEngine")
        library.remove("sun/misc/Unsafe")
        library.add(_enum_editor(final=False))
        return JreEnvironment(name or f"java{java_version}", java_version,
                              library, resources)

    if java_version == 7:
        for cls in _JRE7_ONLY:
            library.add(cls)
        library.add(_enum_editor(final=False))
        resources |= _JRE7_RESOURCES
        return JreEnvironment(name or "jre7", 7, library, resources)

    # JRE 8 and later.
    for cls in _JRE8_PLUS:
        library.add(cls)
    library.add(_enum_editor(final=True))
    if java_version >= 9:
        for cls in _JRE9_PLUS:
            library.add(cls)
        # Jigsaw: vendor-internal classes exist but are flagged restricted
        # (module system denies access); the vendor policy decides what
        # error, if any, that produces.
    return JreEnvironment(name or f"jre{java_version}", java_version,
                          library, resources)
