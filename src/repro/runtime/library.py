"""A simulated platform class library (the "JRE" the JVMs link against).

The paper's JVMs resolve symbolic references against real JRE libraries
whose contents differ by version — that difference is the source of the
compatibility discrepancies in the preliminary study (§1).  Here the
library is a catalogue of :class:`LibraryClass` records rich enough for
the pipeline to answer every question linking asks: does the class exist,
is it final/interface/abstract/public, what is its superclass chain, does
it declare this member, is it accessible from user code?
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class LibraryMember:
    """One method or field of a library class.

    Attributes:
        name: member name.
        descriptor: JVM descriptor.
        is_static/is_public/is_final/is_abstract: relevant flags.
    """

    name: str
    descriptor: str
    is_static: bool = False
    is_public: bool = True
    is_final: bool = False
    is_abstract: bool = False


@dataclass(frozen=True)
class LibraryClass:
    """One platform class the simulated JRE provides.

    Attributes:
        name: internal (slash) name.
        superclass: internal superclass name (``None`` for Object).
        interfaces: internal names of direct superinterfaces.
        is_interface/is_abstract/is_final/is_public/is_enum: class flags.
        is_synthetic: compiler-generated (e.g. ``Outer$1``); such classes
            exist but some JVMs refuse user-code access to them.
        restricted: lives in a vendor-internal package (``sun.*``) whose
            accessibility JVMs disagree about.
        methods/fields: declared members.
    """

    name: str
    superclass: Optional[str] = "java/lang/Object"
    interfaces: Tuple[str, ...] = ()
    is_interface: bool = False
    is_abstract: bool = False
    is_final: bool = False
    is_public: bool = True
    is_enum: bool = False
    is_synthetic: bool = False
    restricted: bool = False
    methods: Tuple[LibraryMember, ...] = ()
    fields: Tuple[LibraryMember, ...] = ()

    def find_method(self, name: str,
                    descriptor: Optional[str] = None) -> Optional[LibraryMember]:
        """Declared method matching ``name`` (and descriptor when given)."""
        for member in self.methods:
            if member.name == name and (descriptor is None
                                        or member.descriptor == descriptor):
                return member
        return None

    def find_field(self, name: str) -> Optional[LibraryMember]:
        """Declared field called ``name``."""
        for member in self.fields:
            if member.name == name:
                return member
        return None


class ClassLibrary:
    """An indexed set of :class:`LibraryClass` records."""

    def __init__(self, classes: Iterable[LibraryClass] = ()):
        self._classes: Dict[str, LibraryClass] = {}
        for cls in classes:
            self.add(cls)

    def add(self, cls: LibraryClass) -> None:
        """Register (or replace) a class."""
        self._classes[cls.name] = cls

    def remove(self, name: str) -> None:
        """Drop a class if present."""
        self._classes.pop(name, None)

    def replace(self, name: str, **changes) -> None:
        """Replace attributes of an existing class."""
        self._classes[name] = replace(self._classes[name], **changes)

    def find(self, name: str) -> Optional[LibraryClass]:
        """Look up an internal (slash) name."""
        return self._classes.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def names(self) -> List[str]:
        return sorted(self._classes)

    def is_subclass_of(self, name: str, ancestor: str) -> bool:
        """Whether ``name`` has ``ancestor`` on its superclass chain
        (inclusive), walking only library classes."""
        seen = set()
        current: Optional[str] = name
        while current is not None and current not in seen:
            if current == ancestor:
                return True
            seen.add(current)
            cls = self.find(current)
            current = cls.superclass if cls else None
        return False

    def is_throwable(self, name: str) -> bool:
        """Whether ``name`` is a subclass of ``java/lang/Throwable``."""
        return self.is_subclass_of(name, "java/lang/Throwable")


# ---------------------------------------------------------------------------
# Catalogue construction helpers
# ---------------------------------------------------------------------------

_OBJECT_METHODS = (
    LibraryMember("<init>", "()V"),
    LibraryMember("toString", "()Ljava/lang/String;"),
    LibraryMember("hashCode", "()I"),
    LibraryMember("equals", "(Ljava/lang/Object;)Z"),
    LibraryMember("getClass", "()Ljava/lang/Class;", is_final=True),
)


def _cls(name: str, superclass: Optional[str] = "java/lang/Object",
         **kwargs) -> LibraryClass:
    methods = kwargs.pop("methods", ())
    if not kwargs.get("is_interface") and not any(
            m.name == "<init>" for m in methods):
        # Every concrete catalogue class gets a default constructor unless
        # explicitly modelled otherwise.
        methods = (LibraryMember("<init>", "()V"),) + tuple(methods)
    return LibraryClass(name=name, superclass=superclass,
                        methods=tuple(methods), **kwargs)


def _iface(name: str, *interfaces: str, **kwargs) -> LibraryClass:
    return LibraryClass(name=name, superclass="java/lang/Object",
                        interfaces=tuple(interfaces), is_interface=True,
                        is_abstract=True, **kwargs)


def _exception(name: str, superclass: str) -> LibraryClass:
    return _cls(name, superclass, methods=(
        LibraryMember("<init>", "()V"),
        LibraryMember("<init>", "(Ljava/lang/String;)V"),
        LibraryMember("getMessage", "()Ljava/lang/String;"),
    ))


# Public aliases for the catalogue helpers (used by environment builders
# and by tests that extend the library).
def make_class(name: str, superclass: Optional[str] = "java/lang/Object",
               **kwargs) -> LibraryClass:
    """Public alias of :func:`_cls`."""
    return _cls(name, superclass, **kwargs)


def make_interface(name: str, *interfaces: str, **kwargs) -> LibraryClass:
    """Public alias of :func:`_iface`."""
    return _iface(name, *interfaces, **kwargs)


def make_exception(name: str, superclass: str) -> LibraryClass:
    """Public alias of :func:`_exception`."""
    return _exception(name, superclass)


def base_catalogue() -> List[LibraryClass]:
    """Platform classes present in every simulated JRE."""
    print_stream_methods = tuple(
        LibraryMember("println", d) for d in (
            "(Ljava/lang/String;)V", "(I)V", "(J)V", "(Z)V",
            "(Ljava/lang/Object;)V", "()V")
    ) + (LibraryMember("print", "(Ljava/lang/String;)V"),
         LibraryMember("<init>", "()V", is_public=False))

    return [
        LibraryClass("java/lang/Object", superclass=None,
                     methods=_OBJECT_METHODS),
        _cls("java/lang/String", is_final=True,
             interfaces=("java/io/Serializable", "java/lang/CharSequence",
                         "java/lang/Comparable"),
             methods=(LibraryMember("length", "()I"),
                      LibraryMember("valueOf", "(I)Ljava/lang/String;",
                                    is_static=True),
                      LibraryMember("concat",
                                    "(Ljava/lang/String;)Ljava/lang/String;"))),
        _cls("java/lang/StringBuilder",
             methods=(LibraryMember(
                 "append",
                 "(Ljava/lang/String;)Ljava/lang/StringBuilder;"),
                 LibraryMember("toString", "()Ljava/lang/String;"))),
        _cls("java/lang/System", is_final=True,
             fields=(LibraryMember("out", "Ljava/io/PrintStream;",
                                   is_static=True, is_final=True),
                     LibraryMember("err", "Ljava/io/PrintStream;",
                                   is_static=True, is_final=True)),
             methods=(LibraryMember("exit", "(I)V", is_static=True),
                      LibraryMember("currentTimeMillis", "()J",
                                    is_static=True),
                      LibraryMember("getProperty",
                                    "(Ljava/lang/String;)Ljava/lang/String;",
                                    is_static=True))),
        _cls("java/lang/Thread", interfaces=("java/lang/Runnable",),
             methods=(LibraryMember("<init>", "()V"),
                      LibraryMember("start", "()V"),
                      LibraryMember("run", "()V"))),
        _cls("java/lang/Class", is_final=True,
             methods=(LibraryMember("getName", "()Ljava/lang/String;"),)),
        _cls("java/lang/Math", is_final=True, methods=(
            LibraryMember("abs", "(I)I", is_static=True),
            LibraryMember("max", "(II)I", is_static=True),
            LibraryMember("min", "(II)I", is_static=True))),
        _cls("java/lang/Number", is_abstract=True),
        _cls("java/lang/Integer", "java/lang/Number", is_final=True,
             methods=(LibraryMember("<init>", "(I)V"),
                      LibraryMember("intValue", "()I"),
                      LibraryMember("parseInt", "(Ljava/lang/String;)I",
                                    is_static=True),
                      LibraryMember("valueOf", "(I)Ljava/lang/Integer;",
                                    is_static=True))),
        _cls("java/lang/Long", "java/lang/Number", is_final=True),
        _cls("java/lang/Float", "java/lang/Number", is_final=True),
        _cls("java/lang/Double", "java/lang/Number", is_final=True),
        _cls("java/lang/Short", "java/lang/Number", is_final=True),
        _cls("java/lang/Byte", "java/lang/Number", is_final=True),
        _cls("java/lang/Boolean", is_final=True,
             methods=(LibraryMember("booleanValue", "()Z"),
                      LibraryMember("getBoolean", "(Ljava/lang/String;)Z",
                                    is_static=True))),
        _cls("java/lang/Character", is_final=True),
        _cls("java/lang/Enum", is_abstract=True,
             methods=(LibraryMember("name", "()Ljava/lang/String;"),)),
        # Throwable hierarchy.
        _exception("java/lang/Throwable", "java/lang/Object"),
        _exception("java/lang/Error", "java/lang/Throwable"),
        _exception("java/lang/Exception", "java/lang/Throwable"),
        _exception("java/lang/RuntimeException", "java/lang/Exception"),
        _exception("java/lang/NullPointerException",
                   "java/lang/RuntimeException"),
        _exception("java/lang/ArithmeticException",
                   "java/lang/RuntimeException"),
        _exception("java/lang/ClassCastException",
                   "java/lang/RuntimeException"),
        _exception("java/lang/IllegalArgumentException",
                   "java/lang/RuntimeException"),
        _exception("java/lang/IllegalStateException",
                   "java/lang/RuntimeException"),
        _exception("java/io/IOException", "java/lang/Exception"),
        _exception("java/util/MissingResourceException",
                   "java/lang/RuntimeException"),
        _exception("java/lang/LinkageError", "java/lang/Error"),
        _exception("java/lang/VerifyError", "java/lang/LinkageError"),
        # Core interfaces.
        _iface("java/lang/Runnable"),
        _iface("java/lang/Comparable"),
        _iface("java/lang/CharSequence"),
        _iface("java/lang/Cloneable"),
        _iface("java/lang/Iterable"),
        _iface("java/io/Serializable"),
        _iface("java/security/PrivilegedAction"),
        _iface("java/util/Map"),
        _iface("java/util/Collection", "java/lang/Iterable"),
        _iface("java/util/List", "java/util/Collection"),
        _iface("java/util/Set", "java/util/Collection"),
        _iface("java/util/Iterator"),
        _iface("java/util/Enumeration"),
        # Collections.
        _cls("java/util/AbstractMap", is_abstract=True,
             interfaces=("java/util/Map",)),
        _cls("java/util/HashMap", "java/util/AbstractMap",
             interfaces=("java/util/Map", "java/lang/Cloneable",
                         "java/io/Serializable"),
             methods=(LibraryMember("<init>", "()V"),
                      LibraryMember(
                          "put",
                          "(Ljava/lang/Object;Ljava/lang/Object;)"
                          "Ljava/lang/Object;"),
                      LibraryMember("get",
                                    "(Ljava/lang/Object;)Ljava/lang/Object;"),
                      LibraryMember("size", "()I"))),
        _cls("java/util/AbstractList", is_abstract=True,
             interfaces=("java/util/List",)),
        _cls("java/util/ArrayList", "java/util/AbstractList",
             interfaces=("java/util/List",),
             methods=(LibraryMember("<init>", "()V"),
                      LibraryMember("add", "(Ljava/lang/Object;)Z"),
                      LibraryMember("size", "()I"))),
        _cls("java/util/HashSet", interfaces=("java/util/Set",)),
        _cls("java/util/Random",
             methods=(LibraryMember("<init>", "()V"),
                      LibraryMember("<init>", "(J)V"),
                      LibraryMember("nextInt", "(I)I"))),
        _cls("java/util/ResourceBundle", is_abstract=True,
             methods=(LibraryMember(
                 "getBundle",
                 "(Ljava/lang/String;)Ljava/util/ResourceBundle;",
                 is_static=True),
                 LibraryMember("getString",
                               "(Ljava/lang/String;)Ljava/lang/String;"))),
        _cls("java/util/Properties", "java/util/HashMap"),
        # IO.
        _cls("java/io/OutputStream", is_abstract=True),
        _cls("java/io/FilterOutputStream", "java/io/OutputStream"),
        _cls("java/io/PrintStream", "java/io/FilterOutputStream",
             methods=print_stream_methods),
        _cls("java/io/InputStream", is_abstract=True),
        # Vendor-internal classes used by the paper's case studies
        # (Problem 3, Problem 4 and the preliminary study).
        _cls("sun/java2d/pisces/PiscesRenderingEngine",
             superclass="sun/java2d/pipe/RenderingEngine", restricted=True),
        _cls("sun/java2d/pipe/RenderingEngine", is_abstract=True,
             restricted=True),
        # The synthetic helper class generated for NormMode initialisation
        # — extends Object, package-private, synthetic: JVMs disagree on
        # whether user code may reference it (e.g. in a throws clause).
        _cls("sun/java2d/pisces/PiscesRenderingEngine$2",
             is_public=False, is_synthetic=True, restricted=True),
        _cls("sun/misc/Unsafe", is_final=True, is_public=False,
             restricted=True),
    ]
