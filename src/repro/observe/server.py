"""The embedded campaign monitor: live HTTP telemetry over stdlib only.

Any fuzz/difftest/campaign run can start a :class:`MonitorServer`
(``--serve PORT`` on the CLI) and expose four endpoints while the
campaign runs:

``GET /metrics``
    Prometheus text exposition, rendered live from the registry.
``GET /status``
    The JSON run-status snapshot assembled by
    :class:`~repro.observe.status.StatusTracker`.
``GET /events``
    The event bus as Server-Sent Events, fanned out through a
    :class:`~repro.observe.sse.SseSink` bounded queue per client —
    a stalled consumer sheds its oldest events instead of stalling
    the fuzzing hot path.
``GET /``
    A single-file, dependency-free HTML dashboard polling ``/status``
    and subscribing to ``/events``.

Overhead design: the server runs on daemon threads
(``ThreadingHTTPServer`` with ``daemon_threads``), every scrape reads
*existing* locked snapshots (registry exposition, tracker snapshot), and
without ``--serve`` none of this module is even imported by the hot
path.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.observe.sse import SseSink
from repro.observe.status import StatusTracker
from repro.observe.telemetry import Telemetry

#: Seconds between SSE keep-alive comments on an idle stream.
SSE_HEARTBEAT_SECONDS = 5.0


class MonitorServer:
    """Serves live telemetry for one :class:`Telemetry` bundle.

    Attaches a :class:`StatusTracker` (reusing one already attached via
    :meth:`Telemetry.attach_status`) and an :class:`SseSink` to the bus,
    then serves them over HTTP from daemon threads.  ``port=0`` binds an
    ephemeral port (tests); :attr:`port`/:attr:`url` report the bound
    address after :meth:`start`.
    """

    def __init__(self, telemetry: Telemetry, host: str = "127.0.0.1",
                 port: int = 0):
        self.telemetry = telemetry
        self.tracker = telemetry.attach_status()
        self.sse = SseSink(telemetry.registry)
        telemetry.bus.add_sink(self.sse)
        self._stopping = threading.Event()
        self._httpd = _MonitorHTTPServer((host, port), _MonitorHandler)
        self._httpd.monitor = self
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "MonitorServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-monitor:{self.port}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class _MonitorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # A live SSE stream would otherwise make ``server_close`` wait on
    # its handler thread forever; daemon threads die with the process.
    block_on_close = False
    monitor: "MonitorServer"


class _MonitorHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def monitor(self) -> MonitorServer:
        return self.server.monitor  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes at dashboard poll rates would flood stderr

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        try:
            if path == "/":
                self._send(200, "text/html; charset=utf-8",
                           DASHBOARD_HTML.encode("utf-8"))
            elif path == "/metrics":
                body = self.monitor.telemetry.render_prometheus()
                self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                           body.encode("utf-8"))
            elif path == "/status":
                body = json.dumps(self.monitor.tracker.snapshot(),
                                  sort_keys=True, default=str)
                self._send(200, "application/json", body.encode("utf-8"))
            elif path == "/events":
                self._serve_events()
            else:
                self._send(404, "application/json",
                           b'{"error": "not found"}')
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client went away mid-response

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _serve_events(self) -> None:
        client = self.monitor.sse.register()
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        stopping = self.monitor._stopping
        try:
            while not stopping.is_set():
                event = client.get(timeout=SSE_HEARTBEAT_SECONDS)
                if event is None:
                    self.wfile.write(b": keep-alive\n\n")
                else:
                    frame = (f"event: {event.type}\n"
                             f"data: {event.to_json()}\n\n")
                    self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # disconnects are the normal way this loop ends
        finally:
            self.monitor.sse.unregister(client)


# ---------------------------------------------------------------------------
# The dashboard: one self-contained page, no external resources.
# Palette: validated dark set (surface #1a1a19, series blue #3987e5 /
# orange #d95926, critical #e66767); single-series sparklines carry a
# hover readout instead of a legend.
# ---------------------------------------------------------------------------

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro campaign monitor</title>
<style>
  :root {
    color-scheme: dark;
    --page: #0d0d0d;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;   /* coverage */
    --series-2: #d95926;   /* acceptance */
    --critical: #e66767;   /* discrepancies */
    --good: #0ca30c;
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 20px;
    background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header { display: flex; align-items: baseline; gap: 12px;
           flex-wrap: wrap; margin-bottom: 16px; }
  header h1 { font-size: 16px; font-weight: 600; margin: 0; }
  header .meta { color: var(--text-secondary); font-size: 12px; }
  header .meta code { color: var(--muted); }
  .tiles { display: grid; gap: 12px; margin-bottom: 16px;
           grid-template-columns: repeat(auto-fit, minmax(150px, 1fr)); }
  .tile { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 12px 14px; }
  .tile .label { color: var(--text-secondary); font-size: 12px; }
  .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
  .tile .sub { color: var(--muted); font-size: 11px; margin-top: 2px; }
  .tile.alert .value { color: var(--critical); }
  .charts { display: grid; gap: 12px; margin-bottom: 16px;
            grid-template-columns: repeat(auto-fit, minmax(320px, 1fr)); }
  .chart { background: var(--surface-1); border: 1px solid var(--border);
           border-radius: 8px; padding: 12px 14px; }
  .chart h2 { font-size: 12px; font-weight: 600; margin: 0 0 2px;
              color: var(--text-secondary); }
  .chart .readout { font-size: 11px; color: var(--muted);
                    min-height: 15px; font-variant-numeric: tabular-nums; }
  canvas { width: 100%; height: 72px; display: block; margin-top: 6px; }
  .log { background: var(--surface-1); border: 1px solid var(--border);
         border-radius: 8px; padding: 12px 14px; }
  .log h2 { font-size: 12px; font-weight: 600; margin: 0 0 6px;
            color: var(--text-secondary); }
  .log ul { list-style: none; margin: 0; padding: 0;
            font: 12px/1.6 ui-monospace, SFMono-Regular, Menlo, monospace; }
  .log li { color: var(--text-secondary); white-space: nowrap;
            overflow: hidden; text-overflow: ellipsis; }
  .log li.discrepancy { color: var(--critical); }
  .log li .t { color: var(--muted); }
  #conn { font-size: 11px; }
  #conn.ok { color: var(--good); }
  #conn.bad { color: var(--critical); }
</style>
</head>
<body>
<header>
  <h1>repro campaign monitor</h1>
  <span class="meta" id="run">connecting&hellip;</span>
  <span id="conn"></span>
</header>

<div class="tiles">
  <div class="tile"><div class="label">iterations</div>
    <div class="value" id="t-iter">&ndash;</div>
    <div class="sub" id="t-round"></div></div>
  <div class="tile"><div class="label">acceptance rate</div>
    <div class="value" id="t-acc">&ndash;</div>
    <div class="sub" id="t-accn"></div></div>
  <div class="tile"><div class="label">mutants / sec</div>
    <div class="value" id="t-rate">&ndash;</div>
    <div class="sub">30s window</div></div>
  <div class="tile"><div class="label">coverage slots</div>
    <div class="value" id="t-cov">&ndash;</div>
    <div class="sub" id="t-covp"></div></div>
  <div class="tile" id="tile-disc"><div class="label">discrepancies</div>
    <div class="value" id="t-disc">&ndash;</div>
    <div class="sub" id="t-clus"></div></div>
</div>

<div class="charts">
  <div class="chart">
    <h2>coverage slots over time</h2>
    <div class="readout" id="r-cov">&nbsp;</div>
    <canvas id="c-cov"></canvas>
  </div>
  <div class="chart">
    <h2>acceptance rate over time</h2>
    <div class="readout" id="r-acc">&nbsp;</div>
    <canvas id="c-acc"></canvas>
  </div>
</div>

<div class="log">
  <h2>event stream</h2>
  <ul id="events"></ul>
</div>

<script>
"use strict";
const $ = id => document.getElementById(id);
const covSeries = [], accSeries = [], MAX_POINTS = 600;

function fmt(n) {
  if (n === null || n === undefined) return "\\u2013";
  if (n >= 1e6) return (n / 1e6).toFixed(2) + "M";
  if (n >= 1e4) return (n / 1e3).toFixed(1) + "k";
  return String(n);
}

function sparkline(canvas, readout, series, color, fmtY) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.clientHeight;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  const css = getComputedStyle(document.documentElement);
  ctx.strokeStyle = css.getPropertyValue("--grid").trim();
  ctx.lineWidth = 1;
  ctx.beginPath();
  ctx.moveTo(0, h - 0.5); ctx.lineTo(w, h - 0.5);
  ctx.stroke();
  if (series.length < 2) return;
  const ys = series.map(p => p.y);
  const lo = Math.min(...ys), hi = Math.max(...ys);
  const span = (hi - lo) || 1;
  const x = i => i / (series.length - 1) * (w - 4) + 2;
  const y = v => h - 4 - (v - lo) / span * (h - 10);
  ctx.strokeStyle = color;
  ctx.lineWidth = 2;
  ctx.lineJoin = "round";
  ctx.beginPath();
  series.forEach((p, i) => i ? ctx.lineTo(x(i), y(p.y))
                             : ctx.moveTo(x(i), y(p.y)));
  ctx.stroke();
  // hover readout: nearest point by x
  canvas.onmousemove = ev => {
    const rect = canvas.getBoundingClientRect();
    const i = Math.max(0, Math.min(series.length - 1, Math.round(
      (ev.clientX - rect.left - 2) / (rect.width - 4)
      * (series.length - 1))));
    const p = series[i];
    const when = new Date(p.t * 1000).toLocaleTimeString();
    readout.textContent = when + "  \\u00b7  " + fmtY(p.y);
  };
  canvas.onmouseleave = () => {
    const p = series[series.length - 1];
    readout.textContent = "latest  \\u00b7  " + fmtY(p.y);
  };
  if (readout.textContent.trim() === "") canvas.onmouseleave();
}

function push(series, t, yv) {
  const last = series[series.length - 1];
  if (last && last.t === t && last.y === yv) return;
  series.push({t: t, y: yv});
  if (series.length > MAX_POINTS) series.shift();
}

function render(s) {
  const run = s.run || {}, p = s.progress || {};
  const cov = s.coverage || {}, d = s.discrepancies || {};
  const slots = cov.bitmap_slots || {};
  const slotMax = Object.keys(slots).length
    ? Math.max(...Object.values(slots)) : null;
  const label = [run.id, run.config_fingerprint ? "cfg " +
    run.config_fingerprint : "", p.algorithm ? "alg " + p.algorithm : "",
    run.uptime_seconds !== undefined ?
      "up " + Math.round(run.uptime_seconds) + "s" : ""]
    .filter(Boolean).join(" \\u00b7 ");
  $("run").textContent = label || "(no run registered)";
  $("t-iter").textContent = fmt(p.iterations);
  $("t-round").textContent = p.round ? "round " + p.round : "";
  $("t-acc").textContent = (100 * (p.acceptance_rate || 0)).toFixed(1) + "%";
  $("t-accn").textContent = fmt(p.accepted) + " accepted";
  $("t-rate").textContent = (p.mutants_per_second || 0).toFixed(1);
  $("t-cov").textContent = slotMax === null ? "\\u2013" : fmt(slotMax);
  $("t-covp").textContent = cov.bitmap_occupancy !== undefined ?
    (100 * cov.bitmap_occupancy).toFixed(2) + "% of bitmap" : "";
  $("t-disc").textContent = fmt(d.total || 0);
  $("t-clus").textContent = (d.triage_clusters || 0) + " clusters";
  $("tile-disc").classList.toggle("alert", (d.total || 0) > 0);
  if (slotMax !== null) push(covSeries, s.now, slotMax);
  if (p.iterations) push(accSeries, s.now,
                         +(100 * p.acceptance_rate).toFixed(2));
  sparkline($("c-cov"), $("r-cov"), covSeries,
            getComputedStyle(document.documentElement)
              .getPropertyValue("--series-1").trim(),
            v => fmt(v) + " slots");
  sparkline($("c-acc"), $("r-acc"), accSeries,
            getComputedStyle(document.documentElement)
              .getPropertyValue("--series-2").trim(),
            v => v.toFixed(2) + "%");
}

async function poll() {
  try {
    const res = await fetch("/status");
    render(await res.json());
    $("conn").textContent = "\\u25cf live";
    $("conn").className = "ok";
  } catch (err) {
    $("conn").textContent = "\\u25cf disconnected";
    $("conn").className = "bad";
  }
}
poll();
setInterval(poll, 1000);

const logList = $("events");
const source = new EventSource("/events");
source.onmessage = ev => logEvent(JSON.parse(ev.data));
["iteration", "mutant_accepted", "batch_round", "checkpoint_written",
 "discrepancy_found", "triage_cluster", "seed_scheduled",
 "mutant_discarded", "mcmc_transition", "executor_batch", "cache_hit",
 "jvm_phase", "reduction_step"].forEach(t =>
  source.addEventListener(t, ev => logEvent(JSON.parse(ev.data))));
function logEvent(e) {
  if (e.type === "iteration" && e.seq % 25 !== 0 && !e.accepted) return;
  const li = document.createElement("li");
  if (e.type === "discrepancy_found") li.className = "discrepancy";
  const when = new Date(e.ts * 1000).toLocaleTimeString();
  const rest = Object.keys(e).filter(k =>
    ["type", "ts", "seq"].indexOf(k) < 0).slice(0, 6)
    .map(k => k + "=" + JSON.stringify(e[k])).join(" ");
  li.innerHTML = "<span class=t>" + when + " #" + e.seq + "</span> " +
    e.type + " " + rest.replace(/</g, "&lt;");
  logList.insertBefore(li, logList.firstChild);
  while (logList.children.length > 40)
    logList.removeChild(logList.lastChild);
}
</script>
</body>
</html>
"""
