"""``repro.observe``: campaign telemetry — metrics, events, tracing.

Three layers, bundled by :class:`Telemetry` and threaded through every
stage of the fuzz → coverage → difftest pipeline:

* :mod:`repro.observe.registry` — a thread-safe metrics registry
  (counters, gauges, fixed-bucket latency histograms) with Prometheus
  text exposition;
* :mod:`repro.observe.events` — a typed event bus with pluggable sinks
  (JSONL file, in-memory ring buffer, live stderr progress);
* :mod:`repro.observe.tracing` — span-based timing with parent/child
  nesting, plus the ambient hook the JVM startup phases use.

:mod:`repro.observe.summary` analyses recorded logs offline (the
``repro observe`` CLI command).  Everything is no-op cheap when
disabled: uninstrumented code paths pay one ``is None`` check.
"""

from repro.observe.events import (
    CACHE_HIT,
    DISCREPANCY_FOUND,
    EVENT_TYPES,
    EXECUTOR_BATCH,
    ITERATION,
    JVM_PHASE,
    MCMC_TRANSITION,
    MUTANT_ACCEPTED,
    MUTANT_DISCARDED,
    CallbackSink,
    Event,
    EventBus,
    EventSink,
    JsonlSink,
    RingBufferSink,
    StderrProgressSink,
    read_events,
)
from repro.observe.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.server import DASHBOARD_HTML, MonitorServer
from repro.observe.sse import DEFAULT_CLIENT_QUEUE, SseClient, SseSink
from repro.observe.status import StatusTracker, config_fingerprint
from repro.observe.summary import (
    CORE_METRIC_FAMILIES,
    check_prometheus,
    load_events,
    parse_prometheus,
    replay_events,
    summarize_events,
    summarize_prefilter,
    summarize_workers,
    write_timeseries,
)
from repro.observe.telemetry import Telemetry, make_telemetry
from repro.observe.tracing import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    ambient_phase_span,
    ambient_telemetry,
)

__all__ = [
    # events
    "CACHE_HIT", "DISCREPANCY_FOUND", "EVENT_TYPES", "EXECUTOR_BATCH",
    "ITERATION", "JVM_PHASE", "MCMC_TRANSITION", "MUTANT_ACCEPTED",
    "MUTANT_DISCARDED", "CallbackSink", "Event", "EventBus", "EventSink",
    "JsonlSink", "RingBufferSink", "StderrProgressSink", "read_events",
    # registry
    "DEFAULT_LATENCY_BUCKETS", "Counter", "Family", "Gauge", "Histogram",
    "MetricsRegistry",
    # monitor (server + sinks)
    "DASHBOARD_HTML", "MonitorServer", "DEFAULT_CLIENT_QUEUE",
    "SseClient", "SseSink", "StatusTracker", "config_fingerprint",
    # summary
    "CORE_METRIC_FAMILIES", "check_prometheus", "load_events",
    "parse_prometheus", "replay_events", "summarize_events",
    "summarize_prefilter", "summarize_workers", "write_timeseries",
    # telemetry + tracing
    "Telemetry", "make_telemetry", "NULL_SPAN", "NullSpan", "Span",
    "Tracer", "ambient_phase_span", "ambient_telemetry",
]
