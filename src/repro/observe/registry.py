"""The process-wide metrics registry: counters, gauges, histograms.

The paper's campaigns are time-series phenomena — coverage-unique
acceptances, MCMC mutator drift, per-phase JVM latency all evolve over
thousands of iterations — so every stage of the pipeline records into a
shared :class:`MetricsRegistry` instead of ad-hoc per-object counters.
The registry is the *canonical* store; legacy façades such as
:class:`~repro.core.executor.ExecutorStats` keep their shape for
compatibility and feed the same hot-path code.

Design points:

* **Thread safety.** Worker threads of the thread-pool executor record
  concurrently; every instrument guards its state with its own lock (the
  GIL does not make ``+=`` atomic across the read/add/store bytecodes).
* **Label families.** ``registry.counter(name, help, ("vendor",))``
  returns a family; ``family.labels(vendor="hotspot9")`` returns the
  child instrument, cached per label-value tuple so hot paths can
  pre-resolve children once and pay a plain method call per update.
* **Fixed histogram buckets.** Latency histograms default to
  :data:`DEFAULT_LATENCY_BUCKETS` (100 µs … 10 s), cumulative in the
  Prometheus convention (``value <= le``).
* **Exposition.** :meth:`MetricsRegistry.render_prometheus` emits the
  Prometheus text format (``# HELP``/``# TYPE`` + samples), which
  ``repro observe check`` parses back.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 100 µs to 10 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self, name: str, labels: str) -> List[str]:
        return [f"{name}{labels} {format_value(self.value)}"]


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self, name: str, labels: str) -> List[str]:
        return [f"{name}{labels} {format_value(self.value)}"]


class Histogram:
    """Observations bucketed at fixed boundaries (Prometheus semantics).

    ``bucket_counts[i]`` counts observations with
    ``value <= buckets[i]``, *non*-cumulative internally; exposition
    accumulates and appends the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        ordered = tuple(sorted(float(b) for b in buckets))
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram buckets must be distinct")
        self.buckets = ordered
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(ordered) + 1)  # last = overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = _bucket_index(self.buckets, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; the last is ``+Inf``."""
        with self._lock:
            return list(self._bucket_counts)

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def samples(self, name: str, labels: str) -> List[str]:
        with self._lock:
            counts = list(self._bucket_counts)
            total, acc = self._count, self._sum
        lines = []
        cumulative = 0
        for boundary, count in zip(self.buckets, counts):
            cumulative += count
            lines.append(f"{name}_bucket{_merge_le(labels, boundary)} "
                         f"{cumulative}")
        lines.append(f'{name}_bucket{_merge_le(labels, math.inf)} {total}')
        lines.append(f"{name}_sum{labels} {format_value(acc)}")
        lines.append(f"{name}_count{labels} {total}")
        return lines


def _bucket_index(buckets: Tuple[float, ...], value: float) -> int:
    """The first bucket with ``value <= boundary``, else the overflow."""
    for index, boundary in enumerate(buckets):
        if value <= boundary:
            return index
    return len(buckets)


def _merge_le(labels: str, boundary: float) -> str:
    le = "+Inf" if math.isinf(boundary) else format_value(boundary)
    if labels:
        return f'{labels[:-1]},le="{le}"}}'
    return f'{{le="{le}"}}'


def format_value(value: float) -> str:
    """Render a sample value: integers without the trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class Family:
    """One named metric with a fixed label schema.

    ``labels(**values)`` returns the child instrument for one label-value
    combination; families declared with no labels proxy the instrument
    API directly (``family.inc()`` etc.).
    """

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], factory):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self._children[()] = factory()

    @property
    def kind(self) -> str:
        return self._factory().kind if not self._children \
            else next(iter(self._children.values())).kind

    def labels(self, **values: str):
        if set(values) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(values))}")
        key = tuple(str(values[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._factory())
        return child

    # -- no-label proxying ---------------------------------------------------

    def _default(self):
        if self.labelnames:
            raise ValueError(f"{self.name} has labels {self.labelnames}; "
                             "use .labels(...)")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value

    # -- exposition ----------------------------------------------------------

    def children(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, child in self.children():
            if key:
                pairs = ",".join(
                    f'{name}="{_escape_label(value)}"'
                    for name, value in zip(self.labelnames, key))
                labels = "{" + pairs + "}"
            else:
                labels = ""
            lines.extend(child.samples(self.name, labels))
        return lines


class MetricsRegistry:
    """A named collection of metric families, safe for concurrent use.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family, so independent modules can
    share instruments without plumbing them around.  Re-declaring a name
    as a different kind (or different labels) is a programming error and
    raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, Family] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Family:
        return self._get_or_create(name, help_text, labelnames, Counter)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Family:
        return self._get_or_create(name, help_text, labelnames, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Family:
        return self._get_or_create(name, help_text, labelnames,
                                   lambda: Histogram(buckets))

    def get(self, name: str) -> Optional[Family]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[Family]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def _get_or_create(self, name: str, help_text: str,
                       labelnames: Sequence[str], factory) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(name, help_text, labelnames, factory)
                self._families[name] = family
                return family
        probe = factory()
        if family.kind != probe.kind:
            raise ValueError(f"{name} already registered as {family.kind}")
        if family.labelnames != tuple(labelnames):
            raise ValueError(f"{name} already registered with labels "
                             f"{family.labelnames}")
        return family

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every family."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")
