"""Run-status aggregation: the ``GET /status`` snapshot behind the monitor.

:class:`StatusTracker` is an :class:`~repro.observe.events.EventSink`
that folds the live event stream into a compact run-status summary —
current round, mutants/sec over a sliding window, acceptance tallies,
checkpoint high-water mark, discrepancy and triage counts — and, at
snapshot time, reads the shared
:class:`~repro.observe.registry.MetricsRegistry` for everything the
instruments already track (bitmap-prefilter outcomes, per-vendor JVM
runs, cache hit rates, unique-trace and coverage-slot gauges).

Everything mutable lives behind one lock; ``snapshot()`` copies under it
and assembles the JSON-ready dict outside, so an HTTP scrape holds the
lock for microseconds regardless of response size.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.observe.events import (
    BATCH_ROUND,
    CHECKPOINT_WRITTEN,
    DISCREPANCY_FOUND,
    ITERATION,
    MUTANT_DISCARDED,
    TRIAGE_CLUSTER,
    Event,
    EventSink,
)
from repro.observe.registry import MetricsRegistry

#: Sliding-window length (seconds) for the mutants/sec estimate.
RATE_WINDOW_SECONDS = 30.0

#: Total bitmap slots (mirrors ``repro.coverage.bitmap.BITMAP_SIZE``;
#: duplicated here so ``observe`` stays importable without ``coverage``).
_BITMAP_SLOTS = 1 << 16


def config_fingerprint(config: Dict[str, Any]) -> str:
    """A short stable fingerprint of a run configuration dict."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


class StatusTracker(EventSink):
    """Folds events + registry reads into one ``/status`` snapshot."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 rate_window: float = RATE_WINDOW_SECONDS):
        self._registry = registry
        self._lock = threading.Lock()
        self._rate_window = rate_window
        self._started = time.time()
        # -- run identity (set via begin_run/update) --
        self._run: Dict[str, Any] = {}
        self._extra: Dict[str, Any] = {}
        # -- service-job context (set via set_job; daemon-managed legs) --
        self._job: Dict[str, Any] = {}
        # -- event-folded tallies --
        self._iterations = 0
        self._accepted = 0
        self._generated = 0
        self._round = 0
        self._tests = 0
        self._pool = 0
        self._algorithm: Optional[str] = None
        self._discards: Dict[str, int] = {}
        self._discrepancies = 0
        self._recent_discrepancies: deque = deque(maxlen=10)
        self._clusters = 0
        self._checkpoint: Dict[str, Any] = {}
        self._census: Dict[str, int] = {}
        self._iteration_times: deque = deque(maxlen=4096)

    # -- run identity --------------------------------------------------------

    def begin_run(self, run_id: str, config: Optional[Dict[str, Any]] = None,
                  **fields: Any) -> None:
        """Declare the run this tracker is watching (id + config)."""
        config = dict(config or {})
        with self._lock:
            self._run = {"id": run_id,
                         "config": config,
                         "config_fingerprint": config_fingerprint(config),
                         "started": time.time()}
            self._run.update(fields)

    def update(self, **fields: Any) -> None:
        """Merge free-form campaign-level fields into the snapshot."""
        with self._lock:
            self._extra.update(fields)

    def set_job(self, **fields: Any) -> None:
        """Record the service-job context of a daemon-managed run.

        The `repro serve` worker sets the fields the run itself cannot
        know — ``id`` (the queue's job id), ``leg``/``legs`` (this leg's
        1-based index and the job's leg count), and ``queue_depth``
        (jobs queued behind this one when the leg started).  They
        surface as the snapshot's ``job`` section (empty for
        foreground runs); see ``docs/architecture.md`` for the full
        ``/status`` schema.
        """
        with self._lock:
            self._job.update(fields)

    # -- the sink ------------------------------------------------------------

    def emit(self, event: Event) -> None:
        with self._lock:
            self._census[event.type] = self._census.get(event.type, 0) + 1
            if event.type == ITERATION:
                self._iterations += 1
                self._iteration_times.append(event.ts)
                if event.fields.get("generated"):
                    self._generated += 1
                if event.fields.get("accepted"):
                    self._accepted += 1
                self._tests = int(event.fields.get("tests", self._tests))
                self._pool = int(event.fields.get("pool", self._pool))
                algorithm = event.fields.get("algorithm")
                if algorithm is not None:
                    self._algorithm = str(algorithm)
            elif event.type == BATCH_ROUND:
                self._round = int(event.fields.get("round", self._round))
            elif event.type == MUTANT_DISCARDED:
                category = str(event.fields.get("category", "?"))
                self._discards[category] = \
                    self._discards.get(category, 0) + 1
            elif event.type == CHECKPOINT_WRITTEN:
                self._checkpoint = {
                    "index": event.fields.get("index"),
                    "iterations": event.fields.get("iterations"),
                    "path": event.fields.get("path"),
                    "ts": event.ts,
                }
            elif event.type == DISCREPANCY_FOUND:
                self._discrepancies += 1
                self._recent_discrepancies.append(
                    {"label": event.fields.get("label"),
                     "codes": event.fields.get("codes")})
            elif event.type == TRIAGE_CLUSTER:
                self._clusters += 1

    # -- snapshot assembly ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The JSON-ready status document (copies state under the lock)."""
        now = time.time()
        with self._lock:
            run = dict(self._run)
            extra = dict(self._extra)
            job = dict(self._job)
            iterations = self._iterations
            accepted = self._accepted
            generated = self._generated
            times = list(self._iteration_times)
            progress = {
                "round": self._round,
                "iterations": iterations,
                "generated": generated,
                "accepted": accepted,
                "acceptance_rate": (accepted / iterations)
                if iterations else 0.0,
                "algorithm": self._algorithm,
                "tests": self._tests,
                "pool": self._pool,
                "discards": dict(self._discards),
            }
            discrepancies = {
                "total": self._discrepancies,
                "recent": list(self._recent_discrepancies),
                "triage_clusters": self._clusters,
            }
            checkpoint = dict(self._checkpoint)
            census = dict(self._census)
        progress["mutants_per_second"] = self._window_rate(times, now)
        if checkpoint.get("ts") is not None:
            checkpoint["age_seconds"] = round(now - checkpoint.pop("ts"), 3)
        if run.get("started") is not None:
            run["uptime_seconds"] = round(now - run["started"], 3)
        status = {
            "run": run,
            "campaign": extra,
            "job": job,
            "progress": progress,
            "coverage": self._coverage_section(),
            "prefilter": self._prefilter_section(),
            "executor": self._executor_section(),
            "discrepancies": discrepancies,
            "checkpoint": checkpoint,
            "events": census,
            "now": now,
        }
        return status

    def _window_rate(self, times: List[float], now: float) -> float:
        cutoff = now - self._rate_window
        recent = [t for t in times if t >= cutoff]
        if len(recent) < 2:
            return 0.0
        span = max(now - recent[0], 1e-9)
        return round(len(recent) / span, 3)

    # -- registry reads ------------------------------------------------------

    def _family_values(self, name: str) -> List[Any]:
        """``[(label-tuple, value)]`` for one family, or ``[]``."""
        if self._registry is None:
            return []
        family = self._registry.get(name)
        if family is None:
            return []
        values = []
        for key, child in family.children():
            try:
                values.append((key, child.value))
            except AttributeError:  # histograms have no scalar .value
                continue
        return values

    def _coverage_section(self) -> Dict[str, Any]:
        unique = {".".join(k) if k else "all": v for k, v
                  in self._family_values("repro_unique_traces")}
        slots = {".".join(k) if k else "all": int(v) for k, v
                 in self._family_values("repro_coverage_bitmap_slots")}
        section: Dict[str, Any] = {"unique_traces": unique,
                                   "bitmap_slots": slots}
        if slots:
            filled = max(slots.values())
            section["bitmap_occupancy"] = round(filled / _BITMAP_SLOTS, 6)
        return section

    def _prefilter_section(self) -> Dict[str, Any]:
        by_criterion: Dict[str, Dict[str, float]] = {}
        for key, value in self._family_values(
                "repro_bitmap_prefilter_total"):
            criterion, outcome = key if len(key) == 2 else ("?", "?")
            by_criterion.setdefault(criterion, {})[outcome] = value
        section: Dict[str, Any] = {}
        for criterion, outcomes in sorted(by_criterion.items()):
            new = outcomes.get("new", 0.0)
            seen = outcomes.get("seen", 0.0)
            decided = new + seen
            section[criterion] = {
                "outcomes": {k: int(v) for k, v in sorted(outcomes.items())},
                "hit_rate": round(new / decided, 4) if decided else 0.0,
            }
        return section

    def _executor_section(self) -> Dict[str, Any]:
        vendor_runs = {".".join(k) if k else "all": int(v) for k, v
                       in self._family_values("repro_jvm_runs_total")}
        caches: Dict[str, Dict[str, int]] = {}
        for key, value in self._family_values("repro_cache_lookups_total"):
            store, result = key if len(key) == 2 else ("?", "?")
            caches.setdefault(store, {})[result] = int(value)
        cache_section = {}
        for store, results in sorted(caches.items()):
            hits = results.get("hit", 0)
            total = sum(results.values())
            cache_section[store] = {
                "lookups": results,
                "hit_rate": round(hits / total, 4) if total else 0.0,
            }
        batches = {".".join(k) if k else "all": int(v) for k, v
                   in self._family_values("repro_executor_batches_total")}
        section = {"vendor_runs": vendor_runs, "caches": cache_section,
                   "batches": batches}
        workers = self._worker_subsection()
        if workers:
            section["workers"] = workers
        return section

    def _worker_subsection(self) -> Dict[str, Any]:
        """Warm/cold run split of the process backend's reference workers.

        Empty (and omitted from the snapshot) for thread/serial runs,
        which never start worker processes.
        """
        runs = {".".join(k) if k else "?": int(v) for k, v
                in self._family_values("repro_worker_runs_total")}
        if not runs:
            return {}
        warm = runs.get("warm", 0)
        total = sum(runs.values())
        recycles = sum(int(v) for _, v in self._family_values(
            "repro_worker_recycles_total"))
        return {"runs": runs,
                "warm_rate": round(warm / total, 4) if total else 0.0,
                "recycles": recycles}
