"""Server-Sent-Events fan-out: per-client bounded queues over the bus.

The monitor server (:mod:`repro.observe.server`) exposes the live event
stream as ``GET /events``.  The bridge between the fuzzing hot path and
an arbitrary number of HTTP clients is :class:`SseSink`: one
:class:`EventSink` attached to the bus, holding one bounded
:class:`queue.Queue` per connected client.

The cardinal rule is that **a slow client can never stall the hot
path**.  ``emit`` therefore never blocks: it uses ``put_nowait``, and
when a client's queue is full it drops the *oldest* queued event to make
room (the client sees the freshest state, which is what a live monitor
wants) and counts the drop in
``repro_monitor_dropped_events_total{client}``.  The serving thread on
the other end blocks on ``get`` with a timeout so it can heartbeat idle
connections and notice disconnects.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Dict, List, Optional

from repro.observe.events import Event, EventSink
from repro.observe.registry import MetricsRegistry

#: Default per-client queue depth.  At randfuzz iteration rates a client
#: that keeps up drains far faster than this fills; a stalled curl caps
#: its memory at this many events and starts shedding the oldest.
DEFAULT_CLIENT_QUEUE = 512


class SseClient:
    """One connected ``/events`` consumer: a bounded queue plus tallies."""

    __slots__ = ("name", "_queue", "dropped", "_lock")

    def __init__(self, name: str, capacity: int = DEFAULT_CLIENT_QUEUE):
        self.name = name
        self._queue: "queue.Queue[Event]" = queue.Queue(maxsize=capacity)
        self.dropped = 0
        self._lock = threading.Lock()

    def offer(self, event: Event) -> bool:
        """Enqueue without blocking; shed the oldest entry on overflow.

        Returns true iff an older event was dropped to make room.
        """
        try:
            self._queue.put_nowait(event)
            return False
        except queue.Full:
            pass
        # Shed-then-retry under the client lock so two producers cannot
        # both shed for the same slot; the hot path still never waits on
        # a consumer, only on this (uncontended, bounded) bookkeeping.
        with self._lock:
            dropped = False
            while True:
                try:
                    self._queue.put_nowait(event)
                    return dropped
                except queue.Full:
                    try:
                        self._queue.get_nowait()
                        dropped = True
                        self.dropped += 1
                    except queue.Empty:
                        continue

    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """Dequeue the next event, or ``None`` after ``timeout``."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def pending(self) -> int:
        return self._queue.qsize()


class SseSink(EventSink):
    """Fans bus events out to every registered client, never blocking.

    Attach once to the bus; ``register`` per connection.  Registration
    and emission are both lock-guarded, but emission holds the sink lock
    only long enough to snapshot the client list — the per-client
    ``offer`` runs outside it.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 client_queue: int = DEFAULT_CLIENT_QUEUE):
        self._clients: Dict[str, SseClient] = {}
        self._lock = threading.Lock()
        self._capacity = client_queue
        self._ids = itertools.count(1)
        self._dropped_total = None
        if registry is not None:
            self._dropped_total = registry.counter(
                "repro_monitor_dropped_events_total",
                "Events shed from a slow /events client's bounded queue.",
                ("client",))

    def register(self, name: Optional[str] = None) -> SseClient:
        """Add a client queue; ``name`` defaults to ``client-N``."""
        with self._lock:
            if name is None or name in self._clients:
                name = f"client-{next(self._ids)}"
            client = SseClient(name, capacity=self._capacity)
            self._clients[name] = client
        return client

    def unregister(self, client: SseClient) -> None:
        with self._lock:
            self._clients.pop(client.name, None)

    def clients(self) -> List[SseClient]:
        with self._lock:
            return list(self._clients.values())

    def emit(self, event: Event) -> None:
        for client in self.clients():
            if client.offer(event) and self._dropped_total is not None:
                self._dropped_total.labels(client=client.name).inc()

    def close(self) -> None:
        with self._lock:
            self._clients.clear()
