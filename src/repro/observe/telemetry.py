"""The telemetry bundle threaded through the pipeline.

One :class:`Telemetry` couples the three layers of ``repro.observe``:

* a :class:`~repro.observe.registry.MetricsRegistry` (counters, gauges,
  latency histograms);
* an :class:`~repro.observe.events.EventBus` with pluggable sinks;
* a :class:`~repro.observe.tracing.Tracer` for span-based timing.

Every instrumented entry point (the fuzzing algorithms, the execution
engines, the differential harness, the campaign orchestrator) takes an
optional ``telemetry`` argument defaulting to ``None`` — the disabled
state costs one ``is None`` check per site.  :meth:`Telemetry.activate`
additionally installs the bundle as the process-wide ambient telemetry
so the JVM startup phases (which no campaign object reaches directly)
trace themselves.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.observe.events import JVM_PHASE, EventBus, JsonlSink, \
    RingBufferSink, StderrProgressSink
from repro.observe.registry import MetricsRegistry
from repro.observe.tracing import NULL_SPAN, Span, Tracer, \
    install_ambient, uninstall_ambient


class Telemetry:
    """Registry + event bus + tracer, as one pluggable unit.

    Attributes:
        registry: the metrics registry every instrument records into.
        bus: the structured event bus (disabled until a sink attaches).
        tracer: the span factory bound to both.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 bus: Optional[EventBus] = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.bus = bus if bus is not None else EventBus()
        self.tracer = Tracer(self.registry, self.bus)
        self.status = None  # set by attach_status (the --serve path)
        self._jvm_phase_seconds = self.registry.histogram(
            "repro_jvm_phase_seconds",
            "Latency of the four JVM startup phases.",
            ("vendor", "phase"))

    # -- events --------------------------------------------------------------

    def emit(self, event_type: str, **fields) -> None:
        """Emit a structured event (no-op when the bus has no sinks)."""
        self.bus.emit(event_type, **fields)

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, event_type: Optional[str] = None,
             **attrs) -> Span:
        return self.tracer.span(name, event_type, **attrs)

    def jvm_phase_span(self, vendor: str, phase: str) -> Span:
        """A span for one JVM startup phase (loading/linking/init/exec).

        Feeds both the generic span histogram and the dedicated
        ``repro_jvm_phase_seconds{vendor,phase}`` family, and emits a
        ``jvm_phase`` event when the bus is live.
        """
        span = self.tracer.span(f"jvm.{phase}", event_type=JVM_PHASE,
                                vendor=vendor, phase=phase)
        hist = self._jvm_phase_seconds.labels(vendor=vendor, phase=phase)
        return _PhaseSpan(span, hist)

    def attach_status(self, tracker=None):
        """Attach (or return the already-attached) status tracker sink.

        Idempotent: the first call wires a
        :class:`~repro.observe.status.StatusTracker` into the bus and
        remembers it on :attr:`status`; later calls return the same
        tracker so a monitor server and a campaign orchestrator can both
        reach it without double-counting events.
        """
        if self.status is None:
            if tracker is None:
                from repro.observe.status import StatusTracker
                tracker = StatusTracker(self.registry)
            self.status = tracker
            self.bus.add_sink(tracker)
        return self.status

    # -- lifecycle -----------------------------------------------------------

    def activate(self) -> "_ActiveTelemetry":
        """Install as the process-wide ambient telemetry (context manager)."""
        return _ActiveTelemetry(self)

    def close(self) -> None:
        """Flush and close every attached sink."""
        self.bus.close()

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()


class _PhaseSpan:
    """Wraps a span to also record the vendor/phase latency histogram."""

    __slots__ = ("_span", "_hist")

    def __init__(self, span: Span, hist):
        self._span = span
        self._hist = hist

    def note(self, **attrs) -> None:
        self._span.note(**attrs)

    def __enter__(self) -> "_PhaseSpan":
        self._span.__enter__()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._span.__exit__(*exc_info)
        self._hist.observe(self._span.seconds)
        return False


class _ActiveTelemetry:
    """Context manager installing/uninstalling the ambient telemetry."""

    def __init__(self, telemetry: Telemetry):
        self.telemetry = telemetry

    def __enter__(self) -> Telemetry:
        install_ambient(self.telemetry)
        return self.telemetry

    def __exit__(self, *exc_info) -> bool:
        uninstall_ambient(self.telemetry)
        return False


def make_telemetry(events_path: Optional[Union[str, Path]] = None,
                   ring_capacity: Optional[int] = None,
                   progress: bool = False,
                   progress_every: int = 100) -> Telemetry:
    """Build a telemetry bundle from the CLI-flag surface.

    Args:
        events_path: attach a :class:`JsonlSink` writing here.
        ring_capacity: attach a :class:`RingBufferSink` of this size.
        progress: attach the live stderr progress sink.
        progress_every: progress line interval, in iteration events.
    """
    telemetry = Telemetry()
    if events_path is not None:
        telemetry.bus.add_sink(JsonlSink(events_path))
    if ring_capacity is not None:
        telemetry.bus.add_sink(RingBufferSink(ring_capacity))
    if progress:
        telemetry.bus.add_sink(StderrProgressSink(every=progress_every))
    return telemetry
