"""Offline analysis of recorded telemetry: summarise, replay, export.

This is the backend of the ``repro observe`` CLI command.  It consumes
the JSONL event logs written by :class:`~repro.observe.events.JsonlSink`
and the Prometheus text dumps written by
:meth:`~repro.observe.registry.MetricsRegistry.render_prometheus`:

* :func:`summarize_events` — the campaign post-mortem: per-algorithm
  acceptance rates (overall and per quartile, so coverage-growth stalls
  are visible), per-phase JVM latency, executor batches, MCMC traffic;
* :func:`replay_events` — a human-readable line-per-event replay;
* :func:`write_timeseries` — the coverage-growth / acceptance-rate
  time series as CSV, one row per recorded iteration;
* :func:`parse_prometheus` / :func:`check_prometheus` — validate a
  metrics dump and assert the core counter families exist (the CI
  smoke-job contract).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.observe.events import (
    DISCREPANCY_FOUND,
    EVENT_TYPES,
    EXECUTOR_BATCH,
    ITERATION,
    JVM_PHASE,
    MCMC_TRANSITION,
    Event,
    read_events,
)

#: Metric families every instrumented campaign run must expose (the CI
#: contract checked by ``repro observe check``).
CORE_METRIC_FAMILIES = (
    "repro_iterations_total",
    "repro_mutants_accepted_total",
    "repro_jvm_runs_total",
    "repro_jvm_phase_seconds",
    "repro_executor_batches_total",
    "repro_cache_lookups_total",
)

#: The four JVM startup phases, in pipeline order.
STARTUP_PHASES = ("loading", "linking", "initialization", "execution")


def load_events(path: Union[str, Path]) -> List[Event]:
    """Read a JSONL event log fully into memory."""
    return list(read_events(path))


def _duration(start: Optional[float], end: Optional[float]) -> str:
    if start is None or end is None:
        return "-"
    return f"{max(0.0, end - start):.1f}s"


def summarize_job(record: Dict) -> str:
    """Render a service job's queue timings and per-leg outcomes.

    ``record`` is a ``job.json`` document from the service daemon's
    state root (``repro observe summary <job dir>`` reads it next to
    the legs' event logs).  Timings are the queue's view of the job:
    time spent ``queued`` (created to first start — requeues from
    daemon restarts don't reset it), ``running`` (first start to
    finish), and end-to-end.
    """
    lines = [f"=== Job {record.get('id', '?')} "
             f"({record.get('state', '?')}) ==="]
    spec = record.get("spec") or {}
    lines.append(f"type: {spec.get('type', '?')}")
    created = record.get("created")
    started = record.get("started")
    finished = record.get("finished")
    lines.append("queued   -> started : " + _duration(created, started))
    lines.append("started  -> finished: " + _duration(started, finished))
    lines.append("submitted-> finished: " + _duration(created, finished))
    if record.get("error"):
        lines.append(f"error: {record['error']}")
    legs = record.get("legs") or []
    if legs:
        rows = [[leg.get("label", "?"), str(leg.get("state", "?")),
                 str(leg.get("attempts", 0)),
                 _duration(leg.get("started"), leg.get("finished"))]
                for leg in legs]
        lines.append("")
        lines.extend(_render_rows(
            ["leg", "state", "attempts", "runtime"], rows))
    return "\n".join(lines)


def _render_rows(headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return lines


def _quantile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def summarize_events(events: Sequence[Event]) -> str:
    """Render the post-mortem summary of a recorded event log."""
    if not events:
        return "no events recorded"
    lines: List[str] = []
    span = max(e.ts for e in events) - min(e.ts for e in events)
    lines.append(f"{len(events)} events over {span:.2f}s wall-clock")
    lines.append("")

    # Event census.
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.type] = counts.get(event.type, 0) + 1
    lines.append("=== Event counts ===")
    rows = [[name, str(counts[name])]
            for name in EVENT_TYPES if name in counts]
    rows.extend([name, str(count)] for name, count in sorted(counts.items())
                if name not in EVENT_TYPES)
    lines.extend(_render_rows(["event", "count"], rows))

    iteration_events = [e for e in events if e.type == ITERATION]
    if iteration_events:
        lines.append("")
        lines.append("=== Acceptance rate (per algorithm, by quartile) ===")
        by_algorithm: Dict[str, List[Event]] = {}
        for event in iteration_events:
            by_algorithm.setdefault(
                str(event.fields.get("algorithm", "?")), []).append(event)
        rows = []
        for algorithm in sorted(by_algorithm):
            run = by_algorithm[algorithm]
            accepted = sum(1 for e in run if e.fields.get("accepted"))
            quartiles = []
            for quarter in range(4):
                lo = quarter * len(run) // 4
                hi = (quarter + 1) * len(run) // 4
                window = run[lo:hi]
                hits = sum(1 for e in window if e.fields.get("accepted"))
                quartiles.append(f"{hits / len(window):.1%}"
                                 if window else "-")
            rows.append([algorithm, str(len(run)), str(accepted),
                         f"{accepted / len(run):.1%}"] + quartiles)
        lines.extend(_render_rows(
            ["algorithm", "iterations", "accepted", "rate",
             "q1", "q2", "q3", "q4"], rows))

    phase_events = [e for e in events if e.type == JVM_PHASE]
    if phase_events:
        lines.append("")
        lines.append("=== JVM phase latency ===")
        by_phase: Dict[str, List[float]] = {}
        for event in phase_events:
            by_phase.setdefault(str(event.fields.get("phase", "?")),
                                []).append(float(
                                    event.fields.get("seconds", 0.0)))
        rows = []
        ordered = [p for p in STARTUP_PHASES if p in by_phase]
        ordered += sorted(set(by_phase) - set(STARTUP_PHASES))
        for phase in ordered:
            samples = by_phase[phase]
            mean_ms = sum(samples) / len(samples) * 1000.0
            p95_ms = _quantile(samples, 0.95) * 1000.0
            rows.append([phase, str(len(samples)),
                         f"{sum(samples):.3f}", f"{mean_ms:.3f}",
                         f"{p95_ms:.3f}"])
        lines.extend(_render_rows(
            ["phase", "spans", "total_s", "mean_ms", "p95_ms"], rows))

    batch_events = [e for e in events if e.type == EXECUTOR_BATCH]
    if batch_events:
        lines.append("")
        lines.append("=== Executor batches ===")
        sizes = [int(e.fields.get("size", 0)) for e in batch_events]
        seconds = [float(e.fields.get("seconds", 0.0))
                   for e in batch_events]
        lines.append(f"{len(batch_events)} batches, "
                     f"{sum(sizes)} classfiles, "
                     f"mean {sum(sizes) / len(sizes):.1f}/batch, "
                     f"{sum(seconds):.2f}s total")

    transitions = [e for e in events if e.type == MCMC_TRANSITION]
    if transitions:
        lines.append("")
        lines.append("=== MCMC chain ===")
        targets: Dict[str, int] = {}
        proposals = 0
        for event in transitions:
            targets[str(event.fields.get("to", "?"))] = \
                targets.get(str(event.fields.get("to", "?")), 0) + 1
            proposals += int(event.fields.get("proposals", 1))
        lines.append(f"{len(transitions)} transitions, "
                     f"{proposals} proposals "
                     f"({proposals / len(transitions):.2f} per step)")
        top = sorted(targets.items(), key=lambda kv: -kv[1])[:5]
        lines.extend(_render_rows(
            ["mutator", "visits"],
            [[name, str(count)] for name, count in top]))

    discrepancies = [e for e in events if e.type == DISCREPANCY_FOUND]
    if discrepancies:
        lines.append("")
        lines.append(f"=== {len(discrepancies)} discrepancies ===")
        for event in discrepancies[:10]:
            lines.append(f"  {event.fields.get('label', '?')}: "
                         f"codes={event.fields.get('codes')}")
        if len(discrepancies) > 10:
            lines.append(f"  ... and {len(discrepancies) - 10} more")

    return "\n".join(lines)


def replay_events(events: Iterable[Event],
                  event_type: Optional[str] = None,
                  limit: Optional[int] = None) -> str:
    """One human-readable line per event, optionally filtered/truncated."""
    lines = []
    for event in events:
        if event_type is not None and event.type != event_type:
            continue
        payload = " ".join(f"{key}={event.fields[key]}"
                           for key in sorted(event.fields))
        lines.append(f"#{event.seq:<6d} {event.type:18s} {payload}")
        if limit is not None and len(lines) >= limit:
            lines.append("...")
            break
    return "\n".join(lines) if lines else "no matching events"


def write_timeseries(events: Sequence[Event],
                     path: Union[str, Path]) -> int:
    """Write the acceptance/coverage-growth time series as CSV.

    One row per ``iteration`` event:
    ``algorithm,iteration,accepted,accepted_total,acceptance_rate,
    tests,pool``.  Returns the number of data rows written.
    """
    header = ("algorithm,iteration,accepted,accepted_total,"
              "acceptance_rate,tests,pool")
    rows = [header]
    totals: Dict[str, Tuple[int, int]] = {}  # algorithm -> (seen, accepted)
    for event in events:
        if event.type != ITERATION:
            continue
        algorithm = str(event.fields.get("algorithm", "?"))
        seen, accepted_total = totals.get(algorithm, (0, 0))
        seen += 1
        accepted = 1 if event.fields.get("accepted") else 0
        accepted_total += accepted
        totals[algorithm] = (seen, accepted_total)
        rows.append(",".join([
            algorithm,
            str(event.fields.get("index", seen - 1)),
            str(accepted),
            str(accepted_total),
            f"{accepted_total / seen:.4f}",
            str(event.fields.get("tests", "")),
            str(event.fields.get("pool", "")),
        ]))
    Path(path).write_text("\n".join(rows) + "\n", encoding="utf-8")
    return len(rows) - 1


def summarize_prefilter(samples: Dict[str, List[
        Tuple[Dict[str, str], float]]]) -> Optional[str]:
    """Render the bitmap-prefilter hit/miss ratio from parsed metrics.

    Reads the ``repro_bitmap_prefilter_total{criterion,outcome}``
    counters out of a :func:`parse_prometheus` result; returns ``None``
    when the run recorded none (exact-index runs).
    """
    rows = samples.get("repro_bitmap_prefilter_total")
    if not rows:
        return None
    by_criterion: Dict[str, Dict[str, float]] = {}
    for labels, value in rows:
        criterion = labels.get("criterion", "?")
        outcome = labels.get("outcome", "?")
        per = by_criterion.setdefault(criterion, {})
        per[outcome] = per.get(outcome, 0.0) + value
    lines = ["=== Bitmap prefilter ==="]
    for criterion in sorted(by_criterion):
        outcomes = by_criterion[criterion]
        new = outcomes.get("new", 0.0)
        seen = outcomes.get("seen", 0.0)
        bypass = outcomes.get("bypass", 0.0)
        decided = new + seen
        rate = f"{new / decided:.1%}" if decided else "-"
        line = (f"[{criterion}] {int(new)} new / {int(seen)} seen "
                f"(hit rate {rate})")
        if bypass:
            line += f", {int(bypass)} bypassed"
        lines.append(line)
    return "\n".join(lines)


def summarize_workers(samples: Dict[str, List[
        Tuple[Dict[str, str], float]]]) -> Optional[str]:
    """Render the worker-process warm/cold run split from parsed metrics.

    Reads the ``repro_worker_runs_total{state}`` and
    ``repro_worker_recycles_total`` counters out of a
    :func:`parse_prometheus` result; returns ``None`` when the run
    recorded none (thread/serial runs, which never start workers).
    """
    rows = samples.get("repro_worker_runs_total")
    if not rows:
        return None
    by_state: Dict[str, float] = {}
    for labels, value in rows:
        state = labels.get("state", "?")
        by_state[state] = by_state.get(state, 0.0) + value
    warm = by_state.get("warm", 0.0)
    cold = by_state.get("cold", 0.0)
    total = sum(by_state.values())
    recycles = sum(value for _, value
                   in samples.get("repro_worker_recycles_total", []))
    lines = ["=== Worker runs ==="]
    rate = f"{warm / total:.1%}" if total else "-"
    lines.append(f"{int(warm)} warm / {int(cold)} cold "
                 f"(warm rate {rate}), {int(recycles)} recycles")
    return "\n".join(lines)


# -- Prometheus dump validation ---------------------------------------------

# The value alternation must allow scientific notation with a signed
# exponent (e.g. ``8.9e-05``, common in seconds-valued sums) — a naive
# character class without ``-`` rejects those samples as malformed.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[-+]?(?:[0-9.]+(?:[eE][-+]?[0-9]+)?|[Nn]a[Nn]|[Ii]nf))$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> Dict[str, List[
        Tuple[Dict[str, str], float]]]:
    """Parse a Prometheus text dump into ``{metric: [(labels, value)]}``.

    Raises ``ValueError`` on a malformed sample line, so the CI check
    fails loudly rather than silently accepting garbage.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample at line {lineno}: {line!r}")
        labels = {}
        if match.group("labels"):
            labels = {name: value for name, value
                      in _LABEL_RE.findall(match.group("labels"))}
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"malformed value at line {lineno}: {line!r}") from None
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


def check_prometheus(text: str,
                     required: Sequence[str] = CORE_METRIC_FAMILIES
                     ) -> List[str]:
    """Validate a metrics dump; returns a list of problems (empty = OK).

    A histogram family ``f`` is matched by any of its ``f_bucket``/
    ``f_sum``/``f_count`` series.
    """
    try:
        samples = parse_prometheus(text)
    except ValueError as exc:
        return [str(exc)]
    problems = []
    for family in required:
        present = any(name == family or
                      name in (f"{family}_bucket", f"{family}_sum",
                               f"{family}_count")
                      for name in samples)
        if not present:
            problems.append(f"missing metric family: {family}")
    return problems
