"""The structured event bus: typed events, pluggable sinks.

Every stage of the fuzz → coverage → difftest pipeline emits typed
events so a campaign can be watched live, recorded to disk, and replayed
offline.  The taxonomy (one constant per type, all in
:data:`EVENT_TYPES`):

================== ========================================================
type               emitted by
================== ========================================================
``iteration``      the fuzzing loop, once per mutation iteration
``mutant_accepted``  the fuzzing loop, when a mutant joins TestClasses
``mutant_discarded`` the mutation engine, when an iteration produced
                   no classfile (with the discard category)
``mcmc_transition``  the Metropolis–Hastings chain, per accepted proposal
``batch_round``    the speculative fuzzing pipeline, per batch round
``seed_scheduled`` the seed pool, per scheduled mutation seed pick
``checkpoint_written``  the campaign checkpoint layer, per checkpoint
``reduction_step`` the delta-debugging reducer, per surviving deletion
``jvm_phase``      the JVM startup pipeline, per phase span
``executor_batch`` the execution engine, per differential batch
``cache_hit``      the execution engine, per content-addressed cache hit
``discrepancy_found``  the differential harness
``triage_cluster`` the triage engine, once per newly discovered cluster
================== ========================================================

The bus is **no-op cheap when disabled**: with no sinks attached
``EventBus.enabled`` is false and every instrumentation site guards its
emission on it, so the hot path pays a single attribute check.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

# -- the taxonomy -----------------------------------------------------------

ITERATION = "iteration"
MUTANT_ACCEPTED = "mutant_accepted"
MUTANT_DISCARDED = "mutant_discarded"
MCMC_TRANSITION = "mcmc_transition"
BATCH_ROUND = "batch_round"
SEED_SCHEDULED = "seed_scheduled"
CHECKPOINT_WRITTEN = "checkpoint_written"
REDUCTION_STEP = "reduction_step"
JVM_PHASE = "jvm_phase"
EXECUTOR_BATCH = "executor_batch"
CACHE_HIT = "cache_hit"
DISCREPANCY_FOUND = "discrepancy_found"
TRIAGE_CLUSTER = "triage_cluster"

#: Every event type the pipeline emits.
EVENT_TYPES = (ITERATION, MUTANT_ACCEPTED, MUTANT_DISCARDED,
               MCMC_TRANSITION, BATCH_ROUND, SEED_SCHEDULED,
               CHECKPOINT_WRITTEN, REDUCTION_STEP, JVM_PHASE,
               EXECUTOR_BATCH, CACHE_HIT, DISCREPANCY_FOUND,
               TRIAGE_CLUSTER)


@dataclass(frozen=True)
class Event:
    """One structured event.

    Attributes:
        type: one of :data:`EVENT_TYPES`.
        ts: wall-clock timestamp (``time.time()``).
        seq: process-wide monotonically increasing sequence number, so
            recorded logs have a total order even at equal timestamps.
        fields: the type-specific payload (JSON-serialisable values).
    """

    type: str
    ts: float
    seq: int
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"type": self.type, "ts": self.ts, "seq": self.seq}
        record.update(self.fields)
        return json.dumps(record, sort_keys=True, default=str)

    @classmethod
    def from_json(cls, line: str) -> "Event":
        record = json.loads(line)
        return cls(type=record.pop("type"), ts=record.pop("ts"),
                   seq=record.pop("seq", 0), fields=record)


# -- sinks ------------------------------------------------------------------

class EventSink:
    """Interface: receive events one at a time; optionally flush/close."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further emits are undefined."""


class JsonlSink(EventSink):
    """Appends one JSON object per line to a file.

    The file is opened lazily on the first event so constructing a sink
    never touches the filesystem, and every event type round-trips
    through :meth:`Event.to_json`/:meth:`Event.from_json`.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.written = 0
        self._handle = None
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(event.to_json() + "\n")
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class RingBufferSink(EventSink):
    """Keeps the last ``capacity`` events in memory (for live inspection)."""

    def __init__(self, capacity: int = 4096):
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        with self._lock:
            self._events.append(event)

    def events(self, event_type: Optional[str] = None) -> List[Event]:
        with self._lock:
            snapshot = list(self._events)
        if event_type is None:
            return snapshot
        return [e for e in snapshot if e.type == event_type]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class StderrProgressSink(EventSink):
    """A live one-line-per-interval progress report on stderr.

    Prints a summary line every ``every`` iteration events (and every
    discrepancy immediately); all other event types only update internal
    tallies, so the sink is readable at randfuzz iteration rates.
    """

    def __init__(self, every: int = 100, stream=None):
        self.every = max(1, every)
        self.stream = stream if stream is not None else sys.stderr
        self._iterations = 0
        self._accepted = 0
        self._discrepancies = 0
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        with self._lock:
            if event.type == ITERATION:
                self._iterations += 1
                if event.fields.get("accepted"):
                    self._accepted += 1
                if self._iterations % self.every == 0:
                    rate = self._accepted / self._iterations
                    print(f"[observe] {event.fields.get('algorithm', '?')} "
                          f"iteration {self._iterations}: "
                          f"{self._accepted} accepted ({rate:.1%}), "
                          f"{self._discrepancies} discrepancies",
                          file=self.stream, flush=True)
            elif event.type == DISCREPANCY_FOUND:
                self._discrepancies += 1
                print(f"[observe] discrepancy: "
                      f"{event.fields.get('label', '?')} "
                      f"codes={event.fields.get('codes')}",
                      file=self.stream, flush=True)


class CallbackSink(EventSink):
    """Adapts a plain callable into a sink (handy in tests)."""

    def __init__(self, callback: Callable[[Event], None]):
        self._callback = callback

    def emit(self, event: Event) -> None:
        self._callback(event)


# -- the bus ----------------------------------------------------------------

class EventBus:
    """Fans events out to the attached sinks.

    Attributes:
        enabled: true iff at least one sink is attached.  Emission sites
            check this before building payloads, so a bus with no sinks
            costs one attribute read per site.
    """

    def __init__(self) -> None:
        self.sinks: List[EventSink] = []
        self.enabled = False
        self._lock = threading.Lock()
        self._seq = 0

    def add_sink(self, sink: EventSink) -> EventSink:
        with self._lock:
            self.sinks.append(sink)
            self.enabled = True
        return sink

    def emit(self, event_type: str, **fields: Any) -> None:
        """Build and dispatch one event (no-op when no sinks attached)."""
        if not self.enabled:
            return
        with self._lock:
            self._seq += 1
            event = Event(event_type, time.time(), self._seq, fields)
            for sink in self.sinks:
                sink.emit(event)

    def dispatch(self, event: Event) -> None:
        """Fan out an already-built event, preserving its ts/seq.

        This is the replay path (``repro monitor`` feeding a recorded
        log back through live sinks); the bus sequence is advanced past
        the event's so interleaved :meth:`emit` calls stay ordered.
        """
        if not self.enabled:
            return
        with self._lock:
            self._seq = max(self._seq, event.seq)
            for sink in self.sinks:
                sink.emit(event)

    def close(self) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.close()


def read_events(path: Union[str, Path]) -> Iterator[Event]:
    """Stream events back from a JSONL log (skipping blank lines).

    A malformed *final* line is tolerated silently — a campaign killed
    mid-write leaves a truncated tail, and the recorded prefix is still
    a valid log (the same contract as the triage store).  A malformed
    line anywhere else is real corruption and raises.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            yield Event.from_json(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # the crash-truncated tail
            raise
