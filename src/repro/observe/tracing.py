"""Span-based tracing: monotonic-clock context managers with nesting.

A :class:`Span` measures one region of the pipeline — a fuzz iteration,
a reference-JVM run, one of the four JVM startup phases, an executor
batch — on the monotonic clock (``time.perf_counter``).  Spans nest via
a thread-local stack, so each records its parent's name, and every
completed span feeds the ``repro_span_seconds{span=...}`` latency
histogram; spans opened with an ``event_type`` additionally emit a
structured event carrying the duration.

The JVM startup pipeline cannot be handed a telemetry object explicitly
(vendors construct :class:`~repro.jvm.machine.Jvm` instances far from
any campaign), so — exactly like the coverage probes — phase spans use a
process-wide *ambient* telemetry installed by
:meth:`~repro.observe.telemetry.Telemetry.activate`.  With nothing
installed, :func:`ambient_phase_span` returns a shared null span whose
enter/exit do nothing, keeping uninstrumented JVM runs no-op cheap.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.observe.events import JVM_PHASE


class NullSpan:
    """A span that measures nothing; shared singleton for disabled paths."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def note(self, **attrs: Any) -> None:
        """Accepts and drops attributes (API parity with :class:`Span`)."""


#: The shared do-nothing span.
NULL_SPAN = NullSpan()


class Span:
    """One timed region; use as a context manager.

    Attributes:
        name: the span name (e.g. ``jvm.linking``).
        parent: the enclosing span's name, or ``None`` at top level.
        seconds: the measured duration (populated on exit).
        attrs: free-form attributes included in the emitted event.
    """

    __slots__ = ("name", "parent", "seconds", "attrs", "_tracer",
                 "_event_type", "_started")

    def __init__(self, tracer: "Tracer", name: str,
                 event_type: Optional[str] = None,
                 attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.parent: Optional[str] = None
        self.seconds = 0.0
        self.attrs = attrs or {}
        self._tracer = tracer
        self._event_type = event_type
        self._started = 0.0

    def note(self, **attrs: Any) -> None:
        """Attach attributes mid-span (they ride on the emitted event)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            self.parent = stack[-1].name
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.seconds = time.perf_counter() - self._started
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finish(self, self._event_type)
        return False


class Tracer:
    """Creates spans bound to one registry/bus pair."""

    def __init__(self, registry, bus):
        self.registry = registry
        self.bus = bus
        self._span_seconds = registry.histogram(
            "repro_span_seconds",
            "Duration of traced pipeline spans.", ("span",))
        self._tls = threading.local()

    def span(self, name: str, event_type: Optional[str] = None,
             **attrs: Any) -> Span:
        """A new span; ``event_type`` makes exit emit a structured event."""
        return Span(self, name, event_type, attrs)

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- internals -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _finish(self, span: Span, event_type: Optional[str]) -> None:
        self._span_seconds.labels(span=span.name).observe(span.seconds)
        if event_type is not None and self.bus.enabled:
            self.bus.emit(event_type, span=span.name, parent=span.parent,
                          seconds=span.seconds, **span.attrs)


# -- ambient telemetry (for the JVM startup pipeline) -----------------------

#: The process-wide active telemetry, or ``None``.  Installed by
#: ``Telemetry.activate()``; deliberately *not* thread-local so JVM runs
#: on executor worker threads are captured too.
_AMBIENT = None
_AMBIENT_LOCK = threading.Lock()


def install_ambient(telemetry) -> None:
    global _AMBIENT
    with _AMBIENT_LOCK:
        if _AMBIENT is not None and _AMBIENT is not telemetry:
            raise RuntimeError("another Telemetry is already active")
        _AMBIENT = telemetry


def uninstall_ambient(telemetry) -> None:
    global _AMBIENT
    with _AMBIENT_LOCK:
        if _AMBIENT is telemetry:
            _AMBIENT = None


def ambient_telemetry():
    """The active process-wide telemetry, or ``None``."""
    return _AMBIENT


def ambient_phase_span(vendor: str, phase: str):
    """A span for one JVM startup phase, or the null span when inactive.

    The single ``_AMBIENT is None`` check is the entire disabled-path
    cost, mirroring the coverage probes' fast path.
    """
    telemetry = _AMBIENT
    if telemetry is None:
        return NULL_SPAN
    return telemetry.jvm_phase_span(vendor, phase)


__all__ = ["NullSpan", "NULL_SPAN", "Span", "Tracer", "JVM_PHASE",
           "install_ambient", "uninstall_ambient", "ambient_telemetry",
           "ambient_phase_span"]
