"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``corpus``   — generate the seed corpus as ``.class`` files;
* ``inspect``  — javap-style disassembly of a classfile;
* ``run``      — execute one classfile on one or all simulated JVMs;
* ``fuzz``     — run a fuzzing algorithm and save the accepted suite;
* ``difftest`` — differentially test a directory of classfiles;
* ``reduce``   — minimise a discrepancy-triggering classfile and render
  the bug-report text;
* ``campaign`` — the full Table 4 / Table 6 experiment at a scaled budget;
* ``distill``  — shrink a saved suite to a minimal subset covering the
  same interned statement/branch sites (greedy set cover);
* ``triage``   — cluster a suite's discrepancies into a deduplicated
  inventory, minimize representatives, and diff against a known-issue
  baseline so re-runs report only new clusters;
* ``observe``  — summarise, replay, or export a recorded telemetry log,
  and validate Prometheus metric dumps;
* ``monitor``  — serve a recorded events log through the live-monitor
  dashboard (replay mode);
* ``serve``    — the campaign orchestration daemon: durable job queue,
  supervised worker subprocesses, HTTP API + queue dashboard
  (:mod:`repro.service`);
* ``submit`` / ``jobs`` / ``cancel`` — talk to a running ``serve``
  daemon over HTTP.

``fuzz`` and ``campaign`` honour SIGTERM gracefully: the run stops at
the next round boundary, writes a final checkpoint (when running with
``--checkpoint-dir``), and exits with code 143 — distinct from Ctrl-C's
130 — so supervisors can requeue-and-resume instead of counting the
stop as a failure.

The JVM-running commands (``fuzz``, ``difftest``, ``campaign``) accept
``--events``/``--metrics-out``/``--progress`` to record structured
events and a metrics dump while they run, and ``--serve PORT`` to
expose the run live over HTTP (``/``, ``/metrics``, ``/status``,
``/events`` — see :mod:`repro.observe.server`).  ``fuzz`` and ``campaign``
also accept the corpus-subsystem flags: ``--seed-schedule`` picks the
seed-scheduling policy, ``--checkpoint-dir``/``--checkpoint-every``/
``--resume`` make runs crash-durable (a killed run resumed with
``--resume`` reproduces the uninterrupted run's suite exactly), and
``--coverage-index bitmap`` puts the fixed-width bitmap novelty
prefilter in front of the exact acceptance criteria (same decisions,
lower per-mutant cost — see :mod:`repro.coverage.bitmap`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.classfile.disassembler import disassemble
from repro.classfile.reader import read_class
from repro.classfile.writer import write_class
from repro.core.campaign import (
    ALL_ALGORITHMS,
    PAPER_BUDGET_SECONDS,
    format_mutator_report,
    format_table4,
    run_campaign,
    save_campaign_suites,
)
from repro.core.shutdown import (
    GRACEFUL_EXIT_CODE,
    GracefulShutdown,
    install_sigterm_handler,
    reset_shutdown,
)
from repro.core.difftest import DifferentialHarness
from repro.core.executor import make_executor
from repro.core.fuzzing import classfuzz, greedyfuzz, randfuzz, uniquefuzz
from repro.core.metrics import evaluate_suite, format_table
from repro.core.reporting import report_discrepancy
from repro.corpus import CorpusConfig, generate_corpus
from repro.jimple.from_classfile import lift_class
from repro.jimple.printer import print_class
from repro.jimple.to_classfile import compile_class_bytes
from repro.jvm.vendors import all_jvms, jvms_by_name
from repro.observe import make_telemetry
from repro.observe.summary import (
    CORE_METRIC_FAMILIES,
    check_prometheus,
    load_events,
    parse_prometheus,
    replay_events,
    summarize_events,
    summarize_job,
    summarize_prefilter,
    summarize_workers,
    write_timeseries,
)


def _add_executor_options(command: argparse.ArgumentParser) -> None:
    """Execution-engine flags shared by the JVM-running commands."""
    command.add_argument("--jobs", type=int, default=1,
                         help="worker count for differential runs "
                              "(1 = serial)")
    command.add_argument("--backend", choices=("thread", "process"),
                         default="thread",
                         help="parallel backend when --jobs > 1 "
                              "(process gives real CPU parallelism)")
    command.add_argument("--worker-mode",
                         choices=("persistent", "fork"),
                         default="persistent", dest="worker_mode",
                         help="process-backend reference workers: "
                              "persistent keeps JVM state warm and ships "
                              "coverage through shared memory; fork "
                              "rebuilds state per call (baseline)")
    command.add_argument("--stats", action="store_true",
                         help="print executor statistics (runs, cache "
                              "hits, per-vendor latency)")


def _add_telemetry_options(command: argparse.ArgumentParser) -> None:
    """Observability flags shared by the JVM-running commands."""
    command.add_argument("--events", type=Path, default=None,
                         metavar="PATH",
                         help="record structured events as JSONL")
    command.add_argument("--metrics-out", type=Path, default=None,
                         metavar="PATH",
                         help="write a Prometheus text metrics dump "
                              "when the run finishes")
    command.add_argument("--progress", action="store_true",
                         help="live progress lines on stderr")
    command.add_argument("--serve", type=int, default=None,
                         metavar="PORT",
                         help="serve the live monitor while the run is "
                              "active: /metrics, /status, /events (SSE) "
                              "and the HTML dashboard at / "
                              "(0 = ephemeral port)")
    command.add_argument("--serve-host", default="127.0.0.1",
                         metavar="HOST", dest="serve_host",
                         help="bind address for --serve "
                              "(default: 127.0.0.1)")


def _add_corpus_options(command: argparse.ArgumentParser) -> None:
    """Corpus-subsystem flags shared by ``fuzz`` and ``campaign``."""
    from repro.corpus.schedule import DEFAULT_SCHEDULE, SCHEDULERS

    command.add_argument("--seed-schedule", dest="seed_schedule",
                         choices=sorted(SCHEDULERS),
                         default=DEFAULT_SCHEDULE,
                         help="seed-scheduling policy for mutation picks "
                              "(default: the paper's uniform policy)")
    command.add_argument("--checkpoint-dir", dest="checkpoint_dir",
                         type=Path, default=None, metavar="DIR",
                         help="periodically checkpoint the run's state "
                              "here so it can be resumed after a kill")
    command.add_argument("--checkpoint-every", dest="checkpoint_every",
                         type=int, default=50, metavar="N",
                         help="iterations between checkpoints "
                              "(default: 50)")
    command.add_argument("--resume", action="store_true",
                         help="resume from --checkpoint-dir's latest "
                              "checkpoint (fresh start when none exists)")
    command.add_argument("--coverage-index", dest="coverage_index",
                         choices=("exact", "bitmap"), default="exact",
                         help="acceptance-index implementation: exact "
                              "criterion lookups, or the fixed-width "
                              "bitmap novelty prefilter in front of them "
                              "(same decisions, lower per-mutant cost)")
    command.add_argument("--exec-fraction", dest="exec_fraction",
                         type=float, default=0.0, metavar="FRAC",
                         help="fraction of seed classes built from the "
                              "execution-phase templates (runtime-"
                              "divergent seeds; default: 0, the paper's "
                              "corpus)")
    command.add_argument("--execution-mutators", dest="execution_mutators",
                         action="store_true",
                         help="merge the execution-targeted mutators "
                              "(edge values, comparison nudges, narrowing "
                              "casts, handler permutation) into the "
                              "rotation alongside the 129-mutator "
                              "registry")
    command.add_argument("--cmp-coverage", dest="cmp_coverage",
                         action="store_true",
                         help="enable comparison-progress coverage "
                              "probes (cmplog-style; off by default so "
                              "decision streams stay byte-identical to "
                              "the paper's two probe kinds)")


def _apply_execution_options(args):
    """Honour the execution-phase flags shared by ``fuzz``/``campaign``.

    Flips the sticky comparison-coverage switch (before the executor is
    built, so process workers inherit it) and returns the mutator
    rotation override, or ``None`` for the default 129-mutator registry.
    """
    if args.cmp_coverage:
        from repro.coverage.probes import enable_cmp_coverage

        enable_cmp_coverage()
    if args.execution_mutators:
        from repro.core.mutators import EXECUTION_MUTATORS, MUTATORS

        return list(MUTATORS) + list(EXECUTION_MUTATORS)
    return None


def _make_telemetry(args):
    """Build the run's telemetry bundle, or ``None`` when all observability
    flags are off (keeping the hot paths at their uninstrumented cost)."""
    if not (args.events or args.metrics_out or args.progress
            or getattr(args, "serve", None) is not None):
        return None
    return make_telemetry(events_path=args.events, progress=args.progress)


def _start_monitor(telemetry, args):
    """Start the embedded monitor server when ``--serve`` was given."""
    if telemetry is None or getattr(args, "serve", None) is None:
        return None
    from repro.observe.server import MonitorServer

    monitor = MonitorServer(telemetry, host=args.serve_host,
                            port=args.serve).start()
    print(f"monitor serving at {monitor.url} "
          "(/, /metrics, /status, /events)", file=sys.stderr)
    return monitor


def _finish_telemetry(telemetry, args, monitor=None) -> None:
    """Stop the monitor, write the metrics dump, and close the sinks."""
    if monitor is not None:
        monitor.stop()
    if telemetry is None:
        return
    if args.metrics_out:
        args.metrics_out.write_text(telemetry.render_prometheus(),
                                    encoding="utf-8")
        print(f"wrote metrics dump to {args.metrics_out}")
    if args.events:
        print(f"wrote event log to {args.events}")
    telemetry.close()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="classfuzz: coverage-directed differential JVM testing")
    sub = parser.add_subparsers(dest="command", required=True)

    corpus = sub.add_parser("corpus", help="generate the seed corpus")
    corpus.add_argument("--count", type=int, default=1216)
    corpus.add_argument("--seed", type=int, default=20160613)
    corpus.add_argument("--out", type=Path, default=Path("seeds"))

    inspect = sub.add_parser("inspect", help="javap-style disassembly")
    inspect.add_argument("classfile", type=Path)
    inspect.add_argument("--no-pool", action="store_true",
                         help="omit the constant pool")

    run = sub.add_parser("run", help="run a classfile on the JVMs")
    run.add_argument("classfile", type=Path)
    run.add_argument("--jvm", choices=[j.name for j in all_jvms()],
                     help="a single JVM (default: all five)")

    fuzz = sub.add_parser("fuzz", help="run a fuzzing algorithm")
    fuzz.add_argument("--algorithm",
                      choices=("classfuzz", "uniquefuzz", "greedyfuzz",
                               "randfuzz"), default="classfuzz")
    fuzz.add_argument("--criterion", choices=("st", "stbr", "tr"),
                      default="stbr")
    fuzz.add_argument("--iterations", type=int, default=500)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--batch", type=int, default=1,
                      help="speculative batch size: reference coverage "
                           "runs fan out across the executor workers in "
                           "rounds of this many mutants, with acceptance "
                           "replayed deterministically (1 = serial loop)")
    fuzz.add_argument("--jobs", type=int, default=1,
                      help="worker count for batched reference runs "
                           "(1 = serial)")
    fuzz.add_argument("--backend", choices=("thread", "process"),
                      default="thread",
                      help="parallel backend when --jobs > 1 "
                           "(process gives real CPU parallelism)")
    fuzz.add_argument("--worker-mode",
                      choices=("persistent", "fork"),
                      default="persistent", dest="worker_mode",
                      help="process-backend reference workers: "
                           "persistent keeps JVM state warm and ships "
                           "coverage through shared memory; fork "
                           "rebuilds state per call (baseline)")
    fuzz.add_argument("--seed-count", type=int, default=200,
                      help="synthetic seed corpus size")
    fuzz.add_argument("--out", type=Path, default=None,
                      help="directory for accepted classfiles")
    fuzz.add_argument("--stats", action="store_true",
                      help="print executor statistics for the run")
    fuzz.add_argument("--mutator-report", type=int, default=0,
                      metavar="N", dest="mutator_report",
                      help="print the top-N mutators by MCMC rank "
                           "(the Table 5 view)")
    _add_corpus_options(fuzz)
    _add_telemetry_options(fuzz)

    difftest = sub.add_parser("difftest",
                              help="differentially test classfiles")
    difftest.add_argument("paths", nargs="+", type=Path,
                          help=".class files or directories")
    difftest.add_argument("--show", type=int, default=5,
                          help="discrepancies to print in full")
    _add_executor_options(difftest)
    _add_telemetry_options(difftest)

    reduce = sub.add_parser("reduce",
                            help="minimise a discrepancy trigger")
    reduce.add_argument("classfile", type=Path)

    campaign = sub.add_parser("campaign",
                              help="the Table 4/6 experiment")
    campaign.add_argument("--budget-scale", type=float, default=0.1,
                          help="fraction of the paper's 3-day budget")
    campaign.add_argument("--seed-count", type=int, default=1216)
    campaign.add_argument("--seed", type=int, default=20160613)
    campaign.add_argument("--algorithms", nargs="*",
                          default=list(ALL_ALGORITHMS))
    campaign.add_argument("--batch", type=int, default=1,
                          help="speculative batch size for every fuzzing "
                               "run (1 = serial Algorithm 1 loop)")
    campaign.add_argument("--mutator-report", type=int, default=0,
                          metavar="N", dest="mutator_report",
                          help="print each algorithm's top-N mutators "
                               "(the Table 5 view)")
    campaign.add_argument("--triage-out", type=Path, default=None,
                          metavar="JSONL", dest="triage_out",
                          help="triage every algorithm's TestClasses "
                               "discrepancies into one deduplicated "
                               "cluster inventory written here")
    campaign.add_argument("--suites-out", type=Path, default=None,
                          metavar="DIR", dest="suites_out",
                          help="save every algorithm's accepted suite "
                               "under DIR/<algorithm>/ (byte-comparable "
                               "with a service campaign job's per-leg "
                               "suites)")
    _add_corpus_options(campaign)
    _add_executor_options(campaign)
    _add_telemetry_options(campaign)

    distill = sub.add_parser(
        "distill", help="shrink a saved suite, preserving its coverage")
    distill.add_argument("suite", type=Path,
                         help="a suite directory written by fuzz --out")
    distill.add_argument("--out", type=Path, default=None,
                         help="write the distilled suite (classfiles, "
                              "traces, manifest) to this directory")
    distill.add_argument("--bucket", default="tests",
                         choices=("tests", "gen"),
                         help="which suite bucket to distill")

    triage = sub.add_parser(
        "triage", help="cluster, minimize, and suppress discrepancies")
    triage.add_argument("action",
                        choices=("report", "minimize",
                                 "diff-against-baseline"),
                        help="report prints the cluster inventory; "
                             "minimize also reduces+attributes every "
                             "new cluster's representative; "
                             "diff-against-baseline exits 1 when "
                             "clusters outside --baseline appear")
    triage.add_argument("path", type=Path,
                        help="a suite directory (fuzz --out), a "
                             "directory of .class files, or one "
                             ".class file")
    triage.add_argument("--out", type=Path, default=None, metavar="JSONL",
                        help="append the cluster inventory to this "
                             "triage store (crash-durable JSONL)")
    triage.add_argument("--baseline", type=Path, default=None,
                        metavar="FILE",
                        help="known-issue list: a suppression JSON or "
                             "a prior run's triage JSONL — matching "
                             "clusters are reported as suppressed")
    triage.add_argument("--minimize", action="store_true",
                        help="report: also minimize each new cluster's "
                             "representative and blame policy fields")
    triage.add_argument("--coarse", action="store_true",
                        help="cluster on the phase-only code vector "
                             "(the paper's §3.1.3 grouping) instead of "
                             "the fine (phase, error) signature")
    triage.add_argument("--write-suppressions", type=Path, default=None,
                        metavar="FILE", dest="write_suppressions",
                        help="write a suppression JSON covering every "
                             "cluster this run saw")
    triage.add_argument("--resume", action="store_true",
                        help="resume an interrupted run from --out's "
                             "durable progress mark")
    _add_executor_options(triage)
    _add_telemetry_options(triage)

    observe = sub.add_parser(
        "observe", help="analyse recorded telemetry")
    observe.add_argument("action",
                         choices=("summary", "replay", "timeseries",
                                  "check"),
                         help="summary/replay/timeseries read a JSONL "
                              "event log; check validates a Prometheus "
                              "metrics dump")
    observe.add_argument("path", type=Path,
                         help="the events.jsonl (or metrics dump, for "
                              "check) to analyse")
    observe.add_argument("--out", type=Path, default=None,
                         help="timeseries: CSV output path "
                              "(default: stdout)")
    observe.add_argument("--type", dest="event_type", default=None,
                         help="replay: only this event type")
    observe.add_argument("--limit", type=int, default=None,
                         help="replay: stop after N lines")
    observe.add_argument("--require", nargs="*", default=None,
                         metavar="FAMILY",
                         help="check: metric families that must be "
                              "present (default: the core families)")
    observe.add_argument("--metrics", type=Path, default=None,
                         metavar="DUMP",
                         help="summary: also read this Prometheus dump "
                              "and report the bitmap-prefilter hit/miss "
                              "ratio when its counters are present")

    monitor = sub.add_parser(
        "monitor", help="serve a recorded events log through the live "
                        "monitor (replay mode)")
    monitor.add_argument("events", type=Path,
                         help="an events.jsonl recorded with --events")
    monitor.add_argument("--port", type=int, default=8377,
                         help="port to serve on (0 = ephemeral; "
                              "default: 8377)")
    monitor.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    monitor.add_argument("--speed", type=float, default=0.0,
                         help="replay pacing: N replays at N x recorded "
                              "speed; 0 loads the whole log instantly "
                              "(default)")
    monitor.add_argument("--duration", type=float, default=None,
                         metavar="SECONDS",
                         help="keep serving this long after the replay, "
                              "then exit (default: until interrupted)")

    serve = sub.add_parser(
        "serve", help="run the campaign orchestration daemon: durable "
                      "job queue + HTTP API + queue dashboard")
    serve.add_argument("--state-root", type=Path,
                       default=Path("repro-service"), metavar="DIR",
                       help="durable queue + artifact root "
                            "(default: ./repro-service)")
    serve.add_argument("--port", type=int, default=8378,
                       help="API port (0 = ephemeral; default: 8378)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       dest="max_attempts", metavar="N",
                       help="attempts per leg before the job fails "
                            "(default: 3)")
    serve.add_argument("--parallel-legs", type=int, default=1,
                       dest="parallel_legs", metavar="N",
                       help="worker subprocesses supervised at once "
                            "(default: 1)")

    submit = sub.add_parser(
        "submit", help="submit a job to a running service daemon")
    submit.add_argument("type", choices=("fuzz", "campaign", "difftest"),
                        help="job kind; campaigns are sharded into one "
                             "leg per algorithm")
    submit.add_argument("paths", nargs="*", type=Path,
                        help="difftest: classfiles or directories to "
                             "differential-test")
    submit.add_argument("--url", default="http://127.0.0.1:8378",
                        help="service base URL "
                             "(default: http://127.0.0.1:8378)")
    submit.add_argument("--spec", type=Path, default=None, metavar="JSON",
                        help="read the job spec from this JSON file "
                             "(flags below override its fields)")
    submit.add_argument("--algorithm", default=None,
                        help="fuzz: algorithm label, e.g. classfuzz[tr] "
                             "or randfuzz")
    submit.add_argument("--algorithms", nargs="*", default=None,
                        help="campaign: algorithm labels to shard into "
                             "legs (default: all)")
    submit.add_argument("--iterations", type=int, default=None,
                        help="fuzz: iteration count")
    submit.add_argument("--budget-scale", type=float, default=None,
                        dest="budget_scale",
                        help="campaign: fraction of the paper's 3-day "
                             "budget")
    submit.add_argument("--budget-seconds", type=float, default=None,
                        dest="budget_seconds",
                        help="campaign: explicit modeled budget "
                             "(overrides --budget-scale)")
    submit.add_argument("--seed", type=int, default=None,
                        help="base RNG seed")
    submit.add_argument("--seed-count", type=int, default=None,
                        dest="seed_count", help="seed corpus size")
    submit.add_argument("--batch", type=int, default=None,
                        help="speculative batch size")
    submit.add_argument("--seed-schedule", default=None,
                        dest="seed_schedule",
                        help="seed-scheduling policy")
    submit.add_argument("--coverage-index", default=None,
                        dest="coverage_index", choices=("exact", "bitmap"),
                        help="acceptance-index implementation")
    submit.add_argument("--exec-fraction", type=float, default=None,
                        dest="exec_fraction",
                        help="fraction of execution-phase seed templates "
                             "in the corpus")
    submit.add_argument("--execution-mutators", action="store_true",
                        default=None, dest="execution_mutators",
                        help="merge the execution-targeted mutators into "
                             "the rotation")
    submit.add_argument("--cmp-coverage", action="store_true",
                        default=None, dest="cmp_coverage",
                        help="enable comparison-progress coverage probes")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes; exit 0 only "
                             "when it completes")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait limit in seconds (default: 600)")

    jobs = sub.add_parser(
        "jobs", help="list a running service daemon's job queue")
    jobs.add_argument("--url", default="http://127.0.0.1:8378",
                      help="service base URL "
                           "(default: http://127.0.0.1:8378)")

    cancel = sub.add_parser(
        "cancel", help="cancel a queued or running service job")
    cancel.add_argument("job_id", help="the job id to cancel")
    cancel.add_argument("--url", default="http://127.0.0.1:8378",
                        help="service base URL "
                             "(default: http://127.0.0.1:8378)")
    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------

def _cmd_corpus(args) -> int:
    seeds = generate_corpus(CorpusConfig(count=args.count, seed=args.seed))
    args.out.mkdir(parents=True, exist_ok=True)
    written = 0
    for jclass in seeds:
        data = compile_class_bytes(jclass)
        (args.out / f"{jclass.name}.class").write_bytes(data)
        written += 1
    print(f"wrote {written} seed classfiles to {args.out}/")
    return 0


def _cmd_inspect(args) -> int:
    data = args.classfile.read_bytes()
    classfile = read_class(data)
    print(disassemble(classfile, data,
                      show_constant_pool=not args.no_pool))
    return 0


def _cmd_run(args) -> int:
    data = args.classfile.read_bytes()
    jvms = [jvms_by_name()[args.jvm]] if args.jvm else all_jvms()
    worst = 0
    for jvm in jvms:
        outcome = jvm.run(data)
        worst = max(worst, outcome.code)
        print(outcome.brief())
        if outcome.message:
            print(f"    {outcome.message}")
        for line in outcome.output:
            print(f"    > {line}")
    return 0 if worst == 0 else 1


def _cmd_fuzz(args) -> int:
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    reset_shutdown()
    install_sigterm_handler()
    seeds = generate_corpus(CorpusConfig(count=args.seed_count,
                                         seed=args.seed,
                                         exec_fraction=args.exec_fraction))
    mutators = _apply_execution_options(args)
    telemetry = _make_telemetry(args)
    monitor = _start_monitor(telemetry, args)
    executor = make_executor(jobs=args.jobs, backend=args.backend,
                             telemetry=telemetry,
                             worker_mode=args.worker_mode)
    corpus_kw = dict(schedule=args.seed_schedule,
                     checkpoint_dir=args.checkpoint_dir,
                     checkpoint_every=args.checkpoint_every,
                     resume=args.resume,
                     coverage_index=args.coverage_index)
    if mutators is not None:
        corpus_kw["mutators"] = mutators
    runners = {
        "classfuzz": lambda: classfuzz(seeds, args.iterations,
                                       criterion=args.criterion,
                                       seed=args.seed, executor=executor,
                                       telemetry=telemetry,
                                       batch=args.batch, **corpus_kw),
        "uniquefuzz": lambda: uniquefuzz(seeds, args.iterations,
                                         seed=args.seed,
                                         executor=executor,
                                         telemetry=telemetry,
                                         batch=args.batch, **corpus_kw),
        "greedyfuzz": lambda: greedyfuzz(seeds, args.iterations,
                                         seed=args.seed,
                                         executor=executor,
                                         telemetry=telemetry,
                                         batch=args.batch, **corpus_kw),
        "randfuzz": lambda: randfuzz(seeds, args.iterations,
                                     seed=args.seed, executor=executor,
                                     telemetry=telemetry,
                                     batch=args.batch, **corpus_kw),
    }
    try:
        if telemetry is not None:
            with telemetry.activate():
                result = runners[args.algorithm]()
        else:
            result = runners[args.algorithm]()
    except GracefulShutdown as exc:
        print(f"SIGTERM honoured: {exc}; resume with --resume",
              file=sys.stderr)
        executor.close()
        _finish_telemetry(telemetry, args, monitor)
        return GRACEFUL_EXIT_CODE
    except KeyboardInterrupt:
        print(f"interrupted; latest checkpoint kept in "
              f"{args.checkpoint_dir} (resume with --resume)",
              file=sys.stderr)
        executor.close()
        _finish_telemetry(telemetry, args, monitor)
        return 130
    print(f"{result.algorithm}"
          + (f"[{result.criterion}]" if result.criterion else "")
          + f": {result.iterations} iterations, "
          f"{len(result.gen_classes)} generated, "
          f"{len(result.test_classes)} accepted "
          f"(succ {result.succ:.1%}) in {result.elapsed_seconds:.1f}s")
    if result.scheduler != "uniform":
        print(f"seed schedule: {result.scheduler} "
              f"({len(result.seed_stats)} active pool entries)")
    if result.discards:
        breakdown = ", ".join(f"{category}: {count}" for category, count
                              in sorted(result.discards.items()))
        print(f"discarded {result.discarded} iterations ({breakdown})")
    if args.mutator_report and result.mutator_report:
        print()
        headers = ["mutator", "selected", "successes", "succ"]
        rows = [[name, str(selected), str(successes), f"{rate:.1%}"]
                for name, selected, successes, rate
                in result.mutator_report[:args.mutator_report]]
        widths = [max(len(h), *(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        for row in rows:
            print("  ".join(cell.ljust(widths[i])
                            for i, cell in enumerate(row)))
    if args.stats:
        print(executor.stats.format())
    if args.out:
        from repro.core.storage import save_suite

        manifest_path = save_suite(result, args.out)
        print(f"wrote {len(result.test_classes)} classfiles + traces + "
              f"{manifest_path.name} to {args.out}/")
    executor.close()
    _finish_telemetry(telemetry, args, monitor)
    return 0


def _collect_classfiles(paths: List[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.glob("*.class")))
        else:
            files.append(path)
    return files


def _cmd_difftest(args) -> int:
    files = _collect_classfiles(args.paths)
    if not files:
        print("no classfiles found", file=sys.stderr)
        return 2
    telemetry = _make_telemetry(args)
    monitor = _start_monitor(telemetry, args)
    executor = make_executor(jobs=args.jobs, backend=args.backend,
                             telemetry=telemetry,
                             worker_mode=args.worker_mode)
    harness = DifferentialHarness(executor=executor, telemetry=telemetry)
    suite = [(path.stem, path.read_bytes()) for path in files]
    if telemetry is not None:
        with telemetry.activate():
            report = evaluate_suite("suite", suite, harness)
    else:
        report = evaluate_suite("suite", suite, harness)
    print(format_table([report]))
    shown = 0
    for result in report.results:
        if result.is_discrepancy and shown < args.show:
            shown += 1
            print()
            print(result.summary())
    if args.stats:
        print()
        print("=== Executor stats ===")
        print(executor.stats.format())
    executor.close()
    _finish_telemetry(telemetry, args, monitor)
    return 0 if report.discrepancies == 0 else 1


def _cmd_reduce(args) -> int:
    data = args.classfile.read_bytes()
    jclass = lift_class(read_class(data))
    try:
        report = report_discrepancy(jclass)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.text)
    print()
    print(f"classification: {report.classification}")
    return 0


def _cmd_campaign(args) -> int:
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir",
              file=sys.stderr)
        return 2
    reset_shutdown()
    install_sigterm_handler()
    seeds = generate_corpus(CorpusConfig(count=args.seed_count,
                                         seed=args.seed,
                                         exec_fraction=args.exec_fraction))
    mutators = _apply_execution_options(args)
    budget = PAPER_BUDGET_SECONDS * args.budget_scale
    telemetry = _make_telemetry(args)
    monitor = _start_monitor(telemetry, args)
    executor = make_executor(jobs=args.jobs, backend=args.backend,
                             telemetry=telemetry,
                             worker_mode=args.worker_mode)
    triage_engine = None
    if args.triage_out is not None:
        from repro.triage import TriageEngine

        triage_engine = TriageEngine(telemetry=telemetry)
    corpus_kw = dict(schedule=args.seed_schedule,
                     checkpoint_dir=args.checkpoint_dir,
                     checkpoint_every=args.checkpoint_every,
                     resume=args.resume,
                     coverage_index=args.coverage_index,
                     mutators=mutators)
    try:
        if telemetry is not None:
            with telemetry.activate():
                runs = run_campaign(seeds, budget,
                                    algorithms=tuple(args.algorithms),
                                    rng_seed=args.seed, evaluate=True,
                                    executor=executor,
                                    telemetry=telemetry,
                                    batch=args.batch,
                                    triage=triage_engine, **corpus_kw)
        else:
            runs = run_campaign(seeds, budget,
                                algorithms=tuple(args.algorithms),
                                rng_seed=args.seed, evaluate=True,
                                executor=executor, batch=args.batch,
                                triage=triage_engine, **corpus_kw)
    except GracefulShutdown as exc:
        print(f"SIGTERM honoured: {exc}; latest checkpoints kept under "
              f"{args.checkpoint_dir} (resume with --resume)",
              file=sys.stderr)
        executor.close()
        _finish_telemetry(telemetry, args, monitor)
        return GRACEFUL_EXIT_CODE
    except KeyboardInterrupt:
        print(f"interrupted; latest checkpoints kept under "
              f"{args.checkpoint_dir} (resume with --resume)",
              file=sys.stderr)
        executor.close()
        _finish_telemetry(telemetry, args, monitor)
        return 130
    print(f"=== Table 4 (budget = {budget:.0f} modeled seconds) ===")
    print(format_table4(runs))
    print()
    print("=== Table 6 ===")
    reports = []
    for run in runs:
        reports.append(run.gen_report)
        reports.append(run.test_report)
    print(format_table([r for r in reports if r is not None]))
    if args.mutator_report:
        print()
        print("=== Table 5 (mutator selection) ===")
        print(format_mutator_report(runs, top=args.mutator_report))
    if triage_engine is not None:
        from repro.triage import TriageStore

        with TriageStore(args.triage_out) as store:
            for cluster in triage_engine.clusters():
                store.append_cluster(cluster)
        print()
        print(f"triage: {len(triage_engine)} distinct clusters across "
              f"all TestClasses suites -> {args.triage_out}")
    if args.suites_out is not None:
        manifests = save_campaign_suites(runs, args.suites_out)
        print(f"wrote {len(manifests)} per-algorithm suites under "
              f"{args.suites_out}/")
    if args.stats:
        print()
        print("=== Executor stats ===")
        for run in runs:
            stats = run.executor_stats
            print(f"{run.label}: fuzz {run.fuzz_seconds:.2f}s, "
                  f"evaluate {run.evaluate_seconds:.2f}s, "
                  f"{stats.runs} runs, {stats.cache_hits} cache hits, "
                  f"{stats.trace_hits} trace hits")
        print()
        print(executor.stats.format())
    executor.close()
    _finish_telemetry(telemetry, args, monitor)
    return 0


def _load_suite_any(path: Path) -> List:
    """Load ``(label, bytes)`` pairs from any classfile source.

    Accepts a suite directory written by ``fuzz --out`` (detected by
    its ``manifest.json``), a plain directory of ``.class`` files, or a
    single ``.class`` file.
    """
    from repro.core.storage import load_suite

    if path.is_dir():
        if (path / "manifest.json").exists():
            return load_suite(path)
        return [(p.stem, p.read_bytes())
                for p in sorted(path.glob("*.class"))]
    if not path.exists():
        raise ValueError(f"no such file or directory: {path}")
    return [(path.stem, path.read_bytes())]


def _format_triage_line(cluster, minimized=None) -> str:
    status = "SUPPRESSED" if cluster.suppressed else "new"
    line = (f"{cluster.cluster_id}  {cluster.kind:<6} "
            f"count={cluster.count:<4} {status:<10} "
            f"rep={cluster.representative or '-'}  {cluster.describe()}")
    if minimized is not None:
        detail = (f"    minimized: {minimized.size_before} -> "
                  f"{minimized.size_after} bytes, "
                  f"{minimized.steps} deletions, "
                  f"{minimized.tests_run} retests")
        if minimized.blamed_fields:
            detail += f"; blamed: {', '.join(minimized.blamed_fields)}"
        if minimized.environmental:
            detail += "; environmental"
        if minimized.error:
            detail += f"; degraded ({minimized.error})"
        line += "\n" + detail
    return line


def _cmd_triage(args) -> int:
    from repro.triage import (
        TriageEngine,
        TriageStore,
        load_clusters,
        load_progress,
        load_suppressions,
        minimize_clusters,
        write_suppressions,
    )
    from repro.triage.cluster import COARSE, FINE

    if args.action == "diff-against-baseline" and args.baseline is None:
        print("error: diff-against-baseline requires --baseline",
              file=sys.stderr)
        return 2
    if args.resume and args.out is None:
        print("error: --resume requires --out", file=sys.stderr)
        return 2
    try:
        suite = _load_suite_any(args.path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not suite:
        print("no classfiles found", file=sys.stderr)
        return 2
    suppressions = None
    if args.baseline is not None:
        try:
            suppressions = load_suppressions(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    telemetry = _make_telemetry(args)
    monitor = _start_monitor(telemetry, args)
    executor = make_executor(jobs=args.jobs, backend=args.backend,
                             telemetry=telemetry,
                             worker_mode=args.worker_mode)
    harness = DifferentialHarness(executor=executor, telemetry=telemetry)
    engine = TriageEngine(kind=COARSE if args.coarse else FINE,
                          suppressions=suppressions, telemetry=telemetry)
    store = TriageStore(args.out) if args.out is not None else None
    start = 0
    if args.resume and args.out.exists():
        restored = engine.restore(load_clusters(args.out))
        start = load_progress(args.out)
        print(f"resumed from {args.out}: {restored} clusters restored, "
              f"{start}/{len(suite)} classfiles already triaged")

    def triage_all() -> None:
        chunk_size = 32
        for begin in range(start, len(suite), chunk_size):
            chunk = suite[begin:begin + chunk_size]
            results = harness.run_many(chunk)
            touched = engine.add_many(results, dict(chunk))
            if store is not None:
                for cluster in touched:
                    store.append_cluster(cluster)
                store.append_progress(begin + len(chunk))

    try:
        if telemetry is not None:
            with telemetry.activate():
                triage_all()
        else:
            triage_all()
    except KeyboardInterrupt:
        print(f"interrupted; durable progress kept in {args.out} "
              f"(resume with --resume)", file=sys.stderr)
        if store is not None:
            store.close()
        executor.close()
        _finish_telemetry(telemetry, args, monitor)
        return 130

    clusters = engine.clusters()
    new = engine.new_clusters()
    suppressed = engine.suppressed_clusters()
    minimized_by_id = {}
    if args.minimize or args.action == "minimize":
        data_by_id = {}
        by_label = dict(suite)
        for cluster in new:
            data = engine.representative_bytes(cluster.cluster_id)
            if data is None:  # restored cluster: bytes not retained
                data = by_label.get(cluster.representative)
            if data is not None:
                data_by_id[cluster.cluster_id] = data
        minimized = minimize_clusters(new, data_by_id,
                                      executor=executor,
                                      telemetry=telemetry)
        minimized_by_id = {m.cluster_id: m for m in minimized}
        if store is not None:
            for item in minimized:
                store.append_minimized(item.to_record())

    if args.action == "diff-against-baseline":
        print(f"triaged {len(suite)} classfiles: {len(clusters)} "
              f"clusters, {len(suppressed)} in baseline, "
              f"{len(new)} NEW")
        for cluster in new:
            print(_format_triage_line(
                cluster, minimized_by_id.get(cluster.cluster_id)))
        exit_code = 1 if new else 0
    else:
        print(f"triaged {len(suite)} classfiles: {len(clusters)} "
              f"clusters ({len(new)} new, {len(suppressed)} suppressed)")
        for cluster in clusters:
            print(_format_triage_line(
                cluster, minimized_by_id.get(cluster.cluster_id)))
        exit_code = 0
    if args.write_suppressions is not None:
        write_suppressions(args.write_suppressions, clusters)
        print(f"wrote {len(clusters)} suppressions to "
              f"{args.write_suppressions}")
    if store is not None:
        store.close()
        print(f"triage store: {args.out}")
    if args.stats:
        print()
        print("=== Executor stats ===")
        print(executor.stats.format())
    executor.close()
    _finish_telemetry(telemetry, args, monitor)
    return exit_code


def _cmd_distill(args) -> int:
    from repro.corpus.distill import distill_suite

    try:
        result = distill_suite(args.suite, out=args.out,
                               bucket=args.bucket)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    if result.dropped:
        print(f"dropped (redundant coverage): "
              f"{', '.join(result.dropped)}")
    if args.out:
        print(f"wrote distilled suite to {args.out}/")
    return 0


def _cmd_observe(args) -> int:
    if args.action == "check":
        text = args.path.read_text(encoding="utf-8")
        required = args.require if args.require else CORE_METRIC_FAMILIES
        problems = check_prometheus(text, required)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(f"OK: {len(required)} metric families present, "
              "dump parses cleanly")
        return 0
    job_record = None
    event_paths = [args.path]
    if args.path.is_dir():
        if (args.path / "job.json").exists():
            import json as _json

            job_record = _json.loads(
                (args.path / "job.json").read_text(encoding="utf-8"))
            event_paths = sorted(args.path.glob("legs/*/events.jsonl"))
        elif (args.path / "events.jsonl").exists():
            event_paths = [args.path / "events.jsonl"]
        else:
            print(f"error: {args.path} has neither job.json nor "
                  "events.jsonl", file=sys.stderr)
            return 2
    events = [event for path in event_paths
              for event in load_events(path)]
    if args.action == "summary":
        if job_record is not None:
            print(summarize_job(job_record))
            print()
        print(summarize_events(events))
        if args.metrics is not None:
            samples = parse_prometheus(
                args.metrics.read_text(encoding="utf-8"))
            for block in (summarize_prefilter(samples),
                          summarize_workers(samples)):
                if block:
                    print()
                    print(block)
        return 0
    if args.action == "replay":
        print(replay_events(events, event_type=args.event_type,
                            limit=args.limit))
        return 0
    # timeseries
    out = args.out if args.out else Path(args.path).with_suffix(".csv")
    rows = write_timeseries(events, out)
    print(f"wrote {rows} iteration rows to {out}")
    return 0


def _cmd_monitor(args) -> int:
    import time

    from repro.observe import Telemetry, read_events
    from repro.observe.server import MonitorServer

    if not args.events.exists():
        print(f"error: no such events log: {args.events}",
              file=sys.stderr)
        return 2
    telemetry = Telemetry()
    monitor = MonitorServer(telemetry, host=args.host,
                            port=args.port).start()
    monitor.tracker.begin_run(
        run_id=f"replay:{args.events.name}",
        config={"source": str(args.events), "mode": "replay",
                "speed": args.speed})
    print(f"monitor serving {args.events} at {monitor.url} "
          "(replay mode)", file=sys.stderr)
    replayed = 0
    last_ts = None
    try:
        for event in read_events(args.events):
            if args.speed > 0 and last_ts is not None \
                    and event.ts > last_ts:
                time.sleep(min((event.ts - last_ts) / args.speed, 5.0))
            last_ts = event.ts
            telemetry.bus.dispatch(event)
            replayed += 1
        print(f"replayed {replayed} events; serving /status, /metrics, "
              "/events and / (ctrl-c to stop)", file=sys.stderr)
        if args.duration is not None:
            time.sleep(max(0.0, args.duration))
        else:  # pragma: no cover - interactive serving loop
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    monitor.stop()
    telemetry.close()
    print(f"served {replayed} replayed events", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.service.daemon import ServiceDaemon

    daemon = ServiceDaemon(args.state_root, host=args.host,
                           port=args.port,
                           max_attempts=args.max_attempts,
                           parallel_legs=args.parallel_legs).start()
    stop = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    print(f"service daemon at {daemon.url} "
          f"(state root: {daemon.store.root}; dashboard at /)",
          file=sys.stderr)
    try:
        while not stop.is_set():
            stop.wait(0.5)
    except KeyboardInterrupt:
        pass
    print("shutting down: terminating workers, requeueing running "
          "jobs...", file=sys.stderr)
    daemon.stop()
    return 0


def _build_submit_spec(args) -> dict:
    """Assemble the job spec from --spec JSON plus explicit flags."""
    import json

    spec = {}
    if args.spec is not None:
        spec = json.loads(args.spec.read_text(encoding="utf-8"))
    spec["type"] = args.type
    overrides = {
        "algorithm": args.algorithm,
        "algorithms": args.algorithms,
        "iterations": args.iterations,
        "budget_scale": args.budget_scale,
        "budget_seconds": args.budget_seconds,
        "seed": args.seed,
        "seed_count": args.seed_count,
        "batch": args.batch,
        "seed_schedule": args.seed_schedule,
        "coverage_index": args.coverage_index,
        "exec_fraction": args.exec_fraction,
        "execution_mutators": args.execution_mutators,
        "cmp_coverage": args.cmp_coverage,
    }
    spec.update({key: value for key, value in overrides.items()
                 if value is not None})
    if args.type == "difftest" and args.paths:
        spec["paths"] = [str(path) for path in args.paths]
    return spec


def _cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    try:
        record = client.submit(_build_submit_spec(args))
        job_id = record["id"]
        legs = ", ".join(leg["label"] for leg in record["legs"])
        print(f"submitted {record['spec']['type']} job {job_id} "
              f"({len(record['legs'])} leg(s): {legs})")
        if not args.wait:
            return 0
        document = client.wait(job_id, timeout=args.timeout)
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    job = document["job"]
    timings = document["timings"]
    print(f"job {job_id} {job['state']}: "
          f"queued {timings['queued_seconds']}s, "
          f"ran {timings['running_seconds']}s")
    return 0 if job["state"] == "done" else 1


def _cmd_jobs(args) -> int:
    from repro.service.client import ServiceClient, ServiceClientError

    try:
        document = ServiceClient(args.url).jobs()
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    service = document["service"]
    print(f"service at {args.url}: queue depth "
          f"{service['queue_depth']}, state root "
          f"{service['state_root']}")
    if not document["jobs"]:
        print("no jobs submitted yet")
        return 0
    headers = ["job", "type", "state", "legs", "current"]
    rows = [[job["id"], job["type"], job["state"],
             f"{job['legs_done']}/{job['legs_total']}",
             job["current_leg"] or "-"]
            for job in document["jobs"]]
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        print("  ".join(cell.ljust(widths[i])
                        for i, cell in enumerate(row)))
    return 0


def _cmd_cancel(args) -> int:
    from repro.service.client import ServiceClient, ServiceClientError

    try:
        summary = ServiceClient(args.url).cancel(args.job_id)
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    state = summary["state"]
    if state == "cancelled":
        print(f"job {args.job_id} cancelled")
    elif state in ("done", "failed"):
        print(f"job {args.job_id} already {state}; nothing to cancel")
    else:
        print(f"job {args.job_id} cancellation requested "
              f"(currently {state})")
    return 0


_COMMANDS = {
    "corpus": _cmd_corpus,
    "inspect": _cmd_inspect,
    "run": _cmd_run,
    "fuzz": _cmd_fuzz,
    "difftest": _cmd_difftest,
    "reduce": _cmd_reduce,
    "campaign": _cmd_campaign,
    "distill": _cmd_distill,
    "triage": _cmd_triage,
    "observe": _cmd_observe,
    "monitor": _cmd_monitor,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "cancel": _cmd_cancel,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
