"""JVM bytecode instruction set: opcode table, codec, and assembler."""

from repro.bytecode.opcodes import Op, OPCODES, OpcodeInfo
from repro.bytecode.instructions import (
    Instruction,
    decode_code,
    encode_code,
    InstructionError,
)
from repro.bytecode.assembler import Assembler

__all__ = [
    "Assembler",
    "Instruction",
    "InstructionError",
    "OPCODES",
    "Op",
    "OpcodeInfo",
    "decode_code",
    "encode_code",
]
