"""A small symbolic bytecode assembler.

Used by the Jimple→classfile compiler and by the seed corpus generator to
build ``Code`` attributes without hand-computing offsets.  Labels are
strings; branches reference labels and are resolved at :meth:`Assembler.build`
time through the generic encoder.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.bytecode.instructions import Instruction, InstructionError, encode_code
from repro.bytecode.opcodes import Op


class Assembler:
    """Accumulates instructions and resolves labels.

    Example:
        >>> asm = Assembler()
        >>> asm.emit(Op.ICONST_0)
        >>> asm.branch(Op.IFEQ, "done")
        >>> asm.emit(Op.NOP)
        >>> asm.label("done")
        >>> asm.emit(Op.RETURN)
        >>> code = asm.build()
    """

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._pending: List[Instruction] = []
        self._counter = 0
        #: After :meth:`build`: label name → byte offset in the encoded
        #: code (used to place exception-table entries).
        self.label_offsets: Dict[str, int] = {}

    def _next_offset(self) -> int:
        # Provisional offsets are just sequence numbers; the encoder
        # recomputes real byte offsets.
        self._counter += 1
        return self._counter - 1

    def label(self, name: str) -> None:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise InstructionError(f"duplicate label {name!r}")
        self._labels[name] = self._counter

    def emit(self, op: Op, **operands: object) -> Instruction:
        """Append an instruction with literal operands."""
        instruction = Instruction(self._next_offset(), op, dict(operands))
        self._instructions.append(instruction)
        return instruction

    def branch(self, op: Op, target: Union[str, int]) -> Instruction:
        """Append a branch to a label (or provisional offset)."""
        instruction = self.emit(op)
        instruction.operands["target"] = target
        self._pending.append(instruction)
        return instruction

    def switch(self, op: Op, default: str,
               pairs: Optional[List[tuple]] = None,
               low: Optional[int] = None, high: Optional[int] = None,
               targets: Optional[List[str]] = None) -> Instruction:
        """Append a tableswitch/lookupswitch with label targets."""
        instruction = self.emit(op)
        instruction.operands["default"] = default
        if op is Op.TABLESWITCH:
            instruction.operands["low"] = low
            instruction.operands["high"] = high
            instruction.operands["targets"] = list(targets or [])
        else:
            instruction.operands["pairs"] = list(pairs or [])
            instruction.operands["targets"] = [t for _, t in (pairs or [])]
        self._pending.append(instruction)
        return instruction

    @property
    def instructions(self) -> List[Instruction]:
        """The instructions emitted so far (labels still unresolved)."""
        return self._instructions

    def build(self) -> bytes:
        """Resolve labels and encode to bytecode.

        Raises:
            InstructionError: for undefined labels.
        """
        def resolve(target: object) -> int:
            if isinstance(target, str):
                if target not in self._labels:
                    raise InstructionError(f"undefined label {target!r}")
                return self._labels[target]
            return int(target)  # already a provisional offset

        for instruction in self._pending:
            operands = instruction.operands
            if "target" in operands:
                operands["target"] = resolve(operands["target"])
            if "default" in operands:
                operands["default"] = resolve(operands["default"])
            if "targets" in operands:
                operands["targets"] = [resolve(t) for t in operands["targets"]]
            if "pairs" in operands:
                operands["pairs"] = [(m, resolve(t))
                                     for m, t in operands["pairs"]]
        self._pending.clear()
        code = encode_code(self._instructions)
        # Map labels to final byte offsets: re-derive the encoded layout.
        provisional_to_byte: Dict[int, int] = {}
        from repro.bytecode.instructions import decode_code

        for provisional, encoded in zip(self._instructions,
                                        decode_code(code)):
            provisional_to_byte[provisional.offset] = encoded.offset
        end_of_code = len(code)
        self.label_offsets = {
            name: provisional_to_byte.get(position, end_of_code)
            for name, position in self._labels.items()}
        return code
