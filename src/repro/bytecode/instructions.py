"""Generic bytecode codec: ``bytes`` ↔ ``[Instruction]``.

Decoding is bounds-checked and raises :class:`InstructionError` on
truncated or unknown opcodes — the simulated verifier converts that into a
``VerifyError``/``ClassFormatError`` according to vendor policy.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bytecode import opcodes as ops
from repro.bytecode.opcodes import OPCODES, Op, OpcodeInfo


class InstructionError(ValueError):
    """Raised when bytecode cannot be decoded or encoded."""


@dataclass
class Instruction:
    """One decoded instruction.

    Attributes:
        offset: bytecode offset of the opcode byte.
        op: the opcode.
        operands: decoded operand values keyed by role:

            * ``value`` — immediate (bipush/sipush/atype).
            * ``index`` — constant-pool or local-variable index.
            * ``target`` — absolute branch target offset.
            * ``const`` — iinc increment.
            * ``default``/``pairs``/``low``/``high``/``targets`` — switch data.
            * ``count``/``dimensions`` — invokeinterface / multianewarray.
            * ``wide`` — True when the instruction used the wide prefix.
    """

    offset: int
    op: Op
    operands: Dict[str, object] = field(default_factory=dict)

    @property
    def info(self) -> OpcodeInfo:
        """Static opcode metadata."""
        return OPCODES[int(self.op)]

    @property
    def mnemonic(self) -> str:
        return self.info.mnemonic

    def branch_targets(self) -> List[int]:
        """Absolute offsets this instruction may branch to."""
        targets: List[int] = []
        if "target" in self.operands:
            targets.append(self.operands["target"])  # type: ignore[arg-type]
        if "default" in self.operands:
            targets.append(self.operands["default"])  # type: ignore[arg-type]
        if "targets" in self.operands:
            targets.extend(self.operands["targets"])  # type: ignore[arg-type]
        return targets

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        extra = " ".join(f"{k}={v}" for k, v in self.operands.items())
        return f"{self.offset}: {self.mnemonic} {extra}".rstrip()


def decode_code(code: bytes) -> List[Instruction]:
    """Decode a full ``Code`` array into instructions.

    Raises:
        InstructionError: on unknown opcodes or truncated operands.
    """
    instructions: List[Instruction] = []
    pos = 0
    length = len(code)
    while pos < length:
        instruction, pos = _decode_one(code, pos)
        instructions.append(instruction)
    return instructions


def _need(code: bytes, pos: int, count: int) -> None:
    if pos + count > len(code):
        raise InstructionError(
            f"truncated instruction at offset {pos} (need {count} bytes)")


def _decode_one(code: bytes, pos: int) -> Tuple[Instruction, int]:
    start = pos
    opcode = code[pos]
    pos += 1
    info = OPCODES.get(opcode)
    if info is None:
        raise InstructionError(f"unknown opcode {opcode:#04x} at offset {start}")
    operands: Dict[str, object] = {}
    for kind in info.operands:
        if kind == ops.S1:
            _need(code, pos, 1)
            operands["value"] = struct.unpack_from(">b", code, pos)[0]
            pos += 1
        elif kind == ops.S2:
            _need(code, pos, 2)
            operands["value"] = struct.unpack_from(">h", code, pos)[0]
            pos += 2
        elif kind == ops.U1:
            _need(code, pos, 1)
            operands["value"] = code[pos]
            pos += 1
        elif kind == ops.ATYPE:
            _need(code, pos, 1)
            operands["value"] = code[pos]
            pos += 1
        elif kind in (ops.U2, ops.CP2):
            _need(code, pos, 2)
            operands["index"] = struct.unpack_from(">H", code, pos)[0]
            pos += 2
        elif kind in (ops.LOCAL1, ops.CP1):
            _need(code, pos, 1)
            operands["index"] = code[pos]
            pos += 1
        elif kind == ops.BRANCH2:
            _need(code, pos, 2)
            rel = struct.unpack_from(">h", code, pos)[0]
            operands["target"] = start + rel
            pos += 2
        elif kind == ops.BRANCH4:
            _need(code, pos, 4)
            rel = struct.unpack_from(">i", code, pos)[0]
            operands["target"] = start + rel
            pos += 4
        elif kind == ops.IINC:
            _need(code, pos, 2)
            operands["index"] = code[pos]
            operands["const"] = struct.unpack_from(">b", code, pos + 1)[0]
            pos += 2
        elif kind == ops.INVOKEINTERFACE:
            _need(code, pos, 2)
            operands["count"] = code[pos]
            operands["zero"] = code[pos + 1]
            pos += 2
        elif kind == ops.INVOKEDYNAMIC:
            _need(code, pos, 2)
            operands["zero"] = struct.unpack_from(">H", code, pos)[0]
            pos += 2
        elif kind == ops.MULTIANEWARRAY:
            _need(code, pos, 3)
            operands["index"] = struct.unpack_from(">H", code, pos)[0]
            operands["dimensions"] = code[pos + 2]
            pos += 3
        elif kind == ops.SWITCH:
            pos = _decode_switch(code, start, pos, Op(opcode), operands)
        elif kind == ops.WIDE:
            return _decode_wide(code, start, pos)
        else:  # pragma: no cover - table is closed
            raise InstructionError(f"unhandled operand kind {kind}")
    return Instruction(start, Op(opcode), operands), pos


def _decode_switch(code: bytes, start: int, pos: int, op: Op,
                   operands: Dict[str, object]) -> int:
    # Padding to 4-byte alignment relative to method start.
    pad = (4 - ((start + 1) % 4)) % 4
    _need(code, pos, pad)
    pos += pad
    _need(code, pos, 4)
    operands["default"] = start + struct.unpack_from(">i", code, pos)[0]
    pos += 4
    if op is Op.TABLESWITCH:
        _need(code, pos, 8)
        low = struct.unpack_from(">i", code, pos)[0]
        high = struct.unpack_from(">i", code, pos + 4)[0]
        pos += 8
        if high < low:
            raise InstructionError(
                f"tableswitch at {start} has high {high} < low {low}")
        count = high - low + 1
        if count > 0xFFFF:
            raise InstructionError(
                f"tableswitch at {start} has implausible span {count}")
        _need(code, pos, 4 * count)
        targets = [start + struct.unpack_from(">i", code, pos + 4 * i)[0]
                   for i in range(count)]
        pos += 4 * count
        operands["low"] = low
        operands["high"] = high
        operands["targets"] = targets
    else:  # lookupswitch
        _need(code, pos, 4)
        npairs = struct.unpack_from(">i", code, pos)[0]
        pos += 4
        if npairs < 0:
            raise InstructionError(
                f"lookupswitch at {start} has negative npairs {npairs}")
        _need(code, pos, 8 * npairs)
        pairs = []
        targets = []
        for i in range(npairs):
            match = struct.unpack_from(">i", code, pos + 8 * i)[0]
            target = start + struct.unpack_from(">i", code, pos + 8 * i + 4)[0]
            pairs.append((match, target))
            targets.append(target)
        pos += 8 * npairs
        operands["pairs"] = pairs
        operands["targets"] = targets
    return pos


def _decode_wide(code: bytes, start: int, pos: int) -> Tuple[Instruction, int]:
    _need(code, pos, 1)
    modified = code[pos]
    pos += 1
    wide_locals = {int(op) for op in (Op.ILOAD, Op.FLOAD, Op.ALOAD, Op.LLOAD,
                                      Op.DLOAD, Op.ISTORE, Op.FSTORE,
                                      Op.ASTORE, Op.LSTORE, Op.DSTORE,
                                      Op.RET)}
    if modified in wide_locals:
        _need(code, pos, 2)
        index = struct.unpack_from(">H", code, pos)[0]
        pos += 2
        return Instruction(start, Op(modified),
                           {"index": index, "wide": True}), pos
    if modified == int(Op.IINC):
        _need(code, pos, 4)
        index = struct.unpack_from(">H", code, pos)[0]
        const = struct.unpack_from(">h", code, pos + 2)[0]
        pos += 4
        return Instruction(start, Op.IINC,
                           {"index": index, "const": const, "wide": True}), pos
    raise InstructionError(
        f"wide prefix modifies unsupported opcode {modified:#04x} at {start}")


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def encode_code(instructions: List[Instruction]) -> bytes:
    """Re-encode instructions, recomputing offsets and branch deltas.

    Instruction ``offset`` fields are treated as *labels*: branch targets
    refer to the original offsets, and the encoder maps them to the new
    layout.  Two passes handle the alignment-dependent switch padding.

    Raises:
        InstructionError: when a branch target does not name an instruction.
    """
    # Pass 1: lay out new offsets.
    new_offsets: Dict[int, int] = {}
    pos = 0
    for instruction in instructions:
        new_offsets[instruction.offset] = pos
        pos += _encoded_size(instruction, pos)
    # Pass 2: emit with remapped targets.
    out = bytearray()
    for instruction in instructions:
        out += _encode_one(instruction, len(out), new_offsets)
    return bytes(out)


def _encoded_size(instruction: Instruction, pos: int) -> int:
    op = instruction.op
    if instruction.operands.get("wide"):
        return 6 if op is Op.IINC else 4
    if op is Op.TABLESWITCH:
        pad = (4 - ((pos + 1) % 4)) % 4
        count = len(instruction.operands["targets"])  # type: ignore[arg-type]
        return 1 + pad + 12 + 4 * count
    if op is Op.LOOKUPSWITCH:
        pad = (4 - ((pos + 1) % 4)) % 4
        count = len(instruction.operands["pairs"])  # type: ignore[arg-type]
        return 1 + pad + 8 + 8 * count
    size = 1
    for kind in instruction.info.operands:
        size += {ops.S1: 1, ops.U1: 1, ops.ATYPE: 1, ops.LOCAL1: 1,
                 ops.CP1: 1, ops.S2: 2, ops.U2: 2, ops.CP2: 2,
                 ops.BRANCH2: 2, ops.BRANCH4: 4, ops.IINC: 2,
                 ops.INVOKEINTERFACE: 2, ops.INVOKEDYNAMIC: 2,
                 ops.MULTIANEWARRAY: 3}[kind]
    return size


def _map_target(target: int, new_offsets: Dict[int, int]) -> int:
    if target not in new_offsets:
        raise InstructionError(f"branch target {target} is not an instruction")
    return new_offsets[target]


def _encode_one(instruction: Instruction, pos: int,
                new_offsets: Dict[int, int]) -> bytes:
    op = instruction.op
    operands = instruction.operands
    if operands.get("wide"):
        out = bytearray([int(Op.WIDE_PREFIX), int(op)])
        out += struct.pack(">H", operands["index"])
        if op is Op.IINC:
            out += struct.pack(">h", operands["const"])
        return bytes(out)
    out = bytearray([int(op)])
    if op in (Op.TABLESWITCH, Op.LOOKUPSWITCH):
        pad = (4 - ((pos + 1) % 4)) % 4
        out += b"\x00" * pad
        default = _map_target(operands["default"], new_offsets)  # type: ignore[arg-type]
        out += struct.pack(">i", default - pos)
        if op is Op.TABLESWITCH:
            out += struct.pack(">ii", operands["low"], operands["high"])
            for target in operands["targets"]:  # type: ignore[union-attr]
                out += struct.pack(">i", _map_target(target, new_offsets) - pos)
        else:
            pairs = operands["pairs"]  # type: ignore[assignment]
            out += struct.pack(">i", len(pairs))  # type: ignore[arg-type]
            for match, target in pairs:  # type: ignore[union-attr]
                out += struct.pack(
                    ">ii", match, _map_target(target, new_offsets) - pos)
        return bytes(out)
    for kind in instruction.info.operands:
        if kind == ops.S1:
            out += struct.pack(">b", operands["value"])
        elif kind == ops.S2:
            out += struct.pack(">h", operands["value"])
        elif kind in (ops.U1, ops.ATYPE):
            out += struct.pack(">B", operands["value"])
        elif kind in (ops.U2, ops.CP2):
            out += struct.pack(">H", operands["index"])
        elif kind in (ops.LOCAL1, ops.CP1):
            out += struct.pack(">B", operands["index"])
        elif kind == ops.BRANCH2:
            delta = _map_target(operands["target"], new_offsets) - pos  # type: ignore[arg-type]
            if not -0x8000 <= delta < 0x8000:
                raise InstructionError(f"branch delta {delta} exceeds 16 bits")
            out += struct.pack(">h", delta)
        elif kind == ops.BRANCH4:
            delta = _map_target(operands["target"], new_offsets) - pos  # type: ignore[arg-type]
            out += struct.pack(">i", delta)
        elif kind == ops.IINC:
            out += struct.pack(">Bb", operands["index"], operands["const"])
        elif kind == ops.INVOKEINTERFACE:
            out += struct.pack(">BB", operands.get("count", 1),
                               operands.get("zero", 0))
        elif kind == ops.INVOKEDYNAMIC:
            out += struct.pack(">H", operands.get("zero", 0))
        elif kind == ops.MULTIANEWARRAY:
            out += struct.pack(">HB", operands["index"],
                               operands["dimensions"])
        else:  # pragma: no cover - table is closed
            raise InstructionError(f"unhandled operand kind {kind}")
    return bytes(out)
