"""The JVM opcode table (JVMS §6.5).

Every standard opcode is described by an :class:`OpcodeInfo` carrying its
mnemonic, operand layout, and net operand-stack effect.  Operand layouts are
expressed as a tuple of operand kinds so one generic codec
(:mod:`repro.bytecode.instructions`) can decode and encode every
instruction, including the variable-length ``tableswitch``/``lookupswitch``
and ``wide``-prefixed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Optional, Tuple

# Operand kinds -------------------------------------------------------------
#: one signed byte
S1 = "s1"
#: one signed short
S2 = "s2"
#: one unsigned byte
U1 = "u1"
#: one unsigned short (constant-pool index or local slot)
U2 = "u2"
#: signed 16-bit branch offset
BRANCH2 = "branch2"
#: signed 32-bit branch offset (goto_w / jsr_w)
BRANCH4 = "branch4"
#: unsigned byte local-variable slot
LOCAL1 = "local1"
#: unsigned byte constant-pool index (ldc)
CP1 = "cp1"
#: unsigned short constant-pool index
CP2 = "cp2"
#: variable-length switch payload
SWITCH = "switch"
#: the iinc pair (local slot u1, const s1)
IINC = "iinc"
#: invokeinterface extras (count u1, zero u1)
INVOKEINTERFACE = "invokeinterface"
#: invokedynamic trailing zeros
INVOKEDYNAMIC = "invokedynamic"
#: multianewarray (cp u2, dims u1)
MULTIANEWARRAY = "multianewarray"
#: newarray primitive-type code u1
ATYPE = "atype"
#: the wide prefix (modifies the following instruction)
WIDE = "wide"


class Op(IntEnum):
    """All standard JVM opcodes."""

    NOP = 0x00
    ACONST_NULL = 0x01
    ICONST_M1 = 0x02
    ICONST_0 = 0x03
    ICONST_1 = 0x04
    ICONST_2 = 0x05
    ICONST_3 = 0x06
    ICONST_4 = 0x07
    ICONST_5 = 0x08
    LCONST_0 = 0x09
    LCONST_1 = 0x0A
    FCONST_0 = 0x0B
    FCONST_1 = 0x0C
    FCONST_2 = 0x0D
    DCONST_0 = 0x0E
    DCONST_1 = 0x0F
    BIPUSH = 0x10
    SIPUSH = 0x11
    LDC = 0x12
    LDC_W = 0x13
    LDC2_W = 0x14
    ILOAD = 0x15
    LLOAD = 0x16
    FLOAD = 0x17
    DLOAD = 0x18
    ALOAD = 0x19
    ILOAD_0 = 0x1A
    ILOAD_1 = 0x1B
    ILOAD_2 = 0x1C
    ILOAD_3 = 0x1D
    LLOAD_0 = 0x1E
    LLOAD_1 = 0x1F
    LLOAD_2 = 0x20
    LLOAD_3 = 0x21
    FLOAD_0 = 0x22
    FLOAD_1 = 0x23
    FLOAD_2 = 0x24
    FLOAD_3 = 0x25
    DLOAD_0 = 0x26
    DLOAD_1 = 0x27
    DLOAD_2 = 0x28
    DLOAD_3 = 0x29
    ALOAD_0 = 0x2A
    ALOAD_1 = 0x2B
    ALOAD_2 = 0x2C
    ALOAD_3 = 0x2D
    IALOAD = 0x2E
    LALOAD = 0x2F
    FALOAD = 0x30
    DALOAD = 0x31
    AALOAD = 0x32
    BALOAD = 0x33
    CALOAD = 0x34
    SALOAD = 0x35
    ISTORE = 0x36
    LSTORE = 0x37
    FSTORE = 0x38
    DSTORE = 0x39
    ASTORE = 0x3A
    ISTORE_0 = 0x3B
    ISTORE_1 = 0x3C
    ISTORE_2 = 0x3D
    ISTORE_3 = 0x3E
    LSTORE_0 = 0x3F
    LSTORE_1 = 0x40
    LSTORE_2 = 0x41
    LSTORE_3 = 0x42
    FSTORE_0 = 0x43
    FSTORE_1 = 0x44
    FSTORE_2 = 0x45
    FSTORE_3 = 0x46
    DSTORE_0 = 0x47
    DSTORE_1 = 0x48
    DSTORE_2 = 0x49
    DSTORE_3 = 0x4A
    ASTORE_0 = 0x4B
    ASTORE_1 = 0x4C
    ASTORE_2 = 0x4D
    ASTORE_3 = 0x4E
    IASTORE = 0x4F
    LASTORE = 0x50
    FASTORE = 0x51
    DASTORE = 0x52
    AASTORE = 0x53
    BASTORE = 0x54
    CASTORE = 0x55
    SASTORE = 0x56
    POP = 0x57
    POP2 = 0x58
    DUP = 0x59
    DUP_X1 = 0x5A
    DUP_X2 = 0x5B
    DUP2 = 0x5C
    DUP2_X1 = 0x5D
    DUP2_X2 = 0x5E
    SWAP = 0x5F
    IADD = 0x60
    LADD = 0x61
    FADD = 0x62
    DADD = 0x63
    ISUB = 0x64
    LSUB = 0x65
    FSUB = 0x66
    DSUB = 0x67
    IMUL = 0x68
    LMUL = 0x69
    FMUL = 0x6A
    DMUL = 0x6B
    IDIV = 0x6C
    LDIV = 0x6D
    FDIV = 0x6E
    DDIV = 0x6F
    IREM = 0x70
    LREM = 0x71
    FREM = 0x72
    DREM = 0x73
    INEG = 0x74
    LNEG = 0x75
    FNEG = 0x76
    DNEG = 0x77
    ISHL = 0x78
    LSHL = 0x79
    ISHR = 0x7A
    LSHR = 0x7B
    IUSHR = 0x7C
    LUSHR = 0x7D
    IAND = 0x7E
    LAND = 0x7F
    IOR = 0x80
    LOR = 0x81
    IXOR = 0x82
    LXOR = 0x83
    IINC = 0x84
    I2L = 0x85
    I2F = 0x86
    I2D = 0x87
    L2I = 0x88
    L2F = 0x89
    L2D = 0x8A
    F2I = 0x8B
    F2L = 0x8C
    F2D = 0x8D
    D2I = 0x8E
    D2L = 0x8F
    D2F = 0x90
    I2B = 0x91
    I2C = 0x92
    I2S = 0x93
    LCMP = 0x94
    FCMPL = 0x95
    FCMPG = 0x96
    DCMPL = 0x97
    DCMPG = 0x98
    IFEQ = 0x99
    IFNE = 0x9A
    IFLT = 0x9B
    IFGE = 0x9C
    IFGT = 0x9D
    IFLE = 0x9E
    IF_ICMPEQ = 0x9F
    IF_ICMPNE = 0xA0
    IF_ICMPLT = 0xA1
    IF_ICMPGE = 0xA2
    IF_ICMPGT = 0xA3
    IF_ICMPLE = 0xA4
    IF_ACMPEQ = 0xA5
    IF_ACMPNE = 0xA6
    GOTO = 0xA7
    JSR = 0xA8
    RET = 0xA9
    TABLESWITCH = 0xAA
    LOOKUPSWITCH = 0xAB
    IRETURN = 0xAC
    LRETURN = 0xAD
    FRETURN = 0xAE
    DRETURN = 0xAF
    ARETURN = 0xB0
    RETURN = 0xB1
    GETSTATIC = 0xB2
    PUTSTATIC = 0xB3
    GETFIELD = 0xB4
    PUTFIELD = 0xB5
    INVOKEVIRTUAL = 0xB6
    INVOKESPECIAL = 0xB7
    INVOKESTATIC = 0xB8
    INVOKEINTERFACE = 0xB9
    INVOKEDYNAMIC = 0xBA
    NEW = 0xBB
    NEWARRAY = 0xBC
    ANEWARRAY = 0xBD
    ARRAYLENGTH = 0xBE
    ATHROW = 0xBF
    CHECKCAST = 0xC0
    INSTANCEOF = 0xC1
    MONITORENTER = 0xC2
    MONITOREXIT = 0xC3
    WIDE_PREFIX = 0xC4
    MULTIANEWARRAY = 0xC5
    IFNULL = 0xC6
    IFNONNULL = 0xC7
    GOTO_W = 0xC8
    JSR_W = 0xC9


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode.

    Attributes:
        op: the opcode.
        mnemonic: the JVMS mnemonic.
        operands: operand-kind layout (see module constants).
        pops/pushes: net stack effect in *slots* for fixed-effect opcodes;
            ``None`` where the effect depends on resolved symbols
            (invokes, field access, multianewarray).
        is_branch: transfers control conditionally or unconditionally.
        is_terminal: ends a basic block with no fall-through
            (returns, athrow, goto, switches, ret).
    """

    op: Op
    mnemonic: str
    operands: Tuple[str, ...] = ()
    pops: Optional[int] = 0
    pushes: Optional[int] = 0
    is_branch: bool = False
    is_terminal: bool = False


def _info(op: Op, mnemonic: str, operands: Tuple[str, ...] = (),
          pops: Optional[int] = 0, pushes: Optional[int] = 0,
          branch: bool = False, terminal: bool = False) -> OpcodeInfo:
    return OpcodeInfo(op, mnemonic, operands, pops, pushes, branch, terminal)


def _build_table() -> Dict[int, OpcodeInfo]:
    table: Dict[int, OpcodeInfo] = {}

    def add(op: Op, operands: Tuple[str, ...] = (), pops: Optional[int] = 0,
            pushes: Optional[int] = 0, branch: bool = False,
            terminal: bool = False) -> None:
        table[int(op)] = _info(op, op.name.lower().replace("_prefix", ""),
                               operands, pops, pushes, branch, terminal)

    add(Op.NOP)
    add(Op.ACONST_NULL, pushes=1)
    for op in (Op.ICONST_M1, Op.ICONST_0, Op.ICONST_1, Op.ICONST_2,
               Op.ICONST_3, Op.ICONST_4, Op.ICONST_5, Op.FCONST_0,
               Op.FCONST_1, Op.FCONST_2):
        add(op, pushes=1)
    for op in (Op.LCONST_0, Op.LCONST_1, Op.DCONST_0, Op.DCONST_1):
        add(op, pushes=2)
    add(Op.BIPUSH, (S1,), pushes=1)
    add(Op.SIPUSH, (S2,), pushes=1)
    add(Op.LDC, (CP1,), pushes=1)
    add(Op.LDC_W, (CP2,), pushes=1)
    add(Op.LDC2_W, (CP2,), pushes=2)
    for op in (Op.ILOAD, Op.FLOAD, Op.ALOAD):
        add(op, (LOCAL1,), pushes=1)
    for op in (Op.LLOAD, Op.DLOAD):
        add(op, (LOCAL1,), pushes=2)
    for op in (Op.ILOAD_0, Op.ILOAD_1, Op.ILOAD_2, Op.ILOAD_3,
               Op.FLOAD_0, Op.FLOAD_1, Op.FLOAD_2, Op.FLOAD_3,
               Op.ALOAD_0, Op.ALOAD_1, Op.ALOAD_2, Op.ALOAD_3):
        add(op, pushes=1)
    for op in (Op.LLOAD_0, Op.LLOAD_1, Op.LLOAD_2, Op.LLOAD_3,
               Op.DLOAD_0, Op.DLOAD_1, Op.DLOAD_2, Op.DLOAD_3):
        add(op, pushes=2)
    for op in (Op.IALOAD, Op.FALOAD, Op.AALOAD, Op.BALOAD, Op.CALOAD,
               Op.SALOAD):
        add(op, pops=2, pushes=1)
    for op in (Op.LALOAD, Op.DALOAD):
        add(op, pops=2, pushes=2)
    for op in (Op.ISTORE, Op.FSTORE, Op.ASTORE):
        add(op, (LOCAL1,), pops=1)
    for op in (Op.LSTORE, Op.DSTORE):
        add(op, (LOCAL1,), pops=2)
    for op in (Op.ISTORE_0, Op.ISTORE_1, Op.ISTORE_2, Op.ISTORE_3,
               Op.FSTORE_0, Op.FSTORE_1, Op.FSTORE_2, Op.FSTORE_3,
               Op.ASTORE_0, Op.ASTORE_1, Op.ASTORE_2, Op.ASTORE_3):
        add(op, pops=1)
    for op in (Op.LSTORE_0, Op.LSTORE_1, Op.LSTORE_2, Op.LSTORE_3,
               Op.DSTORE_0, Op.DSTORE_1, Op.DSTORE_2, Op.DSTORE_3):
        add(op, pops=2)
    for op in (Op.IASTORE, Op.FASTORE, Op.AASTORE, Op.BASTORE, Op.CASTORE,
               Op.SASTORE):
        add(op, pops=3)
    for op in (Op.LASTORE, Op.DASTORE):
        add(op, pops=4)
    add(Op.POP, pops=1)
    add(Op.POP2, pops=2)
    add(Op.DUP, pops=1, pushes=2)
    add(Op.DUP_X1, pops=2, pushes=3)
    add(Op.DUP_X2, pops=3, pushes=4)
    add(Op.DUP2, pops=2, pushes=4)
    add(Op.DUP2_X1, pops=3, pushes=5)
    add(Op.DUP2_X2, pops=4, pushes=6)
    add(Op.SWAP, pops=2, pushes=2)
    for op in (Op.IADD, Op.ISUB, Op.IMUL, Op.IDIV, Op.IREM, Op.ISHL,
               Op.ISHR, Op.IUSHR, Op.IAND, Op.IOR, Op.IXOR,
               Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FREM):
        add(op, pops=2, pushes=1)
    for op in (Op.LADD, Op.LSUB, Op.LMUL, Op.LDIV, Op.LREM, Op.LAND,
               Op.LOR, Op.LXOR, Op.DADD, Op.DSUB, Op.DMUL, Op.DDIV,
               Op.DREM):
        add(op, pops=4, pushes=2)
    for op in (Op.LSHL, Op.LSHR, Op.LUSHR):
        add(op, pops=3, pushes=2)
    for op in (Op.INEG, Op.FNEG):
        add(op, pops=1, pushes=1)
    for op in (Op.LNEG, Op.DNEG):
        add(op, pops=2, pushes=2)
    add(Op.IINC, (IINC,))
    for op in (Op.I2F, Op.F2I, Op.I2B, Op.I2C, Op.I2S):
        add(op, pops=1, pushes=1)
    for op in (Op.I2L, Op.I2D, Op.F2L, Op.F2D):
        add(op, pops=1, pushes=2)
    for op in (Op.L2I, Op.L2F, Op.D2I, Op.D2F):
        add(op, pops=2, pushes=1)
    for op in (Op.L2D, Op.D2L):
        add(op, pops=2, pushes=2)
    add(Op.LCMP, pops=4, pushes=1)
    for op in (Op.FCMPL, Op.FCMPG):
        add(op, pops=2, pushes=1)
    for op in (Op.DCMPL, Op.DCMPG):
        add(op, pops=4, pushes=1)
    for op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFGE, Op.IFGT, Op.IFLE,
               Op.IFNULL, Op.IFNONNULL):
        add(op, (BRANCH2,), pops=1, branch=True)
    for op in (Op.IF_ICMPEQ, Op.IF_ICMPNE, Op.IF_ICMPLT, Op.IF_ICMPGE,
               Op.IF_ICMPGT, Op.IF_ICMPLE, Op.IF_ACMPEQ, Op.IF_ACMPNE):
        add(op, (BRANCH2,), pops=2, branch=True)
    add(Op.GOTO, (BRANCH2,), branch=True, terminal=True)
    add(Op.JSR, (BRANCH2,), pushes=1, branch=True)
    add(Op.RET, (LOCAL1,), terminal=True)
    add(Op.TABLESWITCH, (SWITCH,), pops=1, branch=True, terminal=True)
    add(Op.LOOKUPSWITCH, (SWITCH,), pops=1, branch=True, terminal=True)
    add(Op.IRETURN, pops=1, terminal=True)
    add(Op.LRETURN, pops=2, terminal=True)
    add(Op.FRETURN, pops=1, terminal=True)
    add(Op.DRETURN, pops=2, terminal=True)
    add(Op.ARETURN, pops=1, terminal=True)
    add(Op.RETURN, terminal=True)
    add(Op.GETSTATIC, (CP2,), pops=0, pushes=None)
    add(Op.PUTSTATIC, (CP2,), pops=None, pushes=0)
    add(Op.GETFIELD, (CP2,), pops=1, pushes=None)
    add(Op.PUTFIELD, (CP2,), pops=None, pushes=0)
    for op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC):
        add(op, (CP2,), pops=None, pushes=None)
    add(Op.INVOKEINTERFACE, (CP2, INVOKEINTERFACE), pops=None, pushes=None)
    add(Op.INVOKEDYNAMIC, (CP2, INVOKEDYNAMIC), pops=None, pushes=None)
    add(Op.NEW, (CP2,), pushes=1)
    add(Op.NEWARRAY, (ATYPE,), pops=1, pushes=1)
    add(Op.ANEWARRAY, (CP2,), pops=1, pushes=1)
    add(Op.ARRAYLENGTH, pops=1, pushes=1)
    add(Op.ATHROW, pops=1, terminal=True)
    add(Op.CHECKCAST, (CP2,), pops=1, pushes=1)
    add(Op.INSTANCEOF, (CP2,), pops=1, pushes=1)
    add(Op.MONITORENTER, pops=1)
    add(Op.MONITOREXIT, pops=1)
    add(Op.WIDE_PREFIX, (WIDE,))
    add(Op.MULTIANEWARRAY, (MULTIANEWARRAY,), pops=None, pushes=1)
    add(Op.GOTO_W, (BRANCH4,), branch=True, terminal=True)
    add(Op.JSR_W, (BRANCH4,), pushes=1, branch=True)
    return table


#: Opcode byte → :class:`OpcodeInfo` for every standard opcode.
OPCODES: Dict[int, OpcodeInfo] = _build_table()

#: Mnemonic → :class:`OpcodeInfo`.
BY_MNEMONIC: Dict[str, OpcodeInfo] = {
    info.mnemonic: info for info in OPCODES.values()
}

#: ``newarray`` primitive type codes (JVMS Table 6.5.newarray-A).
NEWARRAY_TYPES = {
    4: "boolean", 5: "char", 6: "float", 7: "double",
    8: "byte", 9: "short", 10: "int", 11: "long",
}

#: Return opcode appropriate for each descriptor type character.
RETURN_OPS = {
    "V": Op.RETURN,
    "I": Op.IRETURN, "Z": Op.IRETURN, "B": Op.IRETURN,
    "C": Op.IRETURN, "S": Op.IRETURN,
    "J": Op.LRETURN,
    "F": Op.FRETURN,
    "D": Op.DRETURN,
    "L": Op.ARETURN, "[": Op.ARETURN,
}
