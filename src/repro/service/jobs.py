"""Durable on-disk job queue: specs, sharding, and atomic job records.

A *job* is one submitted unit of service work — a fuzzing run, a scaled
campaign, or a differential-testing pass — stored as a single JSON
record (``job.json``) inside its own directory under the daemon's state
root.  Records are written atomically (temp file + fsync + rename, the
:mod:`repro.core.checkpoint` pattern), so a crash mid-write leaves
either the old record or the new one, never a torn file.

Job lifecycle::

    queued -> running -> done
                      -> failed      (a leg exhausted its attempts)
                      -> cancelled   (operator request)

and ``running -> queued`` on daemon restart or graceful stop — a
recovered job resumes from its legs' checkpoints, not from scratch.

Campaign specs are *sharded* at submit time into per-algorithm legs
(:func:`shard_spec`), each carrying everything a worker subprocess
needs to reproduce the corresponding foreground run bit-identically:
label, iteration count from the calibrated cost model, and the exact
RNG seed :func:`repro.core.campaign.run_campaign` would use.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.core.campaign import (
    ALL_ALGORITHMS,
    PAPER_BUDGET_SECONDS,
    iterations_for_budget,
    safe_label,
)

#: Every state a job (or leg) can be in, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Job record file name inside each job directory.
JOB_FILE = "job.json"

#: Schema version stamped into every record.
RECORD_VERSION = 1

#: The spec ``type`` values the service accepts.
JOB_TYPES = ("fuzz", "campaign", "difftest")

_JOB_ID_RE = re.compile(r"^[0-9a-f]{8}-[0-9a-f]{12}$")


class JobError(ValueError):
    """An invalid spec, unknown job id, or corrupt job record."""


def new_job_id() -> str:
    """A short, filesystem-safe, unique job id (time-sortable prefix)."""
    stamp = format(int(time.time()), "08x")
    return f"{stamp}-{uuid.uuid4().hex[:12]}"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobError(message)


def validate_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Normalise and validate a submitted job spec.

    Returns a fully-defaulted copy (the record the daemon stores);
    raises :class:`JobError` with an operator-readable message for
    anything malformed.  Common fields: ``seed`` (base RNG seed),
    ``seed_count`` (corpus size), ``batch``, ``seed_schedule``,
    ``coverage_index``, ``checkpoint_every``.  Per-type fields:

    * ``fuzz`` — ``algorithm`` (a campaign label like ``classfuzz[tr]``,
      or bare ``classfuzz`` + ``criterion``) and ``iterations``;
    * ``campaign`` — ``algorithms`` (labels) and ``budget_scale`` (or an
      explicit ``budget_seconds``);
    * ``difftest`` — ``paths`` (``.class`` files or directories).
    """
    _require(isinstance(spec, dict), "spec must be a JSON object")
    job_type = spec.get("type")
    _require(job_type in JOB_TYPES,
             f"spec.type must be one of {JOB_TYPES}, got {job_type!r}")

    out: Dict[str, Any] = {"type": job_type}
    out["seed"] = _int_field(spec, "seed", 0, minimum=0)
    out["batch"] = _int_field(spec, "batch", 1, minimum=1)
    out["checkpoint_every"] = _int_field(
        spec, "checkpoint_every", 50, minimum=1)
    out["seed_schedule"] = str(spec.get("seed_schedule", "uniform"))
    out["coverage_index"] = str(spec.get("coverage_index", "exact"))
    _require(out["coverage_index"] in ("exact", "bitmap"),
             "spec.coverage_index must be 'exact' or 'bitmap'")
    exec_fraction = spec.get("exec_fraction", 0.0)
    _require(isinstance(exec_fraction, (int, float))
             and 0.0 <= exec_fraction <= 1.0,
             "spec.exec_fraction must be a number in [0, 1]")
    out["exec_fraction"] = float(exec_fraction)
    out["execution_mutators"] = bool(spec.get("execution_mutators", False))
    out["cmp_coverage"] = bool(spec.get("cmp_coverage", False))
    if "crash_after_checkpoints" in spec:  # test hook, first attempt only
        out["crash_after_checkpoints"] = _int_field(
            spec, "crash_after_checkpoints", 0, minimum=1)

    if job_type == "fuzz":
        out["seed_count"] = _int_field(spec, "seed_count", 200, minimum=1)
        out["algorithm"] = _canonical_label(
            spec.get("algorithm", "classfuzz[stbr]"), spec.get("criterion"))
        out["iterations"] = _int_field(spec, "iterations", 500, minimum=1)
    elif job_type == "campaign":
        out["seed_count"] = _int_field(spec, "seed_count", 1216, minimum=1)
        algorithms = spec.get("algorithms")
        if algorithms is None:
            algorithms = list(ALL_ALGORITHMS)
        _require(isinstance(algorithms, (list, tuple)) and algorithms,
                 "spec.algorithms must be a non-empty list")
        out["algorithms"] = [_canonical_label(a, None) for a in algorithms]
        if "budget_seconds" in spec:
            budget = spec["budget_seconds"]
        else:
            scale = spec.get("budget_scale", 0.1)
            _require(isinstance(scale, (int, float)) and scale > 0,
                     "spec.budget_scale must be a positive number")
            budget = PAPER_BUDGET_SECONDS * float(scale)
        _require(isinstance(budget, (int, float)) and budget > 0,
                 "spec.budget_seconds must be a positive number")
        out["budget_seconds"] = float(budget)
    else:  # difftest
        paths = spec.get("paths")
        _require(isinstance(paths, (list, tuple)) and paths,
                 "spec.paths must be a non-empty list of paths")
        out["paths"] = [str(p) for p in paths]
    return out


def _int_field(spec: Dict[str, Any], name: str, default: int,
               minimum: int) -> int:
    value = spec.get(name, default)
    _require(isinstance(value, int) and not isinstance(value, bool)
             and value >= minimum,
             f"spec.{name} must be an integer >= {minimum}, got {value!r}")
    return value


def _canonical_label(algorithm: Any, criterion: Optional[str]) -> str:
    """Map ``algorithm`` (+ optional criterion) onto a campaign label."""
    _require(isinstance(algorithm, str) and algorithm,
             f"algorithm must be a non-empty string, got {algorithm!r}")
    label = algorithm
    if label == "classfuzz":
        label = f"classfuzz[{criterion or 'stbr'}]"
    _require(label in ALL_ALGORITHMS,
             f"unknown algorithm {algorithm!r}; expected one of "
             f"{ALL_ALGORITHMS} (or 'classfuzz' + criterion)")
    return label


def shard_spec(spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Split a validated spec into per-leg work units.

    A campaign becomes one leg per algorithm, each with the iteration
    count :func:`~repro.core.campaign.iterations_for_budget` assigns at
    that budget and the base RNG seed (repetition 0) — i.e. exactly the
    runs ``repro campaign`` would perform in the foreground, so leg
    suites are byte-comparable with ``campaign --suites-out`` output.
    Fuzz and difftest specs become a single leg.
    """
    base = {
        "state": QUEUED,
        "attempts": 0,
        "exit_code": None,
        "started": None,
        "finished": None,
    }
    if spec["type"] == "campaign":
        legs = []
        for label in spec["algorithms"]:
            legs.append(dict(
                base,
                label=safe_label(label),
                kind="fuzz",
                algorithm=label,
                iterations=iterations_for_budget(
                    label, spec["budget_seconds"]),
                rng_seed=spec["seed"],
            ))
        return legs
    if spec["type"] == "fuzz":
        return [dict(base,
                     label=safe_label(spec["algorithm"]),
                     kind="fuzz",
                     algorithm=spec["algorithm"],
                     iterations=spec["iterations"],
                     rng_seed=spec["seed"])]
    return [dict(base, label="difftest", kind="difftest",
                 paths=list(spec["paths"]))]


@dataclass
class Job:
    """One stored job: its normalised spec, sharded legs, and lifecycle.

    Attributes:
        id: the queue-assigned job id (also the job directory name).
        state: one of :data:`JOB_STATES`.
        spec: the :func:`validate_spec`-normalised submission.
        legs: per-leg work units with their own state/attempt tracking.
        created/started/finished: lifecycle timestamps (epoch seconds;
            ``started`` is first-start and survives requeues, so queue
            timings stay honest across daemon restarts).
        error: operator-readable failure description, if any.
        cancel_requested: set by the API; the supervisor acts on it at
            its next poll.
    """

    id: str
    state: str
    spec: Dict[str, Any]
    legs: List[Dict[str, Any]]
    created: float
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    attempts: int = 0
    _extra: Dict[str, Any] = field(default_factory=dict, repr=False)

    @property
    def is_terminal(self) -> bool:
        """Whether the job can no longer change state."""
        return self.state in TERMINAL_STATES

    def pending_legs(self) -> List[Dict[str, Any]]:
        """Legs still owed work (not done and not cancelled)."""
        return [leg for leg in self.legs
                if leg["state"] not in (DONE, CANCELLED, FAILED)]

    def leg(self, label: str) -> Dict[str, Any]:
        """The leg named ``label`` (raises :class:`JobError` if absent)."""
        for leg in self.legs:
            if leg["label"] == label:
                return leg
        raise JobError(f"job {self.id} has no leg {label!r}")

    def summary(self) -> Dict[str, Any]:
        """The compact ``GET /jobs`` row for this job."""
        running = [leg["label"] for leg in self.legs
                   if leg["state"] == RUNNING]
        return {
            "id": self.id,
            "state": self.state,
            "type": self.spec["type"],
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "legs_done": sum(1 for leg in self.legs
                             if leg["state"] == DONE),
            "legs_total": len(self.legs),
            "current_leg": running[0] if running else None,
            "error": self.error,
        }

    def to_record(self) -> Dict[str, Any]:
        """The JSON-ready ``job.json`` document."""
        record = dict(self._extra)
        record.update({
            "version": RECORD_VERSION,
            "id": self.id,
            "state": self.state,
            "spec": self.spec,
            "legs": self.legs,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "attempts": self.attempts,
        })
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Job":
        """Rebuild a job from its stored record."""
        known = {"version", "id", "state", "spec", "legs", "created",
                 "started", "finished", "error", "cancel_requested",
                 "attempts"}
        try:
            return cls(
                id=record["id"],
                state=record["state"],
                spec=record["spec"],
                legs=record["legs"],
                created=record["created"],
                started=record.get("started"),
                finished=record.get("finished"),
                error=record.get("error"),
                cancel_requested=bool(record.get("cancel_requested")),
                attempts=int(record.get("attempts", 0)),
                _extra={k: v for k, v in record.items() if k not in known},
            )
        except (KeyError, TypeError) as exc:
            raise JobError(f"corrupt job record: {exc}") from exc


class JobStore:
    """Atomic, crash-safe persistence for job records under one root.

    Layout::

        <root>/jobs/<job-id>/job.json       the record (daemon-owned)
        <root>/jobs/<job-id>/legs/<label>/  one artifact dir per leg
                                            (worker-owned: status.json,
                                            events.jsonl, metrics.prom,
                                            checkpoint/, suite/, ...)

    The daemon is the *sole writer* of ``job.json`` (all mutations go
    through :meth:`update` under the store lock); workers write only
    inside their leg directory — no cross-process write races by
    construction.  One daemon per state root: the store does no
    cross-process locking.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.jobs_root = self.root / "jobs"
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # -- paths ---------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """The directory owning ``job_id`` (validates the id format)."""
        if not _JOB_ID_RE.match(job_id or ""):
            raise JobError(f"malformed job id {job_id!r}")
        return self.jobs_root / job_id

    def leg_dir(self, job_id: str, label: str) -> Path:
        """The artifact directory of one leg (labels are pre-sanitised)."""
        return self.job_dir(job_id) / "legs" / label

    # -- record I/O ----------------------------------------------------------

    def save(self, job: Job) -> None:
        """Atomically persist ``job`` (temp file + fsync + rename)."""
        directory = self.job_dir(job.id)
        directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(job.to_record(), indent=2,
                             sort_keys=True).encode("utf-8")
        tmp = directory / (JOB_FILE + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, directory / JOB_FILE)

    def load(self, job_id: str) -> Job:
        """Load one job record (raises :class:`JobError` when missing)."""
        path = self.job_dir(job_id) / JOB_FILE
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            raise JobError(f"no such job {job_id!r}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise JobError(f"unreadable job record {job_id!r}: "
                           f"{exc}") from exc
        return Job.from_record(record)

    def list_ids(self) -> List[str]:
        """Ids of every stored job, oldest first (ids are time-sorted)."""
        if not self.jobs_root.is_dir():
            return []
        return sorted(p.name for p in self.jobs_root.iterdir()
                      if p.is_dir() and (p / JOB_FILE).exists())

    def list_jobs(self) -> List[Job]:
        """All loadable jobs, oldest first (skips corrupt records)."""
        jobs = []
        for job_id in self.list_ids():
            try:
                jobs.append(self.load(job_id))
            except JobError:
                continue
        return jobs

    # -- lifecycle -----------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Job:
        """Validate, shard, and durably enqueue one spec."""
        normalised = validate_spec(spec)
        job = Job(
            id=new_job_id(),
            state=QUEUED,
            spec=normalised,
            legs=shard_spec(normalised),
            created=time.time(),
        )
        with self._lock:
            self.save(job)
            for leg in job.legs:
                self.leg_dir(job.id, leg["label"]).mkdir(
                    parents=True, exist_ok=True)
        return job

    def update(self, job_id: str,
               mutate: Callable[[Job], None]) -> Job:
        """Load-mutate-save one record atomically w.r.t. other threads."""
        with self._lock:
            job = self.load(job_id)
            mutate(job)
            self.save(job)
            return job

    def recover(self) -> List[str]:
        """Requeue every job a dead daemon left ``running``.

        Called once at daemon start.  Running legs drop back to
        ``queued`` with their attempt counts intact; their checkpoints
        stay on disk, so the next supervisor pass resumes them
        bit-identically.  Returns the requeued job ids.
        """
        requeued = []
        with self._lock:
            for job in self.list_jobs():
                if job.state != RUNNING:
                    continue

                def _requeue(record: Job) -> None:
                    record.state = QUEUED
                    for leg in record.legs:
                        if leg["state"] == RUNNING:
                            leg["state"] = QUEUED
                self.update(job.id, _requeue)
                requeued.append(job.id)
        return requeued

    def queue_depth(self) -> int:
        """How many jobs are waiting to run."""
        return sum(1 for job in self.list_jobs() if job.state == QUEUED)
