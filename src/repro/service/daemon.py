"""The ``repro serve`` daemon: scheduler + worker supervision.

:class:`ServiceDaemon` ties the service layer together: it recovers the
:class:`~repro.service.jobs.JobStore` at start (requeueing anything a
previous daemon left ``running``), runs a scheduler thread that pulls
queued jobs oldest-first, supervises each leg in a
``python -m repro.service.worker`` subprocess, and hosts the HTTP API
(:class:`~repro.service.api.ServiceServer`).

Supervision contract (the other half of the worker's exit-code
protocol):

* exit ``0`` — leg done;
* exit ``143``/``130`` — interrupted but resumable: the leg goes back
  to ``queued`` and is retried (its checkpoint carries the progress);
* any other exit — the attempt failed; after ``max_attempts`` the leg
  (and the job) is marked ``failed``;
* daemon ``stop()`` — SIGTERM to the live worker, wait for its final
  checkpoint, requeue job and leg: the next daemon resumes it;
* daemon ``kill()`` (tests' stand-in for a daemon crash) — SIGKILL the
  worker and abandon all bookkeeping, leaving ``job.json`` claiming
  ``running``; :meth:`~repro.service.jobs.JobStore.recover` repairs
  that at next start.

``parallel_legs`` supervisors can run at once (default 1); legs of one
job are independent subprocesses with disjoint artifact directories, so
parallelism never perturbs per-leg determinism.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobError,
    JobStore,
)

#: Per-leg outcomes the supervisor reports to the job loop.
_LEG_DONE = "done"
_LEG_RETRY = "retry"
_LEG_FAILED = "failed"
_LEG_STOPPED = "stopped"
_LEG_CANCELLED = "cancelled"
_LEG_ABANDONED = "abandoned"


def worker_environment() -> Dict[str, str]:
    """The environment worker subprocesses run with.

    Guarantees ``repro`` is importable (prepends its source root to
    ``PYTHONPATH``) and strips the ``REPRO_CRASH_AFTER_CHECKPOINTS``
    test hook — crash injection is a per-leg *spec* decision applied by
    the worker itself, never an accident of the daemon's environment.
    """
    import repro

    env = dict(os.environ)
    env.pop("REPRO_CRASH_AFTER_CHECKPOINTS", None)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_root if not existing
                         else src_root + os.pathsep + existing)
    return env


class ServiceDaemon:
    """Owns the queue, schedules jobs, and supervises leg workers."""

    def __init__(self, state_root: Path, host: str = "127.0.0.1",
                 port: int = 0, poll_interval: float = 0.2,
                 max_attempts: int = 3, parallel_legs: int = 1,
                 worker_grace: float = 10.0):
        self.store = JobStore(Path(state_root))
        self.host = host
        self.requested_port = port
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self.parallel_legs = max(1, parallel_legs)
        self.worker_grace = worker_grace
        self.started_at = time.time()
        self._stop = threading.Event()
        self._abandon = False
        self._thread: Optional[threading.Thread] = None
        self._workers: Dict[str, subprocess.Popen] = {}
        self._workers_lock = threading.Lock()
        self._api = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def url(self) -> str:
        """Base URL of the HTTP API (valid after :meth:`start`)."""
        return self._api.url if self._api is not None else ""

    @property
    def port(self) -> int:
        """Bound API port (valid after :meth:`start`)."""
        return self._api.port if self._api is not None else 0

    def start(self) -> "ServiceDaemon":
        """Recover the store, bind the API, and start scheduling."""
        from repro.service.api import ServiceServer

        requeued = self.store.recover()
        if requeued:
            print(f"recovered {len(requeued)} interrupted job(s): "
                  + ", ".join(requeued), file=sys.stderr)
        self._api = ServiceServer(self, host=self.host,
                                  port=self.requested_port).start()
        self._thread = threading.Thread(target=self._scheduler_loop,
                                        name="repro-scheduler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: SIGTERM live workers, requeue, stop the API."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._api is not None:
            self._api.stop()
            self._api = None

    def kill(self) -> None:
        """Die like a crashed daemon (test hook): SIGKILL workers,
        abandon every pending store write, leave records as they lie."""
        self._abandon = True
        self._stop.set()
        with self._workers_lock:
            workers = list(self._workers.values())
        for proc in workers:
            try:
                proc.kill()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._api is not None:
            self._api.stop()
            self._api = None

    # -- API-facing operations -----------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Job:
        """Validate and durably enqueue one spec."""
        return self.store.submit(spec)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately when queued, at the supervisor's
        next poll when running; terminal jobs are left untouched."""
        def _cancel(job: Job) -> None:
            if job.is_terminal:
                return
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished = time.time()
                for leg in job.legs:
                    if leg["state"] == QUEUED:
                        leg["state"] = CANCELLED
            else:
                job.cancel_requested = True
        return self.store.update(job_id, _cancel)

    def job_status(self, job_id: str) -> Dict[str, Any]:
        """The full ``GET /jobs/<id>`` document for one job."""
        import json

        job = self.store.load(job_id)
        record = job.to_record()
        now = time.time()
        timings: Dict[str, Any] = {
            "queued_seconds": round(
                ((job.started or now) - job.created), 3),
            "running_seconds": None,
        }
        if job.started is not None:
            timings["running_seconds"] = round(
                ((job.finished or now) - job.started), 3)
        progress = None
        for leg in job.legs:  # most relevant leg: running, else last seen
            status_path = self.store.leg_dir(job_id,
                                             leg["label"]) / "status.json"
            if not status_path.exists():
                continue
            try:
                with open(status_path, "r", encoding="utf-8") as handle:
                    candidate = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            progress = candidate
            if leg["state"] == RUNNING:
                break
        return {"job": record, "timings": timings,
                "leg_status": progress, "now": now}

    def service_info(self) -> Dict[str, Any]:
        """The queue-level ``GET /jobs`` header block."""
        return {
            "state_root": str(self.store.root),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue_depth": self.store.queue_depth(),
            "parallel_legs": self.parallel_legs,
            "max_attempts": self.max_attempts,
        }

    # -- scheduler -----------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            job = self._next_queued()
            if job is None:
                self._stop.wait(self.poll_interval)
                continue
            try:
                self._run_job(job.id)
            except JobError:
                continue  # record vanished/corrupt; skip it

    def _next_queued(self) -> Optional[Job]:
        for job in self.store.list_jobs():
            if job.state == QUEUED and not job.cancel_requested:
                return job
        return None

    def _update(self, job_id: str, mutate) -> Optional[Job]:
        """A store update that becomes a no-op once :meth:`kill` ran."""
        if self._abandon:
            return None
        return self.store.update(job_id, mutate)

    def _run_job(self, job_id: str) -> None:
        def _mark_running(job: Job) -> None:
            job.state = RUNNING
            if job.started is None:
                job.started = time.time()
            job.attempts += 1
        marked = self._update(job_id, _mark_running)
        if marked is None:
            return

        pending: List[str] = [leg["label"] for leg in marked.pending_legs()]
        outcomes: List[str] = []
        lock = threading.Lock()
        halt = threading.Event()  # stop dispatching further legs

        def _supervise() -> None:
            while not halt.is_set():
                with lock:
                    if not pending:
                        return
                    label = pending.pop(0)
                outcome = self._run_leg(job_id, label)
                with lock:
                    outcomes.append(outcome)
                    if outcome == _LEG_RETRY:
                        pending.append(label)
                    elif outcome != _LEG_DONE:
                        halt.set()

        supervisors = [threading.Thread(target=_supervise,
                                        name=f"repro-leg-{i}", daemon=True)
                       for i in range(min(self.parallel_legs,
                                          max(1, len(pending))))]
        for thread in supervisors:
            thread.start()
        for thread in supervisors:
            thread.join()

        if self._abandon or _LEG_ABANDONED in outcomes:
            return  # crashed-daemon semantics: leave the record as-is

        def _finalise(job: Job) -> None:
            if _LEG_STOPPED in outcomes:
                job.state = QUEUED  # graceful stop: hand to next daemon
            elif _LEG_CANCELLED in outcomes or job.cancel_requested:
                job.state = CANCELLED
                job.finished = time.time()
                for leg in job.legs:
                    if leg["state"] in (QUEUED, RUNNING):
                        leg["state"] = CANCELLED
            elif _LEG_FAILED in outcomes:
                job.state = FAILED
                job.finished = time.time()
                failed = [leg["label"] for leg in job.legs
                          if leg["state"] == FAILED]
                job.error = ("leg(s) exhausted their attempts: "
                             + ", ".join(failed))
            elif all(leg["state"] == DONE for leg in job.legs):
                job.state = DONE
                job.finished = time.time()
            else:
                job.state = QUEUED  # shouldn't happen; stay schedulable
        self._update(job_id, _finalise)

    # -- one leg -------------------------------------------------------------

    def _run_leg(self, job_id: str, label: str) -> str:
        try:
            job = self.store.load(job_id)
            leg = job.leg(label)
        except JobError:
            return _LEG_FAILED
        attempt = leg["attempts"]

        def _mark_leg_running(record: Job) -> None:
            entry = record.leg(label)
            entry["state"] = RUNNING
            if entry["started"] is None:
                entry["started"] = time.time()
        if self._update(job_id, _mark_leg_running) is None:
            return _LEG_ABANDONED

        leg_dir = self.store.leg_dir(job_id, label)
        leg_dir.mkdir(parents=True, exist_ok=True)
        log_path = leg_dir / "worker.log"
        command = [sys.executable, "-m", "repro.service.worker",
                   "--root", str(self.store.root),
                   "--job", job_id, "--leg", label,
                   "--attempt", str(attempt),
                   "--queue-depth", str(self.store.queue_depth())]
        with open(log_path, "ab") as log:
            proc = subprocess.Popen(command, stdout=log,
                                    stderr=subprocess.STDOUT,
                                    env=worker_environment())
        key = f"{job_id}/{label}"
        with self._workers_lock:
            self._workers[key] = proc
        try:
            returncode = self._supervise_worker(proc, job_id)
        finally:
            with self._workers_lock:
                self._workers.pop(key, None)

        if self._abandon:
            return _LEG_ABANDONED

        if returncode is None:  # stop() or cancel interrupted the wait
            returncode = proc.returncode
        cancelled = self._cancel_requested(job_id)
        now = time.time()

        def _settle(record: Job) -> None:
            entry = record.leg(label)
            entry["exit_code"] = returncode
            if returncode == 0:
                entry["state"] = DONE
                entry["finished"] = now
            elif self._stop.is_set() and not cancelled:
                entry["state"] = QUEUED  # resumable; next daemon's work
            elif cancelled:
                entry["state"] = CANCELLED
                entry["finished"] = now
            else:
                entry["attempts"] += 1
                if entry["attempts"] >= self.max_attempts:
                    entry["state"] = FAILED
                    entry["finished"] = now
                else:
                    entry["state"] = QUEUED
        settled = self._update(job_id, _settle)
        if settled is None:
            return _LEG_ABANDONED
        entry = settled.leg(label)
        if entry["state"] == DONE:
            return _LEG_DONE
        if entry["state"] == CANCELLED:
            return _LEG_CANCELLED
        if entry["state"] == FAILED:
            return _LEG_FAILED
        return _LEG_STOPPED if self._stop.is_set() else _LEG_RETRY

    def _supervise_worker(self, proc: subprocess.Popen,
                          job_id: str) -> Optional[int]:
        """Wait for the worker, honouring stop/kill/cancel requests."""
        cancel_checked = 0.0
        while True:
            returncode = proc.poll()
            if returncode is not None:
                return returncode
            if self._abandon:
                return None  # kill() already SIGKILLed it
            if self._stop.is_set():
                self._terminate(proc)
                return proc.returncode
            now = time.time()
            if now - cancel_checked >= 1.0:
                cancel_checked = now
                if self._cancel_requested(job_id):
                    self._terminate(proc)
                    return proc.returncode
            time.sleep(self.poll_interval)

    def _cancel_requested(self, job_id: str) -> bool:
        try:
            return self.store.load(job_id).cancel_requested
        except JobError:
            return False

    def _terminate(self, proc: subprocess.Popen) -> None:
        """SIGTERM, grant the checkpoint grace period, then SIGKILL."""
        try:
            proc.send_signal(signal.SIGTERM)
        except OSError:
            return
        try:
            proc.wait(timeout=self.worker_grace)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
