"""HTTP client for the service API (``repro submit``/``jobs``/``cancel``).

A thin urllib wrapper — the CLI verbs and tests talk to the daemon the
same way any external orchestrator would, over plain JSON HTTP, so the
API surface stays honest.  Connection and protocol failures raise
:class:`ServiceClientError` with an operator-readable message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.service.jobs import TERMINAL_STATES

#: Per-request socket timeout (the API answers from snapshots; slow
#: responses mean a dead daemon, not a busy one).
REQUEST_TIMEOUT_SECONDS = 10.0


class ServiceClientError(RuntimeError):
    """The daemon was unreachable or rejected the request."""


class ServiceClient:
    """Talks to one daemon's HTTP API at ``base_url``."""

    def __init__(self, base_url: str,
                 timeout: float = REQUEST_TIMEOUT_SECONDS):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- raw transport -------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Any:
        request = urllib.request.Request(
            self.base_url + path, method=method,
            headers={"Content-Type": "application/json"},
            data=(json.dumps(body).encode("utf-8")
                  if body is not None else None))
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                payload = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceClientError(
                f"{method} {path}: HTTP {exc.code}: {detail}") from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceClientError(
                f"cannot reach service at {self.base_url}: "
                f"{exc}") from None
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceClientError(
                f"{method} {path}: malformed response: {exc}") from None

    # -- API operations ------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """Liveness probe (raises when the daemon is down)."""
        return self._request("GET", "/healthz")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs``: returns the stored job record."""
        return self._request("POST", "/jobs", body=spec)

    def jobs(self) -> Dict[str, Any]:
        """``GET /jobs``: service info + job summaries."""
        return self._request("GET", "/jobs")

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>``: record + timings + live leg status."""
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /jobs/<id>/cancel``: returns the updated summary."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def artifact(self, job_id: str, rel: str = "") -> bytes:
        """Fetch one artifact file (or a directory listing) as bytes."""
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/artifacts/{rel}")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            raise ServiceClientError(
                f"artifact {rel!r}: HTTP {exc.code}") from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceClientError(
                f"cannot reach service at {self.base_url}: "
                f"{exc}") from None

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.3) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the
        final ``GET /jobs/<id>`` document (raises on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["job"]["state"] in TERMINAL_STATES:
                return document
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"job {job_id} still "
                    f"{document['job']['state']!r} after {timeout:.0f}s")
            time.sleep(poll)
