"""Campaign orchestration service: daemon, durable queue, HTTP API.

The paper's campaigns are one-shot batch runs; the service layer turns
them into first-class stored *jobs*.  ``repro serve`` starts a daemon
(:class:`~repro.service.daemon.ServiceDaemon`) that owns a durable
on-disk job queue (:class:`~repro.service.jobs.JobStore`, atomic JSON
records with states ``queued -> running -> done|failed|cancelled``),
shards submitted campaigns into per-leg jobs executed in supervised
worker subprocesses (:mod:`repro.service.worker`, each leg running
under the checkpoint machinery so crashes and SIGTERM resume
bit-identically), and exposes an HTTP API plus queue dashboard
(:class:`~repro.service.api.ServiceServer`).  ``repro submit`` /
``repro jobs`` / ``repro cancel`` talk to that API through
:class:`~repro.service.client.ServiceClient`.
"""

from repro.service.jobs import (  # noqa: F401
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobError,
    JobStore,
    new_job_id,
    shard_spec,
    validate_spec,
)

__all__ = [
    "JOB_STATES", "TERMINAL_STATES", "Job", "JobError", "JobStore",
    "new_job_id", "shard_spec", "validate_spec",
]
