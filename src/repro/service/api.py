"""HTTP API + queue dashboard for the service daemon (stdlib only).

Grown from the :mod:`repro.observe.server` monitor: same
``ThreadingHTTPServer`` skeleton (daemon threads, non-blocking close,
ephemeral-port support for tests), extended with POST routes and
artifact serving.  Endpoints:

``POST /jobs``
    Submit a job spec (JSON body); 201 with the stored record.
``GET /jobs``
    Queue overview: service info + one summary row per job.
``GET /jobs/<id>``
    Full job record, queue timings, and the live ``status.json``
    snapshot of the most relevant leg.
``POST /jobs/<id>/cancel``
    Request cancellation (immediate when queued, next supervisor poll
    when running).
``GET /jobs/<id>/artifacts/``  (and any path below it)
    Browse/fetch the job directory: events logs, metric dumps, suite
    manifests, checkpoints.  Traversal-proof: paths resolving outside
    the job directory are rejected.
``GET /healthz``
    Liveness probe with the queue depth.
``GET /``
    The queue dashboard — a self-contained HTML page polling
    ``GET /jobs``, linking each job to its status document and
    artifact listing.

JSON schemas for ``/jobs`` documents are specified in
``docs/architecture.md`` next to the ``/status`` schema.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple

from repro.service.jobs import JobError

#: Largest request body the API accepts (a job spec is tiny).
MAX_BODY_BYTES = 1 << 20

_CONTENT_TYPES = {
    ".json": "application/json",
    ".jsonl": "application/x-ndjson",
    ".prom": "text/plain; charset=utf-8",
    ".txt": "text/plain; charset=utf-8",
    ".log": "text/plain; charset=utf-8",
    ".info": "text/plain; charset=utf-8",
    ".html": "text/html; charset=utf-8",
}


class ServiceServer:
    """Serves the job-queue API for one :class:`ServiceDaemon`."""

    def __init__(self, daemon, host: str = "127.0.0.1", port: int = 0):
        self.daemon = daemon
        self._httpd = _ServiceHTTPServer((host, port), _ServiceHandler)
        self._httpd.service = self
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve from a daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-service:{self.port}", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down (in-flight handlers are daemonic)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class _ServiceHTTPServer(ThreadingHTTPServer):
    """Thread-per-request server that never outlives the daemon."""

    daemon_threads = True
    block_on_close = False
    service: "ServiceServer"


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the daemon's queue operations."""

    protocol_version = "HTTP/1.1"

    @property
    def daemon(self):
        return self.server.service.daemon  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # dashboard polls would flood stderr

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        try:
            if path == "/":
                self._send(200, "text/html; charset=utf-8",
                           QUEUE_DASHBOARD_HTML.encode("utf-8"))
            elif path == "/healthz":
                self._send_json(200, {
                    "ok": True,
                    "queue_depth": self.daemon.store.queue_depth()})
            elif path == "/jobs":
                jobs = [job.summary()
                        for job in self.daemon.store.list_jobs()]
                self._send_json(200, {
                    "service": self.daemon.service_info(),
                    "jobs": jobs})
            else:
                job_id, rest = self._split_job_path(path)
                if job_id is None:
                    self._send_json(404, {"error": "not found"})
                elif rest is None:
                    self._send_json(200, self.daemon.job_status(job_id))
                elif rest == "artifacts" or rest.startswith("artifacts/"):
                    self._serve_artifact(
                        job_id, rest[len("artifacts"):].lstrip("/"))
                else:
                    self._send_json(404, {"error": "not found"})
        except JobError as exc:
            self._send_json(404, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client went away mid-response

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        try:
            if path == "/jobs":
                self._submit()
                return
            job_id, rest = self._split_job_path(path)
            if job_id is not None and rest == "cancel":
                job = self.daemon.cancel(job_id)
                self._send_json(200, job.summary())
            else:
                self._send_json(404, {"error": "not found"})
        except JobError as exc:
            code = 404 if "no such job" in str(exc) else 400
            self._send_json(code, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- handlers ------------------------------------------------------------

    def _submit(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "missing or oversized body"})
            return
        try:
            spec = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"})
            return
        job = self.daemon.submit(spec)  # JobError -> 400 via do_POST
        self._send_json(201, job.to_record())

    def _serve_artifact(self, job_id: str, rel: str) -> None:
        job_dir = self.daemon.store.job_dir(job_id).resolve()
        if not job_dir.is_dir():
            self._send_json(404, {"error": f"no such job {job_id!r}"})
            return
        target = (job_dir / rel).resolve() if rel else job_dir
        if target != job_dir and job_dir not in target.parents:
            self._send_json(403, {"error": "path escapes job directory"})
            return
        if target.is_dir():
            entries = sorted(
                p.name + ("/" if p.is_dir() else "")
                for p in target.iterdir()
                if not p.name.endswith(".tmp"))
            self._send_json(200, {"path": rel or ".", "entries": entries})
        elif target.is_file():
            content_type = _CONTENT_TYPES.get(
                target.suffix, "application/octet-stream")
            self._send(200, content_type, target.read_bytes())
        else:
            self._send_json(404, {"error": f"no artifact {rel!r}"})

    # -- plumbing ------------------------------------------------------------

    @staticmethod
    def _split_job_path(path: str) -> Tuple[Optional[str], Optional[str]]:
        """``/jobs/<id>[/rest...]`` -> ``(id, rest)``; else ``(None, None)``."""
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "jobs":
            rest = "/".join(parts[2:]) if len(parts) > 2 else None
            return parts[1], rest
        return None, None

    def _send_json(self, code: int, document) -> None:
        body = json.dumps(document, sort_keys=True,
                          default=str).encode("utf-8")
        self._send(code, "application/json", body)

    def _send(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)


# ---------------------------------------------------------------------------
# The queue dashboard: one self-contained page, no external resources.
# Same validated dark palette as the campaign monitor (surface #1a1a19,
# series blue #3987e5 / orange #d95926, critical #e66767).
# ---------------------------------------------------------------------------

QUEUE_DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro service queue</title>
<style>
  :root { color-scheme: dark; }
  body { background: #1a1a19; color: #e8e6e3; margin: 2rem auto;
         max-width: 72rem; font: 14px/1.5 ui-monospace, monospace; }
  h1 { font-size: 1.2rem; color: #3987e5; }
  .meta { color: #8a8886; margin-bottom: 1rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .35rem .75rem;
           border-bottom: 1px solid #2c2c2a; }
  th { color: #8a8886; font-weight: normal; }
  a { color: #3987e5; text-decoration: none; }
  a:hover { text-decoration: underline; }
  .state-queued { color: #d95926; }
  .state-running { color: #3987e5; }
  .state-done { color: #7dba5e; }
  .state-failed, .state-cancelled { color: #e66767; }
</style>
</head>
<body>
<h1>repro service queue</h1>
<div class="meta" id="meta">loading&hellip;</div>
<table>
  <thead><tr><th>job</th><th>type</th><th>state</th><th>legs</th>
  <th>current leg</th><th>age</th><th>artifacts</th></tr></thead>
  <tbody id="rows"></tbody>
</table>
<script>
function age(t, now) {
  if (!t) return "-";
  var s = Math.max(0, now - t);
  if (s < 90) return s.toFixed(0) + "s";
  if (s < 5400) return (s / 60).toFixed(1) + "m";
  return (s / 3600).toFixed(1) + "h";
}
function refresh() {
  fetch("/jobs").then(function (r) { return r.json(); }).then(function (d) {
    var now = Date.now() / 1000;
    document.getElementById("meta").textContent =
      "state root " + d.service.state_root +
      " \\u00b7 queue depth " + d.service.queue_depth +
      " \\u00b7 up " + age(now - d.service.uptime_seconds, now);
    var rows = d.jobs.map(function (j) {
      return "<tr><td><a href='/jobs/" + j.id + "'>" + j.id + "</a></td>" +
        "<td>" + j.type + "</td>" +
        "<td class='state-" + j.state + "'>" + j.state + "</td>" +
        "<td>" + j.legs_done + "/" + j.legs_total + "</td>" +
        "<td>" + (j.current_leg || "-") + "</td>" +
        "<td>" + age(j.created, now) + "</td>" +
        "<td><a href='/jobs/" + j.id + "/artifacts/'>browse</a></td></tr>";
    });
    document.getElementById("rows").innerHTML =
      rows.join("") || "<tr><td colspan=7>no jobs submitted yet</td></tr>";
  }).catch(function () {});
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""
