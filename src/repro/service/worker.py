"""Leg worker: the subprocess entry point ``python -m repro.service.worker``.

The daemon never fuzzes in-process — each leg runs in a supervised
subprocess so a crash (or a deliberate ``SIGKILL`` of the daemon) can
never corrupt the queue, and so SIGTERM-driven graceful shutdown uses
the exact signal path production kills use.  The worker:

* loads its job record *read-only* (``job.json`` stays daemon-owned;
  everything the worker writes lives inside its own leg directory);
* installs the :mod:`repro.core.shutdown` SIGTERM handler, runs the leg
  under the checkpoint machinery (``checkpoint/`` in the leg dir,
  ``resume=True`` so a retried attempt continues bit-identically);
* publishes progress by atomically rewriting ``status.json`` from its
  :class:`~repro.observe.status.StatusTracker` snapshot (with the
  ``job`` section filled in) every ~half second;
* leaves artifacts behind: ``events.jsonl``, ``metrics.prom``,
  ``suite/`` (fuzz legs), ``report.json`` (difftest legs),
  ``result.json``, ``error.txt`` on failure.

Exit-code protocol (what the supervisor reads):

* ``0`` — leg complete, artifacts in place;
* ``143`` — SIGTERM honoured: final checkpoint written, resumable;
* ``130`` — interrupted (KeyboardInterrupt / the
  ``REPRO_CRASH_AFTER_CHECKPOINTS`` hook): resumable;
* anything else — failure; the supervisor retries up to its attempt
  budget.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.campaign import run_algorithm
from repro.core.checkpoint import CRASH_AFTER_ENV
from repro.core.executor import make_executor
from repro.core.shutdown import (
    GRACEFUL_EXIT_CODE,
    GracefulShutdown,
    install_sigterm_handler,
    reset_shutdown,
)
from repro.corpus import CorpusConfig, generate_corpus
from repro.service.jobs import Job, JobStore

#: How often the status.json snapshot is refreshed while a leg runs.
STATUS_INTERVAL_SECONDS = 0.5

#: File names the worker maintains inside its leg directory.
STATUS_FILE = "status.json"
RESULT_FILE = "result.json"
ERROR_FILE = "error.txt"


def _atomic_write(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def write_json(path: Path, document: Dict[str, Any]) -> None:
    """Atomically write one JSON document (crash leaves old or new)."""
    _atomic_write(path, json.dumps(document, indent=2,
                                   sort_keys=True).encode("utf-8"))


class _StatusPublisher:
    """Background thread mirroring tracker snapshots into ``status.json``."""

    def __init__(self, tracker, path: Path):
        self._tracker = tracker
        self._path = path
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def start(self) -> "_StatusPublisher":
        self.write_once()
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(STATUS_INTERVAL_SECONDS):
            self.write_once()

    def write_once(self) -> None:
        try:
            write_json(self._path, self._tracker.snapshot())
        except OSError:
            pass  # progress publishing must never kill the leg

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        self.write_once()


def _collect_classfiles(paths: List[str]) -> List[Tuple[str, bytes]]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.class")))
        else:
            files.append(path)
    return [(path.stem, path.read_bytes()) for path in files]


def _run_fuzz_leg(job: Job, leg: Dict[str, Any], leg_dir: Path,
                  telemetry) -> Dict[str, Any]:
    from repro.core.storage import save_suite

    spec = job.spec
    seeds = generate_corpus(CorpusConfig(
        count=spec["seed_count"], seed=spec["seed"],
        exec_fraction=spec.get("exec_fraction", 0.0)))
    extra = {}
    if spec.get("execution_mutators"):
        from repro.core.mutators import EXECUTION_MUTATORS, MUTATORS

        extra["mutators"] = list(MUTATORS) + list(EXECUTION_MUTATORS)
    if spec.get("cmp_coverage"):
        from repro.coverage.probes import enable_cmp_coverage

        enable_cmp_coverage()
    executor = make_executor(telemetry=telemetry)
    try:
        result = run_algorithm(
            leg["algorithm"], seeds, leg["iterations"], leg["rng_seed"],
            executor=executor, telemetry=telemetry,
            batch=spec["batch"], schedule=spec["seed_schedule"],
            checkpoint_dir=leg_dir / "checkpoint",
            checkpoint_every=spec["checkpoint_every"],
            resume=True, coverage_index=spec["coverage_index"],
            **extra)
    finally:
        executor.close()
    manifest = save_suite(result, leg_dir / "suite")
    return {
        "kind": "fuzz",
        "algorithm": leg["algorithm"],
        "iterations": result.iterations,
        "generated": len(result.gen_classes),
        "accepted": len(result.test_classes),
        "succ": result.succ,
        "elapsed_seconds": result.elapsed_seconds,
        "discards": dict(result.discards),
        "manifest": str(manifest),
    }


def _run_difftest_leg(job: Job, leg: Dict[str, Any], leg_dir: Path,
                      telemetry) -> Dict[str, Any]:
    from repro.core.difftest import DifferentialHarness
    from repro.core.metrics import evaluate_suite

    suite = _collect_classfiles(leg["paths"])
    harness = DifferentialHarness(telemetry=telemetry)
    report = evaluate_suite("service", suite, harness)
    document = {
        "kind": "difftest",
        "size": report.size,
        "all_invoked": report.all_invoked,
        "all_rejected_same_stage": report.all_rejected_same_stage,
        "discrepancies": report.discrepancies,
        "distinct_discrepancies": report.distinct_discrepancies,
        "fine_discrepancies": report.fine_discrepancies,
    }
    write_json(leg_dir / "report.json", document)
    return document


def run_leg(root: Path, job_id: str, leg_label: str, attempt: int,
            queue_depth: int) -> int:
    """Execute one leg to completion; returns the process exit code."""
    store = JobStore(root)
    job = store.load(job_id)
    leg = job.leg(leg_label)
    leg_dir = store.leg_dir(job_id, leg_label)
    leg_dir.mkdir(parents=True, exist_ok=True)

    # Deterministic crash-testing hook: a leg spec may ask its *first*
    # attempt to die after N checkpoints; retries run clean, so tests
    # exercise the resume path without looping forever.
    if job.spec.get("crash_after_checkpoints") and attempt == 0:
        os.environ[CRASH_AFTER_ENV] = str(
            job.spec["crash_after_checkpoints"])
    else:
        os.environ.pop(CRASH_AFTER_ENV, None)

    reset_shutdown()
    install_sigterm_handler()

    from repro.observe.telemetry import make_telemetry
    telemetry = make_telemetry(events_path=leg_dir / "events.jsonl")
    tracker = telemetry.attach_status()
    tracker.begin_run(f"{job_id}/{leg_label}",
                      config=dict(job.spec, leg=leg_label))
    tracker.set_job(id=job_id,
                    leg=[l["label"] for l in job.legs].index(leg_label) + 1,
                    legs=len(job.legs),
                    queue_depth=queue_depth,
                    attempt=attempt)
    publisher = _StatusPublisher(tracker, leg_dir / STATUS_FILE).start()
    try:
        with telemetry.activate():
            if leg["kind"] == "difftest":
                document = _run_difftest_leg(job, leg, leg_dir, telemetry)
            else:
                document = _run_fuzz_leg(job, leg, leg_dir, telemetry)
        write_json(leg_dir / RESULT_FILE, document)
        return 0
    except GracefulShutdown as exc:
        print(f"leg {leg_label}: {exc}", file=sys.stderr)
        return GRACEFUL_EXIT_CODE
    except KeyboardInterrupt:
        return 130
    except Exception as exc:  # report, then fail the attempt
        _atomic_write(leg_dir / ERROR_FILE,
                      f"{type(exc).__name__}: {exc}\n".encode("utf-8"))
        print(f"leg {leg_label} failed: {exc}", file=sys.stderr)
        return 1
    finally:
        publisher.stop()
        try:
            (leg_dir / "metrics.prom").write_text(
                telemetry.render_prometheus(), encoding="utf-8")
        except OSError:
            pass
        telemetry.close()


def main(argv: Optional[List[str]] = None) -> int:
    """Parse supervisor-provided arguments and run the leg."""
    parser = argparse.ArgumentParser(
        prog="repro-service-worker",
        description="run one service-job leg (daemon-internal)")
    parser.add_argument("--root", type=Path, required=True)
    parser.add_argument("--job", required=True)
    parser.add_argument("--leg", required=True)
    parser.add_argument("--attempt", type=int, default=0)
    parser.add_argument("--queue-depth", type=int, default=0)
    args = parser.parse_args(argv)
    return run_leg(args.root, args.job, args.leg, args.attempt,
                   args.queue_depth)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
