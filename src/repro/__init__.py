"""classfuzz: coverage-directed differential testing of JVM implementations.

A Python reproduction of Chen et al., PLDI 2016.  The package bundles:

* :mod:`repro.classfile` — a complete JVM classfile binary reader/writer;
* :mod:`repro.bytecode` — the JVM instruction set, codec, and assembler;
* :mod:`repro.jimple` — a Soot-like IR with a compiler and lifter;
* :mod:`repro.runtime` — a simulated platform library with per-JRE
  environments;
* :mod:`repro.jvm` — five simulated JVM implementations sharing one
  startup pipeline, parameterised by vendor policy;
* :mod:`repro.coverage` — statement/branch coverage of the reference JVM
  and the [st]/[stbr]/[tr] uniqueness criteria;
* :mod:`repro.corpus` — the synthetic JRE-library seed corpus;
* :mod:`repro.core` — classfuzz itself: 129 mutators, MCMC mutator
  selection, the fuzzing algorithms, the differential harness, and the
  hierarchical reducer.

Quickstart::

    from repro import (classfuzz, generate_corpus, CorpusConfig,
                       DifferentialHarness, evaluate_suite)

    seeds = generate_corpus(CorpusConfig(count=100))
    run = classfuzz(seeds, iterations=300, criterion="stbr", seed=0)
    report = evaluate_suite(
        "TestClasses", [(g.label, g.data) for g in run.test_classes])
    print(report.row())
"""

from repro.classfile import ClassFile, read_class, write_class
from repro.core import (
    DifferentialHarness,
    ExecutorStats,
    FuzzResult,
    MUTATORS,
    McmcMutatorSelector,
    Mutator,
    OutcomeCache,
    ParallelExecutor,
    SerialExecutor,
    SuiteReport,
    classfuzz,
    evaluate_suite,
    greedyfuzz,
    make_executor,
    randfuzz,
    reduce_discrepancy,
    uniquefuzz,
)
from repro.corpus import CorpusConfig, generate_corpus
from repro.coverage import CoverageCollector, Tracefile, make_criterion
from repro.jimple import (
    ClassBuilder,
    JClass,
    JMethod,
    MethodBuilder,
    compile_class,
    lift_class,
    print_class,
)
from repro.jimple.to_classfile import compile_class_bytes
from repro.jvm import Jvm, Outcome, Phase, all_jvms, reference_jvm

__version__ = "1.0.0"

__all__ = [
    "ClassBuilder",
    "ClassFile",
    "CorpusConfig",
    "CoverageCollector",
    "DifferentialHarness",
    "FuzzResult",
    "JClass",
    "JMethod",
    "Jvm",
    "MUTATORS",
    "McmcMutatorSelector",
    "MethodBuilder",
    "Mutator",
    "Outcome",
    "Phase",
    "SuiteReport",
    "Tracefile",
    "all_jvms",
    "classfuzz",
    "compile_class",
    "compile_class_bytes",
    "evaluate_suite",
    "generate_corpus",
    "greedyfuzz",
    "lift_class",
    "make_criterion",
    "print_class",
    "randfuzz",
    "read_class",
    "reduce_discrepancy",
    "reference_jvm",
    "uniquefuzz",
    "write_class",
]
