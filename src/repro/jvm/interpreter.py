"""Bytecode interpreter for the invocation & execution phase.

Executes the test class's methods over a small runtime object model:
Python ``int``/``float`` for primitives, ``str`` for ``java.lang.String``,
``None`` for null, :class:`JObject` for instances, and :class:`JArray` for
arrays.  Library calls are served by intrinsics (``println`` captures
output) or by descriptor-shaped default values; runtime constraint
violations raise the corresponding :mod:`repro.errors` exception, which
the machine reports as *rejected at runtime*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bytecode.instructions import (
    Instruction,
    InstructionError,
    decode_code,
)
from repro.bytecode.opcodes import Op
from repro.classfile.constant_pool import ConstantPoolError, CpTag
from repro.classfile.descriptors import DescriptorError, parse_method_descriptor
from repro.classfile.methods import MethodInfo
from repro.classfile.model import ClassFile
from repro.coverage.probes import (
    branch,
    log_int32_cmp,
    log_int64_cmp,
    log_str_cmp,
    probe,
)
from repro.errors import (
    AbstractMethodError,
    ArithmeticException,
    ArrayIndexOutOfBoundsException,
    ClassCastException,
    ClassFormatError,
    InstantiationError,
    JavaError,
    MissingResourceException,
    NegativeArraySizeException,
    NoClassDefFoundError,
    NoSuchFieldError,
    NoSuchMethodError,
    NullPointerException,
    StackOverflowError_,
    StepBudgetExceeded,
)
from repro.jvm.policy import JvmPolicy
from repro.runtime.environment import JreEnvironment

#: Backwards-compatible alias: the budget error used to be defined here
#: (with the misleading ``Timeout`` error name) before it moved into the
#: :mod:`repro.errors` taxonomy as :class:`~repro.errors.StepBudgetExceeded`.
ExecutionBudgetExceeded = StepBudgetExceeded


class UserThrowable(JavaError):
    """A user-level object thrown by ``athrow``."""

    def __init__(self, class_name: str, message: str = ""):
        super().__init__(message)
        self.java_name = class_name.replace("/", ".")


@dataclass
class JObject:
    """An instance of a class.

    Attributes:
        class_name: internal name of the instance's class.
        fields: instance field storage.
        initialized: whether ``<init>`` has run.
    """

    class_name: str
    fields: Dict[str, object] = field(default_factory=dict)
    initialized: bool = False


@dataclass
class JArray:
    """An array instance."""

    element_descriptor: str
    values: List[object]


class _PrintStream:
    """Handle standing in for ``System.out``/``System.err``."""

    def __init__(self, name: str, sink: List[str]):
        self.name = name
        self.sink = sink


def _default_for_descriptor(descriptor: str) -> object:
    """The JVM default value for a return descriptor."""
    if descriptor in ("I", "Z", "B", "C", "S"):
        return 0
    if descriptor == "J":
        return 0
    if descriptor in ("F", "D"):
        return 0.0
    return None


def _wrap_int(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def _wrap_long(value: int) -> int:
    value &= 0xFFFFFFFFFFFFFFFF
    return value - 0x10000000000000000 if value >= 0x8000000000000000 else value


class Interpreter:
    """Executes methods of one loaded test class."""

    def __init__(self, classfile: ClassFile, policy: JvmPolicy,
                 environment: JreEnvironment,
                 on_demand_verify=None):
        self.classfile = classfile
        self.policy = policy
        self.environment = environment
        self.library = environment.library
        self.output: List[str] = []
        self.statics: Dict[str, object] = {}
        self.steps = 0
        #: True once <clinit> has completed (set by the machine between
        #: the initialization and invocation phases).
        self.clinit_done = False
        #: Static fields written during <clinit> and not yet overwritten
        #: by main — the reads the clinit-visibility axis arbitrates.
        self._clinit_written: set = set()
        self._verified: set = set()
        #: Callback verifying a method lazily (J9-style) before first run.
        self._on_demand_verify = on_demand_verify
        self._random_state = 0x5DEECE66D

    # -- public API --------------------------------------------------------------

    def invoke_method(self, method: MethodInfo,
                      args: Optional[List[object]] = None,
                      receiver: Optional[object] = None,
                      depth: int = 0) -> object:
        """Interpret ``method`` of the test class and return its result."""
        probe("interp.invoke_method")
        if depth > 64:
            raise StackOverflowError_("recursion too deep")
        if self._on_demand_verify is not None:
            key = (method.name_index, method.descriptor_index)
            if key not in self._verified:
                self._verified.add(key)
                self._on_demand_verify(self.classfile, method)
        if branch("interp.method_abstract", method.is_abstract):
            raise AbstractMethodError(
                f"{self.classfile.name}."
                f"{self.classfile.method_name(method)}")
        code = method.code
        if branch("interp.method_missing_code", code is None):
            if method.is_native:
                return _default_for_descriptor(
                    self._return_descriptor(method))
            raise ClassFormatError(
                f"Absent Code attribute in method "
                f"{self.classfile.method_name(method)}")
        try:
            instructions = decode_code(code.code)
        except InstructionError as exc:
            from repro.errors import VerifyError

            raise VerifyError(f"Bad instruction: {exc}") from exc
        by_offset = {instruction.offset: i
                     for i, instruction in enumerate(instructions)}
        locals_: Dict[int, object] = {}
        slot = 0
        if receiver is not None or not method.is_static:
            locals_[0] = receiver
            slot = 1
        for arg in (args or []):
            locals_[slot] = arg
            slot += 2 if isinstance(arg, float) else 1
        return self._run(instructions, by_offset, locals_, code, depth)

    def _return_descriptor(self, method: MethodInfo) -> str:
        descriptor = self.classfile.method_descriptor(method)
        return descriptor.rsplit(")", 1)[-1]

    # -- the dispatch loop --------------------------------------------------------

    def _run(self, instructions: List[Instruction],
             by_offset: Dict[int, int], locals_: Dict[int, object],
             code, depth: int) -> object:
        stack: List[object] = []
        index = 0
        while True:
            self.steps += 1
            if branch("interp.budget_exceeded",
                      self.steps > self.policy.max_interpreter_steps):
                raise StepBudgetExceeded(
                    f"exceeded {self.policy.max_interpreter_steps} steps")
            if index >= len(instructions):
                from repro.errors import VerifyError

                raise VerifyError("Falling off the end of the code")
            instruction = instructions[index]
            try:
                outcome = self._step(instruction, stack, locals_, depth)
            except (_SystemExitRequested, StepBudgetExceeded):
                raise
            except JavaError as thrown:
                handler_index = self._find_handler(
                    code, by_offset, instruction.offset, thrown)
                if handler_index is None:
                    raise
                probe("interp.exception_caught")
                stack.clear()
                stack.append(self._materialize_throwable(thrown))
                index = handler_index
                continue
            if outcome is _NEXT:
                index += 1
            elif isinstance(outcome, _Jump):
                target = by_offset.get(outcome.offset)
                if target is None:
                    from repro.errors import VerifyError

                    raise VerifyError(
                        f"Illegal jump target {outcome.offset}")
                index = target
            else:  # _Return
                return outcome.value

    def _find_handler(self, code, by_offset: Dict[int, int],
                      offset: int, thrown: JavaError) -> Optional[int]:
        """Index of the matching exception handler, if any.

        All matching entries are collected first; which one wins is the
        ``exception_handler_scan_order`` policy axis ("declaration" per
        JVMS, "reversed" for a last-match-wins table walk).  The probe
        fires only when the choice is live (two or more matches), so
        single-handler methods trace exactly as they always have.
        """
        thrown_name = thrown.java_name.replace(".", "/")
        matches = []
        for handler in code.exception_table:
            if not handler.start_pc <= offset < handler.end_pc:
                continue
            if handler.catch_type:
                try:
                    catch_name = self.classfile.constant_pool.get_class_name(
                        handler.catch_type)
                except Exception:
                    continue
                if not (thrown_name == catch_name
                        or self.library.is_subclass_of(thrown_name,
                                                       catch_name)):
                    continue
            matches.append(handler)
        if not matches:
            return None
        if len(matches) > 1:
            if branch("interp.handler_scan_reversed",
                      self.policy.exception_handler_scan_order
                      == "reversed"):
                return by_offset.get(matches[-1].handler_pc)
        return by_offset.get(matches[0].handler_pc)

    def _materialize_throwable(self, thrown: JavaError) -> JObject:
        """The object a handler receives for a caught error."""
        name = thrown.java_name.replace(".", "/")
        return JObject(name, {"message": thrown.message}, initialized=True)

    # -- step results ------------------------------------------------------------------

    def _pop(self, stack: List[object]) -> object:
        if not stack:
            from repro.errors import VerifyError

            raise VerifyError("Operand stack underflow at runtime")
        return stack.pop()

    def _step(self, instruction: Instruction, stack: List[object],
              locals_: Dict[int, object], depth: int):
        op = instruction.op
        probe(f"interp.op.{instruction.mnemonic}")
        operands = instruction.operands
        name = op.name

        # Constants.
        if name.startswith("ICONST"):
            stack.append(int(name.rsplit("_", 1)[1].replace("M1", "-1")))
            return _NEXT
        if op in (Op.BIPUSH, Op.SIPUSH):
            stack.append(operands["value"])
            return _NEXT
        if op is Op.ACONST_NULL:
            stack.append(None)
            return _NEXT
        if name.startswith(("LCONST", "FCONST", "DCONST")):
            literal = name.rsplit("_", 1)[1]
            value = int(literal) if name[0] == "L" else float(literal)
            stack.append(value)
            return _NEXT
        if op in (Op.LDC, Op.LDC_W, Op.LDC2_W):
            stack.append(self._load_constant(operands["index"]))
            return _NEXT
        # Local loads/stores.
        if name.split("_")[0] in ("ILOAD", "LLOAD", "FLOAD", "DLOAD",
                                  "ALOAD") and "ALOAD" != name[1:]:
            slot = operands.get("index")
            if slot is None:
                slot = int(name.rsplit("_", 1)[1])
            stack.append(locals_.get(slot))
            return _NEXT
        if name.split("_")[0] in ("ISTORE", "LSTORE", "FSTORE", "DSTORE",
                                  "ASTORE") and "ASTORE" != name[1:]:
            slot = operands.get("index")
            if slot is None:
                slot = int(name.rsplit("_", 1)[1])
            locals_[slot] = self._pop(stack)
            return _NEXT
        if op is Op.IINC:
            slot = operands["index"]
            locals_[slot] = _wrap_int(int(locals_.get(slot) or 0)
                                      + operands["const"])
            return _NEXT
        # Stack manipulation.
        if op is Op.POP:
            self._pop(stack)
            return _NEXT
        if op is Op.POP2:
            self._pop(stack)
            if stack:
                stack.pop()
            return _NEXT
        if op is Op.DUP:
            value = self._pop(stack)
            stack.extend((value, value))
            return _NEXT
        if op is Op.SWAP:
            first, second = self._pop(stack), self._pop(stack)
            stack.extend((first, second))
            return _NEXT
        if op is Op.DUP_X1:
            first, second = self._pop(stack), self._pop(stack)
            stack.extend((first, second, first))
            return _NEXT
        if op is Op.DUP_X2:
            first = self._pop(stack)
            second = self._pop(stack)
            third = self._pop(stack)
            stack.extend((first, third, second, first))
            return _NEXT
        if op is Op.DUP2:
            # Values are whole on our stack (no split slots): duplicating
            # the top pair covers the category-1 case; category-2 values
            # (long/double, stored whole) duplicate as a single entry.
            first = self._pop(stack)
            if isinstance(first, float) or (isinstance(first, int)
                                            and abs(first) > 0xFFFFFFFF):
                stack.extend((first, first))
            elif stack:
                second = self._pop(stack)
                stack.extend((second, first, second, first))
            else:
                stack.extend((first, first))
            return _NEXT
        if op in (Op.DUP2_X1, Op.DUP2_X2):
            first, second = self._pop(stack), self._pop(stack)
            stack.extend((first, second, first))
            return _NEXT
        # Arithmetic.
        result = self._try_arith(op, stack)
        if result is not None:
            return _NEXT
        # Comparisons & branches.
        if name.startswith("IF_ICMP"):
            right, left = self._as_int(self._pop(stack)), \
                self._as_int(self._pop(stack))
            log_int32_cmp(f"interp.cmp.i32@{instruction.offset}",
                          left, right)
            taken = self._compare(name[len("IF_ICMP"):], left - right)
            return _Jump(operands["target"]) if taken else _NEXT
        if name.startswith("IF_ACMP"):
            right, left = self._pop(stack), self._pop(stack)
            same = left is right or left == right
            taken = same if name.endswith("EQ") else not same
            return _Jump(operands["target"]) if taken else _NEXT
        if op in (Op.IFNULL, Op.IFNONNULL):
            value = self._pop(stack)
            taken = (value is None) == (op is Op.IFNULL)
            return _Jump(operands["target"]) if taken else _NEXT
        if name.startswith("IF"):
            value = self._as_int(self._pop(stack))
            log_int32_cmp(f"interp.cmp.i32z@{instruction.offset}", value, 0)
            taken = self._compare(name[2:], value)
            return _Jump(operands["target"]) if taken else _NEXT
        if op in (Op.GOTO, Op.GOTO_W):
            return _Jump(operands["target"])
        if op is Op.TABLESWITCH:
            value = self._as_int(self._pop(stack))
            low, high = operands["low"], operands["high"]
            if low <= value <= high:
                return _Jump(operands["targets"][value - low])
            return _Jump(operands["default"])
        if op is Op.LOOKUPSWITCH:
            value = self._as_int(self._pop(stack))
            for match, target in operands["pairs"]:
                if match == value:
                    return _Jump(target)
            return _Jump(operands["default"])
        # Returns.
        if op is Op.RETURN:
            return _Return(None)
        if op in (Op.IRETURN, Op.LRETURN, Op.FRETURN, Op.DRETURN,
                  Op.ARETURN):
            return _Return(self._pop(stack))
        # Field access.
        if op is Op.GETSTATIC:
            stack.append(self._getstatic(operands["index"]))
            return _NEXT
        if op is Op.PUTSTATIC:
            self._putstatic(operands["index"], self._pop(stack))
            return _NEXT
        if op is Op.GETFIELD:
            receiver = self._pop(stack)
            stack.append(self._getfield(operands["index"], receiver))
            return _NEXT
        if op is Op.PUTFIELD:
            value = self._pop(stack)
            receiver = self._pop(stack)
            self._putfield(operands["index"], receiver, value)
            return _NEXT
        # Invocations.
        if op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC,
                  Op.INVOKEINTERFACE):
            self._invoke(op, operands["index"], stack, depth)
            return _NEXT
        if op is Op.INVOKEDYNAMIC:
            raise NoSuchMethodError("invokedynamic is unsupported")
        # Object model.
        if op is Op.NEW:
            stack.append(self._new(operands["index"]))
            return _NEXT
        if op is Op.NEWARRAY:
            length = self._as_int(self._pop(stack))
            if branch("interp.negative_array", length < 0):
                raise NegativeArraySizeException(str(length))
            stack.append(JArray("prim", [0] * length))
            return _NEXT
        if op is Op.ANEWARRAY:
            length = self._as_int(self._pop(stack))
            if branch("interp.negative_array_ref", length < 0):
                raise NegativeArraySizeException(str(length))
            stack.append(JArray("ref", [None] * length))
            return _NEXT
        if op is Op.MULTIANEWARRAY:
            dims = operands["dimensions"]
            sizes = [self._as_int(self._pop(stack)) for _ in range(dims)]
            if any(size < 0 for size in sizes):
                raise NegativeArraySizeException(str(min(sizes)))
            stack.append(JArray("multi", [None] * (sizes[-1] if sizes else 0)))
            return _NEXT
        if op is Op.ARRAYLENGTH:
            array = self._pop(stack)
            if branch("interp.arraylength_null", array is None):
                raise NullPointerException("arraylength of null")
            if isinstance(array, JArray):
                stack.append(len(array.values))
            elif isinstance(array, list):
                stack.append(len(array))
            else:
                raise ClassCastException("arraylength of non-array")
            return _NEXT
        if name.endswith("ALOAD"):  # array element loads
            index_value = self._as_int(self._pop(stack))
            array = self._pop(stack)
            stack.append(self._array_get(array, index_value))
            return _NEXT
        if name.endswith("ASTORE"):
            value = self._pop(stack)
            index_value = self._as_int(self._pop(stack))
            array = self._pop(stack)
            self._array_set(array, index_value, value)
            return _NEXT
        if op is Op.CHECKCAST:
            value = stack[-1] if stack else None
            self._checkcast(operands["index"], value)
            return _NEXT
        if op is Op.INSTANCEOF:
            value = self._pop(stack)
            stack.append(1 if self._instance_of(operands["index"], value)
                         else 0)
            return _NEXT
        if op is Op.ATHROW:
            self._throw(self._pop(stack))
        if op in (Op.MONITORENTER, Op.MONITOREXIT):
            receiver = self._pop(stack)
            if branch("interp.monitor_null", receiver is None):
                raise NullPointerException("monitor operation on null")
            return _NEXT
        if op is Op.NOP:
            return _NEXT
        from repro.errors import VerifyError

        raise VerifyError(f"Unsupported opcode {instruction.mnemonic} "
                          "reached at runtime")

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _as_int(value: object) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if value is None:
            return 0
        if isinstance(value, float):
            return int(value)
        raise ClassCastException(f"expected int, found {type(value).__name__}")

    @staticmethod
    def _as_float(value: object) -> float:
        if isinstance(value, float):
            return value
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, int):
            return float(value)
        if value is None:
            return 0.0
        raise ClassCastException(
            f"expected float, found {type(value).__name__}")

    @staticmethod
    def _compare(suffix: str, value: int) -> bool:
        return {"EQ": value == 0, "NE": value != 0, "LT": value < 0,
                "GE": value >= 0, "GT": value > 0, "LE": value <= 0}[suffix]

    _ARITH = {
        Op.IADD: lambda a, b: _wrap_int(a + b),
        Op.ISUB: lambda a, b: _wrap_int(a - b),
        Op.IMUL: lambda a, b: _wrap_int(a * b),
        Op.IAND: lambda a, b: a & b,
        Op.IOR: lambda a, b: a | b,
        Op.IXOR: lambda a, b: a ^ b,
        Op.ISHL: lambda a, b: _wrap_int(a << (b & 31)),
        Op.ISHR: lambda a, b: a >> (b & 31),
        Op.IUSHR: lambda a, b: _wrap_int((a & 0xFFFFFFFF) >> (b & 31)),
        Op.LADD: lambda a, b: _wrap_long(a + b),
        Op.LSUB: lambda a, b: _wrap_long(a - b),
        Op.LMUL: lambda a, b: _wrap_long(a * b),
        Op.LAND: lambda a, b: a & b,
        Op.LOR: lambda a, b: a | b,
        Op.LXOR: lambda a, b: a ^ b,
        Op.LSHL: lambda a, b: _wrap_long(a << (b & 63)),
        Op.LSHR: lambda a, b: a >> (b & 63),
        Op.LUSHR: lambda a, b: _wrap_long(
            (a & 0xFFFFFFFFFFFFFFFF) >> (b & 63)),
        Op.FADD: lambda a, b: a + b, Op.FSUB: lambda a, b: a - b,
        Op.FMUL: lambda a, b: a * b,
        Op.DADD: lambda a, b: a + b, Op.DSUB: lambda a, b: a - b,
        Op.DMUL: lambda a, b: a * b,
    }

    def _try_arith(self, op: Op, stack: List[object]) -> Optional[bool]:
        if op in self._ARITH:
            right = self._pop(stack)
            left = self._pop(stack)
            if op.name[0] in "IL":
                left, right = self._as_int(left), self._as_int(right)
            stack.append(self._ARITH[op](left, right))
            return True
        if op in (Op.IDIV, Op.IREM, Op.LDIV, Op.LREM):
            right = self._as_int(self._pop(stack))
            left = self._as_int(self._pop(stack))
            if branch("interp.div_by_zero", right == 0):
                raise ArithmeticException("/ by zero")
            if op in (Op.IDIV, Op.LDIV):
                quotient = abs(left) // abs(right)
                result = quotient if (left < 0) == (right < 0) else -quotient
            else:
                result = abs(left) % abs(right)
                result = result if left >= 0 else -result
            wrap = _wrap_int if op.name[0] == "I" else _wrap_long
            stack.append(wrap(result))
            return True
        if op in (Op.FDIV, Op.DDIV, Op.FREM, Op.DREM):
            right = self._pop(stack)
            left = self._pop(stack)
            try:
                value = (left / right) if op in (Op.FDIV, Op.DDIV) \
                    else (left % right)
            except ZeroDivisionError:
                value = float("nan")
            stack.append(value)
            return True
        if op in (Op.INEG, Op.LNEG):
            wrap = _wrap_int if op is Op.INEG else _wrap_long
            stack.append(wrap(-self._as_int(self._pop(stack))))
            return True
        if op in (Op.FNEG, Op.DNEG):
            stack.append(-self._pop(stack))
            return True
        if op in (Op.I2L, Op.L2I):
            value = self._as_int(self._pop(stack))
            stack.append(_wrap_int(value) if op is Op.L2I
                         else _wrap_long(value))
            return True
        if op in (Op.I2B, Op.I2C, Op.I2S):
            value = self._as_int(self._pop(stack))
            if branch("interp.narrowing_strict",
                      self.policy.strict_narrowing_conversions):
                if op is Op.I2B:
                    value = ((value & 0xFF) ^ 0x80) - 0x80
                elif op is Op.I2C:
                    value = value & 0xFFFF
                else:  # I2S
                    value = ((value & 0xFFFF) ^ 0x8000) - 0x8000
            else:
                # Legacy passthrough: only the 32-bit wrap is applied.
                value = _wrap_int(value)
            stack.append(value)
            return True
        if op in (Op.I2F, Op.I2D, Op.L2F, Op.L2D):
            stack.append(float(self._as_int(self._pop(stack))))
            return True
        if op in (Op.F2I, Op.D2I, Op.F2L, Op.D2L):
            number = self._as_float(self._pop(stack))
            low, high = ((-0x80000000, 0x7FFFFFFF)
                         if op in (Op.F2I, Op.D2I)
                         else (-0x8000000000000000, 0x7FFFFFFFFFFFFFFF))
            if number != number:  # NaN
                result = 0 if branch(
                    "interp.f2i_nan_strict",
                    self.policy.strict_narrowing_conversions) else low
            elif number <= low:
                result = low
            elif number >= high:
                result = high
            else:
                result = int(number)
            stack.append(result)
            return True
        if op in (Op.F2D, Op.D2F):
            stack.append(float(self._pop(stack)))
            return True
        if op is Op.LCMP:
            right = self._as_int(self._pop(stack))
            left = self._as_int(self._pop(stack))
            log_int64_cmp("interp.cmp.i64", left, right)
            stack.append((left > right) - (left < right))
            return True
        if op in (Op.FCMPL, Op.FCMPG, Op.DCMPL, Op.DCMPG):
            right = self._as_float(self._pop(stack))
            left = self._as_float(self._pop(stack))
            if branch("interp.fcmp_nan",
                      left != left or right != right):
                nan_result = self.policy.fcmpg_nan_result
                stack.append(nan_result if op in (Op.FCMPG, Op.DCMPG)
                             else -nan_result)
            else:
                stack.append((left > right) - (left < right))
            return True
        return None

    def _load_constant(self, index: int) -> object:
        pool = self.classfile.constant_pool
        try:
            entry = pool.entry(index)
        except ConstantPoolError as exc:
            from repro.errors import VerifyError

            raise VerifyError(f"ldc of bad constant: {exc}") from exc
        if entry.tag is CpTag.STRING:
            return pool.get_string(index)
        if entry.tag in (CpTag.INTEGER, CpTag.FLOAT, CpTag.LONG,
                         CpTag.DOUBLE):
            return entry.value
        if entry.tag is CpTag.CLASS:
            return JObject("java/lang/Class", {"name": pool.get_class_name(
                index)}, initialized=True)
        from repro.errors import VerifyError

        raise VerifyError(f"ldc of unloadable constant tag {entry.tag.name}")

    # -- fields -----------------------------------------------------------------------------

    def _field_target(self, index: int):
        pool = self.classfile.constant_pool
        try:
            return pool.get_member_ref(index)
        except ConstantPoolError as exc:
            from repro.errors import VerifyError

            raise VerifyError(f"bad field reference: {exc}") from exc

    def _getstatic(self, index: int) -> object:
        owner, name, descriptor = self._field_target(index)
        probe("interp.getstatic")
        if owner == self.classfile.name:
            # The clinit-visibility axis: a main-phase read of a static
            # whose only write happened in <clinit> may observe the field
            # default instead ("deferred").  The probe fires only when
            # such a read actually occurs, so classes that never write
            # statics in <clinit> trace exactly as before.
            if self.clinit_done and name in self._clinit_written:
                if branch("interp.clinit_read_deferred",
                          self.policy.clinit_visibility_order
                          == "deferred"):
                    return _default_for_descriptor(descriptor)
            return self.statics.get(name, _default_for_descriptor(descriptor))
        cls = self.library.find(owner)
        if branch("interp.getstatic_missing_class", cls is None):
            raise NoClassDefFoundError(owner.replace("/", "."))
        if owner == "java/lang/System" and name in ("out", "err"):
            return _PrintStream(name, self.output)
        member = cls.find_field(name)
        if branch("interp.getstatic_missing_field", member is None):
            raise NoSuchFieldError(f"{owner.replace('/', '.')}.{name}")
        return _default_for_descriptor(descriptor)

    def _putstatic(self, index: int, value: object) -> None:
        owner, name, _ = self._field_target(index)
        probe("interp.putstatic")
        if owner == self.classfile.name:
            if self.clinit_done:
                # main overwrote it: later reads see main's value on
                # every policy.
                self._clinit_written.discard(name)
            else:
                self._clinit_written.add(name)
            self.statics[name] = value
            return
        cls = self.library.find(owner)
        if branch("interp.putstatic_missing_class", cls is None):
            raise NoClassDefFoundError(owner.replace("/", "."))
        # Writes to library statics are accepted and discarded.

    def _getfield(self, index: int, receiver: object) -> object:
        owner, name, descriptor = self._field_target(index)
        if branch("interp.getfield_null", receiver is None):
            raise NullPointerException(f"reading field {name} of null")
        if isinstance(receiver, JObject):
            return receiver.fields.get(
                name, _default_for_descriptor(descriptor))
        return _default_for_descriptor(descriptor)

    def _putfield(self, index: int, receiver: object, value: object) -> None:
        owner, name, _ = self._field_target(index)
        if branch("interp.putfield_null", receiver is None):
            raise NullPointerException(f"writing field {name} of null")
        if isinstance(receiver, JObject):
            receiver.fields[name] = value

    # -- arrays -------------------------------------------------------------------------------

    def _array_get(self, array: object, index: int) -> object:
        if branch("interp.array_null", array is None):
            raise NullPointerException("array access on null")
        values = array.values if isinstance(array, JArray) else array
        if not isinstance(values, list):
            raise ClassCastException("array access on non-array")
        if branch("interp.array_oob", not 0 <= index < len(values)):
            raise ArrayIndexOutOfBoundsException(str(index))
        return values[index]

    def _array_set(self, array: object, index: int, value: object) -> None:
        if branch("interp.array_store_null", array is None):
            raise NullPointerException("array store on null")
        values = array.values if isinstance(array, JArray) else array
        if not isinstance(values, list):
            raise ClassCastException("array store on non-array")
        if branch("interp.array_store_oob", not 0 <= index < len(values)):
            raise ArrayIndexOutOfBoundsException(str(index))
        values[index] = value

    # -- object model -----------------------------------------------------------------------------

    def _new(self, index: int) -> JObject:
        pool = self.classfile.constant_pool
        try:
            class_name = pool.get_class_name(index)
        except ConstantPoolError as exc:
            from repro.errors import VerifyError

            raise VerifyError(f"new of bad class ref: {exc}") from exc
        probe("interp.new")
        if class_name == self.classfile.name:
            return JObject(class_name)
        cls = self.library.find(class_name)
        if branch("interp.new_missing_class", cls is None):
            raise NoClassDefFoundError(class_name.replace("/", "."))
        if branch("interp.new_abstract",
                  cls.is_interface or cls.is_abstract):
            raise InstantiationError(class_name.replace("/", "."))
        return JObject(class_name)

    def _class_of(self, value: object) -> Optional[str]:
        if isinstance(value, str):
            return "java/lang/String"
        if isinstance(value, JObject):
            return value.class_name
        if isinstance(value, JArray):
            return "[array"
        if isinstance(value, _PrintStream):
            return "java/io/PrintStream"
        return None

    def _is_assignable_runtime(self, source: str, target: str) -> bool:
        if target == "java/lang/Object" or source == target:
            return True
        if source == self.classfile.name:
            chain = {source}
            super_name = self.classfile.super_name
            if super_name:
                chain.add(super_name)
                if self.library.is_subclass_of(super_name, target):
                    return True
            return target in chain or target in set(
                self.classfile.interface_names)
        if self.library.is_subclass_of(source, target):
            return True
        source_cls = self.library.find(source)
        if source_cls is not None:
            seen = set()
            work = list(source_cls.interfaces)
            while work:
                iface = work.pop()
                if iface in seen:
                    continue
                seen.add(iface)
                if iface == target:
                    return True
                iface_cls = self.library.find(iface)
                if iface_cls is not None:
                    work.extend(iface_cls.interfaces)
        return False

    def _checkcast(self, index: int, value: object) -> None:
        if value is None:
            return
        pool = self.classfile.constant_pool
        target = pool.get_class_name(index)
        source = self._class_of(value)
        probe("interp.checkcast")
        if source is None:
            return
        if target.startswith("["):
            if branch("interp.cast_to_array", not isinstance(value, JArray)):
                raise ClassCastException(
                    f"{source.replace('/', '.')} cannot be cast to array")
            return
        if branch("interp.cast_fails",
                  not self._is_assignable_runtime(source, target)):
            raise ClassCastException(
                f"{source.replace('/', '.')} cannot be cast to "
                f"{target.replace('/', '.')}")

    def _instance_of(self, index: int, value: object) -> bool:
        if value is None:
            return False
        target = self.classfile.constant_pool.get_class_name(index)
        source = self._class_of(value)
        if source is None:
            return False
        return self._is_assignable_runtime(source, target)

    def _throw(self, value: object) -> None:
        probe("interp.athrow")
        if branch("interp.throw_null", value is None):
            raise NullPointerException("throw of null")
        class_name = self._class_of(value) or "java/lang/Object"
        message = ""
        if isinstance(value, JObject):
            message = str(value.fields.get("message", ""))
        raise UserThrowable(class_name, message)

    # -- invocation -----------------------------------------------------------------------------------

    def _invoke(self, op: Op, index: int, stack: List[object],
                depth: int) -> None:
        pool = self.classfile.constant_pool
        try:
            owner, name, descriptor = pool.get_member_ref(index)
        except ConstantPoolError as exc:
            from repro.errors import VerifyError

            raise VerifyError(f"bad method reference: {exc}") from exc
        try:
            parsed = parse_method_descriptor(descriptor)
        except DescriptorError as exc:
            from repro.errors import VerifyError

            raise VerifyError(f"bad method descriptor: {exc}") from exc
        args = [self._pop(stack) for _ in parsed.parameters]
        args.reverse()
        receiver = None
        if op is not Op.INVOKESTATIC:
            receiver = self._pop(stack)
            if branch("interp.invoke_on_null",
                      receiver is None and name != "<init>"):
                raise NullPointerException(
                    f"invoking {name} on a null object reference")
        probe("interp.invoke")
        if owner == self.classfile.name:
            result = self._invoke_self(name, descriptor, receiver, args,
                                       depth)
        else:
            result = self._invoke_library(owner, name, descriptor, receiver,
                                          args)
        if parsed.return_type is not None:
            stack.append(result)

    def _invoke_self(self, name: str, descriptor: str,
                     receiver: Optional[object], args: List[object],
                     depth: int) -> object:
        method = self.classfile.find_method(name, descriptor)
        if branch("interp.self_method_missing", method is None):
            raise NoSuchMethodError(
                f"{self.classfile.name.replace('/', '.')}.{name}{descriptor}")
        if isinstance(receiver, JObject) and name == "<init>":
            receiver.initialized = True
        return self.invoke_method(method, args, receiver, depth + 1)

    def _invoke_library(self, owner: str, name: str, descriptor: str,
                        receiver: Optional[object],
                        args: List[object]) -> object:
        probe("interp.invoke_library")
        cls = self.library.find(owner)
        if branch("interp.library_class_missing", cls is None):
            raise NoClassDefFoundError(owner.replace("/", "."))
        intrinsic = self._intrinsic(owner, name, descriptor, receiver, args)
        if intrinsic is not _NO_INTRINSIC:
            return intrinsic
        # Walk the superclass chain for the declaration.
        current = cls
        while current is not None:
            if current.find_method(name) is not None:
                break
            current = self.library.find(current.superclass) \
                if current.superclass else None
        if branch("interp.library_method_missing", current is None):
            raise NoSuchMethodError(
                f"{owner.replace('/', '.')}.{name}{descriptor}")
        if isinstance(receiver, JObject) and name == "<init>":
            receiver.initialized = True
        return _default_for_descriptor(descriptor.rsplit(")", 1)[-1])

    def _intrinsic(self, owner: str, name: str, descriptor: str,
                   receiver: Optional[object], args: List[object]) -> object:
        """Behavioural library methods the harness observes."""
        probe(f"interp.call.{owner}.{name}")
        if isinstance(receiver, _PrintStream) or (
                owner == "java/io/PrintStream" and name in ("println",
                                                            "print")):
            if name in ("println", "print"):
                text = _to_display(args[0]) if args else ""
                self.output.append(text)
                return None
        if owner == "java/lang/System" and name == "exit":
            raise _SystemExitRequested(int(args[0]) if args else 0)
        if owner == "java/lang/System" and name == "currentTimeMillis":
            return 1_460_000_000_000  # deterministic clock
        if owner == "java/lang/Math":
            if name == "abs" and args:
                return abs(self._as_int(args[0]))
            if name == "max" and len(args) == 2:
                return max(self._as_int(args[0]), self._as_int(args[1]))
            if name == "min" and len(args) == 2:
                return min(self._as_int(args[0]), self._as_int(args[1]))
        if owner == "java/lang/String":
            if name == "length" and isinstance(receiver, str):
                return len(receiver)
            if name == "concat" and isinstance(receiver, str) and args:
                return receiver + str(args[0])
            if name == "valueOf" and args:
                return _to_display(args[0])
            if name in ("equals", "compareTo", "charAt") \
                    and isinstance(receiver, str):
                # The string-compat axis: vendors without these fast
                # paths fall through to the library stubs (returning the
                # descriptor default, 0 — i.e. "not equal").
                if not branch("interp.string_compat",
                              self.policy.string_intrinsic_compat):
                    return _NO_INTRINSIC
                if name == "equals":
                    other = args[0] if args else None
                    if isinstance(other, str):
                        log_str_cmp("interp.cmp.str.equals", receiver,
                                    other)
                    return 1 if receiver == other else 0
                if name == "compareTo":
                    other = args[0] if args else None
                    if branch("interp.compareto_null",
                              not isinstance(other, str)):
                        raise NullPointerException("String.compareTo")
                    log_str_cmp("interp.cmp.str.compareTo", receiver,
                                other)
                    for ours, theirs in zip(receiver, other):
                        if ours != theirs:
                            return _wrap_int(ord(ours) - ord(theirs))
                    return _wrap_int(len(receiver) - len(other))
                # charAt
                char_index = self._as_int(args[0]) if args else 0
                if branch("interp.charat_oob",
                          not 0 <= char_index < len(receiver)):
                    raise UserThrowable(
                        "java.lang.StringIndexOutOfBoundsException",
                        f"String index out of range: {char_index}")
                return ord(receiver[char_index])
        if owner == "java/lang/Integer" and name == "parseInt" and args:
            try:
                return _wrap_int(int(str(args[0])))
            except ValueError:
                raise UserThrowable("java.lang.NumberFormatException",
                                    str(args[0])) from None
        if owner == "java/lang/Integer" and name == "valueOf" and args:
            boxed = JObject("java/lang/Integer", initialized=True)
            boxed.fields["value"] = self._as_int(args[0])
            return boxed
        if owner == "java/lang/Integer" and name == "intValue" \
                and isinstance(receiver, JObject):
            return self._as_int(receiver.fields.get("value", 0))
        if owner == "java/util/ResourceBundle" and name == "getBundle" \
                and args:
            bundle = str(args[0])
            if branch("interp.resource_missing",
                      bundle not in self.environment.resources):
                raise MissingResourceException(
                    f"Can't find bundle for base name {bundle}")
            return JObject("java/util/ResourceBundle",
                           {"name": bundle}, initialized=True)
        if owner == "java/util/Random" and name == "nextInt" and args:
            bound = max(1, self._as_int(args[0]))
            self._random_state = _wrap_long(
                self._random_state * 6364136223846793005 + 1442695040888963407)
            return abs(self._random_state) % bound
        if owner == "java/lang/StringBuilder":
            if name == "append" and isinstance(receiver, JObject):
                buffer = receiver.fields.setdefault("_sb", [])
                buffer.append(_to_display(args[0]) if args else "")
                return receiver
            if name == "toString" and isinstance(receiver, JObject):
                return "".join(receiver.fields.get("_sb", []))
        if owner == "java/util/HashMap" and isinstance(receiver, JObject):
            table = receiver.fields.setdefault("_map", {})
            if name == "put" and len(args) == 2:
                key = _hashable(args[0])
                previous = table.get(key)
                table[key] = args[1]
                return previous
            if name == "get" and args:
                return table.get(_hashable(args[0]))
            if name == "size":
                return len(table)
        if owner == "java/util/ArrayList" and isinstance(receiver, JObject):
            items = receiver.fields.setdefault("_list", [])
            if name == "add" and args:
                items.append(args[0])
                return 1
            if name == "size":
                return len(items)
        return _NO_INTRINSIC


class _SystemExitRequested(Exception):
    """``System.exit`` was called; treated as normal termination."""

    def __init__(self, status: int):
        super().__init__(str(status))
        self.status = status


def _to_display(value: object) -> str:
    """Render a value the way ``println`` would."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return value
    if isinstance(value, JObject):
        return f"{value.class_name.replace('/', '.')}@1"
    if isinstance(value, JArray):
        return "[array@1"
    return str(value)


def _hashable(value: object) -> object:
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    return id(value)


class _Next:
    """Sentinel: fall through to the next instruction."""


_NEXT = _Next()
_NO_INTRINSIC = object()


@dataclass
class _Jump:
    offset: int


@dataclass
class _Return:
    value: object
