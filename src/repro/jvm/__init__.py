"""Simulated JVM implementations: one startup pipeline, five vendor policies.

The pipeline (:mod:`repro.jvm.machine`) implements the four startup phases
of Table 1 in the paper — creation & loading, linking (with verification),
initialization, and invocation & execution — over real classfile bytes.
Behavioural differences between vendors live entirely in
:class:`repro.jvm.policy.JvmPolicy` plus the vendor's
:class:`repro.runtime.environment.JreEnvironment`.
"""

from repro.jvm.outcome import Outcome, Phase, encode_outcomes
from repro.jvm.policy import JvmPolicy
from repro.jvm.machine import Jvm
from repro.jvm.vendors import (
    REFERENCE_JVM_NAME,
    all_jvms,
    make_gij,
    make_hotspot7,
    make_hotspot8,
    make_hotspot9,
    make_j9,
    reference_jvm,
)

__all__ = [
    "Jvm",
    "JvmPolicy",
    "Outcome",
    "Phase",
    "REFERENCE_JVM_NAME",
    "all_jvms",
    "encode_outcomes",
    "make_gij",
    "make_hotspot7",
    "make_hotspot8",
    "make_hotspot9",
    "make_j9",
    "reference_jvm",
]
