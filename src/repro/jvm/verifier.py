"""Bytecode verification (linking phase, JVMS §4.10).

A worklist dataflow analysis over operand-stack and local-variable states.
Verification *depth* is policy-controlled, reproducing the paper's
Problem 2 divergences: J9 checks stack shapes more strictly, GIJ tracks
reference types and rejects unsafe assignability and initialized/
uninitialized merges, HotSpot does neither.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bytecode.instructions import (
    Instruction,
    InstructionError,
    decode_code,
)
from repro.bytecode.opcodes import Op
from repro.classfile.attributes import CodeAttribute
from repro.classfile.constant_pool import ConstantPool, ConstantPoolError, CpTag
from repro.classfile.descriptors import (
    DescriptorError,
    parse_field_descriptor,
    parse_method_descriptor,
)
from repro.classfile.methods import MethodInfo
from repro.classfile.model import ClassFile
from repro.coverage.probes import branch, probe
from repro.errors import (
    ClassFormatError,
    NoClassDefFoundError,
    NoSuchFieldError,
    NoSuchMethodError,
    VerifyError,
)
from repro.jvm.policy import JvmPolicy
from repro.runtime.library import ClassLibrary


@dataclass(frozen=True)
class VType:
    """A verification type: a category plus an optional reference name.

    Attributes:
        cat: ``i``/``f``/``a``/``l``/``d`` — int, float, reference,
            long, double.
        ref: internal class name for references (``None`` = unknown),
            prefixed ``uninit:`` for uninitialized objects, ``null`` for
            the null type.
    """

    cat: str
    ref: Optional[str] = None

    @property
    def size(self) -> int:
        return 2 if self.cat in ("l", "d") else 1

    @property
    def is_uninitialized(self) -> bool:
        return self.ref is not None and self.ref.startswith("uninit:")

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.cat}" + (f"({self.ref})" if self.ref else "")


_INT = VType("i")
_FLOAT = VType("f")
_LONG = VType("l")
_DOUBLE = VType("d")
_NULL = VType("a", "null")

#: Local-variable load/store mnemonics (excluding array element access).
_LOCAL_LOAD_NAMES = frozenset(
    f"{prefix}LOAD{suffix}"
    for prefix in "ILFDA" for suffix in ("", "_0", "_1", "_2", "_3"))
_LOCAL_STORE_NAMES = frozenset(
    f"{prefix}STORE{suffix}"
    for prefix in "ILFDA" for suffix in ("", "_0", "_1", "_2", "_3"))


def _vtype_of_descriptor_char(char: str, ref: Optional[str] = None) -> VType:
    if char in ("I", "Z", "B", "C", "S"):
        return _INT
    if char == "F":
        return _FLOAT
    if char == "J":
        return _LONG
    if char == "D":
        return _DOUBLE
    return VType("a", ref)


def _vtype_of_field_descriptor(descriptor: str) -> VType:
    ftype = parse_field_descriptor(descriptor)
    if ftype.dimensions:
        return VType("a", descriptor.replace(".", "/"))
    if ftype.kind == "base":
        return _vtype_of_descriptor_char(ftype.name)
    return VType("a", ftype.name)


class MethodVerifier:
    """Verifies one method body."""

    def __init__(self, classfile: ClassFile, method: MethodInfo,
                 code: CodeAttribute, policy: JvmPolicy,
                 library: ClassLibrary):
        self.classfile = classfile
        self.method = method
        self.code = code
        self.policy = policy
        self.library = library
        self.pool: ConstantPool = classfile.constant_pool
        self.where = (f"{classfile.name}."
                      f"{classfile.method_name(method)}"
                      f"{classfile.method_descriptor(method)}")

    # -- helpers ------------------------------------------------------------------

    def _fail(self, message: str) -> VerifyError:
        return VerifyError(f"(class: {self.classfile.name}, method: "
                           f"{self.classfile.method_name(self.method)}) "
                           f"{message}")

    def _assignable(self, source: VType, target: VType) -> bool:
        """Loose reference assignability over the simulated library."""
        if source.cat != target.cat:
            return False
        if source.cat != "a":
            return True
        if source.ref is None or target.ref is None:
            return True
        if source.ref == "null" or target.ref == "java/lang/Object":
            return True
        if source.ref == target.ref:
            return True
        if source.is_uninitialized or target.is_uninitialized:
            return source.ref == target.ref
        if source.ref.startswith("[") or target.ref.startswith("["):
            return True  # array covariance left unchecked
        source_cls = self.library.find(source.ref)
        target_cls = self.library.find(target.ref)
        if source_cls is None or target_cls is None:
            # One side is outside the library (e.g. the class under test):
            # assume compatible, as real verifiers do with lazy loading.
            return True
        if target_cls.is_interface:
            # Interface assignments are normally deferred to runtime, but a
            # *final* class that does not implement the interface can never
            # satisfy it — the unsafe-cast case GIJ reports (Problem 2).
            if not source_cls.is_final:
                return True
            return self._implements(source.ref, target.ref)
        return self.library.is_subclass_of(source.ref, target.ref)

    def _implements(self, class_name: str, interface: str) -> bool:
        """Whether ``class_name`` transitively implements ``interface``."""
        seen = set()
        work = [class_name]
        while work:
            current = work.pop()
            if current in seen:
                continue
            seen.add(current)
            if current == interface:
                return True
            cls = self.library.find(current)
            if cls is None:
                continue
            work.extend(cls.interfaces)
            if cls.superclass:
                work.append(cls.superclass)
        return False

    def _merge_types(self, first: VType, second: VType) -> VType:
        if first == second:
            return first
        if first.cat != second.cat:
            raise self._fail(
                f"Mismatched stack types ({first} vs {second})")
        if first.cat != "a":
            return first
        if self.policy.verify_uninitialized_merge and branch(
                "verifier.uninit_merge",
                first.is_uninitialized != second.is_uninitialized):
            raise self._fail(
                "Merging initialized and uninitialized object types")
        return VType("a", None)

    # -- constant pool access ----------------------------------------------------

    def _cp_entry(self, index: int, *tags: CpTag, what: str):
        try:
            entry = self.pool.entry(index)
        except ConstantPoolError as exc:
            raise ClassFormatError(
                f"Bad constant pool index for {what} in {self.where}: "
                f"{exc}") from exc
        if self.policy.verify_cp_references and branch(
                "verifier.cp_tag_mismatch", entry.tag not in tags):
            raise ClassFormatError(
                f"Constant pool entry {index} for {what} has tag "
                f"{entry.tag.name} in {self.where}")
        return entry

    def _member_ref(self, index: int, *tags: CpTag,
                    what: str) -> Tuple[str, str, str]:
        self._cp_entry(index, *tags, what=what)
        try:
            return self.pool.get_member_ref(index)
        except ConstantPoolError as exc:
            raise ClassFormatError(
                f"Broken {what} reference in {self.where}: {exc}") from exc

    def _resolve_owner(self, owner: str, what: str) -> None:
        """Eager reference resolution (policy-gated)."""
        if not self.policy.resolve_refs_eagerly:
            return
        probe("verifier.resolve_ref")
        if owner.startswith("["):
            return
        if owner == self.classfile.name:
            return
        if branch("verifier.ref_owner_missing",
                  self.library.find(owner) is None):
            raise NoClassDefFoundError(
                f"{owner.replace('/', '.')} (referenced from {what} "
                f"in {self.where})")

    # -- entry point ---------------------------------------------------------------

    def verify(self) -> None:
        """Run verification; raises on the first violation."""
        probe("verifier.method")
        try:
            instructions = decode_code(self.code.code)
        except InstructionError as exc:
            probe("verifier.bad_instruction")
            raise self._fail(f"Bad instruction: {exc}") from exc
        if branch("verifier.empty_code", not instructions):
            raise self._fail("Empty code attribute")
        starts = {instruction.offset for instruction in instructions}
        by_offset = {instruction.offset: i
                     for i, instruction in enumerate(instructions)}
        self._check_branch_targets(instructions, starts)
        self._check_exception_table(starts)
        self._dataflow(instructions, by_offset)

    def _check_branch_targets(self, instructions: List[Instruction],
                              starts: set) -> None:
        if not self.policy.verify_branch_targets:
            return
        probe("verifier.check_branch_targets")
        for instruction in instructions:
            for target in instruction.branch_targets():
                if branch("verifier.branch_target_bad",
                          target not in starts):
                    raise self._fail(
                        f"Illegal target of jump or branch (offset "
                        f"{target})")

    def _check_exception_table(self, starts: set) -> None:
        probe("verifier.check_exception_table")
        code_length = len(self.code.code)
        for handler in self.code.exception_table:
            if branch("verifier.handler_range_bad",
                      not (0 <= handler.start_pc < handler.end_pc
                           <= code_length)):
                raise self._fail("Illegal exception table range")
            if branch("verifier.handler_pc_bad",
                      handler.handler_pc not in starts):
                raise self._fail("Illegal exception table handler")
            if handler.catch_type:
                self._cp_entry(handler.catch_type, CpTag.CLASS,
                               what="exception handler")

    # -- dataflow ---------------------------------------------------------------------

    def _initial_locals(self) -> Dict[int, VType]:
        locals_: Dict[int, VType] = {}
        slot = 0
        if not self.method.is_static:
            locals_[slot] = VType("a", self.classfile.name)
            slot += 1
        descriptor = self.classfile.method_descriptor(self.method)
        try:
            parsed = parse_method_descriptor(descriptor)
        except DescriptorError as exc:
            raise ClassFormatError(
                f"Invalid method descriptor in {self.where}: {exc}") from exc
        for param in parsed.parameters:
            if param.dimensions:
                vtype = VType("a", param.descriptor().replace(".", "/"))
            elif param.kind == "base":
                vtype = _vtype_of_descriptor_char(param.name)
            else:
                vtype = VType("a", param.name)
            locals_[slot] = vtype
            slot += vtype.size
        if branch("verifier.args_exceed_locals",
                  self.policy.verify_max_locals
                  and slot > self.code.max_locals):
            raise self._fail("Arguments can't fit into locals")
        return locals_

    def _dataflow(self, instructions: List[Instruction],
                  by_offset: Dict[int, int]) -> None:
        probe("verifier.dataflow")
        states: Dict[int, Tuple[Tuple[VType, ...], Dict[int, VType]]] = {}
        work: List[int] = [0]
        states[0] = ((), self._initial_locals())
        # Exception handlers are entered with the thrown object as the
        # only stack value; locals conservatively hold just the arguments.
        for handler in self.code.exception_table:
            index = by_offset.get(handler.handler_pc)
            if index is None or index in states:
                continue
            catch_ref = None
            if handler.catch_type:
                try:
                    catch_ref = self.pool.get_class_name(handler.catch_type)
                except Exception:
                    catch_ref = None
            states[index] = ((VType("a", catch_ref),),
                             self._initial_locals())
            work.append(index)
        return_cat = self._return_category()
        visited_budget = len(instructions) * 8 + 64
        steps = 0
        while work:
            steps += 1
            if steps > visited_budget:
                break  # convergence guard; states monotonically widen
            index = work.pop()
            stack, locals_ = states[index]
            instruction = instructions[index]
            next_states = self._transfer(instruction, list(stack),
                                         dict(locals_), return_cat)
            for target_offset, new_stack, new_locals in next_states:
                if branch("verifier.falloff",
                          self.policy.verify_falloff
                          and target_offset is None):
                    raise self._fail("Falling off the end of the code")
                if target_offset is None:
                    continue
                target_index = by_offset.get(target_offset)
                if target_index is None:
                    raise self._fail(
                        f"Illegal target of jump or branch (offset "
                        f"{target_offset})")
                merged = self._merge_state(
                    states.get(target_index),
                    (tuple(new_stack), new_locals))
                if merged != states.get(target_index):
                    states[target_index] = merged
                    work.append(target_index)

    def _merge_state(self, old, new):
        if old is None:
            return new
        old_stack, old_locals = old
        new_stack, new_locals = new
        if len(old_stack) != len(new_stack):
            if self.policy.strict_stack_shapes and branch(
                    "verifier.stack_shape_inconsistent",
                    True):
                raise self._fail("Stack shape inconsistent")
            # Lenient vendors keep the shorter shape.
            merged_stack = old_stack if len(old_stack) < len(new_stack) \
                else new_stack
        else:
            merged_stack = tuple(
                self._merge_types(a, b) for a, b in zip(old_stack, new_stack))
        merged_locals = {}
        for slot in set(old_locals) & set(new_locals):
            try:
                merged_locals[slot] = self._merge_types(
                    old_locals[slot], new_locals[slot])
            except VerifyError:
                if self.policy.verify_type_assignability:
                    raise
                merged_locals[slot] = VType("a", None)
        return merged_stack, merged_locals

    def _return_category(self) -> Optional[str]:
        descriptor = self.classfile.method_descriptor(self.method)
        try:
            parsed = parse_method_descriptor(descriptor)
        except DescriptorError:
            return None
        if parsed.return_type is None:
            return "v"
        if parsed.return_type.dimensions or parsed.return_type.kind == "object":
            return "a"
        return _vtype_of_descriptor_char(parsed.return_type.name).cat

    # -- per-instruction transfer -------------------------------------------------------

    def _pop(self, stack: List[VType], expected: Optional[str] = None) -> VType:
        if branch("verifier.stack_underflow", not stack):
            raise self._fail("Unable to pop operand off an empty stack")
        item = stack.pop()
        if expected is not None and branch(
                "verifier.operand_type_mismatch",
                item.cat != expected):
            raise self._fail(
                f"Expecting to find {expected} on stack, found {item.cat}")
        return item

    def _push(self, stack: List[VType], item: VType) -> None:
        stack.append(item)
        if self.policy.verify_max_stack:
            depth = sum(entry.size for entry in stack)
            if branch("verifier.stack_overflow",
                      depth > self.code.max_stack):
                raise self._fail(
                    f"Exceeding stack size (max_stack={self.code.max_stack})")

    def _check_local(self, slot: int) -> None:
        if self.policy.verify_max_locals and branch(
                "verifier.local_out_of_range",
                slot >= max(self.code.max_locals, 0)):
            raise self._fail(
                f"Local variable index {slot} out of range "
                f"(max_locals={self.code.max_locals})")

    def _transfer(self, instruction: Instruction, stack: List[VType],
                  locals_: Dict[int, VType], return_cat: Optional[str]):
        """Apply one instruction; returns [(next_offset|None, stack, locals)]."""
        op = instruction.op
        probe(f"verifier.op.{instruction.mnemonic}")
        operands = instruction.operands
        next_offset = self._next_offset(instruction)
        name = op.name

        # Constants ----------------------------------------------------------
        if name.startswith("ICONST") or op in (Op.BIPUSH, Op.SIPUSH):
            self._push(stack, _INT)
        elif name.startswith("LCONST"):
            self._push(stack, _LONG)
        elif name.startswith("FCONST"):
            self._push(stack, _FLOAT)
        elif name.startswith("DCONST"):
            self._push(stack, _DOUBLE)
        elif op is Op.ACONST_NULL:
            self._push(stack, _NULL)
        elif op in (Op.LDC, Op.LDC_W, Op.LDC2_W):
            self._transfer_ldc(op, operands, stack)
        # Loads/stores --------------------------------------------------------
        elif name in _LOCAL_LOAD_NAMES:
            self._transfer_load(op, operands, stack, locals_)
        elif name in _LOCAL_STORE_NAMES:
            self._transfer_store(op, operands, stack, locals_)
        # Field access -----------------------------------------------------------
        elif op in (Op.GETSTATIC, Op.GETFIELD, Op.PUTSTATIC, Op.PUTFIELD):
            self._transfer_field(op, operands, stack)
        # Invocations ---------------------------------------------------------------
        elif op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC,
                    Op.INVOKEINTERFACE):
            self._transfer_invoke(op, operands, stack, locals_)
        elif op is Op.INVOKEDYNAMIC:
            raise self._fail("invokedynamic is not supported by this JVM")
        # Object/array creation ---------------------------------------------------
        elif op is Op.NEW:
            entry = self._cp_entry(operands["index"], CpTag.CLASS, what="new")
            class_name = self.pool.get_class_name(operands["index"])
            self._resolve_owner(class_name, "new")
            self._push(stack, VType("a", f"uninit:{class_name}"))
        elif op is Op.NEWARRAY:
            self._pop(stack, "i")
            self._push(stack, VType("a", "[prim"))
        elif op is Op.ANEWARRAY:
            self._cp_entry(operands["index"], CpTag.CLASS, what="anewarray")
            self._pop(stack, "i")
            self._push(stack, VType("a", "[ref"))
        elif op is Op.MULTIANEWARRAY:
            self._cp_entry(operands["index"], CpTag.CLASS,
                           what="multianewarray")
            dims = operands.get("dimensions", 0)
            if branch("verifier.multianewarray_zero_dims", dims == 0):
                raise self._fail("multianewarray with zero dimensions")
            for _ in range(dims):
                self._pop(stack, "i")
            self._push(stack, VType("a", "[multi"))
        elif op is Op.ARRAYLENGTH:
            self._pop(stack, "a")
            self._push(stack, _INT)
        # Casts -----------------------------------------------------------------------
        elif op is Op.CHECKCAST:
            self._cp_entry(operands["index"], CpTag.CLASS, what="checkcast")
            self._pop(stack, "a")
            self._push(stack, VType(
                "a", self.pool.get_class_name(operands["index"])))
        elif op is Op.INSTANCEOF:
            self._cp_entry(operands["index"], CpTag.CLASS, what="instanceof")
            self._pop(stack, "a")
            self._push(stack, _INT)
        # Stack shuffles -----------------------------------------------------------------
        elif op in (Op.POP, Op.POP2, Op.DUP, Op.DUP_X1, Op.DUP_X2, Op.DUP2,
                    Op.DUP2_X1, Op.DUP2_X2, Op.SWAP):
            self._transfer_shuffle(op, stack)
        # Arithmetic / conversions ----------------------------------------------------------
        elif op is Op.IINC:
            self._check_local(operands["index"])
        elif self._transfer_arith(op, stack):
            pass
        # Control flow -------------------------------------------------------------------------
        elif instruction.info.is_branch:
            return self._transfer_branch(instruction, stack, locals_,
                                         next_offset)
        elif op in (Op.IRETURN, Op.LRETURN, Op.FRETURN, Op.DRETURN,
                    Op.ARETURN, Op.RETURN):
            self._transfer_return(op, stack, return_cat)
            return []
        elif op is Op.ATHROW:
            thrown = self._pop(stack, "a")
            if self.policy.verify_type_assignability and thrown.ref and \
                    not thrown.ref.startswith(("[", "uninit:", "null")):
                cls = self.library.find(thrown.ref)
                if cls is not None and branch(
                        "verifier.throw_non_throwable",
                        not self.library.is_throwable(thrown.ref)):
                    raise self._fail(
                        f"Can only throw Throwable objects, not {thrown.ref}")
            return []
        elif op is Op.RET:
            return []
        elif op in (Op.MONITORENTER, Op.MONITOREXIT):
            self._pop(stack, "a")
        elif op is Op.NOP:
            pass
        else:
            # Array element access and anything else with fixed effects.
            self._transfer_generic(instruction, stack)
        return [(next_offset, list(stack), dict(locals_))]

    def _next_offset(self, instruction: Instruction) -> Optional[int]:
        end = instruction.offset + self._instruction_length(instruction)
        return end if end < len(self.code.code) else None

    def _instruction_length(self, instruction: Instruction) -> int:
        # Recover the encoded length from the original code array: find the
        # next decoded offset.  Cached per verify() via by-offset ordering.
        return instruction.operands.get("_length") or self._measure(instruction)

    def _measure(self, instruction: Instruction) -> int:
        # Lengths were implicit during decoding; re-derive cheaply.
        from repro.bytecode.instructions import _decode_one  # local import
        _, end = _decode_one(self.code.code, instruction.offset)
        length = end - instruction.offset
        instruction.operands["_length"] = length
        return length

    # -- transfer helpers --------------------------------------------------------------------

    def _transfer_ldc(self, op: Op, operands, stack: List[VType]) -> None:
        index = operands["index"]
        if op is Op.LDC2_W:
            entry = self._cp_entry(index, CpTag.LONG, CpTag.DOUBLE,
                                   what="ldc2_w")
            self._push(stack, _LONG if entry.tag is CpTag.LONG else _DOUBLE)
            return
        entry = self._cp_entry(index, CpTag.INTEGER, CpTag.FLOAT,
                               CpTag.STRING, CpTag.CLASS, what="ldc")
        if entry.tag is CpTag.INTEGER:
            self._push(stack, _INT)
        elif entry.tag is CpTag.FLOAT:
            self._push(stack, _FLOAT)
        elif entry.tag is CpTag.STRING:
            self._push(stack, VType("a", "java/lang/String"))
        else:
            self._push(stack, VType("a", "java/lang/Class"))

    _LOAD_CATS = {"I": "i", "L": "l", "F": "f", "D": "d", "A": "a"}

    def _transfer_load(self, op: Op, operands, stack: List[VType],
                       locals_: Dict[int, VType]) -> None:
        cat = self._LOAD_CATS[op.name[0]]
        slot = operands.get("index")
        if slot is None:
            slot = int(op.name.rsplit("_", 1)[1])
        self._check_local(slot)
        current = locals_.get(slot)
        if branch("verifier.load_undefined_local", current is None):
            raise self._fail(
                f"Accessing value from uninitialized register {slot}")
        if branch("verifier.load_wrong_category", current.cat != cat):
            if self.policy.verify_type_assignability or current.cat in "ld" \
                    or cat in "ld":
                raise self._fail(
                    f"Register {slot} contains wrong type (expected {cat}, "
                    f"found {current.cat})")
            current = VType(cat)
        self._push(stack, current)

    def _transfer_store(self, op: Op, operands, stack: List[VType],
                        locals_: Dict[int, VType]) -> None:
        cat = self._LOAD_CATS[op.name[0]]
        slot = operands.get("index")
        if slot is None:
            slot = int(op.name.rsplit("_", 1)[1])
        self._check_local(slot)
        item = self._pop(stack)
        if branch("verifier.store_wrong_category", item.cat != cat):
            raise self._fail(
                f"Expecting to find {cat} on stack for store, found "
                f"{item.cat}")
        locals_[slot] = item
        if item.size == 2:
            locals_.pop(slot + 1, None)

    def _transfer_field(self, op: Op, operands, stack: List[VType]) -> None:
        owner, name, descriptor = self._member_ref(
            operands["index"], CpTag.FIELDREF, what="field access")
        try:
            vtype = _vtype_of_field_descriptor(descriptor)
        except DescriptorError as exc:
            raise ClassFormatError(
                f"Invalid field descriptor {descriptor!r} in "
                f"{self.where}") from exc
        self._resolve_owner(owner, "field access")
        if self.policy.resolve_refs_eagerly and owner != self.classfile.name:
            cls = self.library.find(owner)
            if cls is not None and branch(
                    "verifier.field_missing",
                    cls.find_field(name) is None):
                raise NoSuchFieldError(f"{owner.replace('/', '.')}.{name}")
        if op is Op.GETSTATIC:
            self._push(stack, vtype)
        elif op is Op.GETFIELD:
            self._pop(stack, "a")
            self._push(stack, vtype)
        elif op is Op.PUTSTATIC:
            value = self._pop(stack)
            self._check_assignable(value, vtype, f"field {name}")
        else:  # PUTFIELD
            value = self._pop(stack)
            self._pop(stack, "a")
            self._check_assignable(value, vtype, f"field {name}")

    def _check_assignable(self, source: VType, target: VType,
                          what: str) -> None:
        if branch("verifier.value_category_mismatch",
                  source.cat != target.cat):
            raise self._fail(
                f"Incompatible type for {what}: expected {target.cat}, "
                f"found {source.cat}")
        if self.policy.verify_type_assignability and branch(
                "verifier.value_not_assignable",
                not self._assignable(source, target)):
            raise self._fail(
                f"Incompatible object argument for {what}: {source.ref} "
                f"is not assignable to {target.ref}")

    def _transfer_invoke(self, op: Op, operands, stack: List[VType],
                         locals_: Optional[Dict[int, VType]] = None) -> None:
        tags = (CpTag.METHODREF, CpTag.INTERFACE_METHODREF)
        owner, name, descriptor = self._member_ref(
            operands["index"], *tags, what="invocation")
        try:
            parsed = parse_method_descriptor(descriptor)
        except DescriptorError as exc:
            raise ClassFormatError(
                f"Invalid method descriptor {descriptor!r} in "
                f"{self.where}") from exc
        self._resolve_owner(owner, "invocation")
        for param in reversed(parsed.parameters):
            if param.dimensions:
                expected = VType("a", param.descriptor().replace(".", "/"))
            elif param.kind == "base":
                expected = _vtype_of_descriptor_char(param.name)
            else:
                expected = VType("a", param.name)
            value = self._pop(stack)
            self._check_assignable(value, expected, f"argument of {name}")
        if op is not Op.INVOKESTATIC:
            receiver = self._pop(stack, "a")
            if name != "<init>" and self.policy.verify_uninitialized_merge \
                    and branch("verifier.uninit_receiver",
                               receiver.is_uninitialized):
                raise self._fail(
                    "Calling a method on an uninitialized object")
            if name == "<init>" and receiver.is_uninitialized:
                # Initialize every remaining copy of this uninit type
                # (stack and locals), as JVMS §4.10.1.9.invokespecial does.
                initialized = VType("a", receiver.ref[len("uninit:"):])
                for i, entry in enumerate(stack):
                    if entry == receiver:
                        stack[i] = initialized
                if locals_ is not None:
                    for slot, entry in list(locals_.items()):
                        if entry == receiver:
                            locals_[slot] = initialized
        if self.policy.resolve_refs_eagerly and owner != self.classfile.name:
            cls = self.library.find(owner)
            if cls is not None and branch(
                    "verifier.method_missing",
                    cls.find_method(name, descriptor) is None):
                raise NoSuchMethodError(
                    f"{owner.replace('/', '.')}.{name}{descriptor}")
        if parsed.return_type is not None:
            if parsed.return_type.dimensions:
                self._push(stack, VType(
                    "a", parsed.return_type.descriptor().replace(".", "/")))
            elif parsed.return_type.kind == "base":
                self._push(stack, _vtype_of_descriptor_char(
                    parsed.return_type.name))
            else:
                self._push(stack, VType("a", parsed.return_type.name))

    def _transfer_shuffle(self, op: Op, stack: List[VType]) -> None:
        if op is Op.POP:
            item = self._pop(stack)
            if branch("verifier.pop_category2", item.size == 2):
                raise self._fail("pop of a category-2 value")
        elif op is Op.POP2:
            item = self._pop(stack)
            if item.size == 1:
                self._pop(stack)
        elif op is Op.DUP:
            item = self._pop(stack)
            if branch("verifier.dup_category2", item.size == 2):
                raise self._fail("dup of a category-2 value")
            stack.append(item)
            self._push(stack, item)
        elif op is Op.DUP_X1:
            first = self._pop(stack)
            second = self._pop(stack)
            stack.append(first)
            stack.append(second)
            self._push(stack, first)
        elif op is Op.DUP_X2:
            first = self._pop(stack)
            second = self._pop(stack)
            third = self._pop(stack)
            stack.append(first)
            stack.append(third)
            stack.append(second)
            self._push(stack, first)
        elif op is Op.DUP2:
            first = self._pop(stack)
            if first.size == 2:
                stack.append(first)
                self._push(stack, first)
            else:
                second = self._pop(stack)
                stack.append(second)
                stack.append(first)
                stack.append(second)
                self._push(stack, first)
        elif op in (Op.DUP2_X1, Op.DUP2_X2):
            first = self._pop(stack)
            second = self._pop(stack)
            stack.append(first)
            stack.append(second)
            self._push(stack, first)
        elif op is Op.SWAP:
            first = self._pop(stack)
            second = self._pop(stack)
            stack.append(first)
            self._push(stack, second)

    _ARITH_GROUPS = [
        # (ops, pops list, push)
        (("IADD", "ISUB", "IMUL", "IDIV", "IREM", "ISHL", "ISHR", "IUSHR",
          "IAND", "IOR", "IXOR"), ["i", "i"], _INT),
        (("LADD", "LSUB", "LMUL", "LDIV", "LREM", "LAND", "LOR", "LXOR"),
         ["l", "l"], _LONG),
        (("LSHL", "LSHR", "LUSHR"), ["i", "l"], _LONG),
        (("FADD", "FSUB", "FMUL", "FDIV", "FREM"), ["f", "f"], _FLOAT),
        (("DADD", "DSUB", "DMUL", "DDIV", "DREM"), ["d", "d"], _DOUBLE),
        (("INEG",), ["i"], _INT), (("LNEG",), ["l"], _LONG),
        (("FNEG",), ["f"], _FLOAT), (("DNEG",), ["d"], _DOUBLE),
        (("I2L",), ["i"], _LONG), (("I2F",), ["i"], _FLOAT),
        (("I2D",), ["i"], _DOUBLE), (("L2I",), ["l"], _INT),
        (("L2F",), ["l"], _FLOAT), (("L2D",), ["l"], _DOUBLE),
        (("F2I",), ["f"], _INT), (("F2L",), ["f"], _LONG),
        (("F2D",), ["f"], _DOUBLE), (("D2I",), ["d"], _INT),
        (("D2L",), ["d"], _LONG), (("D2F",), ["d"], _FLOAT),
        (("I2B", "I2C", "I2S"), ["i"], _INT),
        (("LCMP",), ["l", "l"], _INT),
        (("FCMPL", "FCMPG"), ["f", "f"], _INT),
        (("DCMPL", "DCMPG"), ["d", "d"], _INT),
    ]

    def _transfer_arith(self, op: Op, stack: List[VType]) -> bool:
        for names, pops, push in self._ARITH_GROUPS:
            if op.name in names:
                for cat in pops:
                    self._pop(stack, cat)
                self._push(stack, push)
                return True
        return False

    _ARRAY_LOAD = {"IALOAD": _INT, "BALOAD": _INT, "CALOAD": _INT,
                   "SALOAD": _INT, "FALOAD": _FLOAT, "LALOAD": _LONG,
                   "DALOAD": _DOUBLE}

    def _transfer_generic(self, instruction: Instruction,
                          stack: List[VType]) -> None:
        name = instruction.op.name
        if name in self._ARRAY_LOAD:
            self._pop(stack, "i")
            self._pop(stack, "a")
            self._push(stack, self._ARRAY_LOAD[name])
        elif name == "AALOAD":
            self._pop(stack, "i")
            self._pop(stack, "a")
            self._push(stack, VType("a", None))
        elif name.endswith("ASTORE"):
            self._pop(stack)
            self._pop(stack, "i")
            self._pop(stack, "a")
        else:
            raise self._fail(f"Unhandled opcode {name.lower()}")

    def _transfer_branch(self, instruction: Instruction, stack: List[VType],
                         locals_: Dict[int, VType],
                         next_offset: Optional[int]):
        op = instruction.op
        name = op.name
        if name.startswith("IF_ICMP"):
            self._pop(stack, "i")
            self._pop(stack, "i")
        elif name.startswith("IF_ACMP") or op in (Op.IFNULL, Op.IFNONNULL):
            self._pop(stack, "a")
            if name.startswith("IF_ACMP"):
                self._pop(stack, "a")
        elif name.startswith("IF"):
            self._pop(stack, "i")
        elif op in (Op.TABLESWITCH, Op.LOOKUPSWITCH):
            self._pop(stack, "i")
        elif op in (Op.JSR, Op.JSR_W):
            raise self._fail("jsr/ret are not supported by this verifier")
        successors = []
        for target in instruction.branch_targets():
            successors.append((target, list(stack), dict(locals_)))
        if not instruction.info.is_terminal:
            successors.append((next_offset, list(stack), dict(locals_)))
        return successors

    def _transfer_return(self, op: Op, stack: List[VType],
                         return_cat: Optional[str]) -> None:
        cat_map = {Op.IRETURN: "i", Op.LRETURN: "l", Op.FRETURN: "f",
                   Op.DRETURN: "d", Op.ARETURN: "a", Op.RETURN: "v"}
        actual = cat_map[op]
        if actual != "v":
            self._pop(stack, actual)
        if self.policy.verify_return_types and return_cat is not None:
            if branch("verifier.return_type_mismatch", actual != return_cat):
                raise self._fail(
                    f"Wrong return type in function (expected {return_cat}, "
                    f"found {actual})")
