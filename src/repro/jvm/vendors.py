"""The five JVM implementations of Table 3, as policy + environment bundles.

Each factory returns a fresh :class:`~repro.jvm.machine.Jvm`.  The policy
deltas encode the behavioural fingerprints the paper documents:

* **HotSpot 7/8/9** — eager verification of every method before execution;
  shallow type tracking (misses String↔Map confusion — Problem 2); resolves
  and access-checks ``throws`` clauses (Problem 3); version ceilings 51/52/53.
* **J9** — lazy per-invocation method verification but strict stack-shape
  frame checking ("stack shape inconsistent"); treats any ``<clinit>`` as
  the class initializer, so an abstract/code-less ``<clinit>`` is a
  ClassFormatError where HotSpot runs the class (Problem 1 / Figure 2).
* **GIJ** — a classpath-era interpreter: deep reference-type verification
  (catches unsafe assignability and initialized/uninitialized merges) but
  wholesale missing format checks — duplicate fields, interface member
  rules, interface superclasses, ``<init>`` shape, interface ``main``
  (Problem 4).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.jvm.machine import Jvm
from repro.jvm.policy import JvmPolicy
from repro.runtime.environment import build_environment

#: Name of the reference implementation used for coverage collection.
REFERENCE_JVM_NAME = "hotspot9"


def _hotspot_policy(**overrides) -> JvmPolicy:
    policy = JvmPolicy(
        eager_method_verification=True,
        strict_stack_shapes=False,
        verify_type_assignability=False,
        verify_uninitialized_merge=False,
        resolve_thrown_exceptions=True,
        treat_nonstatic_clinit_as_ordinary=True,
        code_presence_checked_at_loading=False,
        member_checks_at_linking=True,   # constraint checks surface in
                                         # verification (linking)
    )
    return replace(policy, **overrides)


def make_hotspot7() -> Jvm:
    """HotSpot for Java 7 (release 1.7.0)."""
    policy = _hotspot_policy(
        max_class_version=51,
        static_interface_methods_since=52,
        check_restricted_access=False,
    )
    return Jvm("hotspot7", policy, build_environment(7))


def make_hotspot8() -> Jvm:
    """HotSpot for Java 8 (release 1.8.0)."""
    policy = _hotspot_policy(
        max_class_version=52,
        check_restricted_access=False,
    )
    return Jvm("hotspot8", policy, build_environment(8))


def make_hotspot9() -> Jvm:
    """HotSpot for Java 9 (1.9.0-internal) — the reference implementation.

    Applies the SE 9 clarification of the ``<clinit>`` rule to *all*
    classfile versions and enforces module-style access restrictions on
    vendor-internal classes (Problem 3's IllegalAccessError).
    """
    policy = _hotspot_policy(
        max_class_version=53,
        check_restricted_access=True,
    )
    return Jvm("hotspot9", policy, build_environment(9))


def make_j9() -> Jvm:
    """IBM J9 for SDK 8."""
    policy = JvmPolicy(
        max_class_version=52,
        eager_method_verification=False,      # lazy, per-invocation
        strict_stack_shapes=True,             # "stack shape inconsistent"
        verify_type_assignability=False,
        verify_uninitialized_merge=False,
        resolve_thrown_exceptions=False,
        check_restricted_access=False,
        treat_nonstatic_clinit_as_ordinary=False,  # Problem 1
        code_presence_checked_at_loading=True,     # format error at load
        member_checks_at_linking=False,            # checks at definition
        # Execution semantics: J9's handler search walks its internal
        # (reversed) table, and JIT-reordered <clinit> stores are not
        # guaranteed visible to the first main-method read.
        exception_handler_scan_order="reversed",
        clinit_visibility_order="deferred",
    )
    return Jvm("j9", policy, build_environment(8, name="ibm-sdk8"))


def make_gij() -> Jvm:
    """GNU GIJ 5.1.0 — conforms to Java 1.5.0 but accepts version 51."""
    policy = JvmPolicy(
        max_class_version=51,                  # "can process version 51"
        min_class_version=45,
        reject_trailing_bytes=False,
        eager_method_verification=True,
        strict_stack_shapes=False,
        verify_type_assignability=True,        # catches String↔Map (P2)
        verify_uninitialized_merge=True,       # catches uninit merges (P2)
        resolve_thrown_exceptions=False,
        check_restricted_access=False,
        # Problem 4: wholesale missing format checks.
        interface_superclass_must_be_object=False,
        interface_members_strict=False,
        init_method_strict=False,
        reject_duplicate_fields=False,
        reject_duplicate_methods=False,
        reject_final_volatile_field=False,
        reject_conflicting_visibility=False,
        interface_requires_abstract_flag=False,
        allow_interface_main=True,
        require_static_main=False,
        require_public_main=False,
        treat_nonstatic_clinit_as_ordinary=True,
        code_presence_checked_at_loading=False,
        member_checks_at_linking=True,         # its few checks run late
        resolve_refs_eagerly=True,             # an eager, AOT-ish linker
        # Execution semantics: classpath-era interpreter quirks — the
        # soft-float comparator treats NaN as equal, narrowing
        # conversions are raw hardware casts, and the String fast paths
        # are stubbed out rather than implemented.
        fcmpg_nan_result=0,
        strict_narrowing_conversions=False,
        string_intrinsic_compat=False,
    )
    return Jvm("gij", policy, build_environment(5, name="classpath"))


def reference_jvm() -> Jvm:
    """The coverage-instrumented reference JVM (HotSpot for Java 9)."""
    return make_hotspot9()


def all_jvms() -> List[Jvm]:
    """The five JVMs of Table 3, in the paper's column order."""
    return [make_hotspot7(), make_hotspot8(), make_hotspot9(),
            make_j9(), make_gij()]


def jvms_by_name() -> Dict[str, Jvm]:
    """Name → fresh JVM instance."""
    return {jvm.name: jvm for jvm in all_jvms()}
