"""Linking phase: hierarchy resolution and verification (JVMS §5.4).

The linker resolves the loaded class's superclass, superinterfaces and
(policy-gated) declared exceptions against the vendor's JRE environment,
enforces the inheritance constraints JVMs disagree about, and drives
bytecode verification of method bodies.
"""

from __future__ import annotations

from typing import List, Optional

from repro.classfile.methods import CLASS_INIT, MethodInfo
from repro.classfile.model import ClassFile
from repro.coverage.probes import branch, probe
from repro.errors import (
    ClassCircularityError,
    ClassFormatError,
    IllegalAccessError,
    IncompatibleClassChangeError,
    NoClassDefFoundError,
    VerifyError,
)
from repro.jvm.policy import JvmPolicy
from repro.jvm.verifier import MethodVerifier
from repro.runtime.environment import JreEnvironment


class Linker:
    """Links one loaded class against a vendor environment."""

    def __init__(self, policy: JvmPolicy, environment: JreEnvironment):
        self.policy = policy
        self.environment = environment
        self.library = environment.library

    # -- entry point --------------------------------------------------------------

    def resolve_hierarchy(self, classfile: ClassFile) -> None:
        """Resolve the direct superclass and superinterfaces.

        Real JVMs do this while *creating* the class (JVMS §5.3.5), so the
        machine invokes it during the creation & loading phase — missing
        classes and circularities reject there, per Table 1 of the paper.

        Raises:
            NoClassDefFoundError / ClassCircularityError / ClassFormatError.
        """
        probe("linker.resolve_hierarchy")
        super_name = classfile.super_name
        if branch("linker.no_superclass", super_name is None):
            if classfile.name != "java/lang/Object":
                raise ClassFormatError(
                    f"Class {classfile.name} has no superclass")
            return
        if self.policy.check_class_circularity and branch(
                "linker.super_is_self", super_name == classfile.name):
            raise ClassCircularityError(classfile.name.replace("/", "."))
        self._find_class(super_name, classfile.name)
        for name in classfile.interface_names:
            if self.policy.check_class_circularity and branch(
                    "linker.interface_is_self", name == classfile.name):
                raise ClassCircularityError(classfile.name.replace("/", "."))
            self._find_class(name, classfile.name)

    def link(self, classfile: ClassFile) -> None:
        """Run the linking phase (hierarchy constraints + verification).

        Raises:
            IncompatibleClassChangeError / VerifyError / IllegalAccessError /
            NoClassDefFoundError / ClassFormatError: per the violated
            constraint.
        """
        probe("linker.link")
        self._check_superclass(classfile)
        self._check_interfaces(classfile)
        if self.policy.resolve_thrown_exceptions:
            self._resolve_thrown(classfile)
        self._verify_methods(classfile)

    # -- hierarchy ------------------------------------------------------------------

    def _find_class(self, internal_name: str, referer: str):
        probe("linker.resolve_class")
        # Package-segmented resolution lines (classpath scanning code).
        package = internal_name.rsplit("/", 1)[0] if "/" in internal_name \
            else "<default>"
        probe(f"linker.resolve_package.{package}")
        cls = self.library.find(internal_name)
        if branch("linker.class_missing", cls is None):
            raise NoClassDefFoundError(
                f"{internal_name.replace('/', '.')} "
                f"(referenced from {referer})")
        return cls

    def _check_access(self, cls, what: str) -> None:
        if not self.policy.check_restricted_access:
            return
        probe("linker.check_access")
        if branch("linker.restricted_class",
                  cls.restricted or cls.is_synthetic or not cls.is_public):
            raise IllegalAccessError(
                f"tried to access class {cls.name.replace('/', '.')} "
                f"from {what}")

    def _check_superclass(self, classfile: ClassFile) -> None:
        probe("linker.check_superclass")
        super_name = classfile.super_name
        if super_name is None or super_name == classfile.name:
            return  # handled during creation & loading
        super_cls = self.library.find(super_name)
        if super_cls is None:
            return  # handled during creation & loading
        self._check_access(super_cls, f"class {classfile.name}")
        if branch("linker.class_is_interface_check", classfile.is_interface):
            if self.policy.interface_superclass_must_be_object and branch(
                    "linker.interface_super_not_object",
                    super_name != "java/lang/Object"):
                raise ClassFormatError(
                    f"Interface {classfile.name} has superclass other than "
                    "java/lang/Object")
            return
        if self.policy.check_super_not_interface and branch(
                "linker.super_is_interface", super_cls.is_interface):
            raise IncompatibleClassChangeError(
                f"class {classfile.name.replace('/', '.')} has interface "
                f"{super_name.replace('/', '.')} as super class")
        if self.policy.check_final_superclass and branch(
                "linker.super_is_final", super_cls.is_final):
            raise VerifyError(
                f"Cannot inherit from final class "
                f"{super_name.replace('/', '.')}")

    def _check_interfaces(self, classfile: ClassFile) -> None:
        probe("linker.check_interfaces")
        for name in classfile.interface_names:
            cls = self.library.find(name)
            if cls is None or name == classfile.name:
                continue  # handled during creation & loading
            self._check_access(cls, f"class {classfile.name}")
            if self.policy.check_interfaces_are_interfaces and branch(
                    "linker.implements_non_interface", not cls.is_interface):
                raise IncompatibleClassChangeError(
                    f"class {classfile.name.replace('/', '.')} tried to "
                    f"implement class {name.replace('/', '.')} as interface")

    def _resolve_thrown(self, classfile: ClassFile) -> None:
        """Resolve and access-check ``throws`` clauses (Problem 3)."""
        probe("linker.resolve_thrown")
        for method in classfile.methods:
            exceptions = method.exceptions
            if exceptions is None:
                continue
            try:
                names = exceptions.exception_names(classfile.constant_pool)
            except Exception as exc:
                raise ClassFormatError(
                    f"Broken Exceptions attribute in {classfile.name}: "
                    f"{exc}") from exc
            for name in names:
                if name == classfile.name:
                    continue
                cls = self._find_class(name, classfile.name)
                self._check_access(
                    cls, f"throws clause of {classfile.name}."
                         f"{classfile.method_name(method)}")

    # -- verification ------------------------------------------------------------------

    def _verify_methods(self, classfile: ClassFile) -> None:
        probe("linker.verify_methods")
        for method in classfile.methods:
            name = classfile.method_name(method)
            self._check_code_shape(classfile, method, name)
            if not self.policy.eager_method_verification:
                # Lazy vendors (J9) only verify a method right before its
                # first invocation; the machine verifies main/<clinit> then.
                if branch("linker.lazy_skip",
                          name not in (CLASS_INIT,)):
                    continue
            code = method.code
            if code is None:
                continue
            probe("linker.verify_one")
            MethodVerifier(classfile, method, code, self.policy,
                           self.library).verify()

    def _check_code_shape(self, classfile: ClassFile, method: MethodInfo,
                          name: str) -> None:
        """Code-presence check for vendors that defer it to linking."""
        if not self.policy.check_code_presence:
            return
        if self.policy.code_presence_checked_at_loading:
            return  # already done by the loader
        probe("linker.check_code_presence")
        if branch("linker.concrete_without_code",
                  method.needs_code and method.code is None):
            descriptor = classfile.method_descriptor(method)
            raise ClassFormatError(
                f"Absent Code attribute in method that is not native or "
                f"abstract in class file {classfile.name}, "
                f"method={name}{descriptor}")

    def verify_single_method(self, classfile: ClassFile,
                             method: MethodInfo) -> None:
        """Verify one method on demand (lazy-verification vendors)."""
        code = method.code
        if code is None:
            return
        probe("linker.verify_on_demand")
        MethodVerifier(classfile, method, code, self.policy,
                       self.library).verify()
